#include "query/query.h"

#include "query/tokenizer.h"

namespace railgun::query {

namespace {

// Parses "N unit" into microseconds. Units: ms, second(s), minute(s),
// hour(s), day(s), week(s).
StatusOr<Micros> ParseDuration(Tokenizer* tokens) {
  const Token count = tokens->Next();
  if (count.type != TokenType::kNumber) {
    return Status::InvalidArgument("expected a number in window duration");
  }
  const Token unit = tokens->Next();
  if (unit.type != TokenType::kIdentifier) {
    return Status::InvalidArgument("expected a time unit");
  }
  Micros per = 0;
  const std::string& u = unit.text;
  if (u == "us" || u == "microsecond" || u == "microseconds") {
    per = 1;
  } else if (u == "ms" || u == "millisecond" || u == "milliseconds") {
    per = kMicrosPerMilli;
  } else if (u == "s" || u == "sec" || u == "second" || u == "seconds") {
    per = kMicrosPerSecond;
  } else if (u == "m" || u == "min" || u == "minute" || u == "minutes") {
    per = kMicrosPerMinute;
  } else if (u == "h" || u == "hour" || u == "hours") {
    per = kMicrosPerHour;
  } else if (u == "d" || u == "day" || u == "days") {
    per = kMicrosPerDay;
  } else if (u == "week" || u == "weeks") {
    per = 7 * kMicrosPerDay;
  } else {
    return Status::InvalidArgument("unknown time unit: " + unit.raw);
  }
  return static_cast<Micros>(count.number * static_cast<double>(per));
}

StatusOr<window::WindowSpec> ParseWindow(Tokenizer* tokens) {
  window::WindowSpec spec;
  if (tokens->TryConsume("sliding")) {
    // Either "sliding N events" (count window) or "sliding N unit".
    if (tokens->Peek().type == TokenType::kNumber &&
        tokens->Peek(1).type == TokenType::kIdentifier &&
        (tokens->Peek(1).text == "events" || tokens->Peek(1).text == "event")) {
      const Token count = tokens->Next();
      tokens->Next();  // "events"
      spec = window::WindowSpec::CountSliding(
          static_cast<uint64_t>(count.number));
    } else {
      RAILGUN_ASSIGN_OR_RETURN(Micros size, ParseDuration(tokens));
      spec = window::WindowSpec::Sliding(size);
    }
  } else if (tokens->TryConsume("tumbling")) {
    RAILGUN_ASSIGN_OR_RETURN(Micros size, ParseDuration(tokens));
    spec = window::WindowSpec::Tumbling(size);
  } else if (tokens->TryConsume("infinite")) {
    spec = window::WindowSpec::Infinite();
  } else {
    return Status::InvalidArgument("expected window expression, found '" +
                                   tokens->Peek().raw + "'");
  }

  if (tokens->TryConsume("delayed")) {
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("by"));
    RAILGUN_ASSIGN_OR_RETURN(Micros delay, ParseDuration(tokens));
    spec.delay = delay;
  }
  return spec;
}

}  // namespace

StatusOr<QueryDef> ParseQuery(const std::string& statement) {
  Tokenizer tokens(statement);
  RAILGUN_RETURN_IF_ERROR(tokens.status());

  QueryDef def;
  def.raw = statement;

  RAILGUN_RETURN_IF_ERROR(tokens.Expect("select"));

  // Aggregation list.
  while (true) {
    const Token agg_name = tokens.Next();
    if (agg_name.type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected aggregation name, found '" +
                                     agg_name.raw + "'");
    }
    RAILGUN_ASSIGN_OR_RETURN(agg::AggKind kind, agg::ParseAggKind(agg_name.text));
    RAILGUN_RETURN_IF_ERROR(tokens.Expect("("));
    AggSpec spec;
    spec.kind = kind;
    if (tokens.TryConsume("*")) {
      if (kind != agg::AggKind::kCount) {
        return Status::InvalidArgument("only count(*) may use '*'");
      }
    } else {
      const Token field = tokens.Next();
      if (field.type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected field name in aggregation");
      }
      spec.field = field.raw;
    }
    RAILGUN_RETURN_IF_ERROR(tokens.Expect(")"));
    spec.name = std::string(agg::AggKindName(kind)) + "(" +
                (spec.field.empty() ? "*" : spec.field) + ")";
    def.aggs.push_back(std::move(spec));
    if (!tokens.TryConsume(",")) break;
  }

  RAILGUN_RETURN_IF_ERROR(tokens.Expect("from"));
  const Token stream = tokens.Next();
  if (stream.type != TokenType::kIdentifier) {
    return Status::InvalidArgument("expected stream name after FROM");
  }
  def.stream = stream.raw;

  if (tokens.TryConsume("where")) {
    RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> filter,
                             ParseExprFrom(&tokens));
    def.filter = std::shared_ptr<Expr>(std::move(filter));
  }

  if (tokens.TryConsume("group")) {
    RAILGUN_RETURN_IF_ERROR(tokens.Expect("by"));
    while (true) {
      const Token field = tokens.Next();
      if (field.type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected field in GROUP BY");
      }
      def.group_by.push_back(field.raw);
      if (!tokens.TryConsume(",")) break;
    }
  }

  RAILGUN_RETURN_IF_ERROR(tokens.Expect("over"));
  RAILGUN_ASSIGN_OR_RETURN(def.window, ParseWindow(&tokens));

  if (!tokens.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after query: '" +
                                   tokens.Peek().raw + "'");
  }
  return def;
}

}  // namespace railgun::query
