// Parsed form of a Railgun query statement (paper Fig. 4):
//
//   SELECT agg(field) [, agg(field)]... FROM stream
//     [WHERE filterExpression]
//     [GROUP BY field [, field]...]
//     OVER (sliding N unit | tumbling N unit | infinite
//           | sliding N events) [delayed by N unit]
#ifndef RAILGUN_QUERY_QUERY_H_
#define RAILGUN_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "agg/aggregator.h"
#include "common/status.h"
#include "query/expr.h"
#include "window/window.h"

namespace railgun::query {

struct AggSpec {
  agg::AggKind kind;
  std::string field;  // Empty for count(*).
  std::string name;   // Display name, e.g. "sum(amount)".
};

struct QueryDef {
  std::string stream;
  std::vector<AggSpec> aggs;
  std::shared_ptr<Expr> filter;  // Null when no WHERE clause.
  std::vector<std::string> group_by;
  window::WindowSpec window;
  std::string raw;
};

StatusOr<QueryDef> ParseQuery(const std::string& statement);

}  // namespace railgun::query

#endif  // RAILGUN_QUERY_QUERY_H_
