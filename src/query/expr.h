// Filter expression language (the role JEXL plays in the paper §3.4):
// arithmetic, comparisons and boolean logic over event fields, bound to a
// schema once and evaluated per event.
#ifndef RAILGUN_QUERY_EXPR_H_
#define RAILGUN_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reservoir/event.h"

namespace railgun::query {

enum class ExprOp : uint8_t {
  kLiteral,
  kField,
  kAnd,
  kOr,
  kNot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
};

class Expr {
 public:
  static std::unique_ptr<Expr> Literal(reservoir::FieldValue value);
  static std::unique_ptr<Expr> Field(std::string name);
  static std::unique_ptr<Expr> Unary(ExprOp op, std::unique_ptr<Expr> child);
  static std::unique_ptr<Expr> Binary(ExprOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);

  ExprOp op() const { return op_; }
  const std::string& field_name() const { return field_name_; }

  // Resolves field references against the schema. Must be called before
  // Eval.
  Status Bind(const reservoir::Schema& schema);

  StatusOr<reservoir::FieldValue> Eval(const reservoir::Event& event) const;

  // Convenience: evaluates and coerces to bool (errors -> false).
  bool EvalBool(const reservoir::Event& event) const;

  // Canonical text form, used as the DAG prefix-sharing key.
  std::string ToString() const;

 private:
  Expr() = default;

  ExprOp op_ = ExprOp::kLiteral;
  reservoir::FieldValue literal_;
  std::string field_name_;
  int field_index_ = -1;
  std::unique_ptr<Expr> lhs_;
  std::unique_ptr<Expr> rhs_;
};

// Parses a standalone filter expression (also used by the query parser
// for WHERE clauses).
StatusOr<std::unique_ptr<Expr>> ParseExpr(const std::string& text);

// Parses an expression from an in-progress tokenizer (stops at the first
// token that cannot extend the expression).
class Tokenizer;
StatusOr<std::unique_ptr<Expr>> ParseExprFrom(Tokenizer* tokens);

}  // namespace railgun::query

#endif  // RAILGUN_QUERY_EXPR_H_
