// DDL statements: the textual surface for declaring streams and their
// metrics, consumed by the client API (api/client.h) and compiled into
// engine StreamDefs there.
//
//   CREATE STREAM payments (cardId STRING, merchantId STRING,
//                           amount DOUBLE)
//     PARTITION BY cardId, merchantId [PARTITIONS 4]
//
//   ADD METRIC SELECT sum(amount) FROM payments
//     GROUP BY cardId OVER sliding 5 minutes
//
//   ADD PIPELINE alerts ON payments | filter(amount > 100) | by(cardId)
//     | threshold(amount, 500) | route_to_stream(big_payments)
#ifndef RAILGUN_QUERY_DDL_H_
#define RAILGUN_QUERY_DDL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/pipeline.h"
#include "query/query.h"
#include "reservoir/event.h"

namespace railgun::query {

// The schema half of a CREATE STREAM statement. The api layer combines
// it with registered metrics into an engine::StreamDef.
struct StreamSchemaDef {
  std::string name;
  std::vector<reservoir::SchemaField> fields;
  std::vector<std::string> partitioners;
  int partitions_per_topic = 1;
};

enum class DdlKind : uint8_t {
  kCreateStream = 0,
  kAddMetric = 1,
  kAddPipeline = 2,
};

struct DdlStatement {
  DdlKind kind = DdlKind::kCreateStream;
  StreamSchemaDef create_stream;  // Valid when kind == kCreateStream.
  QueryDef metric;                // Valid when kind == kAddMetric.
  PipelineSpec pipeline;          // Valid when kind == kAddPipeline.
};

// True when the statement starts with a DDL verb (CREATE or ADD),
// case-insensitively. SELECT statements are not DDL.
bool IsDdlStatement(const std::string& statement);

// Parses either DDL form. ADD METRIC delegates the SELECT body to
// ParseQuery, so the metric grammar is identical to ad-hoc queries.
StatusOr<DdlStatement> ParseDdl(const std::string& statement);

// Parses only the CREATE STREAM form. Validates that field names are
// unique, types are known, PARTITION BY is present and every
// partitioner is a declared field.
StatusOr<StreamSchemaDef> ParseCreateStream(const std::string& statement);

// Field type names accepted by CREATE STREAM (case-insensitive):
// STRING/TEXT, DOUBLE/FLOAT, INT/INT64/LONG/BIGINT, BOOL/BOOLEAN.
StatusOr<reservoir::FieldType> ParseFieldType(const std::string& name);
const char* FieldTypeName(reservoir::FieldType type);

}  // namespace railgun::query

#endif  // RAILGUN_QUERY_DDL_H_
