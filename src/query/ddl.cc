#include "query/ddl.h"

#include <cctype>

#include "query/tokenizer.h"

namespace railgun::query {

StatusOr<reservoir::FieldType> ParseFieldType(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "string" || lower == "text") {
    return reservoir::FieldType::kString;
  }
  if (lower == "double" || lower == "float") {
    return reservoir::FieldType::kDouble;
  }
  if (lower == "int" || lower == "int64" || lower == "long" ||
      lower == "bigint") {
    return reservoir::FieldType::kInt64;
  }
  if (lower == "bool" || lower == "boolean") {
    return reservoir::FieldType::kBool;
  }
  return Status::InvalidArgument("unknown field type: " + name);
}

const char* FieldTypeName(reservoir::FieldType type) {
  switch (type) {
    case reservoir::FieldType::kString:
      return "STRING";
    case reservoir::FieldType::kDouble:
      return "DOUBLE";
    case reservoir::FieldType::kInt64:
      return "INT64";
    case reservoir::FieldType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

bool IsDdlStatement(const std::string& statement) {
  Tokenizer tokens(statement);
  const Token& first = tokens.Peek();
  if (first.type != TokenType::kIdentifier) return false;
  return first.text == "create" || first.text == "add";
}

namespace {

StatusOr<StreamSchemaDef> ParseCreateStreamBody(Tokenizer* tokens) {
  StreamSchemaDef def;
  RAILGUN_RETURN_IF_ERROR(tokens->Expect("stream"));
  RAILGUN_ASSIGN_OR_RETURN(Token name,
                           tokens->ExpectIdentifier("stream name"));
  def.name = name.raw;

  RAILGUN_RETURN_IF_ERROR(tokens->Expect("("));
  while (true) {
    RAILGUN_ASSIGN_OR_RETURN(Token field,
                             tokens->ExpectIdentifier("field name"));
    RAILGUN_ASSIGN_OR_RETURN(Token type,
                             tokens->ExpectIdentifier("field type"));
    RAILGUN_ASSIGN_OR_RETURN(reservoir::FieldType field_type,
                             ParseFieldType(type.raw));
    for (const auto& existing : def.fields) {
      if (existing.name == field.raw) {
        return Status::InvalidArgument("duplicate field: " + field.raw);
      }
    }
    def.fields.push_back({field.raw, field_type});
    if (!tokens->TryConsume(",")) break;
  }
  RAILGUN_RETURN_IF_ERROR(tokens->Expect(")"));

  if (!tokens->TryConsume("partition")) {
    return Status::InvalidArgument(
        "CREATE STREAM requires a PARTITION BY clause");
  }
  RAILGUN_RETURN_IF_ERROR(tokens->Expect("by"));
  while (true) {
    RAILGUN_ASSIGN_OR_RETURN(Token partitioner,
                             tokens->ExpectIdentifier("partitioner field"));
    bool known = false;
    for (const auto& field : def.fields) {
      if (field.name == partitioner.raw) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("partitioner is not a declared field: " +
                                     partitioner.raw);
    }
    for (const auto& existing : def.partitioners) {
      if (existing == partitioner.raw) {
        return Status::InvalidArgument("duplicate partitioner: " +
                                       partitioner.raw);
      }
    }
    def.partitioners.push_back(partitioner.raw);
    if (!tokens->TryConsume(",")) break;
  }

  if (tokens->TryConsume("partitions")) {
    RAILGUN_ASSIGN_OR_RETURN(int64_t partitions,
                             tokens->ExpectInteger("partition count"));
    if (partitions < 1) {
      return Status::InvalidArgument("PARTITIONS must be at least 1");
    }
    def.partitions_per_topic = static_cast<int>(partitions);
  }

  if (!tokens->AtEnd()) {
    return Status::InvalidArgument("trailing tokens after CREATE STREAM: '" +
                                   tokens->Peek().raw + "'");
  }
  return def;
}

}  // namespace

StatusOr<StreamSchemaDef> ParseCreateStream(const std::string& statement) {
  Tokenizer tokens(statement);
  RAILGUN_RETURN_IF_ERROR(tokens.status());
  RAILGUN_RETURN_IF_ERROR(tokens.Expect("create"));
  return ParseCreateStreamBody(&tokens);
}

StatusOr<DdlStatement> ParseDdl(const std::string& statement) {
  Tokenizer tokens(statement);
  RAILGUN_RETURN_IF_ERROR(tokens.status());

  DdlStatement ddl;
  if (tokens.TryConsume("create")) {
    ddl.kind = DdlKind::kCreateStream;
    RAILGUN_ASSIGN_OR_RETURN(ddl.create_stream,
                             ParseCreateStreamBody(&tokens));
    return ddl;
  }
  if (tokens.TryConsume("add")) {
    if (tokens.TryConsume("metric")) {
      // The remainder is a plain SELECT statement; hand the unconsumed
      // suffix to the query parser so both grammars stay identical.
      if (tokens.Peek().text != "select") {
        return Status::InvalidArgument("expected SELECT after ADD METRIC");
      }
      ddl.kind = DdlKind::kAddMetric;
      RAILGUN_ASSIGN_OR_RETURN(
          ddl.metric, ParseQuery(statement.substr(tokens.NextTokenOffset())));
      return ddl;
    }
    if (tokens.Peek().text == "pipeline") {
      ddl.kind = DdlKind::kAddPipeline;
      RAILGUN_ASSIGN_OR_RETURN(ddl.pipeline, ParsePipeline(statement));
      return ddl;
    }
    return Status::InvalidArgument(
        "expected METRIC or PIPELINE after ADD, found '" +
        tokens.Peek().raw + "'");
  }
  return Status::InvalidArgument(
      "expected a DDL statement (CREATE STREAM, ADD METRIC or ADD "
      "PIPELINE), found '" +
      tokens.Peek().raw + "'");
}

}  // namespace railgun::query
