#include "query/pipeline.h"

#include <cctype>

#include "query/tokenizer.h"

namespace railgun::query {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kFilter:
      return "filter";
    case OpKind::kMap:
      return "map";
    case OpKind::kBy:
      return "by";
    case OpKind::kRate:
      return "rate";
    case OpKind::kWindowCount:
      return "window_count";
    case OpKind::kThreshold:
      return "threshold";
    case OpKind::kChanged:
      return "changed";
    case OpKind::kRouteToStream:
      return "route_to_stream";
  }
  return "unknown";
}

namespace {

StatusOr<OpSpec> ParseOp(Tokenizer* tokens) {
  RAILGUN_ASSIGN_OR_RETURN(Token name,
                           tokens->ExpectIdentifier("operator name"));
  OpSpec op;
  if (name.text == "filter") {
    op.kind = OpKind::kFilter;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("("));
    RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr,
                             ParseExprFrom(tokens));
    op.expr = std::shared_ptr<Expr>(std::move(expr));
    RAILGUN_RETURN_IF_ERROR(tokens->Expect(")"));
  } else if (name.text == "map") {
    op.kind = OpKind::kMap;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("("));
    RAILGUN_ASSIGN_OR_RETURN(Token field,
                             tokens->ExpectIdentifier("map target field"));
    op.field = field.raw;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("="));
    RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr,
                             ParseExprFrom(tokens));
    op.expr = std::shared_ptr<Expr>(std::move(expr));
    RAILGUN_RETURN_IF_ERROR(tokens->Expect(")"));
  } else if (name.text == "by") {
    op.kind = OpKind::kBy;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("("));
    while (true) {
      RAILGUN_ASSIGN_OR_RETURN(Token key,
                               tokens->ExpectIdentifier("by key field"));
      for (const auto& existing : op.keys) {
        if (existing == key.raw) {
          return Status::InvalidArgument("duplicate by key: " + key.raw);
        }
      }
      op.keys.push_back(key.raw);
      if (!tokens->TryConsume(",")) break;
    }
    RAILGUN_RETURN_IF_ERROR(tokens->Expect(")"));
  } else if (name.text == "rate" || name.text == "window_count") {
    op.kind = name.text == "rate" ? OpKind::kRate : OpKind::kWindowCount;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("("));
    RAILGUN_ASSIGN_OR_RETURN(
        int64_t count,
        tokens->ExpectInteger(name.text == "rate" ? "rate interval seconds"
                                                  : "window event count"));
    if (count < 1) {
      return Status::InvalidArgument(name.text + " count must be >= 1");
    }
    op.count = static_cast<uint64_t>(count);
    RAILGUN_RETURN_IF_ERROR(tokens->Expect(")"));
  } else if (name.text == "threshold") {
    op.kind = OpKind::kThreshold;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("("));
    RAILGUN_ASSIGN_OR_RETURN(Token field,
                             tokens->ExpectIdentifier("threshold field"));
    op.field = field.raw;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect(","));
    bool negative = tokens->TryConsume("-");
    const Token limit = tokens->Next();
    if (limit.type != TokenType::kNumber) {
      return Status::InvalidArgument("expected numeric threshold limit");
    }
    op.limit = negative ? -limit.number : limit.number;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect(")"));
  } else if (name.text == "changed") {
    op.kind = OpKind::kChanged;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("("));
    RAILGUN_ASSIGN_OR_RETURN(Token field,
                             tokens->ExpectIdentifier("changed field"));
    op.field = field.raw;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect(")"));
  } else if (name.text == "route_to_stream") {
    op.kind = OpKind::kRouteToStream;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect("("));
    RAILGUN_ASSIGN_OR_RETURN(Token target,
                             tokens->ExpectIdentifier("target stream"));
    op.target = target.raw;
    RAILGUN_RETURN_IF_ERROR(tokens->Expect(")"));
  } else {
    return Status::InvalidArgument("unknown pipeline operator: " + name.raw);
  }
  return op;
}

// Reconstructs each op's `raw` display form from the statement text
// spanning its tokens (trimmed).
std::string TrimmedSlice(const std::string& statement, size_t begin,
                         size_t end) {
  while (begin < end &&
         isspace(static_cast<unsigned char>(statement[begin]))) {
    ++begin;
  }
  while (end > begin &&
         isspace(static_cast<unsigned char>(statement[end - 1]))) {
    --end;
  }
  return statement.substr(begin, end - begin);
}

}  // namespace

StatusOr<PipelineSpec> ParsePipeline(const std::string& statement) {
  Tokenizer tokens(statement);
  RAILGUN_RETURN_IF_ERROR(tokens.status());

  PipelineSpec spec;
  spec.raw = statement;
  RAILGUN_RETURN_IF_ERROR(tokens.Expect("add"));
  RAILGUN_RETURN_IF_ERROR(tokens.Expect("pipeline"));
  RAILGUN_ASSIGN_OR_RETURN(Token name,
                           tokens.ExpectIdentifier("pipeline name"));
  spec.name = name.raw;
  RAILGUN_RETURN_IF_ERROR(tokens.Expect("on"));
  RAILGUN_ASSIGN_OR_RETURN(Token stream,
                           tokens.ExpectIdentifier("source stream"));
  spec.stream = stream.raw;

  if (!tokens.TryConsume("|")) {
    return Status::InvalidArgument(
        "ADD PIPELINE requires at least one '| operator(...)'");
  }
  while (true) {
    const size_t op_start = tokens.NextTokenOffset();
    RAILGUN_ASSIGN_OR_RETURN(OpSpec op, ParseOp(&tokens));
    op.raw = TrimmedSlice(statement, op_start, tokens.NextTokenOffset());
    spec.ops.push_back(std::move(op));
    if (!tokens.TryConsume("|")) break;
  }
  if (!tokens.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after pipeline: '" +
                                   tokens.Peek().raw + "'");
  }
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    if (spec.ops[i].kind == OpKind::kRouteToStream &&
        i + 1 != spec.ops.size()) {
      return Status::InvalidArgument(
          "route_to_stream must be the last operator");
    }
  }
  return spec;
}

bool IsSubscribeStatement(const std::string& statement) {
  Tokenizer tokens(statement);
  const Token& first = tokens.Peek();
  return first.type == TokenType::kIdentifier && first.text == "subscribe";
}

StatusOr<SubscribeSpec> ParseSubscribe(const std::string& statement) {
  Tokenizer tokens(statement);
  RAILGUN_RETURN_IF_ERROR(tokens.status());

  SubscribeSpec spec;
  spec.raw = statement;
  RAILGUN_RETURN_IF_ERROR(tokens.Expect("subscribe"));
  RAILGUN_RETURN_IF_ERROR(tokens.Expect("select"));

  if (tokens.TryConsume("*")) {
    // Raw-event tail: SELECT * FROM stream [WHERE expr].
    spec.raw_tail = true;
    RAILGUN_RETURN_IF_ERROR(tokens.Expect("from"));
    RAILGUN_ASSIGN_OR_RETURN(Token stream,
                             tokens.ExpectIdentifier("stream name"));
    spec.stream = stream.raw;
    if (tokens.TryConsume("where")) {
      RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> filter,
                               ParseExprFrom(&tokens));
      spec.filter = std::shared_ptr<Expr>(std::move(filter));
    }
    if (!tokens.AtEnd()) {
      return Status::InvalidArgument("trailing tokens after SUBSCRIBE: '" +
                                     tokens.Peek().raw + "'");
    }
    return spec;
  }

  // Metric tail: the remainder (from SELECT onwards) is an ad-hoc
  // query. OVER defaults to infinite so `SUBSCRIBE SELECT sum(x) FROM
  // s` reads naturally.
  Tokenizer rescan(statement);
  RAILGUN_RETURN_IF_ERROR(rescan.Expect("subscribe"));
  std::string select = statement.substr(rescan.NextTokenOffset());
  bool has_over = false;
  {
    Tokenizer probe(select);
    while (!probe.AtEnd()) {
      const Token t = probe.Next();
      if (t.type == TokenType::kIdentifier && t.text == "over") {
        has_over = true;
        break;
      }
    }
  }
  if (!has_over) select += " OVER infinite";
  RAILGUN_ASSIGN_OR_RETURN(spec.query, ParseQuery(select));
  spec.stream = spec.query.stream;
  spec.filter = spec.query.filter;
  return spec;
}

}  // namespace railgun::query
