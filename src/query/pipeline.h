// Textual surface for the stream-operator combinator layer (src/ops/)
// and for live subscriptions. Two statement forms are parsed here:
//
//   ADD PIPELINE big_spenders ON payments
//     | filter(amount > 100)
//     | by(cardId)
//     | threshold(amount, 500)
//     | route_to_stream(alerts)
//
//   SUBSCRIBE SELECT * FROM payments [WHERE amount > 100]
//   SUBSCRIBE SELECT sum(amount) FROM payments
//     [WHERE ...] [GROUP BY cardId] [OVER infinite | sliding N events]
//
// A pipeline is a '|'-separated chain of operators applied to every
// event of the source stream; the compiled form (ops::Pipeline) runs
// inside TaskProcessor next to the aggregation plan. A subscription is
// a live tail — raw events (SELECT *) or incremental metric updates —
// served by ops::SubscriptionHub.
#ifndef RAILGUN_QUERY_PIPELINE_H_
#define RAILGUN_QUERY_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/expr.h"
#include "query/query.h"

namespace railgun::query {

enum class OpKind : uint8_t {
  kFilter = 0,        // filter(expr): drop events where expr is false.
  kMap = 1,           // map(name = expr): add/overwrite a field.
  kBy = 2,            // by(f1, ...): split downstream state by key.
  kRate = 3,          // rate(N): emit once per N seconds per key, with
                      // an added `rate` field (events/sec observed).
  kWindowCount = 4,   // window_count(N): emit every Nth event per key,
                      // with an added `window_count` field.
  kThreshold = 5,     // threshold(field, limit): pass field > limit.
  kChanged = 6,       // changed(field): pass only value transitions.
  kRouteToStream = 7, // route_to_stream(target): terminal republish.
};

const char* OpKindName(OpKind kind);

struct OpSpec {
  OpKind kind = OpKind::kFilter;
  // filter: the predicate; map: the value expression. Shared so specs
  // stay copyable alongside QueryDef's filter.
  std::shared_ptr<Expr> expr;
  std::string field;              // map target, threshold/changed field.
  std::vector<std::string> keys;  // by.
  uint64_t count = 0;             // rate seconds / window_count events.
  double limit = 0;               // threshold limit.
  std::string target;             // route_to_stream target stream.
  std::string raw;                // `op(args)` spelling, for display.
};

struct PipelineSpec {
  std::string name;
  std::string stream;
  std::vector<OpSpec> ops;
  std::string raw;  // Full original statement (travels in StreamDef).
};

// Parses the ADD PIPELINE form. Validates: at least one operator, `by`
// before any stateful operator is optional but `route_to_stream` (if
// present) must be last, rate/window_count counts >= 1.
StatusOr<PipelineSpec> ParsePipeline(const std::string& statement);

struct SubscribeSpec {
  bool raw_tail = false;   // True for SELECT *.
  std::string stream;
  // Raw tails: optional WHERE filter. Shared: specs are copied around.
  std::shared_ptr<Expr> filter;
  // Metric tails: the parsed SELECT (aggs/filter/group_by/window).
  QueryDef query;
  std::string raw;
};

// Parses the SUBSCRIBE form. Metric tails default to OVER infinite when
// no window clause is given.
StatusOr<SubscribeSpec> ParseSubscribe(const std::string& statement);

// True when the statement starts with the SUBSCRIBE verb.
bool IsSubscribeStatement(const std::string& statement);

}  // namespace railgun::query

#endif  // RAILGUN_QUERY_PIPELINE_H_
