#include "query/tokenizer.h"

#include <cctype>
#include <cstdlib>

namespace railgun::query {

Tokenizer::Tokenizer(const std::string& input) { TokenizeAll(input); }

void Tokenizer::TokenizeAll(const std::string& input) {
  size_t i = 0;
  const size_t n = input.size();
  input_size_ = n;
  while (i < n) {
    const char c = input[i];
    if (isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_' || input[j] == '.')) {
        ++j;
      }
      tok.type = TokenType::kIdentifier;
      tok.raw = input.substr(i, j - i);
      for (char ch : tok.raw) {
        tok.text.push_back(static_cast<char>(tolower(ch)));
      }
      i = j;
    } else if (isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      while (j < n && (isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        ++j;
      }
      tok.type = TokenType::kNumber;
      tok.raw = input.substr(i, j - i);
      tok.text = tok.raw;
      tok.number = strtod(tok.raw.c_str(), nullptr);
      i = j;
    } else if (c == '\'' || c == '"') {
      const char quote = c;
      size_t j = i + 1;
      std::string value;
      while (j < n && input[j] != quote) {
        value.push_back(input[j]);
        ++j;
      }
      if (j >= n) {
        status_ = Status::InvalidArgument("unterminated string literal");
        return;
      }
      tok.type = TokenType::kString;
      tok.text = value;
      tok.raw = input.substr(i, j - i + 1);
      i = j + 1;
    } else {
      // Multi-character operators first.
      static const char* kTwoChar[] = {"==", "!=", "<=", ">=", "&&", "||"};
      std::string sym(1, c);
      if (i + 1 < n) {
        const std::string two = input.substr(i, 2);
        for (const char* op : kTwoChar) {
          if (two == op) {
            sym = two;
            break;
          }
        }
      }
      tok.type = TokenType::kSymbol;
      tok.text = sym;
      tok.raw = sym;
      i += sym.size();
    }
    tokens_.push_back(std::move(tok));
  }
}

const Token& Tokenizer::Peek(size_t lookahead) const {
  const size_t idx = pos_ + lookahead;
  if (idx >= tokens_.size()) return end_token_;
  return tokens_[idx];
}

Token Tokenizer::Next() {
  if (pos_ >= tokens_.size()) return end_token_;
  return tokens_[pos_++];
}

bool Tokenizer::AtEnd() const { return pos_ >= tokens_.size(); }

bool Tokenizer::TryConsume(const std::string& keyword) {
  const Token& tok = Peek();
  if (tok.type == TokenType::kEnd) return false;
  if (tok.text == keyword) {
    Next();
    return true;
  }
  return false;
}

Status Tokenizer::Expect(const std::string& keyword) {
  if (TryConsume(keyword)) return Status::OK();
  return Status::InvalidArgument("expected '" + keyword + "' but found '" +
                                 Peek().raw + "'");
}

StatusOr<Token> Tokenizer::ExpectIdentifier(const std::string& what) {
  if (Peek().type != TokenType::kIdentifier) {
    return Status::InvalidArgument("expected " + what + " but found '" +
                                   Peek().raw + "'");
  }
  return Next();
}

StatusOr<int64_t> Tokenizer::ExpectInteger(const std::string& what) {
  const Token& tok = Peek();
  if (tok.type != TokenType::kNumber || tok.number < 0 ||
      tok.number != static_cast<double>(static_cast<int64_t>(tok.number))) {
    return Status::InvalidArgument("expected " + what +
                                   " (a non-negative integer) but found '" +
                                   tok.raw + "'");
  }
  return static_cast<int64_t>(Next().number);
}

size_t Tokenizer::NextTokenOffset() const {
  if (pos_ >= tokens_.size()) return input_size_;
  return tokens_[pos_].offset;
}

}  // namespace railgun::query
