// Shared tokenizer for the query parser and expression language.
#ifndef RAILGUN_QUERY_TOKENIZER_H_
#define RAILGUN_QUERY_TOKENIZER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace railgun::query {

enum class TokenType : uint8_t {
  kIdentifier,  // foo, SELECT (keywords are identifiers; match by text)
  kNumber,      // 123, 4.5
  kString,      // 'abc'
  kSymbol,      // ( ) , * == != <= >= < > + - / and or not
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // Identifier/symbol text, lowercased for keywords.
  double number = 0;  // For kNumber.
  std::string raw;    // Original spelling.
  size_t offset = 0;  // Byte offset of the token in the input.
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& input);

  Status status() const { return status_; }

  const Token& Peek(size_t lookahead = 0) const;
  Token Next();
  bool AtEnd() const;

  // Consumes the next token if it is an identifier matching `keyword`
  // case-insensitively (or a symbol with that exact text).
  bool TryConsume(const std::string& keyword);
  // Like TryConsume but errors if absent.
  Status Expect(const std::string& keyword);

  // Consumes and returns the next token, which must be an identifier.
  // `what` names the expected construct for the error message.
  StatusOr<Token> ExpectIdentifier(const std::string& what);
  // Consumes the next token, which must be a non-negative integer
  // literal.
  StatusOr<int64_t> ExpectInteger(const std::string& what);

  // Byte offset into the original input where the next token starts
  // (input size when at end). Lets statement-level parsers hand the
  // unconsumed suffix to a sub-parser.
  size_t NextTokenOffset() const;

 private:
  void TokenizeAll(const std::string& input);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t input_size_ = 0;
  Status status_;
  Token end_token_;
};

}  // namespace railgun::query

#endif  // RAILGUN_QUERY_TOKENIZER_H_
