// Shared tokenizer for the query parser and expression language.
#ifndef RAILGUN_QUERY_TOKENIZER_H_
#define RAILGUN_QUERY_TOKENIZER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace railgun::query {

enum class TokenType : uint8_t {
  kIdentifier,  // foo, SELECT (keywords are identifiers; match by text)
  kNumber,      // 123, 4.5
  kString,      // 'abc'
  kSymbol,      // ( ) , * == != <= >= < > + - / and or not
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // Identifier/symbol text, lowercased for keywords.
  double number = 0;  // For kNumber.
  std::string raw;    // Original spelling.
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& input);

  Status status() const { return status_; }

  const Token& Peek(size_t lookahead = 0) const;
  Token Next();
  bool AtEnd() const;

  // Consumes the next token if it is an identifier matching `keyword`
  // case-insensitively (or a symbol with that exact text).
  bool TryConsume(const std::string& keyword);
  // Like TryConsume but errors if absent.
  Status Expect(const std::string& keyword);

 private:
  void TokenizeAll(const std::string& input);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Status status_;
  Token end_token_;
};

}  // namespace railgun::query

#endif  // RAILGUN_QUERY_TOKENIZER_H_
