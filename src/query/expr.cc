#include "query/expr.h"

#include <cmath>

#include "query/tokenizer.h"

namespace railgun::query {

using reservoir::Event;
using reservoir::FieldValue;
using reservoir::Schema;

std::unique_ptr<Expr> Expr::Literal(FieldValue value) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

std::unique_ptr<Expr> Expr::Field(std::string name) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kField;
  e->field_name_ = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(ExprOp op, std::unique_ptr<Expr> child) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->op_ = op;
  e->lhs_ = std::move(child);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(ExprOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

Status Expr::Bind(const Schema& schema) {
  if (op_ == ExprOp::kField) {
    field_index_ = schema.FieldIndex(field_name_);
    if (field_index_ < 0) {
      return Status::InvalidArgument("unknown field: " + field_name_);
    }
  }
  if (lhs_ != nullptr) RAILGUN_RETURN_IF_ERROR(lhs_->Bind(schema));
  if (rhs_ != nullptr) RAILGUN_RETURN_IF_ERROR(rhs_->Bind(schema));
  return Status::OK();
}

namespace {
bool Truthy(const FieldValue& v) {
  if (v.is_bool()) return v.as_bool();
  if (v.is_string()) return !v.as_string().empty();
  return v.ToNumber() != 0;
}

bool ValuesEqual(const FieldValue& a, const FieldValue& b) {
  if (a.is_string() && b.is_string()) return a.as_string() == b.as_string();
  if (a.is_string() || b.is_string()) return a.ToString() == b.ToString();
  return a.ToNumber() == b.ToNumber();
}

int CompareValues(const FieldValue& a, const FieldValue& b) {
  if (a.is_string() && b.is_string()) {
    return a.as_string().compare(b.as_string());
  }
  const double x = a.ToNumber();
  const double y = b.ToNumber();
  if (x < y) return -1;
  if (x > y) return +1;
  return 0;
}
}  // namespace

StatusOr<FieldValue> Expr::Eval(const Event& event) const {
  switch (op_) {
    case ExprOp::kLiteral:
      return literal_;
    case ExprOp::kField:
      if (field_index_ < 0 ||
          static_cast<size_t>(field_index_) >= event.values.size()) {
        return Status::InvalidArgument("unbound field: " + field_name_);
      }
      return event.values[field_index_];
    case ExprOp::kNot: {
      RAILGUN_ASSIGN_OR_RETURN(FieldValue v, lhs_->Eval(event));
      return FieldValue(!Truthy(v));
    }
    case ExprOp::kNeg: {
      RAILGUN_ASSIGN_OR_RETURN(FieldValue v, lhs_->Eval(event));
      return FieldValue(-v.ToNumber());
    }
    case ExprOp::kAnd: {
      RAILGUN_ASSIGN_OR_RETURN(FieldValue l, lhs_->Eval(event));
      if (!Truthy(l)) return FieldValue(false);
      RAILGUN_ASSIGN_OR_RETURN(FieldValue r, rhs_->Eval(event));
      return FieldValue(Truthy(r));
    }
    case ExprOp::kOr: {
      RAILGUN_ASSIGN_OR_RETURN(FieldValue l, lhs_->Eval(event));
      if (Truthy(l)) return FieldValue(true);
      RAILGUN_ASSIGN_OR_RETURN(FieldValue r, rhs_->Eval(event));
      return FieldValue(Truthy(r));
    }
    default:
      break;
  }

  RAILGUN_ASSIGN_OR_RETURN(FieldValue l, lhs_->Eval(event));
  RAILGUN_ASSIGN_OR_RETURN(FieldValue r, rhs_->Eval(event));
  switch (op_) {
    case ExprOp::kEq:
      return FieldValue(ValuesEqual(l, r));
    case ExprOp::kNe:
      return FieldValue(!ValuesEqual(l, r));
    case ExprOp::kLt:
      return FieldValue(CompareValues(l, r) < 0);
    case ExprOp::kLe:
      return FieldValue(CompareValues(l, r) <= 0);
    case ExprOp::kGt:
      return FieldValue(CompareValues(l, r) > 0);
    case ExprOp::kGe:
      return FieldValue(CompareValues(l, r) >= 0);
    case ExprOp::kAdd:
      return FieldValue(l.ToNumber() + r.ToNumber());
    case ExprOp::kSub:
      return FieldValue(l.ToNumber() - r.ToNumber());
    case ExprOp::kMul:
      return FieldValue(l.ToNumber() * r.ToNumber());
    case ExprOp::kDiv: {
      const double d = r.ToNumber();
      return FieldValue(d == 0 ? 0.0 : l.ToNumber() / d);
    }
    default:
      return Status::InvalidArgument("bad expression op");
  }
}

bool Expr::EvalBool(const Event& event) const {
  auto v = Eval(event);
  return v.ok() && Truthy(v.value());
}

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kLiteral:
      if (literal_.is_string()) return "'" + literal_.as_string() + "'";
      return literal_.ToString();
    case ExprOp::kField:
      return field_name_;
    case ExprOp::kNot:
      return "(not " + lhs_->ToString() + ")";
    case ExprOp::kNeg:
      return "(-" + lhs_->ToString() + ")";
    default:
      break;
  }
  const char* name = "?";
  switch (op_) {
    case ExprOp::kAnd: name = "and"; break;
    case ExprOp::kOr: name = "or"; break;
    case ExprOp::kEq: name = "=="; break;
    case ExprOp::kNe: name = "!="; break;
    case ExprOp::kLt: name = "<"; break;
    case ExprOp::kLe: name = "<="; break;
    case ExprOp::kGt: name = ">"; break;
    case ExprOp::kGe: name = ">="; break;
    case ExprOp::kAdd: name = "+"; break;
    case ExprOp::kSub: name = "-"; break;
    case ExprOp::kMul: name = "*"; break;
    case ExprOp::kDiv: name = "/"; break;
    default: break;
  }
  return "(" + lhs_->ToString() + " " + name + " " + rhs_->ToString() + ")";
}

// ---------------------------------------------------------------------
// Recursive-descent expression parser. Precedence (low to high):
//   or | and | not | comparison | additive | multiplicative | unary.

namespace {

class ExprParser {
 public:
  explicit ExprParser(Tokenizer* tokens) : tokens_(tokens) {}

  StatusOr<std::unique_ptr<Expr>> Parse() { return ParseOr(); }

 private:
  StatusOr<std::unique_ptr<Expr>> ParseOr() {
    RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (tokens_->TryConsume("or") || tokens_->TryConsume("||")) {
      RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = Expr::Binary(ExprOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseAnd() {
    RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNot());
    while (tokens_->TryConsume("and") || tokens_->TryConsume("&&")) {
      RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNot());
      lhs = Expr::Binary(ExprOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseNot() {
    if (tokens_->TryConsume("not") || tokens_->TryConsume("!")) {
      RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseNot());
      return Expr::Unary(ExprOp::kNot, std::move(child));
    }
    return ParseComparison();
  }

  StatusOr<std::unique_ptr<Expr>> ParseComparison() {
    RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
    struct OpMap {
      const char* text;
      ExprOp op;
    };
    static const OpMap kOps[] = {{"==", ExprOp::kEq}, {"=", ExprOp::kEq},
                                 {"!=", ExprOp::kNe}, {"<=", ExprOp::kLe},
                                 {">=", ExprOp::kGe}, {"<", ExprOp::kLt},
                                 {">", ExprOp::kGt}};
    for (const auto& entry : kOps) {
      if (tokens_->TryConsume(entry.text)) {
        RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
        return Expr::Binary(entry.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseAdditive() {
    RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMultiplicative());
    while (true) {
      if (tokens_->TryConsume("+")) {
        RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs,
                                 ParseMultiplicative());
        lhs = Expr::Binary(ExprOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (tokens_->TryConsume("-")) {
        RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs,
                                 ParseMultiplicative());
        lhs = Expr::Binary(ExprOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  StatusOr<std::unique_ptr<Expr>> ParseMultiplicative() {
    RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    while (true) {
      if (tokens_->TryConsume("*")) {
        RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
        lhs = Expr::Binary(ExprOp::kMul, std::move(lhs), std::move(rhs));
      } else if (tokens_->TryConsume("/")) {
        RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
        lhs = Expr::Binary(ExprOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  StatusOr<std::unique_ptr<Expr>> ParseUnary() {
    if (tokens_->TryConsume("-")) {
      RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseUnary());
      return Expr::Unary(ExprOp::kNeg, std::move(child));
    }
    return ParsePrimary();
  }

  StatusOr<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& tok = tokens_->Peek();
    switch (tok.type) {
      case TokenType::kNumber: {
        const Token t = tokens_->Next();
        if (t.raw.find('.') == std::string::npos) {
          return Expr::Literal(
              FieldValue(static_cast<int64_t>(t.number)));
        }
        return Expr::Literal(FieldValue(t.number));
      }
      case TokenType::kString: {
        const Token t = tokens_->Next();
        return Expr::Literal(FieldValue(t.text));
      }
      case TokenType::kIdentifier: {
        const Token t = tokens_->Next();
        if (t.text == "true") return Expr::Literal(FieldValue(true));
        if (t.text == "false") return Expr::Literal(FieldValue(false));
        return Expr::Field(t.raw);
      }
      case TokenType::kSymbol:
        if (tok.text == "(") {
          tokens_->Next();
          RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOr());
          RAILGUN_RETURN_IF_ERROR(tokens_->Expect(")"));
          return inner;
        }
        break;
      default:
        break;
    }
    return Status::InvalidArgument("unexpected token in expression: '" +
                                   tok.raw + "'");
  }

  Tokenizer* tokens_;
};

}  // namespace

StatusOr<std::unique_ptr<Expr>> ParseExpr(const std::string& text) {
  Tokenizer tokens(text);
  RAILGUN_RETURN_IF_ERROR(tokens.status());
  ExprParser parser(&tokens);
  RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, parser.Parse());
  if (!tokens.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after expression");
  }
  return expr;
}

// Exposed for the query parser (parses from an existing tokenizer).
StatusOr<std::unique_ptr<Expr>> ParseExprFrom(Tokenizer* tokens) {
  ExprParser parser(tokens);
  return parser.Parse();
}

}  // namespace railgun::query
