// Streaming aggregators (paper Fig. 4 / §4.1.3). Each aggregator updates
// a serialized state blob on event entry and expiry, exactly mirroring
// the paper's state layouts: sum/count keep a single value, avg a
// (sum, count) pair, stdDev the Welford triple, max/min a monotonic
// deque, and countDistinct per-value counts in an auxiliary column
// family of the state store.
#ifndef RAILGUN_AGG_AGGREGATOR_H_
#define RAILGUN_AGG_AGGREGATOR_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "reservoir/event.h"
#include "storage/db.h"

namespace railgun::agg {

enum class AggKind : uint8_t {
  kCount = 0,
  kSum = 1,
  kAvg = 2,
  kStdDev = 3,
  kMax = 4,
  kMin = 5,
  kLast = 6,
  kPrev = 7,
  kCountDistinct = 8,
};

// Parses "count", "sum", ... (case-insensitive).
StatusOr<AggKind> ParseAggKind(const std::string& name);
const char* AggKindName(AggKind kind);

// Access to auxiliary storage for aggregators that need it
// (countDistinct keeps per-value counts in a dedicated column family).
struct AggContext {
  storage::DB* db = nullptr;
  uint32_t aux_cf = 0;
  // Unique prefix for this (metric, entity) pair's auxiliary keys.
  std::string aux_key_prefix;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  static std::unique_ptr<Aggregator> Create(AggKind kind);

  // Applies an entering value. `event` supplies ordering metadata
  // (offset) needed by deque-based aggregators.
  virtual Status Enter(const reservoir::FieldValue& value,
                       const reservoir::Event& event, std::string* state,
                       AggContext* ctx) = 0;

  // Applies an expiring value.
  virtual Status Expire(const reservoir::FieldValue& value,
                        const reservoir::Event& event, std::string* state,
                        AggContext* ctx) = 0;

  // Columnar fast path: applies `n` entering values in one call, with
  // `offsets[i]` supplying the ordering metadata Enter() reads from the
  // event. Equivalent to n scalar Enter() calls; numeric aggregators
  // override with a parse-once / tight-loop / store-once implementation
  // so a batched caller pays one state (de)serialization per run instead
  // of one per event. The default is the scalar loop.
  virtual Status EnterColumn(const double* values, const uint64_t* offsets,
                             size_t n, std::string* state, AggContext* ctx);

  // Columnar expiry, mirror of EnterColumn.
  virtual Status ExpireColumn(const double* values, const uint64_t* offsets,
                              size_t n, std::string* state, AggContext* ctx);

  // Produces the current aggregation result from the state.
  virtual StatusOr<reservoir::FieldValue> Result(
      const std::string& state) const = 0;
};

}  // namespace railgun::agg

#endif  // RAILGUN_AGG_AGGREGATOR_H_
