#include "agg/aggregator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <deque>

#include "common/coding.h"

namespace railgun::agg {

using reservoir::Event;
using reservoir::FieldValue;

StatusOr<AggKind> ParseAggKind(const std::string& name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(tolower(c)));
  if (lower == "count") return AggKind::kCount;
  if (lower == "sum") return AggKind::kSum;
  if (lower == "avg") return AggKind::kAvg;
  if (lower == "stddev") return AggKind::kStdDev;
  if (lower == "max") return AggKind::kMax;
  if (lower == "min") return AggKind::kMin;
  if (lower == "last") return AggKind::kLast;
  if (lower == "prev") return AggKind::kPrev;
  if (lower == "countdistinct") return AggKind::kCountDistinct;
  return Status::InvalidArgument("unknown aggregation: " + name);
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount: return "count";
    case AggKind::kSum: return "sum";
    case AggKind::kAvg: return "avg";
    case AggKind::kStdDev: return "stdDev";
    case AggKind::kMax: return "max";
    case AggKind::kMin: return "min";
    case AggKind::kLast: return "last";
    case AggKind::kPrev: return "prev";
    case AggKind::kCountDistinct: return "countDistinct";
  }
  return "?";
}

Status Aggregator::EnterColumn(const double* values, const uint64_t* offsets,
                               size_t n, std::string* state,
                               AggContext* ctx) {
  Event event;
  for (size_t i = 0; i < n; ++i) {
    event.offset = offsets[i];
    RAILGUN_RETURN_IF_ERROR(Enter(FieldValue(values[i]), event, state, ctx));
  }
  return Status::OK();
}

Status Aggregator::ExpireColumn(const double* values, const uint64_t* offsets,
                                size_t n, std::string* state,
                                AggContext* ctx) {
  Event event;
  for (size_t i = 0; i < n; ++i) {
    event.offset = offsets[i];
    RAILGUN_RETURN_IF_ERROR(Expire(FieldValue(values[i]), event, state, ctx));
  }
  return Status::OK();
}

namespace {

// -------------------------------------------------------- count
class CountAggregator : public Aggregator {
 public:
  Status Enter(const FieldValue&, const Event&, std::string* state,
               AggContext*) override {
    return Bump(state, +1);
  }
  Status Expire(const FieldValue&, const Event&, std::string* state,
                AggContext*) override {
    return Bump(state, -1);
  }
  Status EnterColumn(const double*, const uint64_t*, size_t n,
                     std::string* state, AggContext*) override {
    return Bump(state, static_cast<int64_t>(n));
  }
  Status ExpireColumn(const double*, const uint64_t*, size_t n,
                      std::string* state, AggContext*) override {
    return Bump(state, -static_cast<int64_t>(n));
  }
  StatusOr<FieldValue> Result(const std::string& state) const override {
    int64_t n = 0;
    if (!state.empty()) {
      Slice in(state);
      if (!GetVarsint64(&in, &n)) return Status::Corruption("count state");
    }
    return FieldValue(n);
  }

 private:
  static Status Bump(std::string* state, int64_t delta) {
    int64_t n = 0;
    if (!state->empty()) {
      Slice in(*state);
      if (!GetVarsint64(&in, &n)) return Status::Corruption("count state");
    }
    state->clear();
    PutVarsint64(state, n + delta);
    return Status::OK();
  }
};

// -------------------------------------------------------- sum
class SumAggregator : public Aggregator {
 public:
  Status Enter(const FieldValue& v, const Event&, std::string* state,
               AggContext*) override {
    return Bump(state, v.ToNumber());
  }
  Status Expire(const FieldValue& v, const Event&, std::string* state,
                AggContext*) override {
    return Bump(state, -v.ToNumber());
  }
  Status EnterColumn(const double* values, const uint64_t*, size_t n,
                     std::string* state, AggContext*) override {
    return Bump(state, ColumnSum(values, n));
  }
  Status ExpireColumn(const double* values, const uint64_t*, size_t n,
                      std::string* state, AggContext*) override {
    return Bump(state, -ColumnSum(values, n));
  }
  StatusOr<FieldValue> Result(const std::string& state) const override {
    double sum = 0;
    if (!state.empty()) {
      Slice in(state);
      if (!GetDouble(&in, &sum)) return Status::Corruption("sum state");
    }
    return FieldValue(sum);
  }

 private:
  static double ColumnSum(const double* values, size_t n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) sum += values[i];
    return sum;
  }
  static Status Bump(std::string* state, double delta) {
    double sum = 0;
    if (!state->empty()) {
      Slice in(*state);
      if (!GetDouble(&in, &sum)) return Status::Corruption("sum state");
    }
    state->clear();
    PutDouble(state, sum + delta);
    return Status::OK();
  }
};

// -------------------------------------------------------- avg
class AvgAggregator : public Aggregator {
 public:
  Status Enter(const FieldValue& v, const Event&, std::string* state,
               AggContext*) override {
    return Bump(state, v.ToNumber(), +1);
  }
  Status Expire(const FieldValue& v, const Event&, std::string* state,
                AggContext*) override {
    return Bump(state, -v.ToNumber(), -1);
  }
  Status EnterColumn(const double* values, const uint64_t*, size_t n,
                     std::string* state, AggContext*) override {
    double acc = 0;
    for (size_t i = 0; i < n; ++i) acc += values[i];
    return Bump(state, acc, static_cast<int64_t>(n));
  }
  Status ExpireColumn(const double* values, const uint64_t*, size_t n,
                      std::string* state, AggContext*) override {
    double acc = 0;
    for (size_t i = 0; i < n; ++i) acc += values[i];
    return Bump(state, -acc, -static_cast<int64_t>(n));
  }
  StatusOr<FieldValue> Result(const std::string& state) const override {
    double sum = 0;
    int64_t n = 0;
    RAILGUN_RETURN_IF_ERROR(Parse(state, &sum, &n));
    return FieldValue(n == 0 ? 0.0 : sum / static_cast<double>(n));
  }

 private:
  static Status Parse(const std::string& state, double* sum, int64_t* n) {
    if (state.empty()) {
      *sum = 0;
      *n = 0;
      return Status::OK();
    }
    Slice in(state);
    if (!GetDouble(&in, sum) || !GetVarsint64(&in, n)) {
      return Status::Corruption("avg state");
    }
    return Status::OK();
  }
  static Status Bump(std::string* state, double dsum, int64_t dn) {
    double sum;
    int64_t n;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &sum, &n));
    state->clear();
    PutDouble(state, sum + dsum);
    PutVarsint64(state, n + dn);
    return Status::OK();
  }
};

// -------------------------------------------------------- stdDev
// Welford's online algorithm (paper cites [50]); expiry uses the inverse
// update, which is numerically acceptable for the window sizes involved.
class StdDevAggregator : public Aggregator {
 public:
  Status Enter(const FieldValue& v, const Event&, std::string* state,
               AggContext*) override {
    int64_t n;
    double mean, m2;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &n, &mean, &m2));
    const double x = v.ToNumber();
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
    Store(state, n, mean, m2);
    return Status::OK();
  }
  Status Expire(const FieldValue& v, const Event&, std::string* state,
                AggContext*) override {
    int64_t n;
    double mean, m2;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &n, &mean, &m2));
    const double x = v.ToNumber();
    if (n <= 1) {
      Store(state, 0, 0, 0);
      return Status::OK();
    }
    // Inverse Welford step.
    const double mean_prev =
        (static_cast<double>(n) * mean - x) / static_cast<double>(n - 1);
    m2 -= (x - mean) * (x - mean_prev);
    if (m2 < 0) m2 = 0;  // Guard against rounding drift.
    Store(state, n - 1, mean_prev, m2);
    return Status::OK();
  }
  // Welford updates run entirely in registers; the state round-trips
  // through the blob once per run instead of once per event.
  Status EnterColumn(const double* values, const uint64_t*, size_t count,
                     std::string* state, AggContext*) override {
    int64_t n;
    double mean, m2;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &n, &mean, &m2));
    for (size_t i = 0; i < count; ++i) {
      const double x = values[i];
      ++n;
      const double delta = x - mean;
      mean += delta / static_cast<double>(n);
      m2 += delta * (x - mean);
    }
    Store(state, n, mean, m2);
    return Status::OK();
  }
  Status ExpireColumn(const double* values, const uint64_t*, size_t count,
                      std::string* state, AggContext*) override {
    int64_t n;
    double mean, m2;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &n, &mean, &m2));
    for (size_t i = 0; i < count; ++i) {
      const double x = values[i];
      if (n <= 1) {
        n = 0;
        mean = 0;
        m2 = 0;
        continue;
      }
      const double mean_prev =
          (static_cast<double>(n) * mean - x) / static_cast<double>(n - 1);
      m2 -= (x - mean) * (x - mean_prev);
      if (m2 < 0) m2 = 0;
      mean = mean_prev;
      --n;
    }
    Store(state, n, mean, m2);
    return Status::OK();
  }
  StatusOr<FieldValue> Result(const std::string& state) const override {
    int64_t n;
    double mean, m2;
    RAILGUN_RETURN_IF_ERROR(Parse(state, &n, &mean, &m2));
    if (n < 2) return FieldValue(0.0);
    return FieldValue(std::sqrt(m2 / static_cast<double>(n - 1)));
  }

 private:
  static Status Parse(const std::string& state, int64_t* n, double* mean,
                      double* m2) {
    if (state.empty()) {
      *n = 0;
      *mean = 0;
      *m2 = 0;
      return Status::OK();
    }
    Slice in(state);
    if (!GetVarsint64(&in, n) || !GetDouble(&in, mean) ||
        !GetDouble(&in, m2)) {
      return Status::Corruption("stddev state");
    }
    return Status::OK();
  }
  static void Store(std::string* state, int64_t n, double mean, double m2) {
    state->clear();
    PutVarsint64(state, n);
    PutDouble(state, mean);
    PutDouble(state, m2);
  }
};

// -------------------------------------------------------- max / min
// Monotonic deque of (value, event offset): O(1) amortized enter/expire,
// exact under expiry (paper stores "a deque structure [30]").
class ExtremumAggregator : public Aggregator {
 public:
  explicit ExtremumAggregator(bool is_max) : is_max_(is_max) {}

  Status Enter(const FieldValue& v, const Event& e, std::string* state,
               AggContext*) override {
    std::deque<Entry> dq;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &dq));
    const double x = v.ToNumber();
    while (!dq.empty() && Dominates(x, dq.back().value)) dq.pop_back();
    dq.push_back({x, e.offset});
    Store(state, dq);
    return Status::OK();
  }
  Status Expire(const FieldValue&, const Event& e, std::string* state,
                AggContext*) override {
    std::deque<Entry> dq;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &dq));
    if (!dq.empty() && dq.front().offset == e.offset) dq.pop_front();
    Store(state, dq);
    return Status::OK();
  }
  // Parse the deque once, run every push/pop against it in memory,
  // serialize once.
  Status EnterColumn(const double* values, const uint64_t* offsets,
                     size_t n, std::string* state, AggContext*) override {
    std::deque<Entry> dq;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &dq));
    for (size_t i = 0; i < n; ++i) {
      const double x = values[i];
      while (!dq.empty() && Dominates(x, dq.back().value)) dq.pop_back();
      dq.push_back({x, offsets[i]});
    }
    Store(state, dq);
    return Status::OK();
  }
  Status ExpireColumn(const double*, const uint64_t* offsets, size_t n,
                      std::string* state, AggContext*) override {
    std::deque<Entry> dq;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &dq));
    for (size_t i = 0; i < n; ++i) {
      if (!dq.empty() && dq.front().offset == offsets[i]) dq.pop_front();
    }
    Store(state, dq);
    return Status::OK();
  }
  StatusOr<FieldValue> Result(const std::string& state) const override {
    std::deque<Entry> dq;
    RAILGUN_RETURN_IF_ERROR(Parse(state, &dq));
    if (dq.empty()) return FieldValue(0.0);
    return FieldValue(dq.front().value);
  }

 private:
  struct Entry {
    double value;
    uint64_t offset;
  };
  bool Dominates(double incoming, double resident) const {
    return is_max_ ? incoming >= resident : incoming <= resident;
  }
  static Status Parse(const std::string& state, std::deque<Entry>* dq) {
    dq->clear();
    if (state.empty()) return Status::OK();
    Slice in(state);
    uint32_t n;
    if (!GetVarint32(&in, &n)) return Status::Corruption("deque state");
    for (uint32_t i = 0; i < n; ++i) {
      Entry e;
      uint64_t off;
      if (!GetDouble(&in, &e.value) || !GetVarint64(&in, &off)) {
        return Status::Corruption("deque state");
      }
      e.offset = off;
      dq->push_back(e);
    }
    return Status::OK();
  }
  static void Store(std::string* state, const std::deque<Entry>& dq) {
    state->clear();
    PutVarint32(state, static_cast<uint32_t>(dq.size()));
    for (const auto& e : dq) {
      PutDouble(state, e.value);
      PutVarint64(state, e.offset);
    }
  }
  const bool is_max_;
};

// -------------------------------------------------------- last / prev
class LastPrevAggregator : public Aggregator {
 public:
  explicit LastPrevAggregator(bool prev) : prev_(prev) {}

  Status Enter(const FieldValue& v, const Event&, std::string* state,
               AggContext*) override {
    double last = 0, prev = 0;
    uint32_t n = 0;
    RAILGUN_RETURN_IF_ERROR(Parse(*state, &n, &last, &prev));
    prev = last;
    last = v.ToNumber();
    n = std::min<uint32_t>(n + 1, 2);
    state->clear();
    PutVarint32(state, n);
    PutDouble(state, last);
    PutDouble(state, prev);
    return Status::OK();
  }
  // `last`/`prev` track arrival recency, not window membership.
  Status Expire(const FieldValue&, const Event&, std::string*,
                AggContext*) override {
    return Status::OK();
  }
  StatusOr<FieldValue> Result(const std::string& state) const override {
    double last = 0, prev = 0;
    uint32_t n = 0;
    RAILGUN_RETURN_IF_ERROR(Parse(state, &n, &last, &prev));
    if (prev_) return FieldValue(n >= 2 ? prev : 0.0);
    return FieldValue(n >= 1 ? last : 0.0);
  }

 private:
  static Status Parse(const std::string& state, uint32_t* n, double* last,
                      double* prev) {
    if (state.empty()) {
      *n = 0;
      *last = *prev = 0;
      return Status::OK();
    }
    Slice in(state);
    if (!GetVarint32(&in, n) || !GetDouble(&in, last) ||
        !GetDouble(&in, prev)) {
      return Status::Corruption("last/prev state");
    }
    return Status::OK();
  }
  const bool prev_;
};

// -------------------------------------------------------- countDistinct
// Distinct count with per-value reference counts in the auxiliary column
// family (paper: "the countDistinct uses an auxiliary column-family in
// RocksDB to hold the counts").
class CountDistinctAggregator : public Aggregator {
 public:
  Status Enter(const FieldValue& v, const Event&, std::string* state,
               AggContext* ctx) override {
    if (ctx == nullptr || ctx->db == nullptr) {
      return Status::InvalidArgument("countDistinct needs an AggContext");
    }
    const std::string aux_key = ctx->aux_key_prefix + v.ToString();
    int64_t refs = 0;
    std::string stored;
    Status s = ctx->db->Get(ctx->aux_cf, aux_key, &stored);
    if (s.ok()) {
      Slice in(stored);
      if (!GetVarsint64(&in, &refs)) return Status::Corruption("aux state");
    } else if (!s.IsNotFound()) {
      return s;
    }
    ++refs;
    stored.clear();
    PutVarsint64(&stored, refs);
    RAILGUN_RETURN_IF_ERROR(ctx->db->Put(ctx->aux_cf, aux_key, stored));
    if (refs == 1) return BumpDistinct(state, +1);
    return Status::OK();
  }
  Status Expire(const FieldValue& v, const Event&, std::string* state,
                AggContext* ctx) override {
    if (ctx == nullptr || ctx->db == nullptr) {
      return Status::InvalidArgument("countDistinct needs an AggContext");
    }
    const std::string aux_key = ctx->aux_key_prefix + v.ToString();
    std::string stored;
    Status s = ctx->db->Get(ctx->aux_cf, aux_key, &stored);
    if (s.IsNotFound()) return Status::OK();  // Never entered (reset?).
    RAILGUN_RETURN_IF_ERROR(s);
    int64_t refs = 0;
    Slice in(stored);
    if (!GetVarsint64(&in, &refs)) return Status::Corruption("aux state");
    --refs;
    if (refs <= 0) {
      RAILGUN_RETURN_IF_ERROR(ctx->db->Delete(ctx->aux_cf, aux_key));
      return BumpDistinct(state, -1);
    }
    stored.clear();
    PutVarsint64(&stored, refs);
    return ctx->db->Put(ctx->aux_cf, aux_key, stored);
  }
  StatusOr<FieldValue> Result(const std::string& state) const override {
    int64_t n = 0;
    if (!state.empty()) {
      Slice in(state);
      if (!GetVarsint64(&in, &n)) {
        return Status::Corruption("countDistinct state");
      }
    }
    return FieldValue(n);
  }

 private:
  static Status BumpDistinct(std::string* state, int64_t delta) {
    int64_t n = 0;
    if (!state->empty()) {
      Slice in(*state);
      if (!GetVarsint64(&in, &n)) {
        return Status::Corruption("countDistinct state");
      }
    }
    state->clear();
    PutVarsint64(state, n + delta);
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Aggregator> Aggregator::Create(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return std::make_unique<CountAggregator>();
    case AggKind::kSum:
      return std::make_unique<SumAggregator>();
    case AggKind::kAvg:
      return std::make_unique<AvgAggregator>();
    case AggKind::kStdDev:
      return std::make_unique<StdDevAggregator>();
    case AggKind::kMax:
      return std::make_unique<ExtremumAggregator>(/*is_max=*/true);
    case AggKind::kMin:
      return std::make_unique<ExtremumAggregator>(/*is_max=*/false);
    case AggKind::kLast:
      return std::make_unique<LastPrevAggregator>(/*prev=*/false);
    case AggKind::kPrev:
      return std::make_unique<LastPrevAggregator>(/*prev=*/true);
    case AggKind::kCountDistinct:
      return std::make_unique<CountDistinctAggregator>();
  }
  return nullptr;
}

}  // namespace railgun::agg
