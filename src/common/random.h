// Deterministic pseudo-random generators for workload synthesis:
// xorshift128+ core, uniform helpers, and a Zipf sampler used to model
// real-world card/merchant cardinality skew (paper §5).
#ifndef RAILGUN_COMMON_RANDOM_H_
#define RAILGUN_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace railgun {

class Random64 {
 public:
  explicit Random64(uint64_t seed = 0x2545F4914F6CDD1Dull);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability num/den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Exponentially distributed with the given mean.
  double NextExponential(double mean);

  // Normally distributed (Box-Muller).
  double NextGaussian(double mean, double stddev);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

// Zipf-distributed sampler over [0, n) with exponent theta, using the
// precomputed-CDF + binary-search method (exact, O(log n) per sample).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Random64 rng_;
  std::vector<double> cdf_;
};

}  // namespace railgun

#endif  // RAILGUN_COMMON_RANDOM_H_
