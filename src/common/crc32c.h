// CRC32C (Castagnoli) checksums, used to verify WAL records, SSTable
// blocks and reservoir chunks on read.
#ifndef RAILGUN_COMMON_CRC32C_H_
#define RAILGUN_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace railgun::crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the
// crc32c of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

// Masking makes it safe to store a CRC of a string that itself contains
// embedded CRCs (same scheme as LevelDB).
inline uint32_t Mask(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8ul;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8ul;
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace railgun::crc32c

#endif  // RAILGUN_COMMON_CRC32C_H_
