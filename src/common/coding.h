// Binary encoding primitives: little-endian fixed-width integers and
// LEB128 varints, shared by the WAL, SSTable and reservoir chunk formats.
#ifndef RAILGUN_COMMON_CODING_H_
#define RAILGUN_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace railgun {

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // Little-endian hosts only.
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
void PutDouble(std::string* dst, double value);

// Zig-zag encoding so small negative numbers stay small on the wire.
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}
void PutVarsint64(std::string* dst, int64_t value);

// Decoders return true on success and advance *input past the value.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetVarsint64(Slice* input, int64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetDouble(Slice* input, double* value);

// Lower-level varint pointer interface: returns nullptr on parse failure.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v);

int VarintLength(uint64_t v);

}  // namespace railgun

#endif  // RAILGUN_COMMON_CODING_H_
