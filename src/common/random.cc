#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace railgun {

Random64::Random64(uint64_t seed) {
  // Split the seed into two non-zero state words.
  s0_ = seed ^ 0x9E3779B97F4A7C15ull;
  s1_ = (seed << 1) | 1;
  for (int i = 0; i < 4; ++i) Next();  // Warm up.
}

uint64_t Random64::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

double Random64::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Random64::NextExponential(double mean) {
  double u = NextDouble();
  if (u <= 0) u = 1e-12;
  return -mean * std::log(u);
}

double Random64::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) u1 = 1e-12;
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), rng_(seed), cdf_(n) {
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace railgun
