// Bump-pointer allocator. Originally backing the memtable skip list
// (all memory released at once when the memtable is dropped after a
// flush); promoted to common/ so the message layer can pool receive
// buffers on it without a storage dependency.
#ifndef RAILGUN_COMMON_ARENA_H_
#define RAILGUN_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace railgun {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes);
  char* AllocateAligned(size_t bytes);

  // Total memory footprint of the arena (used for flush triggers).
  size_t MemoryUsage() const { return memory_usage_; }

  // Discards all allocations but keeps the single largest block for
  // reuse, so a pooled owner (msg::BufferPool) reaches a steady state
  // where repeated fill/drain cycles perform no heap allocation at all.
  // Every pointer previously handed out is invalidated.
  void Reset();

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };
  std::vector<Block> blocks_;
  size_t memory_usage_ = 0;
};

}  // namespace railgun

#endif  // RAILGUN_COMMON_ARENA_H_
