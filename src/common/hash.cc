#include "common/hash.h"

#include <cstring>

namespace railgun {

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  constexpr uint64_t kMul = 0x9ddfea08eb382d69ull;
  uint64_t h = seed ^ (n * kMul);
  const char* p = data;
  const char* end = data + n;
  while (p + 8 <= end) {
    uint64_t lane;
    memcpy(&lane, p, 8);
    h = MixHash64(h ^ lane) * kMul;
    p += 8;
  }
  uint64_t tail = 0;
  int shift = 0;
  while (p < end) {
    tail |= static_cast<uint64_t>(static_cast<unsigned char>(*p)) << shift;
    shift += 8;
    ++p;
  }
  h = MixHash64(h ^ tail);
  return h;
}

}  // namespace railgun
