// Minimal assertion/logging macros. CHECK failures abort: they indicate
// invariant violations, never expected runtime errors (those use Status).
#ifndef RAILGUN_COMMON_LOGGING_H_
#define RAILGUN_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define RAILGUN_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
              #cond);                                                    \
      abort();                                                           \
    }                                                                    \
  } while (0)

#define RAILGUN_CHECK_OK(expr)                                             \
  do {                                                                     \
    const ::railgun::Status _st = (expr);                                  \
    if (!_st.ok()) {                                                       \
      fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,          \
              __LINE__, _st.ToString().c_str());                           \
      abort();                                                             \
    }                                                                      \
  } while (0)

#endif  // RAILGUN_COMMON_LOGGING_H_
