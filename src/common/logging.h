// Structured leveled logging plus the assertion macros. CHECK failures
// abort: they indicate invariant violations, never expected runtime
// errors (those use Status) — but they emit through the log sink first,
// so crash logs carry component and trace id like every other line.
//
// RAILGUN_LOG(kWarn, "component", "fmt", ...) is the one logging entry
// point: printf-formatted, rate-limited per call site (a hot loop that
// starts failing cannot flood stderr — suppressed lines are counted and
// reported on the next emitted one), and trace-aware (when the calling
// thread carries a trace id, the line is stamped with it so logs and
// span exports correlate). The sink is pluggable per process; the
// default writes one line to stderr per message.
//
// Layering: this header sits at the very bottom of common/ — it uses
// only <atomic> and the C library, never railgun::Mutex (mutex.cc logs
// through it) or Clock.
#ifndef RAILGUN_COMMON_LOGGING_H_
#define RAILGUN_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace railgun {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// "DEBUG" / "INFO" / "WARN" / "ERROR".
const char* LogLevelName(LogLevel level);

// One fully formatted message (no trailing newline). Sinks must be
// callable from any thread and must not call back into RAILGUN_LOG.
using LogSink = void (*)(LogLevel level, const char* component,
                         const char* message, void* arg);

// Replaces the process-wide sink (nullptr restores the stderr default).
// Typically installed once at startup, before threads spin up.
void SetLogSink(LogSink sink, void* arg);

// Lines below this level are compiled in but skipped at runtime. The
// initial value honors RAILGUN_LOG_LEVEL (debug|info|warn|error),
// defaulting to kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

// Thread-local trace correlation: the tracer stamps the id of the
// context it is working under; (0, 0) means none. Lives here (not in
// trace/) so the formatter can read it without a layering cycle.
void SetLogTraceId(uint64_t hi, uint64_t lo);
void GetLogTraceId(uint64_t* hi, uint64_t* lo);

namespace logging_internal {

// Per-call-site limiter state: a one-second window with a fixed emit
// budget. All-atomic — sites are touched from hot paths.
struct RateLimitState {
  std::atomic<int64_t> window_start_us{0};
  std::atomic<uint32_t> emitted{0};
  std::atomic<uint64_t> suppressed{0};
};

// True when this call may emit; *suppressed receives the number of
// lines this site swallowed since it last emitted.
bool Admit(RateLimitState* state, uint64_t* suppressed);

#if defined(__GNUC__) || defined(__clang__)
#define RAILGUN_PRINTF_ATTR(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define RAILGUN_PRINTF_ATTR(fmt_idx, arg_idx)
#endif

// Formats and dispatches one line to the installed sink.
void Log(LogLevel level, const char* component, const char* file, int line,
         uint64_t suppressed, const char* fmt, ...)
    RAILGUN_PRINTF_ATTR(6, 7);

// Emits `what` at kError through the sink, then aborts.
[[noreturn]] void CheckFail(const char* file, int line, const char* what);

}  // namespace logging_internal
}  // namespace railgun

// Usage: RAILGUN_LOG(kWarn, "frontend", "publish failed: %s", msg).
// `level` is a bare LogLevel enumerator name (kDebug..kError).
#define RAILGUN_LOG(level, component, ...)                                  \
  do {                                                                      \
    if (static_cast<int>(::railgun::LogLevel::level) >=                     \
        static_cast<int>(::railgun::MinLogLevel())) {                       \
      static ::railgun::logging_internal::RateLimitState _railgun_log_rl;   \
      uint64_t _railgun_log_suppressed = 0;                                 \
      if (::railgun::logging_internal::Admit(&_railgun_log_rl,              \
                                             &_railgun_log_suppressed)) {   \
        ::railgun::logging_internal::Log(::railgun::LogLevel::level,        \
                                         (component), __FILE__, __LINE__,   \
                                         _railgun_log_suppressed,           \
                                         __VA_ARGS__);                      \
      }                                                                     \
    }                                                                       \
  } while (0)

#define RAILGUN_CHECK(cond)                                          \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::railgun::logging_internal::CheckFail(__FILE__, __LINE__,     \
                                             "CHECK failed: " #cond); \
    }                                                                \
  } while (0)

#define RAILGUN_CHECK_OK(expr)                                          \
  do {                                                                  \
    const ::railgun::Status _st = (expr);                               \
    if (!_st.ok()) {                                                    \
      ::railgun::logging_internal::CheckFail(                           \
          __FILE__, __LINE__,                                           \
          ("CHECK_OK failed: " + _st.ToString()).c_str());              \
    }                                                                   \
  } while (0)

#endif  // RAILGUN_COMMON_LOGGING_H_
