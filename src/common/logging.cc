#include "common/logging.h"

#include <chrono>
#include <cstdarg>
#include <cstring>

namespace railgun {

namespace {

// Lines per second each call site may emit before suppression kicks in.
// Generous for operational messages, tight enough that a per-event
// failure loop cannot saturate the sink.
constexpr uint32_t kMaxLinesPerSecondPerSite = 32;

int64_t CoarseNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

LogLevel LevelFromEnv() {
  const char* env = std::getenv("RAILGUN_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

void StderrSink(LogLevel level, const char* component, const char* message,
                void* /*arg*/) {
  // One fprintf per line: stdio's internal lock keeps concurrent lines
  // whole without a railgun::Mutex (mutex.cc logs through this path).
  std::fprintf(stderr, "[railgun %s] %s: %s\n", LogLevelName(level),
               component, message);
}

struct SinkSlot {
  LogSink sink;
  void* arg;
};

std::atomic<LogSink> g_sink{&StderrSink};
std::atomic<void*> g_sink_arg{nullptr};
std::atomic<int> g_min_level{static_cast<int>(LevelFromEnv())};

thread_local uint64_t t_trace_hi = 0;
thread_local uint64_t t_trace_lo = 0;

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogSink(LogSink sink, void* arg) {
  // arg first: a racing logger pairing the new sink with the old arg is
  // avoided for the common install-at-startup case; concurrent installs
  // mid-flight are documented as unsupported.
  g_sink_arg.store(arg, std::memory_order_release);
  g_sink.store(sink != nullptr ? sink : &StderrSink,
               std::memory_order_release);
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogTraceId(uint64_t hi, uint64_t lo) {
  t_trace_hi = hi;
  t_trace_lo = lo;
}

void GetLogTraceId(uint64_t* hi, uint64_t* lo) {
  *hi = t_trace_hi;
  *lo = t_trace_lo;
}

namespace logging_internal {

bool Admit(RateLimitState* state, uint64_t* suppressed) {
  const int64_t now = CoarseNowMicros();
  int64_t start = state->window_start_us.load(std::memory_order_relaxed);
  if (now - start >= 1'000'000) {
    // One winner rolls the window; losers keep counting against the new
    // one (emitted may briefly overshoot by a few lines — acceptable).
    if (state->window_start_us.compare_exchange_strong(
            start, now, std::memory_order_relaxed)) {
      state->emitted.store(0, std::memory_order_relaxed);
    }
  }
  if (state->emitted.fetch_add(1, std::memory_order_relaxed) <
      kMaxLinesPerSecondPerSite) {
    *suppressed = state->suppressed.exchange(0, std::memory_order_relaxed);
    return true;
  }
  state->suppressed.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Log(LogLevel level, const char* component, const char* file, int line,
         uint64_t suppressed, const char* fmt, ...) {
  char body[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof(body), fmt, ap);
  va_end(ap);

  char message[768];
  size_t n = 0;
  n += static_cast<size_t>(
      std::snprintf(message + n, sizeof(message) - n, "%s", body));
  if (n < sizeof(message) && (t_trace_hi | t_trace_lo) != 0) {
    n += static_cast<size_t>(std::snprintf(
        message + n, sizeof(message) - n, " trace=%016llx%016llx",
        static_cast<unsigned long long>(t_trace_hi),
        static_cast<unsigned long long>(t_trace_lo)));
  }
  if (n < sizeof(message) && suppressed > 0) {
    n += static_cast<size_t>(std::snprintf(
        message + n, sizeof(message) - n, " (suppressed %llu similar)",
        static_cast<unsigned long long>(suppressed)));
  }
  if (n < sizeof(message)) {
    std::snprintf(message + n, sizeof(message) - n, " (%s:%d)", file, line);
  }

  LogSink sink = g_sink.load(std::memory_order_acquire);
  sink(level, component, message, g_sink_arg.load(std::memory_order_acquire));
}

void CheckFail(const char* file, int line, const char* what) {
  // Not rate limited and never filtered: an abort's last words must
  // always reach the sink.
  char message[768];
  std::snprintf(message, sizeof(message), "%s at %s:%d", what, file, line);
  if ((t_trace_hi | t_trace_lo) != 0) {
    const size_t n = std::strlen(message);
    std::snprintf(message + n, sizeof(message) - n, " trace=%016llx%016llx",
                  static_cast<unsigned long long>(t_trace_hi),
                  static_cast<unsigned long long>(t_trace_lo));
  }
  LogSink sink = g_sink.load(std::memory_order_acquire);
  sink(LogLevel::kError, "check", message,
       g_sink_arg.load(std::memory_order_acquire));
  abort();
}

}  // namespace logging_internal
}  // namespace railgun
