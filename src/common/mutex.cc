#include "common/mutex.h"

#ifdef RAILGUN_LOCK_RANK_CHECKS
#include <execinfo.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

// Safe here: the logging layer is lock-free (atomics only), so these
// fatal reports cannot re-enter the mutex being diagnosed.
#include "common/logging.h"
#endif

namespace railgun {

#ifdef RAILGUN_LOCK_RANK_CHECKS

namespace {

constexpr int kMaxHeld = 32;
constexpr int kMaxFrames = 24;

// Per-thread stack of held locks with the stack trace of each
// acquisition, so an inversion report can show *both* sides.
struct HeldLock {
  const Mutex* mu;
  int rank;
  void* frames[kMaxFrames];
  int num_frames;
};

struct HeldStack {
  HeldLock entries[kMaxHeld];
  int depth = 0;
};

HeldStack& Held() {
  thread_local HeldStack held;
  return held;
}

const char* RankName(int rank) {
  switch (rank) {
    case kRankTraceCollector: return "TraceCollector";
    case kRankHistogram: return "Histogram";
    case kRankIntrospectRegistry: return "IntrospectRegistry";
    case kRankIntrospectPublisher: return "IntrospectPublisher";
    case kRankStorageChunkCache: return "StorageChunkCache";
    case kRankStorageReservoir: return "StorageReservoir";
    case kRankStorageDb: return "StorageDb";
    case kRankMsgBufferPool: return "MsgBufferPool";
    case kRankMsgWake: return "MsgWake";
    case kRankMsgServerRebalance: return "MsgServerRebalance";
    case kRankEngineStrategy: return "EngineStrategy";
    case kRankMsgRemoteConn: return "MsgRemoteConn";
    case kRankMsgRemoteBus: return "MsgRemoteBus";
    case kRankMsgPartition: return "MsgPartition";
    case kRankMsgTopics: return "MsgTopics";
    case kRankMsgGroup: return "MsgGroup";
    case kRankMsgServer: return "MsgServer";
    case kRankEngineAdmission: return "EngineAdmission";
    case kRankEngineUnit: return "EngineUnit";
    case kRankEngineFrontEndPending: return "EngineFrontEndPending";
    case kRankEngineFrontEndSubmit: return "EngineFrontEndSubmit";
    case kRankEngineFrontEnd: return "EngineFrontEnd";
    case kRankEngineCluster: return "EngineCluster";
    case kRankMetaWorkerHeartbeat: return "MetaWorkerHeartbeat";
    case kRankMetaWorkerSync: return "MetaWorkerSync";
    case kRankMetaService: return "MetaService";
    case kRankMetaSweep: return "MetaSweep";
    case kRankApiResult: return "ApiResult";
    case kRankApiRemoteDdl: return "ApiRemoteDdl";
    case kRankApiClient: return "ApiClient";
    case kRankWorkloadInjector: return "WorkloadInjector";
    case kRankMetaDdlSerializer: return "MetaDdlSerializer";
    case kRankTestOuter: return "TestOuter";
    case kRankTestInner: return "TestInner";
    default: return "?";
  }
}

[[noreturn]] void ReportInversion(const Mutex* mu, const HeldLock& held) {
  RAILGUN_LOG(kError, "mutex",
              "lock-rank inversion: acquiring %s (rank %d) while holding "
              "%s (rank %d); locks must be acquired in strictly "
              "decreasing rank order (backtraces on stderr)",
              RankName(mu->rank()), mu->rank(), RankName(held.rank),
              held.rank);
  // Backtraces bypass the sink: backtrace_symbols_fd is async-signal-
  // safe and needs a raw fd.
  std::fprintf(stderr, "--- acquisition attempted at:\n");
  std::fflush(stderr);
  void* frames[kMaxFrames];
  int n = ::backtrace(frames, kMaxFrames);
  ::backtrace_symbols_fd(frames, n, STDERR_FILENO);
  std::fprintf(stderr, "--- conflicting lock %s (rank %d) acquired at:\n",
               RankName(held.rank), held.rank);
  std::fflush(stderr);
  ::backtrace_symbols_fd(const_cast<void* const*>(held.frames),
                         held.num_frames, STDERR_FILENO);
  std::abort();
}

void RecordAcquire(const Mutex* mu, bool check_order) {
  HeldStack& held = Held();
  if (check_order) {
    for (int i = 0; i < held.depth; ++i) {
      if (mu->rank() >= held.entries[i].rank) {
        ReportInversion(mu, held.entries[i]);
      }
    }
  }
  if (held.depth >= kMaxHeld) {
    RAILGUN_LOG(kError, "mutex",
                "lock-rank checker: more than %d locks held by one "
                "thread (acquiring rank %d)",
                kMaxHeld, mu->rank());
    std::abort();
  }
  HeldLock& entry = held.entries[held.depth++];
  entry.mu = mu;
  entry.rank = mu->rank();
  entry.num_frames = ::backtrace(entry.frames, kMaxFrames);
}

void RecordRelease(const Mutex* mu) {
  HeldStack& held = Held();
  // Usually the top entry; scan for robustness with out-of-order
  // releases (e.g. std::scoped-style interleavings).
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.entries[i].mu != mu) continue;
    for (int j = i; j < held.depth - 1; ++j) {
      held.entries[j] = held.entries[j + 1];
    }
    --held.depth;
    return;
  }
  RAILGUN_LOG(kError, "mutex",
              "lock-rank checker: releasing rank %d (%s) not held by "
              "this thread",
              mu->rank(), RankName(mu->rank()));
  std::abort();
}

bool IsHeld(const Mutex* mu) {
  HeldStack& held = Held();
  for (int i = 0; i < held.depth; ++i) {
    if (held.entries[i].mu == mu) return true;
  }
  return false;
}

}  // namespace

void Mutex::Lock() {
  RecordAcquire(this, /*check_order=*/true);
  native_.lock();
}

void Mutex::Unlock() {
  RecordRelease(this);
  native_.unlock();
}

bool Mutex::TryLock() {
  if (!native_.try_lock()) return false;
  // A try-lock cannot block, so it is exempt from the ordering rule,
  // but it still joins the held set so later acquisitions are checked
  // against it.
  RecordAcquire(this, /*check_order=*/false);
  return true;
}

void Mutex::AssertHeld() {
  if (IsHeld(this)) return;
  RAILGUN_LOG(kError, "mutex",
              "lock-rank checker: AssertHeld on rank %d (%s) not held "
              "by this thread",
              rank_, RankName(rank_));
  std::abort();
}

void CondVar::Wait(Mutex* mu) {
  // The wait releases the mutex, so pop its held record for the
  // duration; the re-push re-runs the order check against whatever
  // the thread still holds (identical to the original acquisition).
  RecordRelease(mu);
  std::unique_lock<std::mutex> lock(mu->native_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  RecordAcquire(mu, /*check_order=*/true);
}

bool CondVar::WaitFor(Mutex* mu, Micros timeout) {
  RecordRelease(mu);
  std::unique_lock<std::mutex> lock(mu->native_, std::adopt_lock);
  std::cv_status status =
      cv_.wait_for(lock, std::chrono::microseconds(timeout));
  lock.release();
  RecordAcquire(mu, /*check_order=*/true);
  return status == std::cv_status::no_timeout;
}

#else  // !RAILGUN_LOCK_RANK_CHECKS

void Mutex::Lock() { native_.lock(); }

void Mutex::Unlock() { native_.unlock(); }

bool Mutex::TryLock() { return native_.try_lock(); }

void Mutex::AssertHeld() {}

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<std::mutex> lock(mu->native_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitFor(Mutex* mu, Micros timeout) {
  std::unique_lock<std::mutex> lock(mu->native_, std::adopt_lock);
  std::cv_status status =
      cv_.wait_for(lock, std::chrono::microseconds(timeout));
  lock.release();
  return status == std::cv_status::no_timeout;
}

#endif  // RAILGUN_LOCK_RANK_CHECKS

}  // namespace railgun
