#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace railgun {

namespace {
// Highest representable value: 2^62 is far beyond any latency we record.
constexpr int kMaxExponent = 62;

int Log2Floor(uint64_t v) {
  return v == 0 ? 0 : 63 - __builtin_clzll(v);
}
}  // namespace

LatencyHistogram::LatencyHistogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_bucket_count_(int64_t{1} << sub_bucket_bits) {
  // One linear region for values < sub_bucket_count_, then one set of
  // sub-buckets per power of two above it.
  const size_t log_regions = kMaxExponent - sub_bucket_bits_;
  buckets_.assign(sub_bucket_count_ + log_regions * (sub_bucket_count_ / 2),
                  0);
}

size_t LatencyHistogram::BucketIndex(int64_t value) const {
  if (value < 0) value = 0;
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < static_cast<uint64_t>(sub_bucket_count_)) {
    return static_cast<size_t>(v);
  }
  const int exponent = Log2Floor(v);  // >= sub_bucket_bits_
  const int region = exponent - sub_bucket_bits_;  // 0-based log region
  // Within a region, the top (bits-1) fractional bits select the slot.
  const int shift = exponent - (sub_bucket_bits_ - 1);
  const uint64_t slot = (v >> shift) & ((sub_bucket_count_ / 2) - 1);
  size_t index = sub_bucket_count_ +
                 static_cast<size_t>(region) * (sub_bucket_count_ / 2) +
                 static_cast<size_t>(slot);
  if (index >= buckets_.size()) index = buckets_.size() - 1;
  return index;
}

int64_t LatencyHistogram::BucketUpperBound(size_t index) const {
  if (index < static_cast<size_t>(sub_bucket_count_)) {
    return static_cast<int64_t>(index);
  }
  const size_t rel = index - sub_bucket_count_;
  const size_t region = rel / (sub_bucket_count_ / 2);
  const size_t slot = rel % (sub_bucket_count_ / 2);
  const int exponent = static_cast<int>(region) + sub_bucket_bits_;
  const int shift = exponent - (sub_bucket_bits_ - 1);
  const uint64_t base = uint64_t{1} << exponent;
  const uint64_t lower =
      base | (static_cast<uint64_t>(slot) << shift);
  const uint64_t width = uint64_t{1} << shift;
  return static_cast<int64_t>(lower + width - 1);
}

void LatencyHistogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketIndex(value)]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
}

void LatencyHistogram::RecordCorrected(int64_t value,
                                       int64_t expected_interval) {
  Record(value);
  if (expected_interval <= 0) return;
  for (int64_t missed = value - expected_interval; missed >= expected_interval;
       missed -= expected_interval) {
    Record(missed);
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t LatencyHistogram::ValueAtPercentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(p / 100.0 *
                                                          count_)));
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
}

std::string LatencyHistogram::Summary(
    const std::vector<double>& percentiles) const {
  std::string out;
  char line[128];
  for (double p : percentiles) {
    snprintf(line, sizeof(line), "p%-7.3f = %10lld us\n", p,
             static_cast<long long>(ValueAtPercentile(p)));
    out += line;
  }
  return out;
}

}  // namespace railgun
