#include "common/arena.h"

#include <cassert>
#include <utility>

namespace railgun {

char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  constexpr size_t kAlign = sizeof(void*);
  const size_t current_mod =
      reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
  const size_t slop = (current_mod == 0 ? 0 : kAlign - current_mod);
  const size_t needed = bytes + slop;
  if (needed <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
    return result;
  }
  // Fallback blocks from new[] are suitably aligned already.
  return AllocateFallback(bytes);
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocation gets its own block to limit waste.
    return AllocateNewBlock(bytes);
  }
  char* block = AllocateNewBlock(kBlockSize);
  alloc_ptr_ = block + bytes;
  alloc_bytes_remaining_ = kBlockSize - bytes;
  return block;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  Block block;
  block.data.reset(new char[block_bytes]);
  block.size = block_bytes;
  blocks_.push_back(std::move(block));
  memory_usage_ += block_bytes + sizeof(char*);
  return blocks_.back().data.get();
}

void Arena::Reset() {
  if (blocks_.empty()) {
    alloc_ptr_ = nullptr;
    alloc_bytes_remaining_ = 0;
    memory_usage_ = 0;
    return;
  }
  size_t largest = 0;
  for (size_t i = 1; i < blocks_.size(); ++i) {
    if (blocks_[i].size > blocks_[largest].size) largest = i;
  }
  Block kept = std::move(blocks_[largest]);
  blocks_.clear();
  alloc_ptr_ = kept.data.get();
  alloc_bytes_remaining_ = kept.size;
  memory_usage_ = kept.size + sizeof(char*);
  blocks_.push_back(std::move(kept));
}

}  // namespace railgun
