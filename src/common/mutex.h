// Annotated mutex / condition-variable wrappers.
//
// `railgun::Mutex` carries the clang CAPABILITY attribute so
// `-Wthread-safety` can check GUARDED_BY / REQUIRES discipline, and —
// when RAILGUN_LOCK_RANK_CHECKS is defined (all sanitizer jobs and
// Debug builds) — a runtime lock-rank checker: every Mutex is
// constructed with a rank from the hierarchy below, a thread may only
// acquire a mutex whose rank is strictly *lower* than every rank it
// already holds, and a violation aborts immediately with the stacks of
// both acquisitions. That turns any potential lock-order deadlock into
// a deterministic failure on the first inverted acquisition — no
// schedule luck needed.
//
// Rank hierarchy (higher = outermost; a full table with the rationale
// for each exception lives in DESIGN.md "Locking hierarchy &
// thread-safety model"):
//
//   7xx  cross-layer serializers (meta DDL, workload drivers)
//   6xx  api      (client facade, remote DDL, result futures)
//   5xx  meta     (metadata service, worker sync/heartbeat)
//   4xx  engine   (cluster > frontend > units > admission)
//   3xx  msg      (server > groups > topics > partitions > wire)
//   2xx  storage  (db > reservoir > chunk cache)
//   1xx  common   (histograms, introspection leaves)
//
// Documented exceptions to straight subsystem banding:
//   - kEngineStrategy (Coordinator::mu_) ranks inside the msg band:
//     assignment strategies execute under the broker's group lock.
//   - kMetaDdlSerializer ranks above the api band: the metadata
//     service holds it while driving api::Client::Execute.
//   - kRankApiResult ranks in the leaf band: future completions run
//     as callbacks under engine locks, and wrap no lock themselves.
#ifndef RAILGUN_COMMON_MUTEX_H_
#define RAILGUN_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace railgun {

// Every Mutex names its place in the acquisition order. Gaps between
// values are deliberate: new locks slot in without renumbering.
enum LockRank : int {
  // --- common / leaves (1xx) ---------------------------------------
  // api::ResultFuture::State::mu. Exception: lives in the leaf band,
  // not the api band — completions run under engine locks (e.g.
  // Cluster::Stop failing pending futures through FrontEnd callbacks)
  // and the state mutex never wraps another lock.
  kRankApiResult = 105,
  kRankHistogram = 110,          // introspect::Histogram::mu_
  kRankTraceCollector = 120,     // trace::Tracer ring registry + export
                                 // (above kRankHistogram: the drain
                                 // feeds stage histograms while held)
  kRankIntrospectRegistry = 130, // introspect::Registry::mu_ (leaf:
                                 // probes run outside the lock)
  kRankIntrospectPublisher = 150,// introspect::Publisher cadence park
  kRankOpsSubQueue = 160,        // ops::SubscriptionHub per-subscription
                                 // record queue (leaf-ish: only trace /
                                 // histogram leaves nest inside)

  // --- storage (2xx) -----------------------------------------------
  kRankStorageChunkCache = 220,  // reservoir::ChunkCache::mu_
  kRankStorageReservoir = 250,   // reservoir::Reservoir::mu_ (inserts
                                 // into the chunk cache while held)
  kRankStorageDb = 260,          // storage::DB coarse mutex

  // --- msg (3xx) ----------------------------------------------------
  kRankMsgBufferPool = 305,      // msg::BufferPool free-list
  kRankMsgWake = 310,            // broker wake/park epoch
  kRankMsgServerRebalance = 315, // BusServer per-conn rebalance buffer
  // engine::Coordinator::mu_. Exception: ranks inside the msg band
  // because assignment strategies run under the broker group lock.
  kRankEngineStrategy = 320,
  kRankMsgRemoteConn = 330,      // RemoteBus per-connection state
  kRankMsgRemoteBus = 335,       // RemoteBus connection map
  kRankMsgPartition = 340,       // broker PartitionLog::mu (innermost
                                 // of the broker's documented order)
  kRankMsgTopics = 350,          // broker topic map
  kRankMsgGroup = 360,           // broker consumer-group state
  kRankMsgServer = 390,          // remote::BusServer connection table

  // --- engine (4xx) -------------------------------------------------
  kRankEngineAdmission = 405,    // engine::TokenBucket::mu_
  kRankEngineUnit = 430,         // engine::ProcessorUnit::mu_
  kRankEngineFrontEndPending = 440,  // FrontEnd pending-reply shards
  kRankEngineFrontEndSubmit = 445,   // FrontEnd submit queue
  kRankEngineFrontEnd = 450,     // FrontEnd routes/streams
  kRankOpsSubscriptionHub = 460, // ops::SubscriptionHub table (held
                                 // across bus Subscribe/Leave calls)
  kRankEngineCluster = 480,      // Cluster node table (held across
                                 // RegisterStream into frontend/bus)

  // --- meta (5xx) ----------------------------------------------------
  kRankMetaWorkerHeartbeat = 540,// WorkerNode heartbeat park
  kRankMetaWorkerSync = 550,     // WorkerNode stream sync (held across
                                 // meta RPCs and node RegisterStream)
  kRankMetaService = 560,        // MetadataService membership/schemas
  kRankMetaSweep = 565,          // MetadataService sweeper park

  // --- api (6xx) ------------------------------------------------------
  kRankApiSubscription = 605,    // api::Subscription stub (held across
                                 // RemoteBus subscription RPCs)
  kRankApiRemoteDdl = 610,       // RemoteDdlClient (held across bus
                                 // produce/poll round trips)
  kRankApiClient = 620,          // api::Client registration state

  // --- cross-layer serializers (7xx) ---------------------------------
  kRankWorkloadInjector = 710,   // workload completion accounting
  // MetadataService::ddl_mu_. Exception: ranks above the api band
  // because DDL execution drives an api::Client while held.
  kRankMetaDdlSerializer = 720,

  // Test-only ranks live above everything real.
  kRankTestOuter = 900,
  kRankTestInner = 890,
};

// Standard-layout mutex carrying a rank and the clang capability
// attribute. Satisfies BasicLockable so std:: scoped helpers still
// work where needed, but prefer railgun::MutexLock.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();
  bool TryLock() TRY_ACQUIRE(true);

  // Debug-checks that the calling thread holds this mutex (rank
  // checker builds only) and tells the static analysis to assume it.
  void AssertHeld() ASSERT_CAPABILITY(this);

  int rank() const { return rank_; }

  // BasicLockable, so this type drops into std:: lock helpers.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

 private:
  friend class CondVar;
  std::mutex native_;
  const int rank_;
};

// RAII scoped lock with the SCOPED_CAPABILITY attribute, the unit of
// almost all locking in the codebase.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() {
    if (owns_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Early release / reacquire, for park-then-work loops that drop the
  // lock around a slow callout (publisher, heartbeat, sweeper).
  void Unlock() RELEASE() {
    mu_->Unlock();
    owns_ = false;
  }
  void Lock() ACQUIRE() {
    mu_->Lock();
    owns_ = true;
  }

 private:
  friend class CondVar;
  Mutex* const mu_;
  bool owns_ = true;
};

// Condition variable bound to railgun::Mutex. Waits keep the rank
// checker's bookkeeping straight: the held-lock record is popped for
// the duration of the wait and re-pushed when the mutex is
// reacquired, so a wakeup path can never be blamed for an inversion
// the waiter did not commit.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu);

  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  // Returns false on timeout (like std::cv_status::timeout).
  bool WaitFor(Mutex* mu, Micros timeout) REQUIRES(mu);

  // Returns pred() on exit, std::condition_variable semantics: the
  // timeout bounds the *total* wait, so spurious wakeups and notifies
  // that leave pred() false only consume the remaining budget.
  template <typename Pred>
  bool WaitFor(Mutex* mu, Micros timeout, Pred pred) REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout);
    while (!pred()) {
      const Micros remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) return pred();
      (void)WaitFor(mu, remaining);
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace railgun

#endif  // RAILGUN_COMMON_MUTEX_H_
