#include "common/status.h"

namespace railgun {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!msg_.empty()) {
    result += ": ";
    result += msg_;
  }
  return result;
}

}  // namespace railgun
