// 64-bit and 32-bit hashing used for partitioning (event key -> partition),
// bloom-style filtering and hash indexes.
#ifndef RAILGUN_COMMON_HASH_H_
#define RAILGUN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace railgun {

// A 64-bit mixing hash (splitmix-style finalizer over 8-byte lanes).
uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0);

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

inline uint32_t Hash32(std::string_view s, uint32_t seed = 0) {
  return static_cast<uint32_t>(Hash64(s.data(), s.size(), seed));
}

// Finalizer usable for integer keys.
inline uint64_t MixHash64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace railgun

#endif  // RAILGUN_COMMON_HASH_H_
