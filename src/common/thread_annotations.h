// Clang Thread Safety Analysis attribute macros. Under clang these
// expand to the TSA attributes so `-Wthread-safety` can prove locking
// discipline at compile time; under GCC (which lacks the analysis)
// they expand to nothing, so annotated code stays portable.
//
// Conventions (see DESIGN.md "Locking hierarchy & thread-safety
// model"): every protected member carries GUARDED_BY(mu_); helpers
// that expect the lock held are suffixed `Locked` and carry
// REQUIRES(mu_); public entry points that take the lock themselves
// carry EXCLUDES(mu_).
#ifndef RAILGUN_COMMON_THREAD_ANNOTATIONS_H_
#define RAILGUN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define RAILGUN_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define RAILGUN_THREAD_ATTRIBUTE(x)  // no-op
#endif

// Type attributes for lock-like classes.
#define CAPABILITY(x) RAILGUN_THREAD_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY RAILGUN_THREAD_ATTRIBUTE(scoped_lockable)

// Data annotations.
#define GUARDED_BY(x) RAILGUN_THREAD_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) RAILGUN_THREAD_ATTRIBUTE(pt_guarded_by(x))

// Lock ordering hints (checked statically by clang, dynamically by the
// railgun lock-rank checker).
#define ACQUIRED_BEFORE(...) \
  RAILGUN_THREAD_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  RAILGUN_THREAD_ATTRIBUTE(acquired_after(__VA_ARGS__))

// Function preconditions.
#define REQUIRES(...) \
  RAILGUN_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  RAILGUN_THREAD_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) RAILGUN_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Function effects.
#define ACQUIRE(...) \
  RAILGUN_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  RAILGUN_THREAD_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  RAILGUN_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  RAILGUN_THREAD_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  RAILGUN_THREAD_ATTRIBUTE(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  RAILGUN_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  RAILGUN_THREAD_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) RAILGUN_THREAD_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  RAILGUN_THREAD_ATTRIBUTE(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) RAILGUN_THREAD_ATTRIBUTE(lock_returned(x))

// Escape hatch for code whose locking the analysis cannot follow
// (e.g. adopting a lock across an std::condition_variable wait).
#define NO_THREAD_SAFETY_ANALYSIS \
  RAILGUN_THREAD_ATTRIBUTE(no_thread_safety_analysis)

#endif  // RAILGUN_COMMON_THREAD_ANNOTATIONS_H_
