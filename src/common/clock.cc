#include "common/clock.h"

#include <chrono>
#include <thread>

namespace railgun {

Micros MonotonicClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void MonotonicClock::SleepMicros(Micros micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

MonotonicClock* MonotonicClock::Default() {
  static MonotonicClock* clock = new MonotonicClock();
  return clock;
}

}  // namespace railgun
