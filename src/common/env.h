// POSIX filesystem access used by the LSM store, WAL and event reservoir.
// Kept behind small interfaces so tests can inject fault wrappers.
#ifndef RAILGUN_COMMON_ENV_H_
#define RAILGUN_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace railgun {

// Sequential append-only sink (WAL, SSTable and segment writers).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual uint64_t Size() const = 0;
};

// Positional reads (SSTable blocks, reservoir chunks).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  // Reads up to n bytes at offset into scratch; *result points into
  // scratch (or an internal buffer) and holds the bytes actually read.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual uint64_t Size() const = 0;
};

// Forward reads (WAL replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// Filesystem environment. A process-wide default is provided; tests may
// wrap it to inject faults.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewAppendableFile(const std::string& path,
                                   std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* file) = 0;
  virtual Status NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* file) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status GetFileSize(const std::string& path, uint64_t* size) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status CreateDir(const std::string& path) = 0;       // mkdir -p
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* children) = 0;
  virtual Status CopyFile(const std::string& from, const std::string& to) = 0;

  static Env* Default();
};

// Convenience helpers.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& path,
                         bool sync = false);
Status ReadFileToString(Env* env, const std::string& path, std::string* data);

// Joins path components with '/'.
std::string JoinPath(const std::string& a, const std::string& b);

}  // namespace railgun

#endif  // RAILGUN_COMMON_ENV_H_
