#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace railgun {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) return Status::NotFound(context + ": " + strerror(err));
  return Status::IOError(context + ": " + strerror(err));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {
    buffer_.reserve(kBufferSize);
  }

  ~PosixWritableFile() override {
    if (fd_ >= 0) (void)Close();  // Destructor: nowhere to report.
  }

  Status Append(const Slice& data) override {
    size_ += data.size();
    if (buffer_.size() + data.size() <= kBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    RAILGUN_RETURN_IF_ERROR(FlushBuffer());
    if (data.size() <= kBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    return WriteRaw(data.data(), data.size());
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    RAILGUN_RETURN_IF_ERROR(FlushBuffer());
    if (fdatasync(fd_) != 0) return PosixError(path_, errno);
    return Status::OK();
  }

  Status Close() override {
    Status s = FlushBuffer();
    if (fd_ >= 0) {
      if (close(fd_) != 0 && s.ok()) s = PosixError(path_, errno);
      fd_ = -1;
    }
    return s;
  }

  uint64_t Size() const override { return size_; }

 private:
  static constexpr size_t kBufferSize = 64 * 1024;

  Status FlushBuffer() {
    if (buffer_.empty()) return Status::OK();
    Status s = WriteRaw(buffer_.data(), buffer_.size());
    buffer_.clear();
    return s;
  }

  Status WriteRaw(const char* data, size_t n) {
    while (n > 0) {
      ssize_t written = write(fd_, data, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      data += written;
      n -= static_cast<size_t>(written);
    }
    return Status::OK();
  }

  std::string path_;
  int fd_;
  uint64_t size_;
  std::string buffer_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = pread(fd_, scratch + got, n - got,
                        static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      if (r == 0) break;  // EOF.
      got += static_cast<size_t>(r);
    }
    *result = Slice(scratch, got);
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixSequentialFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status Read(size_t n, Slice* result, char* scratch) override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = read(fd_, scratch + got, n - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(path_, errno);
      }
      if (r == 0) break;
      got += static_cast<size_t>(r);
    }
    *result = Slice(scratch, got);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(path_, errno);
    }
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return PosixError(path, errno);
    file->reset(new PosixWritableFile(path, fd, 0));
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* file) override {
    int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return PosixError(path, errno);
    struct stat st;
    uint64_t size = 0;
    if (fstat(fd, &st) == 0) size = static_cast<uint64_t>(st.st_size);
    file->reset(new PosixWritableFile(path, fd, size));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* file) override {
    int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(path, errno);
    struct stat st;
    uint64_t size = 0;
    if (fstat(fd, &st) == 0) size = static_cast<uint64_t>(st.st_size);
    file->reset(new PosixRandomAccessFile(path, fd, size));
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* file) override {
    int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(path, errno);
    file->reset(new PosixSequentialFile(path, fd));
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return access(path.c_str(), F_OK) == 0;
  }

  Status GetFileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (stat(path.c_str(), &st) != 0) return PosixError(path, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (unlink(path.c_str()) != 0) return PosixError(path, errno);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (rename(from.c_str(), to.c_str()) != 0) return PosixError(from, errno);
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    // mkdir -p semantics.
    std::string partial;
    for (size_t i = 0; i <= path.size(); ++i) {
      if (i == path.size() || path[i] == '/') {
        if (!partial.empty() && mkdir(partial.c_str(), 0755) != 0 &&
            errno != EEXIST) {
          return PosixError(partial, errno);
        }
      }
      if (i < path.size()) partial += path[i];
    }
    return Status::OK();
  }

  Status RemoveDirRecursive(const std::string& path) override {
    std::vector<std::string> children;
    Status s = ListDir(path, &children);
    if (s.IsNotFound()) return Status::OK();
    RAILGUN_RETURN_IF_ERROR(s);
    for (const auto& child : children) {
      const std::string full = JoinPath(path, child);
      struct stat st;
      if (stat(full.c_str(), &st) != 0) continue;
      if (S_ISDIR(st.st_mode)) {
        RAILGUN_RETURN_IF_ERROR(RemoveDirRecursive(full));
      } else {
        unlink(full.c_str());
      }
    }
    if (rmdir(path.c_str()) != 0 && errno != ENOENT) {
      return PosixError(path, errno);
    }
    return Status::OK();
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* children) override {
    children->clear();
    DIR* dir = opendir(path.c_str());
    if (dir == nullptr) return PosixError(path, errno);
    struct dirent* entry;
    while ((entry = readdir(dir)) != nullptr) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      children->push_back(name);
    }
    closedir(dir);
    return Status::OK();
  }

  Status CopyFile(const std::string& from, const std::string& to) override {
    std::string data;
    RAILGUN_RETURN_IF_ERROR(ReadFileToString(this, from, &data));
    return WriteStringToFile(this, data, to, /*sync=*/false);
  }
};

}  // namespace

Env* Env::Default() {
  static Env* env = new PosixEnv();
  return env;
}

Status WriteStringToFile(Env* env, const Slice& data, const std::string& path,
                         bool sync) {
  std::unique_ptr<WritableFile> file;
  RAILGUN_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  RAILGUN_RETURN_IF_ERROR(file->Append(data));
  if (sync) RAILGUN_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Status ReadFileToString(Env* env, const std::string& path, std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  RAILGUN_RETURN_IF_ERROR(env->NewSequentialFile(path, &file));
  constexpr size_t kChunk = 64 * 1024;
  std::string scratch(kChunk, '\0');
  while (true) {
    Slice fragment;
    RAILGUN_RETURN_IF_ERROR(file->Read(kChunk, &fragment, scratch.data()));
    if (fragment.empty()) break;
    data->append(fragment.data(), fragment.size());
  }
  return Status::OK();
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

}  // namespace railgun
