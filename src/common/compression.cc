#include "common/compression.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace railgun {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kHashBits = 14;
constexpr size_t kHashSize = 1 << kHashBits;

inline uint32_t HashPos(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitToken(std::string* out, const char* lit, size_t lit_len,
               size_t match_len, size_t offset) {
  const size_t match_code = match_len >= kMinMatch ? match_len - kMinMatch : 0;
  unsigned char ctrl =
      static_cast<unsigned char>((lit_len < 15 ? lit_len : 15) |
                                 ((match_code < 15 ? match_code : 15) << 4));
  out->push_back(static_cast<char>(ctrl));
  if (lit_len >= 15) PutVarint64(out, lit_len - 15);
  out->append(lit, lit_len);
  if (match_len >= kMinMatch) {
    if (match_code >= 15) PutVarint64(out, match_code - 15);
    out->push_back(static_cast<char>(offset & 0xff));
    out->push_back(static_cast<char>((offset >> 8) & 0xff));
  }
}

}  // namespace

void LzCompress(const Slice& input, std::string* output) {
  PutVarint64(output, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  if (n == 0) return;

  std::vector<int64_t> table(kHashSize, -1);
  size_t pos = 0;
  size_t lit_start = 0;

  while (pos + kMinMatch <= n) {
    const uint32_t h = HashPos(base + pos);
    const int64_t cand = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        memcmp(base + cand, base + pos, kMinMatch) == 0) {
      // Extend the match forward.
      size_t match_len = kMinMatch;
      const size_t max_len = n - pos;
      while (match_len < max_len &&
             base[cand + match_len] == base[pos + match_len]) {
        ++match_len;
      }
      EmitToken(output, base + lit_start, pos - lit_start, match_len,
                pos - static_cast<size_t>(cand));
      pos += match_len;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  // Trailing literals with a no-match token.
  EmitToken(output, base + lit_start, n - lit_start, 0, 0);
}

Status LzUncompress(const Slice& input, std::string* output) {
  Slice in = input;
  uint64_t expected;
  if (!GetVarint64(&in, &expected)) {
    return Status::Corruption("compressed block: bad size header");
  }
  // A malformed header can claim an absurd size; bound it so corrupt
  // input cannot drive allocation to OOM. No block in the system (chunk
  // or SSTable block) approaches this.
  constexpr uint64_t kMaxUncompressedBlock = 1ull << 30;  // 1 GiB.
  if (expected > kMaxUncompressedBlock) {
    return Status::Corruption("compressed block: implausible size header");
  }
  const size_t out_start = output->size();
  output->reserve(out_start + std::min<uint64_t>(expected, 1 << 22));

  while (output->size() - out_start < expected) {
    if (in.empty()) return Status::Corruption("compressed block: truncated");
    const unsigned char ctrl = static_cast<unsigned char>(in[0]);
    in.remove_prefix(1);
    uint64_t lit_len = ctrl & 0x0f;
    uint64_t match_code = (ctrl >> 4) & 0x0f;
    if (lit_len == 15) {
      uint64_t extra;
      if (!GetVarint64(&in, &extra)) {
        return Status::Corruption("compressed block: bad literal length");
      }
      lit_len += extra;
    }
    if (in.size() < lit_len) {
      return Status::Corruption("compressed block: literal overrun");
    }
    output->append(in.data(), lit_len);
    in.remove_prefix(lit_len);

    const bool has_match =
        ctrl >> 4 ? true : false;  // match_code > 0 encodes len>kMinMatch...
    // A token with match nibble 0 may still be a kMinMatch-length match;
    // we disambiguate by stream position: the final token carries no
    // offset bytes. Distinguish by checking output completeness first.
    if (output->size() - out_start >= expected) break;
    uint64_t match_len = match_code;
    if (match_code == 15) {
      uint64_t extra;
      if (!GetVarint64(&in, &extra)) {
        return Status::Corruption("compressed block: bad match length");
      }
      match_len += extra;
    }
    match_len += kMinMatch;
    (void)has_match;
    if (output->size() - out_start + match_len > expected) {
      return Status::Corruption("compressed block: match overruns size");
    }
    if (in.size() < 2) {
      return Status::Corruption("compressed block: missing offset");
    }
    const size_t offset = static_cast<unsigned char>(in[0]) |
                          (static_cast<size_t>(static_cast<unsigned char>(
                               in[1]))
                           << 8);
    in.remove_prefix(2);
    if (offset == 0 || offset > output->size() - out_start) {
      return Status::Corruption("compressed block: bad offset");
    }
    // Overlapping copies must proceed byte by byte.
    size_t src = output->size() - offset;
    for (uint64_t i = 0; i < match_len; ++i) {
      output->push_back((*output)[src + i]);
    }
  }
  if (output->size() - out_start != expected) {
    return Status::Corruption("compressed block: size mismatch");
  }
  return Status::OK();
}

int64_t LzUncompressedSize(const Slice& input) {
  Slice in = input;
  uint64_t expected;
  if (!GetVarint64(&in, &expected)) return -1;
  return static_cast<int64_t>(expected);
}

}  // namespace railgun
