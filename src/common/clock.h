// Clock abstraction. All engine code takes a Clock* so tests and the
// multi-node scaling bench can run on simulated time, while latency
// benches use the monotonic wall clock.
#ifndef RAILGUN_COMMON_CLOCK_H_
#define RAILGUN_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace railgun {

// Microsecond resolution throughout.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;
constexpr Micros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr Micros kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr Micros kMicrosPerDay = 24 * kMicrosPerHour;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros NowMicros() const = 0;
  // Blocks (or advances simulated time) for the given duration.
  virtual void SleepMicros(Micros micros) = 0;
  // True when this clock's durations are exchangeable with real
  // (wall/steady) time. Simulated clocks return false so waiters never
  // convert a virtual-time delta into a real-time sleep.
  virtual bool IsRealTime() const { return true; }
};

// Real clock backed by std::chrono::steady_clock.
class MonotonicClock : public Clock {
 public:
  Micros NowMicros() const override;
  void SleepMicros(Micros micros) override;

  // Process-wide instance (no ownership transfer).
  static MonotonicClock* Default();
};

// Deterministic clock for tests and simulations. Thread-safe.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }
  void SleepMicros(Micros micros) override { Advance(micros); }
  bool IsRealTime() const override { return false; }

  void Advance(Micros micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }
  void SetTime(Micros t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<Micros> now_;
};

}  // namespace railgun

#endif  // RAILGUN_COMMON_CLOCK_H_
