// A from-scratch LZ77-style block codec used to compress reservoir chunks
// and SSTable blocks. Format (all varint/raw little-endian):
//
//   [varint64 uncompressed_size] [token stream]
//
// Token stream: a control byte whose low nibble is the literal run length
// (15 = extended with varint continuation) and high nibble the match
// length minus kMinMatch (15 = extended); literals; then for matches a
// 2-byte little-endian offset. A match length of 0 and offset 0 ends a
// token without a match (final literals).
#ifndef RAILGUN_COMMON_COMPRESSION_H_
#define RAILGUN_COMMON_COMPRESSION_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace railgun {

// Compresses input into *output (appended). Always succeeds; the output
// may be larger than the input for incompressible data.
void LzCompress(const Slice& input, std::string* output);

// Decompresses a block produced by LzCompress into *output (appended).
Status LzUncompress(const Slice& input, std::string* output);

// Convenience: returns the uncompressed size recorded in the header,
// without decompressing. Returns -1 on malformed input.
int64_t LzUncompressedSize(const Slice& input);

}  // namespace railgun

#endif  // RAILGUN_COMMON_COMPRESSION_H_
