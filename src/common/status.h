// Status and StatusOr: exception-free error propagation used across the
// entire Railgun codebase. Modeled on the conventions of LevelDB/Abseil.
#ifndef RAILGUN_COMMON_STATUS_H_
#define RAILGUN_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace railgun {

enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kInvalidArgument = 3,
  kIOError = 4,
  kNotSupported = 5,
  kAborted = 6,
  kBusy = 7,
  kOutOfRange = 8,
  kAlreadyExists = 9,
  kUnavailable = 10,
  kOverloaded = 11,
};

// A Status encapsulates the result of an operation: success, or an error
// code plus a human-readable message. [[nodiscard]]: silently dropping an
// error is always a bug here — callers that really mean it must say so
// (assign to a named variable or cast to void with a comment).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  // Admission control shed: the request was refused *before* entering
  // the pipeline and is safe to retry after the embedded hint
  // (engine::RetryAfterMicros). Distinct from kBusy (transient internal
  // contention) and kUnavailable (component down).
  static Status Overloaded(std::string msg = "") {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

// StatusOr<T> holds either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit on purpose (error returns)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }
  StatusOr(T value)  // NOLINT: implicit on purpose (value returns)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace railgun

// Propagates a non-OK status to the caller.
#define RAILGUN_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::railgun::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

// Evaluates a StatusOr expression; assigns the value or returns the error.
#define RAILGUN_ASSIGN_OR_RETURN(lhs, expr)      \
  RAILGUN_ASSIGN_OR_RETURN_IMPL_(                \
      RAILGUN_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)
#define RAILGUN_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                   \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value()
#define RAILGUN_STATUS_CONCAT_(a, b) RAILGUN_STATUS_CONCAT_IMPL_(a, b)
#define RAILGUN_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // RAILGUN_COMMON_STATUS_H_
