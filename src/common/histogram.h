// HDR-style latency histogram: logarithmic buckets with linear
// sub-buckets, bounded relative error, percentile queries, and
// coordinated-omission correction (the paper's §5 requires latencies to
// be "corrected to take into account the coordination omission problem").
#ifndef RAILGUN_COMMON_HISTOGRAM_H_
#define RAILGUN_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace railgun {

class LatencyHistogram {
 public:
  // sub_bucket_bits controls relative precision: 2^bits linear sub-buckets
  // per power of two, i.e. relative error <= 1/2^bits.
  explicit LatencyHistogram(int sub_bucket_bits = 7);

  // Records a single value (e.g. latency in microseconds). Values < 0
  // clamp to 0.
  void Record(int64_t value);

  // Coordinated-omission correction: when a recorded value exceeds the
  // expected interval between requests, the stalled requests that *would*
  // have been issued are recorded with linearly decreasing latencies.
  void RecordCorrected(int64_t value, int64_t expected_interval);

  // Merges another histogram into this one (must have identical bits).
  void Merge(const LatencyHistogram& other);

  // Value at percentile p in [0, 100]. Returns 0 for an empty histogram.
  int64_t ValueAtPercentile(double p) const;

  int64_t Count() const { return count_; }
  int64_t Min() const { return count_ == 0 ? 0 : min_; }
  int64_t Max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  void Reset();

  // One line per requested percentile: "p99.9 = 1234 us".
  std::string Summary(const std::vector<double>& percentiles) const;

 private:
  int64_t BucketUpperBound(size_t index) const;
  size_t BucketIndex(int64_t value) const;

  int sub_bucket_bits_;
  int64_t sub_bucket_count_;  // 2^bits
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace railgun

#endif  // RAILGUN_COMMON_HISTOGRAM_H_
