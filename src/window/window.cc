#include "window/window.h"

#include <cstdio>

namespace railgun::window {

namespace {
std::string FormatMicros(Micros us) {
  char buf[40];
  if (us % kMicrosPerDay == 0 && us != 0) {
    snprintf(buf, sizeof(buf), "%lldd", static_cast<long long>(us / kMicrosPerDay));
  } else if (us % kMicrosPerHour == 0 && us != 0) {
    snprintf(buf, sizeof(buf), "%lldh", static_cast<long long>(us / kMicrosPerHour));
  } else if (us % kMicrosPerMinute == 0 && us != 0) {
    snprintf(buf, sizeof(buf), "%lldm", static_cast<long long>(us / kMicrosPerMinute));
  } else if (us % kMicrosPerSecond == 0) {
    snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(us / kMicrosPerSecond));
  } else if (us % kMicrosPerMilli == 0) {
    snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(us / kMicrosPerMilli));
  } else {
    snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}
}  // namespace

std::string WindowSpec::ToString() const {
  std::string result;
  switch (kind) {
    case WindowKind::kSliding:
      result = "sliding " + FormatMicros(size);
      break;
    case WindowKind::kTumbling:
      result = "tumbling " + FormatMicros(size);
      break;
    case WindowKind::kInfinite:
      result = "infinite";
      break;
    case WindowKind::kCountSliding:
      result = "sliding " + std::to_string(count) + " events";
      break;
  }
  if (delay > 0) result += " delayed by " + FormatMicros(delay);
  return result;
}

std::string WindowSpec::Key() const {
  char buf[80];
  snprintf(buf, sizeof(buf), "w:%d:%lld:%llu:%lld", static_cast<int>(kind),
           static_cast<long long>(size), static_cast<unsigned long long>(count),
           static_cast<long long>(delay));
  return buf;
}

}  // namespace railgun::window
