// Window specifications (paper §3.4): real-time sliding, tumbling and
// infinite time windows, any of which can be delayed; plus count-based
// sliding windows (the extension §3.4 sketches). Hopping windows are
// deliberately absent from Railgun itself — they live in src/baseline.
#ifndef RAILGUN_WINDOW_WINDOW_H_
#define RAILGUN_WINDOW_WINDOW_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"

namespace railgun::window {

enum class WindowKind : uint8_t {
  kSliding = 0,
  kTumbling = 1,
  kInfinite = 2,
  kCountSliding = 3,
};

struct WindowSpec {
  WindowKind kind = WindowKind::kSliding;
  Micros size = 0;       // Time extent (sliding/tumbling).
  uint64_t count = 0;    // Event extent (count windows).
  Micros delay = 0;      // `delayed by` offset.

  static WindowSpec Sliding(Micros size, Micros delay = 0) {
    return {WindowKind::kSliding, size, 0, delay};
  }
  static WindowSpec Tumbling(Micros size) {
    return {WindowKind::kTumbling, size, 0, 0};
  }
  static WindowSpec Infinite() {
    return {WindowKind::kInfinite, 0, 0, 0};
  }
  static WindowSpec CountSliding(uint64_t count) {
    return {WindowKind::kCountSliding, 0, count, 0};
  }

  bool operator==(const WindowSpec& other) const {
    return kind == other.kind && size == other.size &&
           count == other.count && delay == other.delay;
  }

  std::string ToString() const;

  // Stable identity used for DAG prefix sharing.
  std::string Key() const;

  // Iterator-sharing identities (paper §4.1.1: aligned windows share
  // iterators). Heads align when the leading edge offset (delay)
  // matches; tails align when the trailing edge offset (delay + size)
  // matches.
  Micros HeadOffset() const { return delay; }
  Micros TailOffset() const { return delay + size; }
};

}  // namespace railgun::window

#endif  // RAILGUN_WINDOW_WINDOW_H_
