// WindowOperator advances a window over the reservoir for every arriving
// event (real-time sliding: T_eval is the moment right after arrival) and
// reports the entering / expiring event sets to downstream operators.
//
// Iterator sharing (paper §4.1.1: "we reuse iterators among windows"):
// windows whose leading edges align (same delay) share one head
// iterator, and windows whose trailing edges align (same delay + size)
// share one tail iterator. WindowManager drains every shared iterator
// exactly once per arriving event and *broadcasts* the drained events to
// all windows subscribed to that edge.
#ifndef RAILGUN_WINDOW_WINDOW_OPERATOR_H_
#define RAILGUN_WINDOW_WINDOW_OPERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "reservoir/reservoir.h"
#include "window/window.h"

namespace railgun::window {

// One advancement step's output for one window. Entered/expired point
// into the EdgeDeltas storage (or `owned`) and are valid until the next
// WindowManager::Advance — the plan consumes them within the same step.
struct WindowDelta {
  std::vector<const reservoir::Event*> entered;
  std::vector<const reservoir::Event*> expired;
  // Backing storage for events not owned by EdgeDeltas (count-window
  // tails drain a private iterator).
  std::vector<reservoir::Event> owned;
  // Tumbling windows: set when the window rolled over; downstream
  // aggregation state must reset before applying `entered`.
  bool reset = false;
  // Epoch identifying the tumbling window instance (window start time).
  Micros epoch = 0;
};

// Drained edge events per arriving event, keyed by edge offset.
struct EdgeDeltas {
  std::map<Micros, std::vector<reservoir::Event>> entered_by_offset;
  std::map<Micros, std::vector<reservoir::Event>> expired_by_offset;
};

class WindowOperator;

// Owns the window operators of one task plan plus the shared edge
// iterators, and drives them per arriving event.
class WindowManager {
 public:
  explicit WindowManager(reservoir::Reservoir* reservoir)
      : reservoir_(reservoir) {}

  // Returns the operator for the spec, creating (and wiring shared
  // iterators) if needed.
  WindowOperator* GetOrCreate(const WindowSpec& spec);

  // Advances all shared edges to the arrival timestamp `now` and fills
  // the per-offset deltas consumed by WindowOperator::Collect.
  void Advance(Micros now, EdgeDeltas* deltas);

  size_t num_operators() const { return operators_.size(); }
  // Distinct reservoir iterators in use (the Figure 9(b) x-axis).
  size_t num_edge_iterators() const { return heads_.size() + tails_.size(); }

  // Serializes / restores the position of every edge iterator (used by
  // checkpointing so recovered windows resume exactly where they were).
  // Restore may run before the plan re-creates its operators: entries
  // with no matching operator are stashed and applied by GetOrCreate, so
  // recovery state survives either ordering.
  void SavePositions(std::string* blob) const;
  Status RestorePositions(const std::string& blob);

 private:
  friend class WindowOperator;

  // Per-operator scalar state parsed by RestorePositions before the
  // operator itself was re-created; applied (and dropped) on creation.
  struct PendingOperatorState {
    Micros epoch = -1;
    uint64_t in_window = 0;
    bool has_tail = false;
    uint64_t tail_chunk_seq = 0;
    uint64_t tail_index = 0;
  };

  reservoir::Reservoir* reservoir_;
  std::map<std::string, std::unique_ptr<WindowOperator>> operators_;
  std::map<std::string, PendingOperatorState> pending_restores_;
  // Shared head/tail iterators keyed by edge offset.
  std::map<Micros, std::unique_ptr<reservoir::ReservoirIterator>> heads_;
  std::map<Micros, std::unique_ptr<reservoir::ReservoirIterator>> tails_;
};

class WindowOperator {
 public:
  WindowOperator(WindowSpec spec, reservoir::Reservoir* reservoir);

  const WindowSpec& spec() const { return spec_; }

  // Extracts this window's delta for the evaluation at `now` from the
  // shared edge deltas.
  void Collect(Micros now, const EdgeDeltas& deltas, WindowDelta* out);

 private:
  friend class WindowManager;

  WindowSpec spec_;
  reservoir::Reservoir* reservoir_;
  // Tumbling state.
  Micros current_epoch_ = -1;
  // Count-window state: its tail is count-driven, so it cannot share.
  std::unique_ptr<reservoir::ReservoirIterator> count_tail_;
  uint64_t in_window_ = 0;
};

}  // namespace railgun::window

#endif  // RAILGUN_WINDOW_WINDOW_OPERATOR_H_
