#include "window/window_operator.h"

#include "common/coding.h"

namespace railgun::window {

using reservoir::Event;
using reservoir::ReservoirIterator;

WindowOperator* WindowManager::GetOrCreate(const WindowSpec& spec) {
  const std::string key = spec.Key();
  auto it = operators_.find(key);
  if (it != operators_.end()) return it->second.get();

  auto op = std::make_unique<WindowOperator>(spec, reservoir_);

  // Wire shared edges.
  switch (spec.kind) {
    case WindowKind::kSliding:
      if (heads_.count(spec.HeadOffset()) == 0) {
        heads_[spec.HeadOffset()] = reservoir_->NewIterator();
      }
      if (tails_.count(spec.TailOffset()) == 0) {
        tails_[spec.TailOffset()] = reservoir_->NewIterator();
      }
      break;
    case WindowKind::kTumbling:
    case WindowKind::kInfinite:
      if (heads_.count(spec.HeadOffset()) == 0) {
        heads_[spec.HeadOffset()] = reservoir_->NewIterator();
      }
      break;
    case WindowKind::kCountSliding:
      if (heads_.count(0) == 0) {
        heads_[0] = reservoir_->NewIterator();
      }
      op->count_tail_ = reservoir_->NewIterator();
      break;
  }

  // State restored before this operator was re-created (recovery may
  // run RestorePositions first): apply it now, replacing the fresh
  // count tail with the checkpointed position.
  auto pending = pending_restores_.find(key);
  if (pending != pending_restores_.end()) {
    op->current_epoch_ = pending->second.epoch;
    op->in_window_ = pending->second.in_window;
    if (pending->second.has_tail) {
      op->count_tail_ = reservoir_->NewIteratorAtPosition(
          pending->second.tail_chunk_seq, pending->second.tail_index);
    }
    pending_restores_.erase(pending);
  }

  WindowOperator* raw = op.get();
  operators_[key] = std::move(op);
  return raw;
}

void WindowManager::Advance(Micros now, EdgeDeltas* deltas) {
  deltas->entered_by_offset.clear();
  deltas->expired_by_offset.clear();

  // Heads: every event with timestamp <= now - offset enters.
  for (auto& [offset, iter] : heads_) {
    auto& out = deltas->entered_by_offset[offset];
    const Micros threshold = now - offset;
    iter->Refresh();
    while (!iter->AtEnd() && iter->event().timestamp <= threshold) {
      out.push_back(iter->event());
      iter->Advance();
      iter->Refresh();
    }
  }

  // Tails: every event with timestamp < now - offset expires
  // (T_eval - ws <= t_i keeps the boundary event inside; see §2).
  for (auto& [offset, iter] : tails_) {
    auto& out = deltas->expired_by_offset[offset];
    const Micros threshold = now - offset;
    iter->Refresh();
    while (!iter->AtEnd() && iter->event().timestamp < threshold) {
      out.push_back(iter->event());
      iter->Advance();
      iter->Refresh();
    }
  }
}

void WindowManager::SavePositions(std::string* blob) const {
  // Layout: [kind byte, key, chunk_seq, index]* with kind 'h'(ead),
  // 't'(ail) keyed by offset, 'c'(ount tail) keyed by operator key, plus
  // per-operator scalar state for tumbling/count windows.
  PutVarint32(blob, static_cast<uint32_t>(heads_.size()));
  for (const auto& [offset, iter] : heads_) {
    PutVarsint64(blob, offset);
    PutVarint64(blob, iter->chunk_seq());
    PutVarint64(blob, iter->index());
  }
  PutVarint32(blob, static_cast<uint32_t>(tails_.size()));
  for (const auto& [offset, iter] : tails_) {
    PutVarsint64(blob, offset);
    PutVarint64(blob, iter->chunk_seq());
    PutVarint64(blob, iter->index());
  }
  uint32_t num_ops_with_state = 0;
  for (const auto& [key, op] : operators_) {
    if (op->count_tail_ != nullptr ||
        op->spec_.kind == WindowKind::kTumbling) {
      ++num_ops_with_state;
    }
  }
  PutVarint32(blob, num_ops_with_state);
  for (const auto& [key, op] : operators_) {
    if (op->count_tail_ == nullptr &&
        op->spec_.kind != WindowKind::kTumbling) {
      continue;
    }
    PutLengthPrefixedSlice(blob, key);
    PutVarsint64(blob, op->current_epoch_);
    PutVarint64(blob, op->in_window_);
    const bool has_tail = op->count_tail_ != nullptr;
    blob->push_back(has_tail ? 1 : 0);
    if (has_tail) {
      PutVarint64(blob, op->count_tail_->chunk_seq());
      PutVarint64(blob, op->count_tail_->index());
    }
  }
}

Status WindowManager::RestorePositions(const std::string& blob) {
  Slice in(blob);
  uint32_t n;
  if (!GetVarint32(&in, &n)) return Status::Corruption("window positions");
  for (uint32_t i = 0; i < n; ++i) {
    int64_t offset;
    uint64_t seq, index;
    if (!GetVarsint64(&in, &offset) || !GetVarint64(&in, &seq) ||
        !GetVarint64(&in, &index)) {
      return Status::Corruption("window head position");
    }
    heads_[offset] = reservoir_->NewIteratorAtPosition(seq, index);
  }
  if (!GetVarint32(&in, &n)) return Status::Corruption("window positions");
  for (uint32_t i = 0; i < n; ++i) {
    int64_t offset;
    uint64_t seq, index;
    if (!GetVarsint64(&in, &offset) || !GetVarint64(&in, &seq) ||
        !GetVarint64(&in, &index)) {
      return Status::Corruption("window tail position");
    }
    tails_[offset] = reservoir_->NewIteratorAtPosition(seq, index);
  }
  if (!GetVarint32(&in, &n)) return Status::Corruption("window positions");
  for (uint32_t i = 0; i < n; ++i) {
    Slice key;
    int64_t epoch;
    uint64_t in_window;
    if (!GetLengthPrefixedSlice(&in, &key) || !GetVarsint64(&in, &epoch) ||
        !GetVarint64(&in, &in_window) || in.empty()) {
      return Status::Corruption("window operator state");
    }
    const bool has_tail = in[0] != 0;
    in.remove_prefix(1);
    uint64_t seq = 0, index = 0;
    if (has_tail &&
        (!GetVarint64(&in, &seq) || !GetVarint64(&in, &index))) {
      return Status::Corruption("count tail position");
    }
    auto it = operators_.find(key.ToString());
    if (it != operators_.end()) {
      it->second->current_epoch_ = epoch;
      it->second->in_window_ = in_window;
      if (has_tail) {
        it->second->count_tail_ =
            reservoir_->NewIteratorAtPosition(seq, index);
      }
    } else {
      // The operator has not been re-created yet (restore ran before the
      // plan registered its windows): stash for GetOrCreate instead of
      // silently dropping recovery state.
      PendingOperatorState& pending = pending_restores_[key.ToString()];
      pending.epoch = epoch;
      pending.in_window = in_window;
      pending.has_tail = has_tail;
      pending.tail_chunk_seq = seq;
      pending.tail_index = index;
    }
  }
  return Status::OK();
}

WindowOperator::WindowOperator(WindowSpec spec,
                               reservoir::Reservoir* reservoir)
    : spec_(spec), reservoir_(reservoir) {}

namespace {
void AppendPointers(const std::vector<Event>& events,
                    std::vector<const Event*>* out) {
  out->reserve(out->size() + events.size());
  for (const Event& e : events) out->push_back(&e);
}
}  // namespace

void WindowOperator::Collect(Micros now, const EdgeDeltas& deltas,
                             WindowDelta* out) {
  out->entered.clear();
  out->expired.clear();
  out->owned.clear();
  out->reset = false;
  out->epoch = 0;

  auto entered_it = deltas.entered_by_offset.find(spec_.HeadOffset());
  const std::vector<Event>* entered =
      entered_it == deltas.entered_by_offset.end() ? nullptr
                                                   : &entered_it->second;

  switch (spec_.kind) {
    case WindowKind::kSliding: {
      if (entered != nullptr) AppendPointers(*entered, &out->entered);
      auto expired_it = deltas.expired_by_offset.find(spec_.TailOffset());
      if (expired_it != deltas.expired_by_offset.end()) {
        AppendPointers(expired_it->second, &out->expired);
      }
      break;
    }
    case WindowKind::kTumbling: {
      const Micros epoch = (now / spec_.size) * spec_.size;
      out->epoch = epoch;
      if (epoch != current_epoch_) {
        out->reset = true;
        current_epoch_ = epoch;
      }
      if (entered != nullptr) AppendPointers(*entered, &out->entered);
      break;
    }
    case WindowKind::kInfinite: {
      if (entered != nullptr) AppendPointers(*entered, &out->entered);
      break;
    }
    case WindowKind::kCountSliding: {
      auto head_it = deltas.entered_by_offset.find(0);
      if (head_it != deltas.entered_by_offset.end()) {
        AppendPointers(head_it->second, &out->entered);
        in_window_ += head_it->second.size();
      }
      // The count tail drains a private iterator whose event references
      // are invalidated by Advance: copy into owned storage first.
      count_tail_->Refresh();
      while (in_window_ > spec_.count && !count_tail_->AtEnd()) {
        out->owned.push_back(count_tail_->event());
        count_tail_->Advance();
        count_tail_->Refresh();
        --in_window_;
      }
      for (const Event& e : out->owned) out->expired.push_back(&e);
      break;
    }
  }
}

}  // namespace railgun::window
