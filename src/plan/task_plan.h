// Task plan (paper §4.1.2): a DAG of Window -> Filter -> GroupBy ->
// Aggregator operators computing every metric of a task, with shared
// prefixes. Metrics that share a window, filter and group-by reuse the
// same DAG path, so each arriving event advances each distinct window
// once and touches exactly one state-store key per DAG leaf (§4.1.3).
#ifndef RAILGUN_PLAN_TASK_PLAN_H_
#define RAILGUN_PLAN_TASK_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agg/aggregator.h"
#include "common/status.h"
#include "query/query.h"
#include "reservoir/reservoir.h"
#include "storage/db.h"
#include "window/window_operator.h"

namespace railgun::plan {

// One computed aggregation for the arriving event's entity.
struct MetricResult {
  uint64_t metric_id;
  std::string metric_name;
  std::string group_key;
  reservoir::FieldValue value;
};

class TaskPlan {
 public:
  // All pointers are borrowed and must outlive the plan. The DB gains an
  // "agg_aux" column family for countDistinct if not already present.
  TaskPlan(reservoir::Reservoir* reservoir, storage::DB* db);

  TaskPlan(const TaskPlan&) = delete;
  TaskPlan& operator=(const TaskPlan&) = delete;

  Status Init();

  // Registers a query's metrics into the DAG (prefix-shared).
  Status AddQuery(const query::QueryDef& query);

  // Registers a query and backfills its aggregation state from the
  // events already in the reservoir (paper §6 future work). The new
  // metrics run in their own DAG island so historical replay cannot
  // disturb the positions of existing window iterators.
  Status AddQueryBackfilled(const query::QueryDef& query);

  // Advances every window for the arriving event (already appended to
  // the reservoir) and updates all aggregation states. Appends one
  // MetricResult per metric whose filter accepts the event, keyed by the
  // event's group-by values. Pass results == nullptr to skip result
  // reporting (fire-and-forget ingestion; state is still updated).
  Status ProcessEvent(const reservoir::Event& event,
                      std::vector<MetricResult>* results);

  // Serializes / restores every window-edge iterator position across the
  // plan (checkpoint support). Restore must be called after the same
  // queries were re-added in the same order.
  void SaveWindowPositions(std::string* blob) const;
  Status RestoreWindowPositions(const std::string& blob);

  // DAG introspection (tests + DESIGN ablations).
  size_t num_window_nodes() const;
  size_t num_filter_nodes() const;
  size_t num_group_nodes() const;
  size_t num_metrics() const { return num_metrics_; }
  size_t num_edge_iterators() const;

 private:
  struct MetricLeaf {
    uint64_t metric_id;
    std::string name;
    agg::AggKind kind;
    int field_index;  // -1 => count(*) style (value 1).
    std::unique_ptr<agg::Aggregator> aggregator;
  };

  struct GroupNode {
    std::vector<std::string> fields;
    std::vector<int> field_indices;
    std::string key;  // Canonical field list.
    std::vector<MetricLeaf> metrics;
  };

  struct FilterNode {
    std::shared_ptr<query::Expr> expr;  // Null = pass-through.
    std::string key;                    // Canonical expression text.
    std::vector<GroupNode> groups;
  };

  struct WindowNode {
    window::WindowSpec spec;
    window::WindowOperator* op = nullptr;
    std::vector<FilterNode> filters;
  };

  // An island is an independently advanced sub-DAG; island 0 holds all
  // normally added queries, and each backfilled query gets its own.
  struct Island {
    explicit Island(reservoir::Reservoir* reservoir) : windows_mgr(reservoir) {}
    window::WindowManager windows_mgr;
    std::vector<WindowNode> windows;
  };

  Status AddQueryToIsland(const query::QueryDef& query, Island* island);
  Status ProcessEventInIsland(const reservoir::Event& event, Island* island,
                              std::vector<MetricResult>* results);
  Status ApplyDelta(const window::WindowDelta& delta, WindowNode* node);
  // Applies a filter-accepted event list to one group node, batching
  // runs of consecutive events with the same group key into columnar
  // EnterColumn/ExpireColumn calls (one state Get/Put per run per leaf).
  Status ApplyEventRun(const std::vector<const reservoir::Event*>& events,
                       bool entering, Micros epoch, GroupNode* gnode);
  Status ApplyEventToLeaf(const reservoir::Event& event, bool entering,
                          Micros epoch, const GroupNode& group,
                          MetricLeaf* leaf);

  // State-store key for a (metric, epoch, entity).
  static std::string StateKey(uint64_t metric_id, Micros epoch,
                              const std::string& group_key);
  static std::string GroupKeyOf(const reservoir::Event& event,
                                const GroupNode& group);

  reservoir::Reservoir* reservoir_;
  storage::DB* db_;
  uint32_t aux_cf_ = 0;
  std::vector<std::unique_ptr<Island>> islands_;
  uint64_t next_metric_id_ = 1;
  size_t num_metrics_ = 0;

  // Delta-application scratch, reused across events/batches.
  std::vector<const reservoir::Event*> scratch_filtered_;
  std::vector<double> scratch_values_;
  std::vector<uint64_t> scratch_offsets_;
};

}  // namespace railgun::plan

#endif  // RAILGUN_PLAN_TASK_PLAN_H_
