#include "plan/task_plan.h"

#include "common/coding.h"

#include <algorithm>

namespace railgun::plan {

using reservoir::Event;
using reservoir::FieldValue;
using window::WindowDelta;
using window::WindowKind;

TaskPlan::TaskPlan(reservoir::Reservoir* reservoir, storage::DB* db)
    : reservoir_(reservoir), db_(db) {}

Status TaskPlan::Init() {
  auto cf_or = db_->FindColumnFamily("agg_aux");
  if (cf_or.ok()) {
    aux_cf_ = cf_or.value();
  } else {
    RAILGUN_ASSIGN_OR_RETURN(aux_cf_, db_->CreateColumnFamily("agg_aux"));
  }
  islands_.push_back(std::make_unique<Island>(reservoir_));
  return Status::OK();
}

Status TaskPlan::AddQuery(const query::QueryDef& query) {
  return AddQueryToIsland(query, islands_[0].get());
}

Status TaskPlan::AddQueryToIsland(const query::QueryDef& query,
                                  Island* island) {
  const reservoir::Schema* schema = reservoir_->schema();

  // Window node (prefix level 1).
  WindowNode* wnode = nullptr;
  for (auto& w : island->windows) {
    if (w.spec == query.window) {
      wnode = &w;
      break;
    }
  }
  if (wnode == nullptr) {
    island->windows.emplace_back();
    wnode = &island->windows.back();
    wnode->spec = query.window;
    wnode->op = island->windows_mgr.GetOrCreate(query.window);
  }

  // Filter node (prefix level 2).
  const std::string filter_key =
      query.filter == nullptr ? "" : query.filter->ToString();
  FilterNode* fnode = nullptr;
  for (auto& f : wnode->filters) {
    if (f.key == filter_key) {
      fnode = &f;
      break;
    }
  }
  if (fnode == nullptr) {
    wnode->filters.emplace_back();
    fnode = &wnode->filters.back();
    fnode->key = filter_key;
    fnode->expr = query.filter;
    if (fnode->expr != nullptr) {
      RAILGUN_RETURN_IF_ERROR(fnode->expr->Bind(*schema));
    }
  }

  // Group node (prefix level 3).
  std::string group_key_id;
  for (const auto& f : query.group_by) group_key_id += f + ",";
  GroupNode* gnode = nullptr;
  for (auto& g : fnode->groups) {
    if (g.key == group_key_id) {
      gnode = &g;
      break;
    }
  }
  if (gnode == nullptr) {
    fnode->groups.emplace_back();
    gnode = &fnode->groups.back();
    gnode->key = group_key_id;
    gnode->fields = query.group_by;
    for (const auto& field : query.group_by) {
      const int idx = schema->FieldIndex(field);
      if (idx < 0) {
        return Status::InvalidArgument("unknown group-by field: " + field);
      }
      gnode->field_indices.push_back(idx);
    }
  }

  // Aggregator leaves.
  for (const auto& agg_spec : query.aggs) {
    MetricLeaf leaf;
    leaf.metric_id = next_metric_id_++;
    leaf.kind = agg_spec.kind;
    leaf.field_index = -1;
    if (!agg_spec.field.empty()) {
      leaf.field_index = schema->FieldIndex(agg_spec.field);
      if (leaf.field_index < 0) {
        return Status::InvalidArgument("unknown aggregation field: " +
                                       agg_spec.field);
      }
    }
    leaf.name = agg_spec.name + " over " + query.window.ToString();
    if (!query.group_by.empty()) {
      leaf.name += " by " + group_key_id.substr(0, group_key_id.size() - 1);
    }
    leaf.aggregator = agg::Aggregator::Create(agg_spec.kind);
    gnode->metrics.push_back(std::move(leaf));
    ++num_metrics_;
  }
  return Status::OK();
}

Status TaskPlan::AddQueryBackfilled(const query::QueryDef& query) {
  auto island = std::make_unique<Island>(reservoir_);
  RAILGUN_RETURN_IF_ERROR(AddQueryToIsland(query, island.get()));

  // Replay history through the new island only. The island's iterators
  // start at the oldest event, so the window mechanics replay exactly.
  auto replay_iter = reservoir_->NewIterator();
  while (!replay_iter->AtEnd()) {
    const Event event = replay_iter->event();  // Copy: we advance below.
    RAILGUN_RETURN_IF_ERROR(
        ProcessEventInIsland(event, island.get(), /*results=*/nullptr));
    replay_iter->Advance();
  }
  islands_.push_back(std::move(island));
  return Status::OK();
}

Status TaskPlan::ProcessEvent(const Event& event,
                              std::vector<MetricResult>* results) {
  for (auto& island : islands_) {
    RAILGUN_RETURN_IF_ERROR(
        ProcessEventInIsland(event, island.get(), results));
  }
  return Status::OK();
}

Status TaskPlan::ProcessEventInIsland(const Event& event, Island* island,
                                      std::vector<MetricResult>* results) {
  window::EdgeDeltas edges;
  island->windows_mgr.Advance(event.timestamp, &edges);

  WindowDelta delta;
  for (auto& wnode : island->windows) {
    wnode.op->Collect(event.timestamp, edges, &delta);
    RAILGUN_RETURN_IF_ERROR(ApplyDelta(delta, &wnode));

    // Report the (updated) aggregations for the arriving event's entity.
    if (results == nullptr) continue;
    const Micros epoch =
        wnode.spec.kind == WindowKind::kTumbling ? delta.epoch : 0;
    for (auto& fnode : wnode.filters) {
      if (fnode.expr != nullptr && !fnode.expr->EvalBool(event)) continue;
      for (auto& gnode : fnode.groups) {
        const std::string group_key = GroupKeyOf(event, gnode);
        for (auto& leaf : gnode.metrics) {
          const std::string key =
              StateKey(leaf.metric_id, epoch, group_key);
          std::string state;
          Status s = db_->Get(storage::kDefaultColumnFamily, key, &state);
          if (!s.ok() && !s.IsNotFound()) return s;
          RAILGUN_ASSIGN_OR_RETURN(FieldValue value,
                                   leaf.aggregator->Result(state));
          results->push_back(
              MetricResult{leaf.metric_id, leaf.name, group_key, value});
        }
      }
    }
  }
  return Status::OK();
}

Status TaskPlan::ApplyDelta(const WindowDelta& delta, WindowNode* node) {
  const Micros epoch =
      node->spec.kind == WindowKind::kTumbling ? delta.epoch : 0;
  for (auto& fnode : node->filters) {
    // Evaluate the filter once per event, then hand each group node the
    // accepted run so same-group stretches collapse into columnar
    // aggregator calls.
    scratch_filtered_.clear();
    for (const Event* e : delta.entered) {
      if (fnode.expr != nullptr && !fnode.expr->EvalBool(*e)) continue;
      scratch_filtered_.push_back(e);
    }
    for (auto& gnode : fnode.groups) {
      RAILGUN_RETURN_IF_ERROR(
          ApplyEventRun(scratch_filtered_, /*entering=*/true, epoch, &gnode));
    }

    scratch_filtered_.clear();
    for (const Event* e : delta.expired) {
      if (fnode.expr != nullptr && !fnode.expr->EvalBool(*e)) continue;
      scratch_filtered_.push_back(e);
    }
    for (auto& gnode : fnode.groups) {
      RAILGUN_RETURN_IF_ERROR(ApplyEventRun(scratch_filtered_,
                                            /*entering=*/false, epoch,
                                            &gnode));
    }
  }
  return Status::OK();
}

Status TaskPlan::ApplyEventRun(const std::vector<const Event*>& events,
                               bool entering, Micros epoch,
                               GroupNode* gnode) {
  size_t i = 0;
  while (i < events.size()) {
    const std::string group_key = GroupKeyOf(*events[i], *gnode);
    size_t j = i + 1;
    while (j < events.size() && GroupKeyOf(*events[j], *gnode) == group_key) {
      ++j;
    }
    const size_t n = j - i;
    if (n == 1) {
      // Single-event runs take the scalar path; the columnar machinery
      // only pays off when a state round-trip is amortized over >1 event.
      for (auto& leaf : gnode->metrics) {
        RAILGUN_RETURN_IF_ERROR(
            ApplyEventToLeaf(*events[i], entering, epoch, *gnode, &leaf));
      }
      i = j;
      continue;
    }
    scratch_offsets_.clear();
    for (size_t r = i; r < j; ++r) {
      scratch_offsets_.push_back(events[r]->offset);
    }
    for (auto& leaf : gnode->metrics) {
      // countDistinct aggregates value *identity* (string keys in the
      // aux column family), which the double column cannot carry.
      if (leaf.kind == agg::AggKind::kCountDistinct) {
        for (size_t r = i; r < j; ++r) {
          RAILGUN_RETURN_IF_ERROR(
              ApplyEventToLeaf(*events[r], entering, epoch, *gnode, &leaf));
        }
        continue;
      }
      scratch_values_.clear();
      for (size_t r = i; r < j; ++r) {
        scratch_values_.push_back(
            leaf.field_index >= 0
                ? events[r]->values[leaf.field_index].ToNumber()
                : 1.0);
      }
      const std::string key = StateKey(leaf.metric_id, epoch, group_key);
      std::string state;
      Status s = db_->Get(storage::kDefaultColumnFamily, key, &state);
      if (!s.ok() && !s.IsNotFound()) return s;
      agg::AggContext ctx;
      ctx.db = db_;
      ctx.aux_cf = aux_cf_;
      ctx.aux_key_prefix = key + "|";
      if (entering) {
        RAILGUN_RETURN_IF_ERROR(leaf.aggregator->EnterColumn(
            scratch_values_.data(), scratch_offsets_.data(), n, &state,
            &ctx));
      } else {
        RAILGUN_RETURN_IF_ERROR(leaf.aggregator->ExpireColumn(
            scratch_values_.data(), scratch_offsets_.data(), n, &state,
            &ctx));
      }
      RAILGUN_RETURN_IF_ERROR(
          db_->Put(storage::kDefaultColumnFamily, key, state));
    }
    i = j;
  }
  return Status::OK();
}

Status TaskPlan::ApplyEventToLeaf(const Event& event, bool entering,
                                  Micros epoch, const GroupNode& group,
                                  MetricLeaf* leaf) {
  const std::string group_key = GroupKeyOf(event, group);
  const std::string key = StateKey(leaf->metric_id, epoch, group_key);

  std::string state;
  Status s = db_->Get(storage::kDefaultColumnFamily, key, &state);
  if (!s.ok() && !s.IsNotFound()) return s;

  const FieldValue value =
      leaf->field_index >= 0 ? event.values[leaf->field_index]
                             : FieldValue(int64_t{1});

  agg::AggContext ctx;
  ctx.db = db_;
  ctx.aux_cf = aux_cf_;
  ctx.aux_key_prefix = key + "|";

  if (entering) {
    RAILGUN_RETURN_IF_ERROR(
        leaf->aggregator->Enter(value, event, &state, &ctx));
  } else {
    RAILGUN_RETURN_IF_ERROR(
        leaf->aggregator->Expire(value, event, &state, &ctx));
  }
  return db_->Put(storage::kDefaultColumnFamily, key, state);
}

std::string TaskPlan::StateKey(uint64_t metric_id, Micros epoch,
                               const std::string& group_key) {
  std::string key = "m";
  key += std::to_string(metric_id);
  if (epoch != 0) {
    key += "@";
    key += std::to_string(epoch);
  }
  key += "|";
  key += group_key;
  return key;
}

std::string TaskPlan::GroupKeyOf(const Event& event, const GroupNode& group) {
  std::string key;
  for (size_t i = 0; i < group.field_indices.size(); ++i) {
    if (i > 0) key.push_back('\x1f');
    key += event.values[group.field_indices[i]].ToString();
  }
  return key;
}

void TaskPlan::SaveWindowPositions(std::string* blob) const {
  std::string tmp;
  for (const auto& island : islands_) {
    tmp.clear();
    island->windows_mgr.SavePositions(&tmp);
    PutLengthPrefixedSlice(blob, tmp);
  }
}

Status TaskPlan::RestoreWindowPositions(const std::string& blob) {
  Slice in(blob);
  for (auto& island : islands_) {
    Slice island_blob;
    if (!GetLengthPrefixedSlice(&in, &island_blob)) {
      return Status::Corruption("window position blob too short");
    }
    RAILGUN_RETURN_IF_ERROR(
        island->windows_mgr.RestorePositions(island_blob.ToString()));
  }
  return Status::OK();
}

size_t TaskPlan::num_window_nodes() const {
  size_t n = 0;
  for (const auto& island : islands_) n += island->windows.size();
  return n;
}

size_t TaskPlan::num_filter_nodes() const {
  size_t n = 0;
  for (const auto& island : islands_) {
    for (const auto& w : island->windows) n += w.filters.size();
  }
  return n;
}

size_t TaskPlan::num_group_nodes() const {
  size_t n = 0;
  for (const auto& island : islands_) {
    for (const auto& w : island->windows) {
      for (const auto& f : w.filters) n += f.groups.size();
    }
  }
  return n;
}

size_t TaskPlan::num_edge_iterators() const {
  size_t n = 0;
  for (const auto& island : islands_) {
    n += island->windows_mgr.num_edge_iterators();
  }
  return n;
}

}  // namespace railgun::plan
