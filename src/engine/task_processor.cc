#include "engine/task_processor.h"

#include <algorithm>

#include "common/coding.h"
#include "trace/tracer.h"

namespace railgun::engine {

namespace {
constexpr char kCkptOffsetKey[] = "__ckpt_offset";
constexpr char kCkptWindowsKey[] = "__ckpt_winpos";

std::string ReservoirDir(const std::string& dir) { return dir + "/reservoir"; }
std::string DbDir(const std::string& dir) { return dir + "/db"; }
std::string CkptDir(const std::string& dir) { return dir + "/ckpt"; }
std::string CkptTmpDir(const std::string& dir) { return dir + "/ckpt.tmp"; }
}  // namespace

TaskProcessor::TaskProcessor(const TaskProcessorOptions& options,
                             std::string dir, const StreamDef& stream,
                             std::string topic)
    : options_(options),
      dir_(std::move(dir)),
      stream_(stream),
      topic_(std::move(topic)),
      env_(options.db.env != nullptr ? options.db.env : Env::Default()) {}

Status TaskProcessor::Open() {
  RAILGUN_RETURN_IF_ERROR(env_->CreateDir(dir_));

  // Recovery rule: the live state store is only trustworthy as of its
  // last checkpoint (paper §4.1.3 recovers from the RocksDB checkpoint).
  RAILGUN_RETURN_IF_ERROR(RollBackToCheckpoint());

  reservoir::ReservoirOptions ropts = options_.reservoir;
  ropts.schema_fields = stream_.fields;
  reservoir_.reset(new reservoir::Reservoir(ropts, ReservoirDir(dir_)));
  RAILGUN_RETURN_IF_ERROR(reservoir_->Open());

  RAILGUN_RETURN_IF_ERROR(
      storage::DB::Open(options_.db, DbDir(dir_), &db_));

  plan_.reset(new plan::TaskPlan(reservoir_.get(), db_.get()));
  RAILGUN_RETURN_IF_ERROR(plan_->Init());
  for (const auto& q : stream_.queries) {
    RAILGUN_ASSIGN_OR_RETURN(std::string partitioner,
                             stream_.PartitionerForQuery(q));
    if (stream_.TopicFor(partitioner) == topic_) {
      RAILGUN_RETURN_IF_ERROR(plan_->AddQuery(q));
      installed_queries_.insert(q.raw);
    }
  }
  RAILGUN_RETURN_IF_ERROR(InstallPipelines(stream_));

  // Restore checkpointed positions, if any.
  std::string value;
  Status s = db_->Get(storage::kDefaultColumnFamily, kCkptOffsetKey, &value);
  if (s.ok()) {
    Slice in(value);
    int64_t ckpt_offset;
    if (!GetVarsint64(&in, &ckpt_offset)) {
      return Status::Corruption("bad checkpoint offset");
    }
    plan_skip_threshold_ = ckpt_offset;
    last_processed_offset_ = ckpt_offset;
    // Replay must rebuild the open chunk the crash destroyed: events in
    // (reservoir_persisted, ckpt_offset] were processed through the plan
    // (state is in the checkpoint) but never persisted to segments, so
    // replay starts at the *older* of the two boundaries. Appends and
    // plan updates are skipped independently below.
    const uint64_t persisted_plus_one =
        reservoir_->NumPersistedChunks() > 0
            ? reservoir_->LastPersistedOffset() + 1
            : 0;
    replay_offset_ = std::min(static_cast<uint64_t>(ckpt_offset + 1),
                              persisted_plus_one);

    std::string winpos;
    s = db_->Get(storage::kDefaultColumnFamily, kCkptWindowsKey, &winpos);
    if (s.ok()) {
      RAILGUN_RETURN_IF_ERROR(plan_->RestoreWindowPositions(winpos));
    } else if (!s.IsNotFound()) {
      return s;
    }
  } else if (!s.IsNotFound()) {
    return s;
  } else {
    replay_offset_ = 0;
  }

  // Events already persisted in the reservoir must not be re-appended.
  if (reservoir_->NumPersistedChunks() > 0) {
    reservoir_skip_threshold_ =
        static_cast<int64_t>(reservoir_->LastPersistedOffset());
  }
  return Status::OK();
}

Status TaskProcessor::InstallPipelines(const StreamDef& def) {
  // Pipelines run on the first partitioner's topic only: every event is
  // produced to every partitioner topic, so executing on exactly one of
  // them runs each pipeline once per event.
  if (def.partitioners.empty()) return Status::OK();
  if (def.TopicFor(def.partitioners[0]) != topic_) return Status::OK();
  const reservoir::Schema source(0, def.fields);
  for (const auto& p : def.pipelines) {
    if (installed_pipelines_.count(p.raw) > 0) continue;
    RAILGUN_ASSIGN_OR_RETURN(
        std::unique_ptr<ops::Pipeline> compiled,
        ops::Pipeline::Compile(p.raw, source, options_.registry));
    pipelines_.push_back(std::move(compiled));
    installed_pipelines_.insert(p.raw);
  }
  return Status::OK();
}

std::vector<ops::RoutedEvent> TaskProcessor::TakeRouted() {
  std::vector<ops::RoutedEvent> routed;
  routed.swap(pending_routed_);
  return routed;
}

Status TaskProcessor::RollBackToCheckpoint() {
  if (env_->FileExists(CkptDir(dir_) + "/CURRENT")) {
    RAILGUN_RETURN_IF_ERROR(env_->RemoveDirRecursive(DbDir(dir_)));
    RAILGUN_RETURN_IF_ERROR(env_->CreateDir(DbDir(dir_)));
    std::vector<std::string> children;
    RAILGUN_RETURN_IF_ERROR(env_->ListDir(CkptDir(dir_), &children));
    for (const auto& child : children) {
      RAILGUN_RETURN_IF_ERROR(env_->CopyFile(
          JoinPath(CkptDir(dir_), child), JoinPath(DbDir(dir_), child)));
    }
  } else if (env_->FileExists(DbDir(dir_) + "/CURRENT")) {
    // A state store without any checkpoint: its window positions are
    // unknown, so wipe it and rebuild from offset 0 (the reservoir's
    // events are replay-skipped; only the plan re-runs).
    RAILGUN_RETURN_IF_ERROR(env_->RemoveDirRecursive(DbDir(dir_)));
  }
  return Status::OK();
}

Status TaskProcessor::ProcessMessage(const msg::Message& message,
                                     ReplyEnvelope* reply) {
  reply->results.clear();
  reply->request_id = 0;
  reply->reply_topic.clear();

  EventEnvelope env;
  Slice rest;
  RAILGUN_RETURN_IF_ERROR(
      DecodeEventEnvelope(Slice(message.payload), *reservoir_->schema(),
                          &env, &rest));
  env.event.offset = message.offset;
  return ApplyEvent(env.event, env.request_id, Slice(env.reply_topic),
                    trace::ParseTraceTrailer(rest), reply);
}

Status TaskProcessor::ApplyEvent(const reservoir::Event& event,
                                 uint64_t request_id,
                                 const Slice& reply_topic,
                                 const trace::TraceContext& trace_ctx,
                                 ReplyEnvelope* reply) {
  reply->request_id = request_id;
  reply->reply_topic.assign(reply_topic.data(), reply_topic.size());
  reply->trace = trace_ctx;

  const int64_t offset = static_cast<int64_t>(event.offset);
  if (offset > reservoir_skip_threshold_) {
    RAILGUN_RETURN_IF_ERROR(reservoir_->Append(event));
  }
  if (offset > plan_skip_threshold_) {
    trace::Tracer* tracer = trace::Tracer::Global();
    const Micros apply_start =
        tracer->enabled() ? tracer->NowMicros() : 0;
    if (reply_topic.empty()) {
      // Fire-and-forget ingestion: update state, skip result reporting.
      RAILGUN_RETURN_IF_ERROR(plan_->ProcessEvent(event, nullptr));
    } else {
      scratch_results_.clear();
      RAILGUN_RETURN_IF_ERROR(plan_->ProcessEvent(event, &scratch_results_));
      reply->results.reserve(scratch_results_.size());
      for (auto& r : scratch_results_) {
        reply->results.push_back(
            MetricReply{std::move(r.metric_name), std::move(r.group_key),
                        std::move(r.value)});
      }
    }
    if (apply_start != 0) {
      // The reply chain parents under the window-apply span.
      reply->trace = tracer->Record(trace::Stage::kUnitWindowApply,
                                    trace_ctx, apply_start,
                                    tracer->NowMicros());
    }
    if (!pipelines_.empty()) {
      const Micros pipe_start = apply_start != 0 ? tracer->NowMicros() : 0;
      for (auto& pipeline : pipelines_) {
        pipeline->Process(event, &pending_routed_);
      }
      if (pipe_start != 0) {
        tracer->Record(trace::Stage::kUnitPipeline, trace_ctx, pipe_start,
                       tracer->NowMicros());
      }
    }
  }
  last_processed_offset_ = offset;
  ++processed_count_;

  if (++events_since_checkpoint_ >= options_.checkpoint_interval_events) {
    events_since_checkpoint_ = 0;
    RAILGUN_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::OK();
}

Status TaskProcessor::ProcessBatch(
    const std::vector<msg::MessageView>& messages,
    std::vector<ReplyEnvelope>* replies, size_t* failed) {
  replies->clear();
  replies->resize(messages.size());
  *failed = 0;
  // One columnar pass decodes every envelope in the batch; rows then
  // materialize through a reused scratch event. A message that fails to
  // decode or process is skipped — its reply slot keeps request_id 0,
  // so no reply is routed for it — without aborting the rest.
  trace::Tracer* tracer = trace::Tracer::Global();
  const Micros batch_start = tracer->enabled() ? tracer->NowMicros() : 0;
  column_batch_.Decode(messages, *reservoir_->schema());
  // Batch-level spans (decode, whole-batch process) attach to the first
  // traced row's context; per-row spans use each row's own trailer.
  trace::TraceContext batch_ctx;
  if (batch_start != 0) {
    for (size_t i = 0; i < messages.size() && !batch_ctx.valid(); ++i) {
      if (column_batch_.row_ok(i)) {
        batch_ctx = trace::ParseTraceTrailer(column_batch_.trailer(i));
      }
    }
    tracer->Record(trace::Stage::kUnitDecode, batch_ctx, batch_start,
                   tracer->NowMicros());
  }
  for (size_t i = 0; i < messages.size(); ++i) {
    if (!column_batch_.row_ok(i)) {
      ++*failed;
      continue;
    }
    column_batch_.MaterializeRow(i, &scratch_event_);
    const trace::TraceContext row_ctx =
        batch_start != 0
            ? trace::ParseTraceTrailer(column_batch_.trailer(i))
            : trace::TraceContext();
    if (!ApplyEvent(scratch_event_, column_batch_.request_id(i),
                    column_batch_.reply_topic(i), row_ctx, &(*replies)[i])
             .ok()) {
      (*replies)[i] = ReplyEnvelope();
      ++*failed;
    }
  }
  if (batch_start != 0) {
    tracer->Record(trace::Stage::kUnitProcess, batch_ctx, batch_start,
                   tracer->NowMicros());
  }
  return Status::OK();
}

Status TaskProcessor::SyncQueries(const StreamDef& updated) {
  for (const auto& q : updated.queries) {
    auto partitioner_or = updated.PartitionerForQuery(q);
    if (!partitioner_or.ok()) continue;
    if (updated.TopicFor(partitioner_or.value()) != topic_) continue;
    if (installed_queries_.count(q.raw) > 0) continue;
    RAILGUN_RETURN_IF_ERROR(plan_->AddQueryBackfilled(q));
    installed_queries_.insert(q.raw);
  }
  RAILGUN_RETURN_IF_ERROR(InstallPipelines(updated));
  stream_ = updated;
  return Status::OK();
}

Status TaskProcessor::Checkpoint() {
  // 1. Make the reservoir durable up to the processed offset boundary
  //    (open-chunk events stay bus-replayable).
  RAILGUN_RETURN_IF_ERROR(reservoir_->Sync());

  // 2. Stamp the state store with the consistent replay point + window
  //    iterator positions, then snapshot it.
  std::string offset_value;
  PutVarsint64(&offset_value, last_processed_offset_);
  RAILGUN_RETURN_IF_ERROR(db_->Put(storage::kDefaultColumnFamily,
                                   kCkptOffsetKey, offset_value));
  std::string winpos;
  plan_->SaveWindowPositions(&winpos);
  RAILGUN_RETURN_IF_ERROR(
      db_->Put(storage::kDefaultColumnFamily, kCkptWindowsKey, winpos));

  RAILGUN_RETURN_IF_ERROR(env_->RemoveDirRecursive(CkptTmpDir(dir_)));
  RAILGUN_RETURN_IF_ERROR(db_->Checkpoint(CkptTmpDir(dir_)));
  RAILGUN_RETURN_IF_ERROR(env_->RemoveDirRecursive(CkptDir(dir_)));
  return env_->RenameFile(CkptTmpDir(dir_), CkptDir(dir_));
}

Status TaskProcessor::CloneData(Env* env, const std::string& source_dir,
                                const std::string& target_dir) {
  RAILGUN_RETURN_IF_ERROR(env->CreateDir(target_dir));

  // Reservoir segments + schema registry (torn tail records in the
  // newest segment are tolerated by the scan on open).
  const std::string src_res = ReservoirDir(source_dir);
  if (env->FileExists(src_res)) {
    RAILGUN_RETURN_IF_ERROR(env->CreateDir(ReservoirDir(target_dir)));
    std::vector<std::string> children;
    RAILGUN_RETURN_IF_ERROR(env->ListDir(src_res, &children));
    for (const auto& child : children) {
      // Delta copy: sealed segments already present with matching size
      // are skipped (paper §4.2: stale processors copy only the delta).
      const std::string from = JoinPath(src_res, child);
      const std::string to = JoinPath(ReservoirDir(target_dir), child);
      uint64_t from_size = 0, to_size = 0;
      if (env->FileExists(to) &&
          env->GetFileSize(from, &from_size).ok() &&
          env->GetFileSize(to, &to_size).ok() && from_size == to_size) {
        continue;
      }
      RAILGUN_RETURN_IF_ERROR(env->CopyFile(from, to));
    }
  }

  // Last state-store checkpoint (atomic directory).
  const std::string src_ckpt = CkptDir(source_dir);
  if (env->FileExists(src_ckpt + "/CURRENT")) {
    RAILGUN_RETURN_IF_ERROR(env->RemoveDirRecursive(CkptDir(target_dir)));
    RAILGUN_RETURN_IF_ERROR(env->CreateDir(CkptDir(target_dir)));
    std::vector<std::string> children;
    RAILGUN_RETURN_IF_ERROR(env->ListDir(src_ckpt, &children));
    for (const auto& child : children) {
      RAILGUN_RETURN_IF_ERROR(env->CopyFile(
          JoinPath(src_ckpt, child), JoinPath(CkptDir(target_dir), child)));
    }
  }
  return Status::OK();
}

}  // namespace railgun::engine
