// Front-end layer (paper §3.1): accepts client events, routes them to
// every partitioner topic of the stream, collects the per-topic
// aggregation replies from its dedicated reply topic, and completes the
// client request with all computed metrics in a single response.
//
// The data path is batched and wake-on-arrival: Submit/SubmitBatch
// encode the event on the caller's thread and enqueue it; the front-end
// thread drains the queue into one ProduceBatch per partitioner topic
// per cycle, then parks in a blocking bus Poll on its reply topic until
// replies or new submissions arrive. The pending-request table is
// sharded so concurrent submitters don't contend with reply collection.
#ifndef RAILGUN_ENGINE_FRONTEND_H_
#define RAILGUN_ENGINE_FRONTEND_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "engine/admission.h"
#include "engine/stream_def.h"
#include "introspect/registry.h"
#include "msg/bus.h"
#include "trace/tracer.h"

namespace railgun::engine {

struct FrontEndOptions {
  // Pending requests older than this complete with what has arrived
  // (late aggregation replies are discarded upstream, paper §5).
  Micros request_timeout = 10 * kMicrosPerSecond;
  // Max real time the front-end thread parks in its blocking reply poll
  // before re-checking deadlines and shutdown. Replies and submissions
  // wake it immediately; this only bounds the idle park.
  Micros poll_wait = 5 * kMicrosPerMilli;
  size_t poll_max = 1024;
  // Admission control ceilings; all-zero (the default) admits
  // everything. See engine/admission.h.
  AdmissionOptions admission;
  // Optional metrics sink (borrowed; must outlive the front end). The
  // front end records its submit-latency histogram here; depth-style
  // metrics are exported by the owner as registry probes over the
  // accessors below.
  introspect::Registry* registry = nullptr;
};

class FrontEnd {
 public:
  using ReplyCallback =
      std::function<void(Status, const std::vector<MetricReply>&)>;

  FrontEnd(const FrontEndOptions& options, std::string node_id,
           msg::Bus* bus, Clock* clock);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  Status Start();
  // Joins the reply thread and fails every outstanding request's
  // callback with Unavailable — after Stop returns, every accepted
  // Submit has completed exactly once.
  void Stop();

  // Creates the stream's topics (idempotent), remembers its schema and
  // precomputes the fan-out routing (per-partitioner topic + key field).
  Status RegisterStream(const StreamDef& stream);

  // Step 1-2 of Figure 3: queue the event for publication to every
  // partitioner topic. Returns NotFound for unregistered streams,
  // InvalidArgument for events that don't match the schema, and
  // Unavailable when the front end is not running (the callback never
  // fires for any of these). Once accepted, the callback fires on the
  // front-end thread with OK when all expected replies arrived, or with
  // Unavailable and the partial set on timeout, publish failure or Stop
  // — every accepted request completes exactly once.
  // trace_ctx (optional) is the root context minted by api::Client: the
  // enqueue hop records under it and the advanced context travels in
  // the event envelope's trailer.
  Status Submit(const std::string& stream_name,
                const reservoir::Event& event, ReplyCallback callback,
                const trace::TraceContext& trace_ctx = {});

  // Batch submission: accepts all events under one queue lock and one
  // wake-up. callbacks[i] belongs to events[i] and follows the same
  // exactly-once contract; with fewer callbacks than events the
  // remainder are fire-and-forget. traces[i] (optional) is events[i]'s
  // trace context.
  Status SubmitBatch(const std::string& stream_name,
                     const std::vector<reservoir::Event>& events,
                     std::vector<ReplyCallback> callbacks,
                     const std::vector<trace::TraceContext>& traces = {});

  // Fire-and-forget fast path: the event is pipelined through the same
  // submission queue (no reply requested), so callers never wait on the
  // messaging hop.
  Status SubmitNoReply(const std::string& stream_name,
                       const reservoir::Event& event);

  const std::string& reply_topic() const { return reply_topic_; }
  uint64_t completed_requests() const { return completed_; }
  uint64_t timed_out_requests() const { return timed_out_; }
  uint64_t publish_errors() const { return publish_errors_; }
  // Live pending-reply table depth (admission signal / introspection).
  size_t pending_count() const {
    return pending_count_.load(std::memory_order_relaxed);
  }
  // Requests refused with kOverloaded by admission control.
  uint64_t shed_count() const { return admission_.shed_count(); }
  // Broker backlog as sampled by the last run-loop cycle.
  uint64_t backlog_hint() const {
    return backlog_hint_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    int expected = 0;
    int received = 0;
    std::vector<MetricReply> results;
    ReplyCallback callback;
    Micros deadline = 0;
    Micros submitted_at = 0;
  };
  // The pending table is sharded by request id so submitters, the reply
  // loop and the timeout scan contend at 1/kPendingShards granularity.
  static constexpr size_t kPendingShards = 16;
  struct PendingShard {
    Mutex mu{kRankEngineFrontEndPending};
    std::map<uint64_t, Pending> entries GUARDED_BY(mu);
  };
  // Precomputed fan-out for one stream: the schema plus one
  // (topic, key-field index) per partitioner.
  struct Route {
    StreamDef stream;
    reservoir::Schema schema;
    std::vector<std::pair<std::string, int>> targets;
  };
  // One encoded, routed event waiting for the fan-out cycle.
  struct Submission {
    uint64_t request_id = 0;  // 0 = fire-and-forget.
    std::string payload;
    std::vector<std::pair<std::string, std::string>> targets;  // topic,key
    // Context after the enqueue span (invalid when untraced); the
    // produce hop parents under it.
    trace::TraceContext trace;
  };
  struct Completion {
    ReplyCallback callback;
    std::vector<MetricReply> results;
    Status status;
  };

  void Run();
  // Encodes and routes one event against its stream; registers a
  // pending entry when callback is non-null.
  Status Enqueue(const Route& route, const reservoir::Event& event,
                 ReplyCallback callback,
                 const trace::TraceContext& trace_ctx,
                 std::vector<Submission>* out);
  // Publishes every queued submission, one ProduceBatch per topic.
  void DrainSubmissions();
  void FailPending(uint64_t request_id, const Status& status);
  PendingShard& ShardFor(uint64_t request_id) {
    return pending_[request_id % kPendingShards];
  }

  FrontEndOptions options_;
  std::string node_id_;
  msg::Bus* bus_;
  Clock* clock_;
  std::string reply_topic_;
  std::string consumer_id_;

  std::thread thread_;
  std::atomic<bool> running_{false};

  mutable Mutex mu_{kRankEngineFrontEnd};
  std::map<std::string, Route> routes_ GUARDED_BY(mu_);

  Mutex submit_mu_{kRankEngineFrontEndSubmit};
  std::vector<Submission> submit_queue_ GUARDED_BY(submit_mu_);

  std::array<PendingShard, kPendingShards> pending_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> publish_errors_{0};

  // Admission control state. pending_count_ mirrors the summed shard
  // sizes (maintained at every insert/erase) so admission decisions
  // never sweep the 16 shard locks; backlog_hint_ caches the broker
  // depth sampled once per run-loop cycle.
  AdmissionController admission_;
  std::atomic<size_t> pending_count_{0};
  std::atomic<uint64_t> backlog_hint_{0};
  introspect::Histogram* submit_latency_ = nullptr;  // Null without registry.
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_FRONTEND_H_
