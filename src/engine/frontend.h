// Front-end layer (paper §3.1): accepts client events, routes them to
// every partitioner topic of the stream, collects the per-topic
// aggregation replies from its dedicated reply topic, and completes the
// client request with all computed metrics in a single response.
#ifndef RAILGUN_ENGINE_FRONTEND_H_
#define RAILGUN_ENGINE_FRONTEND_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "engine/stream_def.h"
#include "msg/broker.h"

namespace railgun::engine {

struct FrontEndOptions {
  // Pending requests older than this complete with what has arrived
  // (late aggregation replies are discarded upstream, paper §5).
  Micros request_timeout = 10 * kMicrosPerSecond;
  Micros idle_sleep = 100;
  size_t poll_max = 1024;
};

class FrontEnd {
 public:
  using ReplyCallback =
      std::function<void(Status, const std::vector<MetricReply>&)>;

  FrontEnd(const FrontEndOptions& options, std::string node_id,
           msg::MessageBus* bus, Clock* clock);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  Status Start();
  // Joins the reply thread and fails every outstanding request's
  // callback with Unavailable — after Stop returns, every accepted
  // Submit has completed exactly once.
  void Stop();

  // Creates the stream's topics (idempotent) and remembers its schema.
  Status RegisterStream(const StreamDef& stream);

  // Step 1-2 of Figure 3: publish the event to every partitioner topic.
  // Returns NotFound for unregistered streams and Unavailable when the
  // front end is not running (the callback never fires). The callback
  // fires on the front-end thread with OK when all expected replies
  // arrived, or with Unavailable and the partial set on timeout or
  // Stop — every accepted request completes exactly once.
  Status Submit(const std::string& stream_name,
                const reservoir::Event& event, ReplyCallback callback);

  // Fire-and-forget variant used by throughput-oriented benchmarks.
  Status SubmitNoReply(const std::string& stream_name,
                       const reservoir::Event& event);

  const std::string& reply_topic() const { return reply_topic_; }
  uint64_t completed_requests() const { return completed_; }
  uint64_t timed_out_requests() const { return timed_out_; }

 private:
  struct Pending {
    int expected = 0;
    int received = 0;
    std::vector<MetricReply> results;
    ReplyCallback callback;
    Micros deadline = 0;
  };

  void Run();
  Status Publish(const StreamDef& stream, const reservoir::Event& event,
                 uint64_t request_id, const std::string& reply_topic);

  FrontEndOptions options_;
  std::string node_id_;
  msg::MessageBus* bus_;
  Clock* clock_;
  std::string reply_topic_;

  std::thread thread_;
  std::atomic<bool> running_{false};

  std::mutex mu_;
  std::map<std::string, StreamDef> streams_;
  std::map<uint64_t, Pending> pending_;
  uint64_t next_request_id_ = 1;
  uint64_t reply_position_ = 0;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> timed_out_{0};
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_FRONTEND_H_
