// ProcessorUnit (paper §3.2, Algorithm 1): a single-threaded worker that
// handles operational requests, polls its active tasks through the
// consumer group, fetches its replica tasks directly, routes messages to
// their task processors, and replies for active tasks only.
#ifndef RAILGUN_ENGINE_PROCESSOR_UNIT_H_
#define RAILGUN_ENGINE_PROCESSOR_UNIT_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "engine/coordinator.h"
#include "engine/stream_def.h"
#include "engine/task_processor.h"
#include "introspect/registry.h"
#include "msg/bus.h"

namespace railgun::engine {

struct UnitOptions {
  TaskProcessorOptions task;
  size_t poll_max = 256;
  // Max real time the unit loop parks inside a blocking bus poll before
  // re-checking shutdown, operational requests and replica fetches. The
  // loop wakes immediately when a message arrives (wake-on-arrival);
  // this only bounds the idle park.
  Micros poll_wait = 10 * kMicrosPerMilli;
  // Optional metrics sink (borrowed; must outlive the unit): records
  // the per-poll active batch size distribution.
  introspect::Registry* registry = nullptr;
};

struct UnitStats {
  uint64_t active_messages = 0;
  uint64_t replica_messages = 0;
  uint64_t replies_sent = 0;
  uint64_t recoveries = 0;       // Task processors built from a donor.
  uint64_t fresh_tasks = 0;      // Task processors built from nothing.
  uint64_t bytes_recovered = 0;  // Approximate donor copy volume.
  uint64_t poll_errors = 0;      // Failed bus polls / replica fetches.
  uint64_t publish_errors = 0;   // Failed reply publishes.
  uint64_t process_failures = 0;  // Messages a task processor rejected.
  uint64_t routed_events = 0;    // Pipeline-derived events published.
  uint64_t routed_drops = 0;     // Routed events with no usable target.
};

class ProcessorUnit {
 public:
  ProcessorUnit(const UnitOptions& options, std::string unit_id,
                std::string node_id, std::string dir, msg::Bus* bus,
                Coordinator* coordinator, Clock* clock);
  ~ProcessorUnit();

  ProcessorUnit(const ProcessorUnit&) = delete;
  ProcessorUnit& operator=(const ProcessorUnit&) = delete;

  // Registers with the bus and starts the processing thread.
  Status Start();
  // Graceful shutdown (leaves the consumer group).
  void Stop();
  // Abrupt shutdown (fault injection): the thread dies without leaving
  // the group, so failure is detected through missed heartbeats.
  void Kill();

  // Operational requests (paper Algorithm 1 line 2) are queued and
  // handled at the top of the loop.
  void EnqueueRegisterStream(const StreamDef& stream);
  // True while an enqueued registration has not yet been applied by the
  // unit loop (used to make DDL synchronous at the API layer).
  bool has_pending_streams() const {
    MutexLock lock(&mu_);
    return !pending_streams_.empty();
  }

  const std::string& unit_id() const { return unit_id_; }
  UnitStats stats() const;
  std::vector<msg::TopicPartition> active_tasks() const;
  std::vector<msg::TopicPartition> replica_tasks() const;

  // Test hook: direct access to a task processor (nullptr if absent).
  TaskProcessor* FindProcessor(const msg::TopicPartition& tp);

 private:
  void Run();
  // Groups are message *views*; their backing storage (the active poll
  // batch or the replica fetch keepalive) must stay alive for the call.
  void ProcessGrouped(
      const std::map<msg::TopicPartition, std::vector<msg::MessageView>>&
          groups,
      bool active);
  void DrainOperationalRequests();
  void SyncReplicaTasks();
  // Publishes pipeline-routed events (fire-and-forget, deterministic
  // derived ids) into their target streams' partitioner topics.
  void PublishRouted(std::vector<ops::RoutedEvent> routed);
  StatusOr<TaskProcessor*> GetOrCreateProcessor(
      const msg::TopicPartition& tp, uint64_t* replay_offset);
  const StreamDef* StreamForTopic(const std::string& topic) const;
  void HandleAssigned(const std::vector<msg::TopicPartition>& assigned);

  UnitOptions options_;
  std::string unit_id_;
  std::string node_id_;
  std::string dir_;
  msg::Bus* bus_;
  Coordinator* coordinator_;
  Clock* clock_;

  std::thread thread_;
  std::atomic<bool> running_{false};

  mutable Mutex mu_{kRankEngineUnit};
  // Parks the loop before its first subscription (no consumer to block
  // in yet); EnqueueRegisterStream and Stop/Kill notify it.
  CondVar op_cv_;
  bool subscribed_ GUARDED_BY(mu_) = false;
  std::deque<StreamDef> pending_streams_ GUARDED_BY(mu_);
  std::map<std::string, StreamDef> streams_ GUARDED_BY(mu_);  // By name.
  std::map<std::string, std::unique_ptr<TaskProcessor>> processors_
      GUARDED_BY(mu_);
  std::vector<msg::TopicPartition> active_tasks_ GUARDED_BY(mu_);
  std::map<msg::TopicPartition, uint64_t> replica_positions_ GUARDED_BY(mu_);
  uint64_t seen_generation_ = 0;  // Unit-thread only.
  UnitStats stats_ GUARDED_BY(mu_);
  introspect::Histogram* batch_size_ = nullptr;  // Null without registry.
  introspect::Counter* routed_published_ = nullptr;  // ops.routed.published.
  introspect::Counter* routed_dropped_ = nullptr;    // ops.routed.dropped.
  // Poll scratch reused across loop iterations. Only touched by the unit
  // thread; the active batch typically borrows the remote bus's pooled
  // wire buffer (zero-copy poll).
  msg::MessageBatch active_batch_;
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_PROCESSOR_UNIT_H_
