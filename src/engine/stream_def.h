// Stream registration model and the wire format used on the message bus.
//
// A stream maps to one topic per *partitioner* (top-level group-by
// entity, paper §4): topic name "<stream>.<partitioner>", keyed by that
// field's value so all events of an entity land in one partition.
#ifndef RAILGUN_ENGINE_STREAM_DEF_H_
#define RAILGUN_ENGINE_STREAM_DEF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/pipeline.h"
#include "query/query.h"
#include "reservoir/event.h"
#include "trace/trace_context.h"

namespace railgun::engine {

struct StreamDef {
  std::string name;
  std::vector<reservoir::SchemaField> fields;
  // Partitioner fields (each becomes a topic). Must cover a subset of
  // every metric's group-by keys (paper §4: metrics hash by a subset).
  std::vector<std::string> partitioners;
  int partitions_per_topic = 1;
  // Registered metric statements over this stream.
  std::vector<query::QueryDef> queries;
  // Registered operator pipelines sourced from this stream (see
  // src/ops/). Like queries they travel as raw statements.
  std::vector<query::PipelineSpec> pipelines;

  std::string TopicFor(const std::string& partitioner) const {
    return name + "." + partitioner;
  }

  // The partitioner whose topic a query's metrics should be computed on:
  // the first partitioner contained in the query's group-by set.
  StatusOr<std::string> PartitionerForQuery(
      const query::QueryDef& query) const;
};

// Wire form of a stream definition, used by the metadata service so a
// client or worker process can learn streams it did not declare. Metric
// queries travel as their raw SELECT statements and are re-parsed on
// decode, so both sides always agree with the DDL grammar.
void EncodeStreamDef(const StreamDef& def, std::string* out);
Status DecodeStreamDef(Slice* in, StreamDef* def);

// ----- Wire envelopes -----

// Event envelope published to every partitioner topic.
struct EventEnvelope {
  uint64_t request_id = 0;
  std::string reply_topic;  // Empty = fire-and-forget (no reply).
  reservoir::Event event;
};

// Envelopes may carry a trace-context trailer after the codec bytes
// (see trace/trace_context.h). Decoders ignore unconsumed bytes, so the
// trailer interops with peers predating it; pass `rest` to receive the
// remainder and recover the context with trace::ParseTraceTrailer.
void EncodeEventEnvelope(const EventEnvelope& env,
                         const reservoir::Schema& schema, std::string* out);
Status DecodeEventEnvelope(const Slice& data,
                           const reservoir::Schema& schema,
                           EventEnvelope* env, Slice* rest = nullptr);

// Aggregation reply from a task processor to the originating front-end.
struct MetricReply {
  std::string metric_name;
  std::string group_key;
  reservoir::FieldValue value;
};

struct ReplyEnvelope {
  uint64_t request_id = 0;
  // Routing hint filled in by the task processor when it decodes the
  // event envelope; not part of the encoded reply wire format.
  std::string reply_topic;
  std::vector<MetricReply> results;
  // Trace context carried forward from the event envelope (encoded as a
  // trailer by the unit so the front end's completion span links).
  trace::TraceContext trace;
};

void EncodeReplyEnvelope(const ReplyEnvelope& env, std::string* out);
Status DecodeReplyEnvelope(const Slice& data, ReplyEnvelope* env,
                           Slice* rest = nullptr);

// Self-describing field-value codec (1-byte type tag + payload), shared
// by the reply envelope above and the subscription push records
// (ops/sub_wire.h).
void EncodeFieldValue(const reservoir::FieldValue& v, std::string* out);
Status DecodeFieldValue(Slice* in, reservoir::FieldValue* v);

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_STREAM_DEF_H_
