// Cluster harness: wires a message bus, a coordinator and N Railgun
// nodes into a running system. This is the substitute for the paper's
// Kubernetes deployment — same topology, in one process (see DESIGN.md).
#ifndef RAILGUN_ENGINE_CLUSTER_H_
#define RAILGUN_ENGINE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "engine/node.h"
#include "introspect/publisher.h"
#include "introspect/registry.h"
#include "msg/broker.h"
#include "ops/subscription.h"

namespace railgun::engine {

struct ClusterOptions {
  int num_nodes = 1;
  int replication_factor = 1;
  NodeOptions node;
  msg::BusOptions bus;
  std::string base_dir = "/tmp/railgun-cluster";
  Clock* clock = nullptr;  // Defaults to the monotonic clock.
  bool wipe_base_dir = true;
  // Self-instrumentation: snapshot period and the `node` label for the
  // cluster's "__railgun.internals" events (introspect/internals.h).
  introspect::PublisherOptions introspect{kMicrosPerSecond, "engine"};
  // Retention cap for the internals topic, set at Start so the
  // self-stats log stays bounded even when the broker-wide retention is
  // "keep everything for replay". 0 = no cap.
  uint64_t internals_retention = 1 << 16;
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Status Start();
  void Stop();

  // Registers a stream (with its metric queries) on every node.
  Status RegisterStream(const StreamDef& stream);

  // Adds one more node to the running cluster (elastic scale-out).
  StatusOr<RailgunNode*> AddNode();
  // Fault injection.
  Status KillNode(int index, bool immediate_detection = true);
  Status StopNode(int index);

  // Node pointers stay valid for the cluster's lifetime (the node list
  // only grows; killed nodes are marked dead, not erased).
  RailgunNode* node(int index) const;
  int num_nodes() const;
  msg::Bus* bus() { return bus_.get(); }
  Coordinator* coordinator() { return coordinator_.get(); }
  // Every layer of this cluster records its metrics here; the publisher
  // streams snapshots into "__railgun.internals". Borrowable by
  // co-hosted services (meta::Broker adds its own probes).
  introspect::Registry* registry() { return &registry_; }
  introspect::Publisher* publisher() { return publisher_.get(); }
  // Live SUBSCRIBE tails (src/ops/subscription.h) served against this
  // cluster's bus; stream definitions resolve from the registered set.
  ops::SubscriptionHub* subscription_hub() { return subscription_hub_.get(); }
  // The clock every bus/engine duration is interpreted in (the
  // metadata service leases nodes on this same clock).
  Clock* clock() const { return clock_; }

  // Blocks until every event topic has been fully consumed by the
  // active units (all processed), or the timeout elapses. Returns the
  // total processed message count.
  uint64_t WaitForQuiescence(Micros timeout);

  // Aggregate unit statistics.
  UnitStats TotalStats() const;

 private:
  StatusOr<RailgunNode*> AddNodeLocked() REQUIRES(mu_);

  ClusterOptions options_;
  Clock* clock_;
  std::unique_ptr<msg::InProcessBus> bus_;
  std::unique_ptr<Coordinator> coordinator_;
  introspect::Registry registry_;
  std::unique_ptr<introspect::Publisher> publisher_;
  // Declared after bus_ so it stops (joining pump threads that poll the
  // bus) before the bus is torn down.
  std::unique_ptr<ops::SubscriptionHub> subscription_hub_;
  // Guards the topology (nodes_, streams_) against concurrent
  // submission and admin operations (AddNode during Submit etc).
  mutable Mutex mu_{kRankEngineCluster};
  std::vector<std::unique_ptr<RailgunNode>> nodes_ GUARDED_BY(mu_);
  std::vector<StreamDef> streams_ GUARDED_BY(mu_);
  int next_node_index_ GUARDED_BY(mu_) = 0;
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_CLUSTER_H_
