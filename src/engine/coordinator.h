// Group coordinator (paper §4.2): bridges the message bus's rebalance
// protocol to Railgun's sticky assignment. The bus invokes Assign() for
// the active consumer group; the coordinator simultaneously computes the
// replica assignment (replica consumers do not use group subscription —
// they fetch their partitions directly, mirroring how the paper gives
// every replica consumer its own group), tracks stale data holders, and
// answers donor queries during recovery.
#ifndef RAILGUN_ENGINE_COORDINATOR_H_
#define RAILGUN_ENGINE_COORDINATOR_H_

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "engine/sticky_assignment.h"
#include "msg/assignment.h"

namespace railgun::engine {

// Consumer group carrying the active-task assignment. The cluster
// installs its Coordinator as this group's server-side strategy, so
// units joining from other processes get the same sticky placement.
inline constexpr char kActiveGroup[] = "railgun-active";

class Coordinator : public msg::AssignmentStrategy {
 public:
  explicit Coordinator(int replication_factor)
      : replication_factor_(replication_factor) {}

  // msg::AssignmentStrategy. Member metadata carries "node=<node_id>".
  msg::Assignment Assign(
      const std::vector<msg::MemberInfo>& members,
      const std::vector<msg::TopicPartition>& partitions) override;
  std::string name() const override { return "railgun-sticky"; }

  // Units register the directory that holds their task data so donors
  // can be located during recovery.
  void RegisterUnitDir(const std::string& unit_id, const std::string& dir);

  // Replica tasks of a unit under the current generation.
  std::vector<msg::TopicPartition> ReplicaTasksFor(
      const std::string& unit_id);
  uint64_t generation() const { return generation_.load(); }

  // Directory of a unit that has data for the task (active first, then
  // replicas, then stale holders), excluding the requester. Empty if no
  // donor exists.
  std::string FindDonorDir(const msg::TopicPartition& task,
                           const std::string& requesting_unit);

  // Cumulative stickiness metrics (rebalance ablation).
  int total_moved_active() const { return total_moved_active_.load(); }
  int total_moved_replicas() const { return total_moved_replicas_.load(); }

  // Task subdirectory naming shared by units and donors.
  static std::string TaskSubdir(const msg::TopicPartition& task) {
    return "task-" + task.topic + "-" + std::to_string(task.partition);
  }

 private:
  const int replication_factor_;

  // Exception rank: assignment strategies run under the broker's group
  // lock, so this mutex lives inside the msg band (see common/mutex.h).
  Mutex mu_{kRankEngineStrategy};
  std::map<msg::TopicPartition, std::string> prev_active_ GUARDED_BY(mu_);
  std::map<msg::TopicPartition, std::set<std::string>> prev_replicas_
      GUARDED_BY(mu_);
  std::map<msg::TopicPartition, std::set<std::string>> stale_ GUARDED_BY(mu_);
  std::map<std::string, std::vector<msg::TopicPartition>> replicas_by_unit_
      GUARDED_BY(mu_);
  std::map<std::string, std::string> unit_dirs_ GUARDED_BY(mu_);
  std::atomic<uint64_t> generation_{0};
  std::atomic<int> total_moved_active_{0};
  std::atomic<int> total_moved_replicas_{0};
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_COORDINATOR_H_
