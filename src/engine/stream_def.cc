#include "engine/stream_def.h"

#include <algorithm>

#include "common/coding.h"

namespace railgun::engine {

StatusOr<std::string> StreamDef::PartitionerForQuery(
    const query::QueryDef& query) const {
  if (query.group_by.empty()) {
    // Global metrics can live on any single topic; use the first.
    if (partitioners.empty()) {
      return Status::InvalidArgument("stream has no partitioners");
    }
    return partitioners[0];
  }
  for (const auto& p : partitioners) {
    if (std::find(query.group_by.begin(), query.group_by.end(), p) !=
        query.group_by.end()) {
      return p;
    }
  }
  return Status::InvalidArgument(
      "no partitioner covers the query's group-by fields");
}

void EncodeStreamDef(const StreamDef& def, std::string* out) {
  PutLengthPrefixedSlice(out, def.name);
  PutVarint32(out, static_cast<uint32_t>(def.fields.size()));
  for (const auto& field : def.fields) {
    PutLengthPrefixedSlice(out, field.name);
    out->push_back(static_cast<char>(field.type));
  }
  PutVarint32(out, static_cast<uint32_t>(def.partitioners.size()));
  for (const auto& p : def.partitioners) PutLengthPrefixedSlice(out, p);
  PutVarint32(out, static_cast<uint32_t>(def.partitions_per_topic));
  PutVarint32(out, static_cast<uint32_t>(def.queries.size()));
  for (const auto& q : def.queries) PutLengthPrefixedSlice(out, q.raw);
  // Pipelines travel as raw statements, exactly like metric queries.
  PutVarint32(out, static_cast<uint32_t>(def.pipelines.size()));
  for (const auto& p : def.pipelines) PutLengthPrefixedSlice(out, p.raw);
}

Status DecodeStreamDef(Slice* in, StreamDef* def) {
  Slice name;
  uint32_t num_fields;
  if (!GetLengthPrefixedSlice(in, &name) || !GetVarint32(in, &num_fields)) {
    return Status::Corruption("malformed stream definition");
  }
  def->name = name.ToString();
  def->fields.clear();
  for (uint32_t i = 0; i < num_fields; ++i) {
    Slice field_name;
    if (!GetLengthPrefixedSlice(in, &field_name) || in->empty()) {
      return Status::Corruption("malformed stream field");
    }
    const uint8_t type = static_cast<uint8_t>((*in)[0]);
    in->remove_prefix(1);
    if (type > static_cast<uint8_t>(reservoir::FieldType::kBool)) {
      return Status::Corruption("unknown stream field type");
    }
    def->fields.push_back(
        {field_name.ToString(), static_cast<reservoir::FieldType>(type)});
  }
  uint32_t num_partitioners;
  if (!GetVarint32(in, &num_partitioners)) {
    return Status::Corruption("malformed stream definition");
  }
  def->partitioners.clear();
  for (uint32_t i = 0; i < num_partitioners; ++i) {
    Slice p;
    if (!GetLengthPrefixedSlice(in, &p)) {
      return Status::Corruption("malformed stream partitioner");
    }
    def->partitioners.push_back(p.ToString());
  }
  uint32_t partitions, num_queries;
  if (!GetVarint32(in, &partitions) || partitions == 0 ||
      partitions > static_cast<uint32_t>(INT32_MAX) ||
      !GetVarint32(in, &num_queries)) {
    return Status::Corruption("malformed stream definition");
  }
  def->partitions_per_topic = static_cast<int>(partitions);
  def->queries.clear();
  for (uint32_t i = 0; i < num_queries; ++i) {
    Slice raw;
    if (!GetLengthPrefixedSlice(in, &raw)) {
      return Status::Corruption("malformed stream metric");
    }
    auto metric = query::ParseQuery(raw.ToString());
    if (!metric.ok()) {
      return Status::Corruption("stream definition carries an unparseable "
                                "metric: " +
                                metric.status().ToString());
    }
    def->queries.push_back(std::move(metric).value());
  }
  def->pipelines.clear();
  uint32_t num_pipelines;
  if (!GetVarint32(in, &num_pipelines)) {
    return Status::Corruption("malformed stream definition");
  }
  for (uint32_t i = 0; i < num_pipelines; ++i) {
    Slice raw;
    if (!GetLengthPrefixedSlice(in, &raw)) {
      return Status::Corruption("malformed stream pipeline");
    }
    auto pipeline = query::ParsePipeline(raw.ToString());
    if (!pipeline.ok()) {
      return Status::Corruption(
          "stream definition carries an unparseable pipeline: " +
          pipeline.status().ToString());
    }
    def->pipelines.push_back(std::move(pipeline).value());
  }
  return Status::OK();
}

void EncodeEventEnvelope(const EventEnvelope& env,
                         const reservoir::Schema& schema, std::string* out) {
  PutFixed64(out, env.request_id);
  PutLengthPrefixedSlice(out, env.reply_topic);
  const reservoir::EventCodec codec(&schema);
  codec.Encode(env.event, /*base_ts=*/0, out);
}

Status DecodeEventEnvelope(const Slice& data,
                           const reservoir::Schema& schema,
                           EventEnvelope* env, Slice* rest) {
  Slice in = data;
  uint64_t request_id;
  Slice reply_topic;
  if (!GetFixed64(&in, &request_id) ||
      !GetLengthPrefixedSlice(&in, &reply_topic)) {
    return Status::Corruption("bad event envelope");
  }
  env->request_id = request_id;
  env->reply_topic = reply_topic.ToString();
  const reservoir::EventCodec codec(&schema);
  RAILGUN_RETURN_IF_ERROR(codec.Decode(&in, /*base_ts=*/0, &env->event));
  if (rest != nullptr) *rest = in;  // Unconsumed trailer bytes, if any.
  return Status::OK();
}

void EncodeFieldValue(const reservoir::FieldValue& v, std::string* out) {
  if (v.is_int()) {
    out->push_back(0);
    PutVarsint64(out, v.as_int());
  } else if (v.is_double()) {
    out->push_back(1);
    PutDouble(out, v.as_double());
  } else if (v.is_bool()) {
    out->push_back(2);
    out->push_back(v.as_bool() ? 1 : 0);
  } else {
    out->push_back(3);
    PutLengthPrefixedSlice(out, v.as_string());
  }
}

Status DecodeFieldValue(Slice* in, reservoir::FieldValue* v) {
  if (in->empty()) return Status::Corruption("bad field value");
  const char tag = (*in)[0];
  in->remove_prefix(1);
  switch (tag) {
    case 0: {
      int64_t x;
      if (!GetVarsint64(in, &x)) return Status::Corruption("bad int value");
      *v = reservoir::FieldValue(x);
      return Status::OK();
    }
    case 1: {
      double x;
      if (!GetDouble(in, &x)) return Status::Corruption("bad double value");
      *v = reservoir::FieldValue(x);
      return Status::OK();
    }
    case 2: {
      if (in->empty()) return Status::Corruption("bad bool value");
      *v = reservoir::FieldValue((*in)[0] != 0);
      in->remove_prefix(1);
      return Status::OK();
    }
    case 3: {
      Slice s;
      if (!GetLengthPrefixedSlice(in, &s)) {
        return Status::Corruption("bad string value");
      }
      *v = reservoir::FieldValue(s.ToString());
      return Status::OK();
    }
  }
  return Status::Corruption("unknown field value tag");
}

void EncodeReplyEnvelope(const ReplyEnvelope& env, std::string* out) {
  PutFixed64(out, env.request_id);
  PutVarint32(out, static_cast<uint32_t>(env.results.size()));
  for (const auto& r : env.results) {
    PutLengthPrefixedSlice(out, r.metric_name);
    PutLengthPrefixedSlice(out, r.group_key);
    EncodeFieldValue(r.value, out);
  }
}

Status DecodeReplyEnvelope(const Slice& data, ReplyEnvelope* env,
                           Slice* rest) {
  Slice in = data;
  uint64_t request_id;
  uint32_t count;
  if (!GetFixed64(&in, &request_id) || !GetVarint32(&in, &count)) {
    return Status::Corruption("bad reply envelope");
  }
  env->request_id = request_id;
  env->results.clear();
  env->results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MetricReply r;
    Slice name, group;
    if (!GetLengthPrefixedSlice(&in, &name) ||
        !GetLengthPrefixedSlice(&in, &group)) {
      return Status::Corruption("bad metric reply");
    }
    r.metric_name = name.ToString();
    r.group_key = group.ToString();
    RAILGUN_RETURN_IF_ERROR(DecodeFieldValue(&in, &r.value));
    env->results.push_back(std::move(r));
  }
  if (rest != nullptr) *rest = in;  // Unconsumed trailer bytes, if any.
  return Status::OK();
}

}  // namespace railgun::engine
