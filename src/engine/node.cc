#include "engine/node.h"

namespace railgun::engine {

RailgunNode::RailgunNode(const NodeOptions& options, std::string node_id,
                         std::string dir, msg::Bus* bus,
                         Coordinator* coordinator, Clock* clock)
    : options_(options),
      node_id_(std::move(node_id)),
      dir_(std::move(dir)),
      bus_(bus),
      clock_(clock) {
  frontend_.reset(
      new FrontEnd(options_.frontend, node_id_, bus_, clock_));
  for (int i = 0; i < options_.num_processor_units; ++i) {
    const std::string unit_id = node_id_ + "/u" + std::to_string(i);
    units_.emplace_back(new ProcessorUnit(
        options_.unit, unit_id, node_id_,
        dir_ + "/u" + std::to_string(i), bus_, coordinator, clock_));
  }
}

Status RailgunNode::Start() {
  RAILGUN_RETURN_IF_ERROR(frontend_->Start());
  for (auto& unit : units_) {
    RAILGUN_RETURN_IF_ERROR(unit->Start());
  }
  alive_ = true;
  return Status::OK();
}

void RailgunNode::Stop() {
  for (auto& unit : units_) unit->Stop();
  frontend_->Stop();
  alive_ = false;
}

void RailgunNode::Kill(bool immediate_detection) {
  for (auto& unit : units_) {
    unit->Kill();
    // Best effort: simulating a crash, the consumer may be gone already.
    if (immediate_detection) (void)bus_->KillConsumer(unit->unit_id());
  }
  frontend_->Stop();
  alive_ = false;
}

Status RailgunNode::RegisterStream(const StreamDef& stream) {
  RAILGUN_RETURN_IF_ERROR(frontend_->RegisterStream(stream));
  for (auto& unit : units_) {
    unit->EnqueueRegisterStream(stream);
  }
  return Status::OK();
}

}  // namespace railgun::engine
