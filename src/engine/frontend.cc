#include "engine/frontend.h"

#include "common/hash.h"

namespace railgun::engine {

FrontEnd::FrontEnd(const FrontEndOptions& options, std::string node_id,
                   msg::MessageBus* bus, Clock* clock)
    : options_(options),
      node_id_(std::move(node_id)),
      bus_(bus),
      clock_(clock),
      reply_topic_("replies." + node_id_) {}

FrontEnd::~FrontEnd() { Stop(); }

Status FrontEnd::Start() {
  Status s = bus_->CreateTopic(reply_topic_, 1);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void FrontEnd::Stop() {
  running_ = false;
  if (thread_.joinable()) thread_.join();
  // Fail outstanding requests so no caller blocks on a reply that can
  // never arrive.
  std::map<uint64_t, Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.swap(pending_);
  }
  for (auto& [id, pending] : orphaned) {
    if (pending.callback) {
      pending.callback(Status::Unavailable("front end stopped"),
                       pending.results);
    }
  }
}

Status FrontEnd::RegisterStream(const StreamDef& stream) {
  for (const auto& p : stream.partitioners) {
    Status s =
        bus_->CreateTopic(stream.TopicFor(p), stream.partitions_per_topic);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  std::lock_guard<std::mutex> lock(mu_);
  streams_[stream.name] = stream;
  return Status::OK();
}

Status FrontEnd::Submit(const std::string& stream_name,
                        const reservoir::Event& event,
                        ReplyCallback callback) {
  if (!running_) {
    return Status::Unavailable("front end is not running");
  }
  StreamDef stream;
  uint64_t request_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(stream_name);
    if (it == streams_.end()) {
      return Status::NotFound("unknown stream: " + stream_name);
    }
    stream = it->second;
    // Request ids must be unique per reply topic; salt with the node id.
    request_id = (Hash64(node_id_) & 0xffff000000000000ull) |
                 (next_request_id_++ & 0x0000ffffffffffffull);
    if (request_id == 0) request_id = next_request_id_++;

    Pending pending;
    pending.expected = static_cast<int>(stream.partitioners.size());
    pending.callback = std::move(callback);
    pending.deadline = clock_->NowMicros() + options_.request_timeout;
    pending_[request_id] = std::move(pending);
  }
  Status s = Publish(stream, event, request_id, reply_topic_);
  if (!s.ok()) {
    // The caller sees the typed error synchronously; drop the pending
    // entry so the callback does not also fire on the timeout path.
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(request_id);
  }
  return s;
}

Status FrontEnd::SubmitNoReply(const std::string& stream_name,
                               const reservoir::Event& event) {
  StreamDef stream;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(stream_name);
    if (it == streams_.end()) {
      return Status::NotFound("unknown stream: " + stream_name);
    }
    stream = it->second;
  }
  return Publish(stream, event, /*request_id=*/0, /*reply_topic=*/"");
}

Status FrontEnd::Publish(const StreamDef& stream,
                         const reservoir::Event& event, uint64_t request_id,
                         const std::string& reply_topic) {
  // Step 2 of Figure 3: replicate the event to all partitioner topics,
  // keyed by the partitioner field so an entity's events colocate.
  const reservoir::Schema schema(0, stream.fields);
  EventEnvelope envelope;
  envelope.request_id = request_id;
  envelope.reply_topic = reply_topic;
  envelope.event = event;

  std::string payload;
  EncodeEventEnvelope(envelope, schema, &payload);

  for (const auto& partitioner : stream.partitioners) {
    const int field = schema.FieldIndex(partitioner);
    if (field < 0) {
      return Status::InvalidArgument("partitioner not in schema: " +
                                     partitioner);
    }
    const std::string key = event.values[field].ToString();
    RAILGUN_RETURN_IF_ERROR(
        bus_->Produce(stream.TopicFor(partitioner), key, payload).status());
  }
  return Status::OK();
}

void FrontEnd::Run() {
  const msg::TopicPartition reply_tp{reply_topic_, 0};
  std::vector<msg::Message> batch;
  while (running_) {
    batch.clear();
    bus_->Fetch(reply_tp, reply_position_, options_.poll_max, &batch);
    reply_position_ += batch.size();

    struct Completion {
      ReplyCallback callback;
      std::vector<MetricReply> results;
      Status status;
    };
    std::vector<Completion> done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& message : batch) {
        ReplyEnvelope reply;
        if (!DecodeReplyEnvelope(Slice(message.payload), &reply).ok()) {
          continue;
        }
        auto it = pending_.find(reply.request_id);
        if (it == pending_.end()) continue;  // Timed out already.
        Pending& pending = it->second;
        for (auto& r : reply.results) {
          pending.results.push_back(std::move(r));
        }
        if (++pending.received >= pending.expected) {
          done.push_back({std::move(pending.callback),
                          std::move(pending.results), Status::OK()});
          pending_.erase(it);
          ++completed_;
        }
      }
      // Expire overdue requests: the callback fires with a typed error
      // and whatever partial results arrived (late aggregation replies
      // are discarded upstream, paper §5).
      const Micros now = clock_->NowMicros();
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.deadline <= now) {
          Pending& pending = it->second;
          done.push_back({std::move(pending.callback),
                          std::move(pending.results),
                          Status::Unavailable(
                              "request timed out: " +
                              std::to_string(pending.received) + "/" +
                              std::to_string(pending.expected) +
                              " partitioner replies arrived")});
          it = pending_.erase(it);
          ++timed_out_;
        } else {
          ++it;
        }
      }
    }
    for (auto& completion : done) {
      if (completion.callback) {
        completion.callback(completion.status, completion.results);
      }
    }
    if (batch.empty()) clock_->SleepMicros(options_.idle_sleep);
  }
}

}  // namespace railgun::engine
