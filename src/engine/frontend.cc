#include "engine/frontend.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "introspect/internals.h"
#include "trace/trace_context.h"

namespace railgun::engine {

FrontEnd::FrontEnd(const FrontEndOptions& options, std::string node_id,
                   msg::Bus* bus, Clock* clock)
    : options_(options),
      node_id_(std::move(node_id)),
      bus_(bus),
      clock_(clock),
      reply_topic_("replies." + node_id_),
      consumer_id_("fe." + node_id_),
      admission_(options.admission) {
  if (options_.registry != nullptr) {
    submit_latency_ =
        options_.registry->histogram("frontend.submit_latency_us");
  }
}

FrontEnd::~FrontEnd() { Stop(); }

Status FrontEnd::Start() {
  Status s = bus_->CreateTopic(reply_topic_, 1);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  // The front end consumes its reply topic through a private group so
  // its loop can park in a blocking Poll (wake-on-arrival) instead of
  // fetch-and-sleep polling.
  RAILGUN_RETURN_IF_ERROR(bus_->Subscribe(consumer_id_, "fe." + node_id_,
                                          {reply_topic_}, "", nullptr, {}));
  {
    // A submit that raced a previous Stop may have left queued
    // submissions whose callbacks were already failed; never publish
    // them on restart.
    MutexLock lock(&submit_mu_);
    submit_queue_.clear();
  }
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void FrontEnd::Stop() {
  running_ = false;
  (void)bus_->WakeConsumer(consumer_id_);  // Cut a parked reply poll short.
  if (thread_.joinable()) thread_.join();
  // NotFound when never started: fine.
  (void)bus_->Unsubscribe(consumer_id_);
  // Drop queued submissions and fail outstanding requests so no caller
  // blocks on a reply that can never arrive.
  {
    MutexLock lock(&submit_mu_);
    submit_queue_.clear();
  }
  std::vector<Completion> orphaned;
  for (auto& shard : pending_) {
    MutexLock lock(&shard.mu);
    for (auto& [id, pending] : shard.entries) {
      orphaned.push_back({std::move(pending.callback),
                          std::move(pending.results),
                          Status::Unavailable("front end stopped")});
    }
    pending_count_.fetch_sub(shard.entries.size(),
                             std::memory_order_relaxed);
    shard.entries.clear();
  }
  for (auto& completion : orphaned) {
    if (completion.callback) {
      completion.callback(completion.status, completion.results);
    }
  }
}

Status FrontEnd::RegisterStream(const StreamDef& stream) {
  for (const auto& p : stream.partitioners) {
    Status s =
        bus_->CreateTopic(stream.TopicFor(p), stream.partitions_per_topic);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  Route route;
  route.stream = stream;
  route.schema = reservoir::Schema(0, stream.fields);
  for (const auto& p : stream.partitioners) {
    const int field = route.schema.FieldIndex(p);
    if (field < 0) {
      return Status::InvalidArgument("partitioner not in schema: " + p);
    }
    route.targets.push_back({stream.TopicFor(p), field});
  }
  MutexLock lock(&mu_);
  routes_[stream.name] = std::move(route);
  return Status::OK();
}

Status FrontEnd::Enqueue(const Route& route, const reservoir::Event& event,
                         ReplyCallback callback,
                         const trace::TraceContext& trace_ctx,
                         std::vector<Submission>* out) {
  trace::Tracer* tracer = trace::Tracer::Global();
  const Micros trace_start = trace_ctx.valid() ? tracer->NowMicros() : 0;
  Submission submission;
  submission.targets.reserve(route.targets.size());
  for (const auto& [topic, field] : route.targets) {
    if (static_cast<size_t>(field) >= event.values.size()) {
      return Status::InvalidArgument("event is missing partitioner field");
    }
    submission.targets.push_back({topic, event.values[field].ToString()});
  }

  EventEnvelope envelope;
  if (callback != nullptr) {
    // Request ids must be unique per reply topic; salt with the node id.
    uint64_t request_id =
        (Hash64(node_id_) & 0xffff000000000000ull) |
        (next_request_id_.fetch_add(1) & 0x0000ffffffffffffull);
    if (request_id == 0) request_id = next_request_id_.fetch_add(1);
    submission.request_id = request_id;
    envelope.request_id = request_id;
    envelope.reply_topic = reply_topic_;

    Pending pending;
    pending.expected = static_cast<int>(route.targets.size());
    pending.callback = std::move(callback);
    pending.submitted_at = clock_->NowMicros();
    pending.deadline = pending.submitted_at + options_.request_timeout;
    PendingShard& shard = ShardFor(request_id);
    MutexLock lock(&shard.mu);
    shard.entries[request_id] = std::move(pending);
    pending_count_.fetch_add(1, std::memory_order_relaxed);
  }
  envelope.event = event;
  EncodeEventEnvelope(envelope, route.schema, &submission.payload);
  if (trace_ctx.valid()) {
    // Record the enqueue hop and ship the advanced context in the
    // envelope trailer: every downstream hop parents under it.
    submission.trace =
        tracer->Record(trace::Stage::kFrontendEnqueue, trace_ctx,
                       trace_start, tracer->NowMicros());
    trace::AppendTraceTrailer(submission.trace, &submission.payload);
  }
  out->push_back(std::move(submission));
  return Status::OK();
}

Status FrontEnd::Submit(const std::string& stream_name,
                        const reservoir::Event& event,
                        ReplyCallback callback,
                        const trace::TraceContext& trace_ctx) {
  std::vector<reservoir::Event> events = {event};
  std::vector<ReplyCallback> callbacks;
  callbacks.push_back(std::move(callback));
  return SubmitBatch(stream_name, events, std::move(callbacks),
                     {trace_ctx});
}

Status FrontEnd::SubmitBatch(const std::string& stream_name,
                             const std::vector<reservoir::Event>& events,
                             std::vector<ReplyCallback> callbacks,
                             const std::vector<trace::TraceContext>& traces) {
  if (!running_) {
    return Status::Unavailable("front end is not running");
  }
  Route route;
  {
    MutexLock lock(&mu_);
    auto it = routes_.find(stream_name);
    if (it == routes_.end()) {
      return Status::NotFound("unknown stream: " + stream_name);
    }
    route = it->second;
  }

  // Admission control: refuse at the door, synchronously and typed,
  // before any pending entry or queue slot is taken. The internals
  // stream is exempt so the engine's own health signal stays observable
  // exactly when admission is shedding — the moment it matters most.
  if (admission_.options().enabled() &&
      stream_name != introspect::kInternalsStream) {
    size_t queue_depth;
    {
      MutexLock lock(&submit_mu_);
      queue_depth = submit_queue_.size();
    }
    RAILGUN_RETURN_IF_ERROR(admission_.Admit(
        pending_count_.load(std::memory_order_relaxed), queue_depth,
        backlog_hint_.load(std::memory_order_relaxed)));
  }

  std::vector<Submission> prepared;
  prepared.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    ReplyCallback callback =
        i < callbacks.size() ? std::move(callbacks[i]) : nullptr;
    const Status s = Enqueue(
        route, events[i], std::move(callback),
        i < traces.size() ? traces[i] : trace::TraceContext{}, &prepared);
    if (!s.ok()) {
      // Roll back this batch's already-registered pendings: the caller
      // sees the typed error synchronously, so no callback may fire.
      for (const auto& submission : prepared) {
        if (submission.request_id == 0) continue;
        PendingShard& shard = ShardFor(submission.request_id);
        MutexLock lock(&shard.mu);
        if (shard.entries.erase(submission.request_id) > 0) {
          pending_count_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      return s;
    }
  }

  {
    MutexLock lock(&submit_mu_);
    submit_queue_.insert(submit_queue_.end(),
                         std::make_move_iterator(prepared.begin()),
                         std::make_move_iterator(prepared.end()));
  }
  // One wake-up per batch: the front-end thread drains the queue and
  // fans out one ProduceBatch per partitioner topic. Level-triggered,
  // so a wake landing between the thread's queue check and its park is
  // consumed by the next Poll, not lost.
  (void)bus_->WakeConsumer(consumer_id_);
  if (!running_) {
    // Stopped while enqueueing: the run thread may already have drained
    // its last cycle, so complete the stragglers here (FailPending is
    // exactly-once under the shard lock).
    for (const auto& submission : prepared) {
      if (submission.request_id != 0) {
        FailPending(submission.request_id,
                    Status::Unavailable("front end stopped"));
      }
    }
  }
  return Status::OK();
}

Status FrontEnd::SubmitNoReply(const std::string& stream_name,
                               const reservoir::Event& event) {
  if (!running_) {
    return Status::Unavailable("front end is not running");
  }
  return SubmitBatch(stream_name, {event}, {});
}

void FrontEnd::FailPending(uint64_t request_id, const Status& status) {
  Completion completion;
  {
    PendingShard& shard = ShardFor(request_id);
    MutexLock lock(&shard.mu);
    auto it = shard.entries.find(request_id);
    if (it == shard.entries.end()) return;  // Already completed.
    completion = {std::move(it->second.callback),
                  std::move(it->second.results), status};
    shard.entries.erase(it);
    pending_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (completion.callback) {
    completion.callback(completion.status, completion.results);
  }
}

void FrontEnd::DrainSubmissions() {
  std::vector<Submission> drained;
  {
    MutexLock lock(&submit_mu_);
    drained.swap(submit_queue_);
  }
  if (drained.empty()) return;

  // Step 2 of Figure 3, batched: replicate every queued event to its
  // partitioner topics with one ProduceBatch per topic per cycle.
  std::map<std::string, std::vector<msg::ProduceRecord>> batches;
  std::map<std::string, std::vector<uint64_t>> requests_by_topic;
  // First traced submission per topic: the produce hop records under
  // it (a batch shares one wire call, so it shares one span).
  std::map<std::string, trace::TraceContext> trace_by_topic;
  for (auto& submission : drained) {
    for (size_t t = 0; t < submission.targets.size(); ++t) {
      auto& [topic, key] = submission.targets[t];
      const bool last_target = t + 1 == submission.targets.size();
      if (submission.trace.valid() && trace_by_topic.count(topic) == 0) {
        trace_by_topic[topic] = submission.trace;
      }
      batches[topic].push_back(
          {std::move(key), last_target ? std::move(submission.payload)
                                       : submission.payload});
      if (submission.request_id != 0) {
        requests_by_topic[topic].push_back(submission.request_id);
      }
    }
  }
  trace::Tracer* tracer = trace::Tracer::Global();
  for (auto& [topic, records] : batches) {
    trace::TraceContext produce_ctx;
    if (auto it = trace_by_topic.find(topic); it != trace_by_topic.end()) {
      produce_ctx = it->second;
    }
    const Micros trace_start =
        produce_ctx.valid() ? tracer->NowMicros() : 0;
    Status published;
    {
      // Ambient context: the broker (in-process or via the remote bus's
      // wire trailer) records its append span under the produce hop.
      trace::ScopedTraceContext scope(produce_ctx);
      published = bus_->ProduceBatch(topic, std::move(records));
    }
    if (produce_ctx.valid()) {
      tracer->Record(trace::Stage::kFrontendProduce, produce_ctx,
                     trace_start, tracer->NowMicros());
    }
    if (published.ok()) continue;
    ++publish_errors_;
    RAILGUN_LOG(kWarn, "frontend", "publish to %s failed: %s",
                topic.c_str(), published.ToString().c_str());
    // Fail every request that fanned out to this topic; their other
    // topics' late replies are discarded (the pending entry is gone).
    auto it = requests_by_topic.find(topic);
    if (it == requests_by_topic.end()) continue;
    for (uint64_t request_id : it->second) {
      FailPending(request_id, published);
    }
  }
}

void FrontEnd::Run() {
  msg::MessageBatch batch;
  while (running_) {
    DrainSubmissions();

    // Refresh the broker-depth admission signal once per cycle: cheap
    // for RemoteBus (cached hint) and amortized for InProcessBus.
    backlog_hint_.store(bus_->BacklogHint(), std::memory_order_relaxed);

    Micros wait = options_.poll_wait;
    {
      // Submissions raced in while draining: don't park on them.
      MutexLock lock(&submit_mu_);
      if (!submit_queue_.empty()) wait = 0;
    }
    // Zero-copy reply poll: views decode straight out of the transport's
    // pooled receive buffer.
    const Status polled =
        bus_->PollBatch(consumer_id_, options_.poll_max, &batch, wait);
    if (!polled.ok()) {
      // Error-recovery path (consumer fenced), not the hot loop:
      // bounded backoff, then keep expiring deadlines below.
      batch.Clear();
      clock_->SleepMicros(options_.poll_wait);
    }

    std::vector<Completion> done;
    trace::Tracer* tracer = trace::Tracer::Global();
    for (const auto& message : batch.views()) {
      const Micros trace_start =
          tracer->enabled() ? tracer->NowMicros() : 0;
      ReplyEnvelope reply;
      Slice reply_rest;
      if (!DecodeReplyEnvelope(message.payload, &reply, &reply_rest).ok()) {
        continue;
      }
      // Trace context forwarded by the unit as a reply trailer: record
      // the completion hop so the trace covers reply delivery too.
      const trace::TraceContext reply_ctx =
          trace::ParseTraceTrailer(reply_rest);
      bool completed_request = false;
      {
        PendingShard& shard = ShardFor(reply.request_id);
        MutexLock lock(&shard.mu);
        auto it = shard.entries.find(reply.request_id);
        if (it == shard.entries.end()) continue;  // Timed out already.
        Pending& pending = it->second;
        for (auto& r : reply.results) {
          pending.results.push_back(std::move(r));
        }
        if (++pending.received >= pending.expected) {
          if (submit_latency_ != nullptr) {
            submit_latency_->Record(clock_->NowMicros() -
                                    pending.submitted_at);
          }
          done.push_back({std::move(pending.callback),
                          std::move(pending.results), Status::OK()});
          shard.entries.erase(it);
          pending_count_.fetch_sub(1, std::memory_order_relaxed);
          ++completed_;
          completed_request = true;
        }
      }
      if (completed_request && reply_ctx.valid()) {
        tracer->Record(trace::Stage::kFrontendComplete, reply_ctx,
                       trace_start, tracer->NowMicros());
      }
    }

    // Expire overdue requests: the callback fires with a typed error
    // and whatever partial results arrived (late aggregation replies
    // are discarded upstream, paper §5).
    const Micros now = clock_->NowMicros();
    for (auto& shard : pending_) {
      MutexLock lock(&shard.mu);
      for (auto it = shard.entries.begin(); it != shard.entries.end();) {
        if (it->second.deadline <= now) {
          Pending& pending = it->second;
          done.push_back({std::move(pending.callback),
                          std::move(pending.results),
                          Status::Unavailable(
                              "request timed out: " +
                              std::to_string(pending.received) + "/" +
                              std::to_string(pending.expected) +
                              " partitioner replies arrived")});
          it = shard.entries.erase(it);
          pending_count_.fetch_sub(1, std::memory_order_relaxed);
          ++timed_out_;
        } else {
          ++it;
        }
      }
    }

    for (auto& completion : done) {
      if (completion.callback) {
        completion.callback(completion.status, completion.results);
      }
    }
  }
}

}  // namespace railgun::engine
