#include "engine/column_batch.h"

#include "common/coding.h"

namespace railgun::engine {

using reservoir::FieldType;

void ColumnBatch::Reset(const reservoir::Schema& schema) {
  request_ids_.clear();
  reply_topics_.clear();
  trailers_.clear();
  timestamps_.clear();
  ids_.clear();
  offsets_.clear();
  ok_.clear();
  const auto& fields = schema.fields();
  columns_.resize(fields.size());
  for (size_t j = 0; j < fields.size(); ++j) {
    Column& col = columns_[j];
    col.type = fields[j].type;
    col.ints.clear();
    col.nums.clear();
    col.strs.clear();
    col.bools.clear();
  }
}

void ColumnBatch::AlignRows(size_t rows) {
  request_ids_.resize(rows, 0);
  reply_topics_.resize(rows, Slice());
  trailers_.resize(rows, Slice());
  timestamps_.resize(rows, 0);
  ids_.resize(rows, 0);
  offsets_.resize(rows, 0);
  for (Column& col : columns_) {
    switch (col.type) {
      case FieldType::kInt64:
        col.ints.resize(rows, 0);
        break;
      case FieldType::kDouble:
        col.nums.resize(rows, 0.0);
        break;
      case FieldType::kString:
        col.strs.resize(rows, Slice());
        break;
      case FieldType::kBool:
        col.bools.resize(rows, 0);
        break;
    }
  }
}

size_t ColumnBatch::Decode(const std::vector<msg::MessageView>& messages,
                           const reservoir::Schema& schema) {
  Reset(schema);
  size_t good = 0;
  for (size_t r = 0; r < messages.size(); ++r) {
    Slice in = messages[r].payload;
    uint64_t request_id = 0;
    Slice reply_topic;
    int64_t ts_delta = 0;
    uint64_t id = 0, wire_offset = 0;
    bool row_ok = GetFixed64(&in, &request_id) &&
                  GetLengthPrefixedSlice(&in, &reply_topic) &&
                  GetVarsint64(&in, &ts_delta) && GetVarint64(&in, &id) &&
                  GetVarint64(&in, &wire_offset);
    if (row_ok) {
      request_ids_.push_back(request_id);
      reply_topics_.push_back(reply_topic);
      timestamps_.push_back(ts_delta);  // Envelopes encode base_ts = 0.
      ids_.push_back(id);
      // The log position wins over the encoded offset, exactly as
      // ProcessMessage overrides env.event.offset.
      offsets_.push_back(messages[r].offset);
      for (Column& col : columns_) {
        switch (col.type) {
          case FieldType::kInt64: {
            int64_t v;
            if ((row_ok = GetVarsint64(&in, &v))) col.ints.push_back(v);
            break;
          }
          case FieldType::kDouble: {
            double v;
            if ((row_ok = GetDouble(&in, &v))) col.nums.push_back(v);
            break;
          }
          case FieldType::kString: {
            Slice v;
            if ((row_ok = GetLengthPrefixedSlice(&in, &v))) {
              col.strs.push_back(v);
            }
            break;
          }
          case FieldType::kBool: {
            if ((row_ok = !in.empty())) {
              col.bools.push_back(in[0] != 0 ? 1 : 0);
              in.remove_prefix(1);
            }
            break;
          }
        }
        if (!row_ok) break;
      }
      if (row_ok) trailers_.push_back(in);  // Unconsumed trailer bytes.
    }
    // A partial row leaves ragged columns; rewind them to a zero-filled
    // row so every column stays index-aligned.
    AlignRows(r + 1);
    ok_.push_back(row_ok ? 1 : 0);
    if (row_ok) ++good;
  }
  return good;
}

void ColumnBatch::MaterializeRow(size_t i, reservoir::Event* event) const {
  event->timestamp = timestamps_[i];
  event->id = ids_[i];
  event->offset = offsets_[i];
  event->values.resize(columns_.size());
  for (size_t j = 0; j < columns_.size(); ++j) {
    const Column& col = columns_[j];
    reservoir::FieldValue& v = event->values[j];
    switch (col.type) {
      case FieldType::kInt64:
        v.value = col.ints[i];
        break;
      case FieldType::kDouble:
        v.value = col.nums[i];
        break;
      case FieldType::kString:
        // Assign in place when the slot already holds a string, reusing
        // its capacity instead of re-allocating per event.
        if (v.is_string()) {
          std::get<std::string>(v.value).assign(col.strs[i].data(),
                                                col.strs[i].size());
        } else {
          v.value = col.strs[i].ToString();
        }
        break;
      case FieldType::kBool:
        v.value = col.bools[i] != 0;
        break;
    }
  }
}

}  // namespace railgun::engine
