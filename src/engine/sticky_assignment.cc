#include "engine/sticky_assignment.h"

#include <algorithm>
#include <cmath>

namespace railgun::engine {

namespace {

using msg::TopicPartition;

class Assigner {
 public:
  explicit Assigner(const TaskAssignmentInput& in) : in_(in) {
    double total_weight = 0;
    for (const auto& t : in.tasks) total_weight += WeightOf(t);
    const double copies =
        total_weight * std::max(1, in.replication_factor);
    budget_ = in.units.empty()
                  ? 0
                  : std::ceil(copies / static_cast<double>(in.units.size()));
    for (const auto& u : in.units) {
      remaining_[u.unit_id] = budget_;
      node_of_[u.unit_id] = u.node_id;
      load_[u.unit_id] = 0;
      if (!u.topics.empty()) topics_of_[u.unit_id] = u.topics;
    }
  }

  TaskAssignmentResult Run() {
    TaskAssignmentResult result;

    // ----- Active pass (Fig. 7, left) -----
    for (const auto& task : in_.tasks) {
      std::string unit;
      // 1. Previous active processor.
      auto prev = in_.prev_active.find(task);
      if (prev != in_.prev_active.end() &&
          CanAssign(task, prev->second)) {
        unit = prev->second;
      }
      // 2. Previous replica processor (least loaded).
      if (unit.empty()) {
        unit = PickLeastLoaded(task, in_.prev_replicas);
      }
      // 3. Stale processor.
      if (unit.empty()) {
        unit = PickLeastLoaded(task, in_.stale);
      }
      // 4. Least loaded overall.
      if (unit.empty()) {
        unit = PickLeastLoadedAny(task);
      }
      if (unit.empty()) continue;  // No capacity anywhere (no units).
      Install(task, unit);
      result.active[task] = unit;
      result.active_by_unit[unit].push_back(task);
      if (prev == in_.prev_active.end() || prev->second != unit) {
        ++result.moved_active;
      }
    }

    // ----- Replica pass (Fig. 7, right) -----
    const int num_replicas = std::max(0, in_.replication_factor - 1);
    for (int r = 0; r < num_replicas; ++r) {
      for (const auto& task : in_.tasks) {
        std::string unit = PickLeastLoaded(task, in_.prev_replicas);
        if (unit.empty()) unit = PickLeastLoaded(task, in_.stale);
        if (unit.empty()) unit = PickLeastLoadedAny(task);
        if (unit.empty()) continue;
        Install(task, unit);
        result.replicas[task].push_back(unit);
        result.replicas_by_unit[unit].push_back(task);
        const auto prev = in_.prev_replicas.find(task);
        if (prev == in_.prev_replicas.end() ||
            prev->second.count(unit) == 0) {
          ++result.moved_replicas;
        }
      }
    }
    return result;
  }

 private:
  double WeightOf(const TopicPartition& task) const {
    auto it = in_.weights.find(task);
    return it == in_.weights.end() ? 1.0 : it->second;
  }

  // A unit that didn't subscribe to the task's topic would consume and
  // drop its messages: never a candidate, not even as a fallback.
  bool Subscribed(const TopicPartition& task, const std::string& unit) const {
    auto it = topics_of_.find(unit);
    return it == topics_of_.end() || it->second.count(task.topic) > 0;
  }

  bool CanAssign(const TopicPartition& task, const std::string& unit) const {
    auto rem = remaining_.find(unit);
    if (rem == remaining_.end()) return false;  // Unit no longer exists.
    if (!Subscribed(task, unit)) return false;
    if (rem->second < WeightOf(task)) return false;
    // Invariant 1: one copy per physical node.
    const std::string& node = node_of_.at(unit);
    auto nodes = task_nodes_.find(task);
    return nodes == task_nodes_.end() || nodes->second.count(node) == 0;
  }

  // Least-loaded member of the task's candidate set that can accept it.
  std::string PickLeastLoaded(
      const TopicPartition& task,
      const std::map<TopicPartition, std::set<std::string>>& candidates)
      const {
    auto it = candidates.find(task);
    if (it == candidates.end()) return "";
    std::string best;
    for (const auto& unit : it->second) {
      if (!CanAssign(task, unit)) continue;
      if (best.empty() || load_.at(unit) < load_.at(best)) best = unit;
    }
    return best;
  }

  std::string PickLeastLoadedAny(const TopicPartition& task) const {
    std::string best;
    for (const auto& u : in_.units) {
      if (!CanAssign(task, u.unit_id)) continue;
      if (best.empty() || load_.at(u.unit_id) < load_.at(best)) {
        best = u.unit_id;
      }
    }
    // Budget exhausted everywhere (rounding): fall back to the least
    // loaded unit on a node without a copy, ignoring budget.
    if (best.empty()) {
      for (const auto& u : in_.units) {
        if (!Subscribed(task, u.unit_id)) continue;
        const auto nodes = task_nodes_.find(task);
        if (nodes != task_nodes_.end() &&
            nodes->second.count(u.node_id) > 0) {
          continue;
        }
        if (best.empty() || load_.at(u.unit_id) < load_.at(best)) {
          best = u.unit_id;
        }
      }
    }
    return best;
  }

  void Install(const TopicPartition& task, const std::string& unit) {
    remaining_[unit] -= WeightOf(task);
    load_[unit] += WeightOf(task);
    task_nodes_[task].insert(node_of_.at(unit));
  }

  const TaskAssignmentInput& in_;
  double budget_ = 0;
  std::map<std::string, double> remaining_;
  std::map<std::string, double> load_;
  std::map<std::string, std::string> node_of_;
  std::map<std::string, std::set<std::string>> topics_of_;
  std::map<TopicPartition, std::set<std::string>> task_nodes_;
};

}  // namespace

TaskAssignmentResult ComputeStickyAssignment(const TaskAssignmentInput& in) {
  Assigner assigner(in);
  return assigner.Run();
}

}  // namespace railgun::engine
