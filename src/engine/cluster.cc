#include "engine/cluster.h"

#include "trace/tracer.h"

namespace railgun::engine {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Default()) {
  msg::BusOptions bus_options = options_.bus;
  bus_options.clock = clock_;
  bus_.reset(new msg::InProcessBus(bus_options));
  coordinator_.reset(new Coordinator(options_.replication_factor));
  // Pre-install the sticky strategy server-side: processor units that
  // join over the network (whose strategy pointer cannot cross the
  // wire) then get the same placement as local units.
  bus_->SetGroupStrategy(kActiveGroup, coordinator_.get());

  // Wire every node's layers into the cluster-wide metrics registry;
  // instances sharing a name aggregate into one series.
  options_.node.frontend.registry = &registry_;
  options_.node.unit.registry = &registry_;

  // Pull-style metrics: snapshots sample the live components. The
  // lambdas capture `this` and the registry dies with the cluster, so
  // lifetimes are enclosed by construction.
  registry_.AddProbe("bus.rebalances", [this] {
    return static_cast<double>(bus_->rebalance_count());
  });
  registry_.AddProbe("bus.backlog", [this] {
    return static_cast<double>(bus_->BacklogHint());
  });
  registry_.AddProbe("bus.poll_parks", [this] {
    return static_cast<double>(bus_->poll_park_count());
  });
  registry_.AddProbe("bus.poll_wakes", [this] {
    return static_cast<double>(bus_->poll_wake_count());
  });
  registry_.AddProbe("frontend.pending", [this] {
    MutexLock lock(&mu_);
    double total = 0;
    for (const auto& node : nodes_) {
      if (node->alive()) {
        total += static_cast<double>(node->frontend()->pending_count());
      }
    }
    return total;
  });
  registry_.AddProbe("frontend.sheds", [this] {
    MutexLock lock(&mu_);
    double total = 0;
    for (const auto& node : nodes_) {
      total += static_cast<double>(node->frontend()->shed_count());
    }
    return total;
  });
  registry_.AddProbe("frontend.completed", [this] {
    MutexLock lock(&mu_);
    double total = 0;
    for (const auto& node : nodes_) {
      total += static_cast<double>(node->frontend()->completed_requests());
    }
    return total;
  });
  registry_.AddProbe("frontend.timed_out", [this] {
    MutexLock lock(&mu_);
    double total = 0;
    for (const auto& node : nodes_) {
      total += static_cast<double>(node->frontend()->timed_out_requests());
    }
    return total;
  });
  registry_.AddProbe("engine.active_messages", [this] {
    return static_cast<double>(TotalStats().active_messages);
  });
  registry_.AddProbe("engine.process_failures", [this] {
    return static_cast<double>(TotalStats().process_failures);
  });

  // Live SUBSCRIBE tails resolve streams from the registered set.
  subscription_hub_.reset(new ops::SubscriptionHub(
      bus_.get(),
      [this](const std::string& name) -> StatusOr<StreamDef> {
        MutexLock lock(&mu_);
        for (const auto& stream : streams_) {
          if (stream.name == name) return stream;
        }
        return Status::NotFound("unknown stream: " + name);
      },
      &registry_));
  registry_.AddProbe("subscribe.subscribers", [this] {
    return static_cast<double>(subscription_hub_->subscriber_count());
  });
  registry_.AddProbe("subscribe.queue.depth", [this] {
    return static_cast<double>(subscription_hub_->TotalQueueDepth());
  });

  // Per-stage trace latency histograms + trace.* counters flow into the
  // same registry (and through the publisher into __railgun.internals).
  trace::Tracer::InitFromEnvOnce();
  trace::Tracer::Global()->AttachRegistry(&registry_);
}

Cluster::~Cluster() {
  Stop();
  // The stage histograms live in registry_; the global tracer must not
  // outlive them holding the pointers.
  trace::Tracer::Global()->DetachRegistry(&registry_);
}

Status Cluster::Start() {
  if (options_.wipe_base_dir) {
    RAILGUN_RETURN_IF_ERROR(
        Env::Default()->RemoveDirRecursive(options_.base_dir));
  }
  RAILGUN_RETURN_IF_ERROR(Env::Default()->CreateDir(options_.base_dir));
  {
    MutexLock lock(&mu_);
    for (int i = 0; i < options_.num_nodes; ++i) {
      RAILGUN_RETURN_IF_ERROR(AddNodeLocked().status());
    }
  }
  // Self-instrumentation: snapshots of the registry become ordinary
  // events on the internals stream. The publisher only creates the
  // topic — the stream is not auto-registered on the nodes, so no unit
  // consumes it until someone asks for it via DDL (keeps task counts
  // and quiescence accounting of instrumentation-unaware callers
  // intact).
  publisher_.reset(new introspect::Publisher(options_.introspect,
                                             &registry_, bus_.get(),
                                             clock_));
  RAILGUN_RETURN_IF_ERROR(publisher_->Start());
  if (options_.internals_retention > 0) {
    RAILGUN_RETURN_IF_ERROR(bus_->SetTopicRetention(
        introspect::InternalsStreamDef().TopicFor("node"),
        options_.internals_retention));
  }
  return Status::OK();
}

void Cluster::Stop() {
  // Stop the publisher before taking mu_: a snapshot in flight may be
  // inside a probe that locks mu_ itself. Likewise the hub: its Create
  // path resolves streams through a lookup that locks mu_.
  if (publisher_ != nullptr) publisher_->Stop();
  if (subscription_hub_ != nullptr) subscription_hub_->Stop();
  MutexLock lock(&mu_);
  for (auto& node : nodes_) {
    if (node->alive()) node->Stop();
  }
}

RailgunNode* Cluster::node(int index) const {
  MutexLock lock(&mu_);
  return nodes_[static_cast<size_t>(index)].get();
}

int Cluster::num_nodes() const {
  MutexLock lock(&mu_);
  return static_cast<int>(nodes_.size());
}

StatusOr<RailgunNode*> Cluster::AddNode() {
  MutexLock lock(&mu_);
  return AddNodeLocked();
}

StatusOr<RailgunNode*> Cluster::AddNodeLocked() {
  const std::string node_id = "node" + std::to_string(next_node_index_++);
  auto node = std::make_unique<RailgunNode>(
      options_.node, node_id, options_.base_dir + "/" + node_id, bus_.get(),
      coordinator_.get(), clock_);
  RAILGUN_RETURN_IF_ERROR(node->Start());
  for (const auto& stream : streams_) {
    RAILGUN_RETURN_IF_ERROR(node->RegisterStream(stream));
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

Status Cluster::KillNode(int index, bool immediate_detection) {
  MutexLock lock(&mu_);
  nodes_[static_cast<size_t>(index)]->Kill(immediate_detection);
  return Status::OK();
}

Status Cluster::StopNode(int index) {
  MutexLock lock(&mu_);
  nodes_[static_cast<size_t>(index)]->Stop();
  return Status::OK();
}

Status Cluster::RegisterStream(const StreamDef& stream) {
  MutexLock lock(&mu_);
  // Re-registration (e.g. a metric added to an existing stream) updates
  // in place; duplicate entries would double-count topics in
  // WaitForQuiescence.
  bool updated = false;
  for (auto& existing : streams_) {
    if (existing.name == stream.name) {
      existing = stream;
      updated = true;
      break;
    }
  }
  if (!updated) streams_.push_back(stream);
  for (auto& node : nodes_) {
    if (!node->alive()) continue;
    RAILGUN_RETURN_IF_ERROR(node->RegisterStream(stream));
  }
  return Status::OK();
}

uint64_t Cluster::WaitForQuiescence(Micros timeout) {
  const Micros deadline = clock_->NowMicros() + timeout;
  while (clock_->NowMicros() < deadline) {
    uint64_t produced = 0;
    uint64_t processed = 0;
    {
      MutexLock lock(&mu_);
      for (const auto& stream : streams_) {
        // The internals stream is fed continuously by the publisher:
        // counting its production would keep "quiescence" forever out
        // of reach. Callers that registered it still drain at least all
        // user events (processed is then an overcount, which only makes
        // the wait return sooner — acceptable for a stats stream).
        if (stream.name == introspect::kInternalsStream) continue;
        for (const auto& p : stream.partitioners) {
          for (const auto& tp : bus_->PartitionsOf(stream.TopicFor(p))) {
            auto end = bus_->EndOffset(tp);
            if (end.ok()) produced += end.value();
          }
        }
      }
      for (const auto& node : nodes_) {
        if (!node->alive()) continue;
        for (int u = 0; u < node->num_units(); ++u) {
          processed += node->unit(u)->stats().active_messages;
        }
      }
    }
    if (processed >= produced && produced > 0) return processed;
    clock_->SleepMicros(2000);
  }
  return 0;
}

UnitStats Cluster::TotalStats() const {
  MutexLock lock(&mu_);
  UnitStats total;
  for (const auto& node : nodes_) {
    for (int u = 0; u < node->num_units(); ++u) {
      const UnitStats s = node->unit(u)->stats();
      total.active_messages += s.active_messages;
      total.replica_messages += s.replica_messages;
      total.replies_sent += s.replies_sent;
      total.recoveries += s.recoveries;
      total.fresh_tasks += s.fresh_tasks;
      total.bytes_recovered += s.bytes_recovered;
      total.poll_errors += s.poll_errors;
      total.publish_errors += s.publish_errors;
      total.process_failures += s.process_failures;
      total.routed_events += s.routed_events;
      total.routed_drops += s.routed_drops;
    }
  }
  return total;
}

}  // namespace railgun::engine
