#include "engine/cluster.h"

namespace railgun::engine {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Default()) {
  msg::BusOptions bus_options = options_.bus;
  bus_options.clock = clock_;
  bus_.reset(new msg::InProcessBus(bus_options));
  coordinator_.reset(new Coordinator(options_.replication_factor));
  // Pre-install the sticky strategy server-side: processor units that
  // join over the network (whose strategy pointer cannot cross the
  // wire) then get the same placement as local units.
  bus_->SetGroupStrategy(kActiveGroup, coordinator_.get());
}

Cluster::~Cluster() { Stop(); }

Status Cluster::Start() {
  if (options_.wipe_base_dir) {
    RAILGUN_RETURN_IF_ERROR(
        Env::Default()->RemoveDirRecursive(options_.base_dir));
  }
  RAILGUN_RETURN_IF_ERROR(Env::Default()->CreateDir(options_.base_dir));
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < options_.num_nodes; ++i) {
    RAILGUN_RETURN_IF_ERROR(AddNodeLocked().status());
  }
  return Status::OK();
}

void Cluster::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& node : nodes_) {
    if (node->alive()) node->Stop();
  }
}

RailgunNode* Cluster::node(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_[static_cast<size_t>(index)].get();
}

int Cluster::num_nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(nodes_.size());
}

StatusOr<RailgunNode*> Cluster::AddNode() {
  std::lock_guard<std::mutex> lock(mu_);
  return AddNodeLocked();
}

StatusOr<RailgunNode*> Cluster::AddNodeLocked() {
  const std::string node_id = "node" + std::to_string(next_node_index_++);
  auto node = std::make_unique<RailgunNode>(
      options_.node, node_id, options_.base_dir + "/" + node_id, bus_.get(),
      coordinator_.get(), clock_);
  RAILGUN_RETURN_IF_ERROR(node->Start());
  for (const auto& stream : streams_) {
    RAILGUN_RETURN_IF_ERROR(node->RegisterStream(stream));
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

Status Cluster::KillNode(int index, bool immediate_detection) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[static_cast<size_t>(index)]->Kill(immediate_detection);
  return Status::OK();
}

Status Cluster::StopNode(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[static_cast<size_t>(index)]->Stop();
  return Status::OK();
}

Status Cluster::RegisterStream(const StreamDef& stream) {
  std::lock_guard<std::mutex> lock(mu_);
  // Re-registration (e.g. a metric added to an existing stream) updates
  // in place; duplicate entries would double-count topics in
  // WaitForQuiescence.
  bool updated = false;
  for (auto& existing : streams_) {
    if (existing.name == stream.name) {
      existing = stream;
      updated = true;
      break;
    }
  }
  if (!updated) streams_.push_back(stream);
  for (auto& node : nodes_) {
    if (!node->alive()) continue;
    RAILGUN_RETURN_IF_ERROR(node->RegisterStream(stream));
  }
  return Status::OK();
}

uint64_t Cluster::WaitForQuiescence(Micros timeout) {
  const Micros deadline = clock_->NowMicros() + timeout;
  while (clock_->NowMicros() < deadline) {
    uint64_t produced = 0;
    uint64_t processed = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& stream : streams_) {
        for (const auto& p : stream.partitioners) {
          for (const auto& tp : bus_->PartitionsOf(stream.TopicFor(p))) {
            auto end = bus_->EndOffset(tp);
            if (end.ok()) produced += end.value();
          }
        }
      }
      for (const auto& node : nodes_) {
        if (!node->alive()) continue;
        for (int u = 0; u < node->num_units(); ++u) {
          processed += node->unit(u)->stats().active_messages;
        }
      }
    }
    if (processed >= produced && produced > 0) return processed;
    clock_->SleepMicros(2000);
  }
  return 0;
}

UnitStats Cluster::TotalStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  UnitStats total;
  for (const auto& node : nodes_) {
    for (int u = 0; u < node->num_units(); ++u) {
      const UnitStats s = node->unit(u)->stats();
      total.active_messages += s.active_messages;
      total.replica_messages += s.replica_messages;
      total.replies_sent += s.replies_sent;
      total.recoveries += s.recoveries;
      total.fresh_tasks += s.fresh_tasks;
      total.bytes_recovered += s.bytes_recovered;
      total.poll_errors += s.poll_errors;
      total.publish_errors += s.publish_errors;
      total.process_failures += s.process_failures;
    }
  }
  return total;
}

}  // namespace railgun::engine
