// TaskProcessor (paper §4.1): computes every metric of one
// (topic, partition). Owns a share-nothing event reservoir, an embedded
// LSM state store and a task plan. Supports synchronized checkpointing
// of both stores (plus window iterator positions) and recovery by
// rolling the state store back to its last checkpoint and replaying the
// message log from the checkpointed offset.
#ifndef RAILGUN_ENGINE_TASK_PROCESSOR_H_
#define RAILGUN_ENGINE_TASK_PROCESSOR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/column_batch.h"
#include "engine/stream_def.h"
#include "introspect/registry.h"
#include "msg/batch.h"
#include "msg/broker.h"
#include "ops/pipeline.h"
#include "plan/task_plan.h"
#include "reservoir/reservoir.h"
#include "storage/db.h"

namespace railgun::engine {

struct TaskProcessorOptions {
  reservoir::ReservoirOptions reservoir;
  storage::DBOptions db;
  // Take a synchronized checkpoint every this many processed messages.
  uint64_t checkpoint_interval_events = 50000;
  // Operator-pipeline counters register here when set (may be null).
  introspect::Registry* registry = nullptr;
};

class TaskProcessor {
 public:
  // dir: private directory for this task's data. The stream supplies the
  // schema; only queries routed to this task's topic are planned.
  TaskProcessor(const TaskProcessorOptions& options, std::string dir,
                const StreamDef& stream, std::string topic);

  TaskProcessor(const TaskProcessor&) = delete;
  TaskProcessor& operator=(const TaskProcessor&) = delete;

  // Opens (or recovers) the processor. On return, replay_offset() is the
  // first message-log offset to consume.
  Status Open();

  // Processes one message from the task's partition. Fills *reply with
  // the metrics for the arriving event (valid for active tasks to send
  // back). Idempotent across replays: offsets at or below the recovered
  // positions skip the reservoir append / plan processing respectively.
  Status ProcessMessage(const msg::Message& message, ReplyEnvelope* reply);

  // Batched variant for the wake-on-arrival pipeline: processes the
  // messages in arrival order and fills *replies 1:1 with the inputs
  // (entries with request_id 0 need no reply). Per-message failures are
  // counted in *failed and skipped instead of aborting the batch.
  // Message views typically point into the poll's pooled wire buffer;
  // envelopes are decoded columnar in one pass (ColumnBatch) and events
  // materialized through a reused scratch row — no per-event allocation
  // once the batch machinery is warm.
  Status ProcessBatch(const std::vector<msg::MessageView>& messages,
                      std::vector<ReplyEnvelope>* replies, size_t* failed);

  // Synchronized checkpoint of reservoir + state store (paper §4.1.3).
  Status Checkpoint();

  // Installs any queries from the updated stream definition that are
  // routed to this task's topic and not yet planned, backfilling their
  // aggregation state from the reservoir (runtime metric addition,
  // paper §3.1 operational requests + §6 backfill). Also installs any
  // new operator pipelines (no backfill: pipelines are forward-only).
  Status SyncQueries(const StreamDef& updated);

  // Drains the events routed by pipelines (route_to_stream) since the
  // last call. The owning unit publishes them to their target streams.
  std::vector<ops::RoutedEvent> TakeRouted();

  // Installed operator chains (for counter listing / tests).
  const std::vector<std::unique_ptr<ops::Pipeline>>& pipelines() const {
    return pipelines_;
  }

  uint64_t replay_offset() const { return replay_offset_; }
  uint64_t processed_count() const { return processed_count_; }
  const std::string& topic() const { return topic_; }

  reservoir::Reservoir* reservoir() { return reservoir_.get(); }
  storage::DB* db() { return db_.get(); }
  plan::TaskPlan* task_plan() { return plan_.get(); }

  // Copies this task's durable state (reservoir segments + last state
  // store checkpoint) into target_dir, for replica recovery. Safe to
  // call on a *directory* of a processor that is not running.
  static Status CloneData(Env* env, const std::string& source_dir,
                          const std::string& target_dir);

 private:
  Status RollBackToCheckpoint();
  // Compiles + installs stream pipelines routed to this task's topic
  // (the first partitioner's, so exactly one task per partition runs
  // each pipeline) that are not yet installed.
  Status InstallPipelines(const StreamDef& def);
  // Post-decode half of ProcessMessage: reservoir append + plan update +
  // reply fill + checkpoint cadence for one already-decoded event.
  // trace_ctx is the context recovered from the envelope trailer
  // (invalid when untraced); the advanced context lands in reply->trace
  // so the reply path keeps the chain.
  Status ApplyEvent(const reservoir::Event& event, uint64_t request_id,
                    const Slice& reply_topic,
                    const trace::TraceContext& trace_ctx,
                    ReplyEnvelope* reply);

  TaskProcessorOptions options_;
  std::string dir_;
  StreamDef stream_;
  std::string topic_;
  Env* env_;
  std::set<std::string> installed_queries_;  // By raw statement text.
  std::set<std::string> installed_pipelines_;  // By raw statement text.

  std::unique_ptr<reservoir::Reservoir> reservoir_;
  std::unique_ptr<storage::DB> db_;
  std::unique_ptr<plan::TaskPlan> plan_;
  std::vector<std::unique_ptr<ops::Pipeline>> pipelines_;
  // Events routed by pipelines since the last TakeRouted() drain.
  std::vector<ops::RoutedEvent> pending_routed_;

  uint64_t replay_offset_ = 0;
  // Offsets at or below these thresholds are skipped on replay.
  int64_t plan_skip_threshold_ = -1;
  int64_t reservoir_skip_threshold_ = -1;
  int64_t last_processed_offset_ = -1;
  uint64_t processed_count_ = 0;
  uint64_t events_since_checkpoint_ = 0;

  // Batch scratch, reused across ProcessBatch calls.
  ColumnBatch column_batch_;
  reservoir::Event scratch_event_;
  std::vector<plan::MetricResult> scratch_results_;
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_TASK_PROCESSOR_H_
