// Columnar decode of a batch of EventEnvelope payloads (the bus→unit
// hot path). One pass over the wire bytes fills per-column contiguous
// arrays: numeric fields land in tight int64/double vectors, strings
// stay zero-copy Slices into the pooled poll buffer. All column storage
// is reused across batches, so a warm ColumnBatch decodes an entire
// poll result without a single heap allocation.
#ifndef RAILGUN_ENGINE_COLUMN_BATCH_H_
#define RAILGUN_ENGINE_COLUMN_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "msg/batch.h"
#include "reservoir/event.h"

namespace railgun::engine {

class ColumnBatch {
 public:
  struct Column {
    reservoir::FieldType type = reservoir::FieldType::kInt64;
    // Exactly one of these is populated, matching `type`.
    std::vector<int64_t> ints;
    std::vector<double> nums;
    std::vector<Slice> strs;
    std::vector<uint8_t> bools;
  };

  size_t size() const { return offsets_.size(); }
  bool row_ok(size_t i) const { return ok_[i] != 0; }
  uint64_t request_id(size_t i) const { return request_ids_[i]; }
  // Views into the poll buffer — valid while the source batch is.
  Slice reply_topic(size_t i) const { return reply_topics_[i]; }
  // Unconsumed bytes after row i's column values — the trace-context
  // trailer when the producer appended one (empty otherwise).
  Slice trailer(size_t i) const { return trailers_[i]; }
  uint64_t offset(size_t i) const { return offsets_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Decodes every message payload as an EventEnvelope against `schema`.
  // Rows that fail to decode hold zero values with row_ok() false; the
  // rest of the batch is unaffected. Returns the number of good rows.
  // Slices in the result view into the messages' backing storage.
  size_t Decode(const std::vector<msg::MessageView>& messages,
                const reservoir::Schema& schema);

  // Materializes row i into *event, reusing its value/string capacity.
  void MaterializeRow(size_t i, reservoir::Event* event) const;

 private:
  void Reset(const reservoir::Schema& schema);
  // Rewinds every column to exactly `rows` entries (a row that failed
  // mid-decode leaves ragged columns behind).
  void AlignRows(size_t rows);

  std::vector<uint64_t> request_ids_;
  std::vector<Slice> reply_topics_;
  std::vector<Slice> trailers_;
  std::vector<Micros> timestamps_;
  std::vector<uint64_t> ids_;
  std::vector<uint64_t> offsets_;
  std::vector<uint8_t> ok_;
  std::vector<Column> columns_;
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_COLUMN_BATCH_H_
