#include "engine/admission.h"

#include <algorithm>
#include <cstdlib>

namespace railgun::engine {

namespace {

constexpr char kRetryAfterTag[] = "retry_after_us=";

std::string OverloadMessage(const char* signal, uint64_t depth,
                            uint64_t limit, Micros retry_after) {
  return std::string(signal) + " depth " + std::to_string(depth) +
         " >= limit " + std::to_string(limit) + "; " + kRetryAfterTag +
         std::to_string(retry_after);
}

}  // namespace

Status AdmissionController::Admit(size_t pending, size_t queue,
                                  uint64_t backlog) {
  const char* signal = nullptr;
  uint64_t depth = 0;
  uint64_t limit = 0;
  if (options_.max_pending > 0 && pending >= options_.max_pending) {
    signal = "pending";
    depth = pending;
    limit = options_.max_pending;
  } else if (options_.max_queue > 0 && queue >= options_.max_queue) {
    signal = "submit_queue";
    depth = queue;
    limit = options_.max_queue;
  } else if (options_.max_backlog > 0 && backlog >= options_.max_backlog) {
    signal = "broker_backlog";
    depth = backlog;
    limit = options_.max_backlog;
  }
  if (signal == nullptr) return Status::OK();
  sheds_.fetch_add(1, std::memory_order_relaxed);
  return Status::Overloaded(
      OverloadMessage(signal, depth, limit, options_.retry_after));
}

Micros RetryAfterMicros(const Status& status) {
  if (!status.IsOverloaded()) return 0;
  const std::string& msg = status.message();
  size_t pos = msg.find(kRetryAfterTag);
  if (pos == std::string::npos) return 0;
  return static_cast<Micros>(
      strtoll(msg.c_str() + pos + sizeof(kRetryAfterTag) - 1, nullptr, 10));
}

TokenBucket::TokenBucket(double tokens_per_sec, double burst, Clock* clock)
    : rate_(tokens_per_sec / static_cast<double>(kMicrosPerSecond)),
      burst_(std::max(burst, 1.0)),
      clock_(clock),
      tokens_(std::max(burst, 1.0)),
      last_refill_(clock->NowMicros()) {}

Status TokenBucket::Acquire() {
  if (rate_ <= 0) return Status::OK();
  MutexLock lock(&mu_);
  const Micros now = clock_->NowMicros();
  if (now >= frozen_until_) {
    // Refill accrues only outside the penalty window; time spent frozen
    // is forfeited so a shed hint really pauses the flood.
    const Micros since = std::max<Micros>(
        0, now - std::max(last_refill_, frozen_until_));
    tokens_ = std::min(burst_, tokens_ + static_cast<double>(since) * rate_);
  }
  last_refill_ = now;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return Status::OK();
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  const Micros wait = std::max<Micros>(
      frozen_until_ > now ? frozen_until_ - now : 0,
      static_cast<Micros>((1.0 - tokens_) / std::max(rate_, 1e-12)));
  return Status::Overloaded("client token bucket empty; retry_after_us=" +
                            std::to_string(wait));
}

void TokenBucket::Penalize(Micros retry_after) {
  if (retry_after <= 0) return;
  MutexLock lock(&mu_);
  frozen_until_ =
      std::max(frozen_until_, clock_->NowMicros() + retry_after);
  tokens_ = 0;
}

}  // namespace railgun::engine
