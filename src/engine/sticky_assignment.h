// Railgun's sticky, locality-aware task assignment (paper Fig. 7, §4.2).
//
// A task is a (topic, partition). Each rebalance assigns every task to
// exactly one *active* processor unit and replication_factor - 1
// *replica* units, protecting two invariants:
//   1. a physical node holds at most one copy of a task;
//   2. no unit exceeds its budget = ceil(total copies / units).
// Preference order for actives: previous active -> previous replica
// (least loaded) -> stale holder -> least loaded. For replicas:
// previous replica -> stale holder -> least loaded.
#ifndef RAILGUN_ENGINE_STICKY_ASSIGNMENT_H_
#define RAILGUN_ENGINE_STICKY_ASSIGNMENT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "msg/message.h"

namespace railgun::engine {

struct UnitDesc {
  std::string unit_id;
  std::string node_id;
  // Topics this unit subscribed to; a task is only assignable to units
  // subscribed to its topic (empty = all topics).
  std::set<std::string> topics;
};

struct TaskAssignmentInput {
  std::vector<msg::TopicPartition> tasks;
  std::vector<UnitDesc> units;
  int replication_factor = 1;
  // State from the previous generation.
  std::map<msg::TopicPartition, std::string> prev_active;
  std::map<msg::TopicPartition, std::set<std::string>> prev_replicas;
  // Units that held the task in the past and still have data leftovers.
  std::map<msg::TopicPartition, std::set<std::string>> stale;
  // Optional per-task weights (default 1.0) — the paper's future-work
  // refinement for heterogeneous task costs.
  std::map<msg::TopicPartition, double> weights;
};

struct TaskAssignmentResult {
  std::map<msg::TopicPartition, std::string> active;  // task -> unit.
  std::map<msg::TopicPartition, std::vector<std::string>> replicas;
  // Convenience inversions.
  std::map<std::string, std::vector<msg::TopicPartition>> active_by_unit;
  std::map<std::string, std::vector<msg::TopicPartition>> replicas_by_unit;
  // Tasks whose active unit changed (data-shuffle indicator measured by
  // the rebalance ablation).
  int moved_active = 0;
  int moved_replicas = 0;
};

TaskAssignmentResult ComputeStickyAssignment(const TaskAssignmentInput& in);

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_STICKY_ASSIGNMENT_H_
