// Admission control (ROADMAP "self-instrumentation + admission
// control"): refuse work at the door instead of letting queues grow
// without bound. The FrontEnd consults an AdmissionController before
// enqueuing each submission, watching the same signals the introspect
// registry exports — its own pending-table depth, its submit-queue
// length, and the broker's queue depth (surfaced by the kPoll response
// backlog hint, msg::Bus::BacklogHint). A refused request gets a typed
// kOverloaded status carrying a retry-after hint the client-side
// TokenBucket honors, so overload degrades to explicit sheds with
// bounded latency, never to collapse (bench_overload is the proof).
//
// Backpressure state machine (see DESIGN.md for the diagram):
//   ACCEPT --[any watched depth >= its limit]--> SHED
//   SHED   --[all watched depths back under their limits]--> ACCEPT
// SHED is stateless-per-request: every admission decision re-reads the
// live depths, so draining by one request is enough to let one in.
#ifndef RAILGUN_ENGINE_ADMISSION_H_
#define RAILGUN_ENGINE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"

namespace railgun::engine {

struct AdmissionOptions {
  // Per-signal ceilings; 0 disables that signal. All zero (the default)
  // disables admission control entirely.
  size_t max_pending = 0;       // FrontEnd pending-reply table depth.
  size_t max_queue = 0;         // FrontEnd submit queue length.
  uint64_t max_backlog = 0;     // Broker unconsumed-message hint.
  // Hint embedded in the kOverloaded message for client retry pacing.
  Micros retry_after = 50 * kMicrosPerMilli;

  bool enabled() const {
    return max_pending > 0 || max_queue > 0 || max_backlog > 0;
  }
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}

  // OK to admit, or kOverloaded naming the tripped signal with a
  // "retry_after_us=<n>" suffix. Depths are sampled by the caller so
  // one call site sees one consistent decision.
  Status Admit(size_t pending, size_t queue, uint64_t backlog);

  const AdmissionOptions& options() const { return options_; }
  uint64_t shed_count() const {
    return sheds_.load(std::memory_order_relaxed);
  }

 private:
  AdmissionOptions options_;
  std::atomic<uint64_t> sheds_{0};
};

// Extracts the "retry_after_us=<n>" hint from a kOverloaded status
// message; 0 when absent or not kOverloaded.
Micros RetryAfterMicros(const Status& status);

// Client-side pacing for SubmitNoReply floods: a token bucket that
// fails fast with kOverloaded when tokens run out, and Penalize()
// freezes refill for a server-provided retry-after interval so a
// shedding server isn't hammered. Thread-safe; rate <= 0 means
// unlimited (every Acquire succeeds).
class TokenBucket {
 public:
  TokenBucket(double tokens_per_sec, double burst, Clock* clock);

  // Takes one token, or returns kOverloaded with a retry hint.
  Status Acquire();
  // Applies a server shed hint: no refill until now + retry_after.
  void Penalize(Micros retry_after);

  uint64_t rejected_count() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const double rate_;   // Tokens per microsecond.
  const double burst_;  // Max accumulated tokens.
  Clock* clock_;
  Mutex mu_{kRankEngineAdmission};
  double tokens_ GUARDED_BY(mu_);
  Micros last_refill_ GUARDED_BY(mu_);
  Micros frozen_until_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_ADMISSION_H_
