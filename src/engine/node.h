// A Railgun node (paper Fig. 3): one front-end layer plus a set of
// processor units, all communicating exclusively through the messaging
// layer. In this reproduction every node lives in-process with a private
// data directory, preserving the paper's topology (N nodes x U units).
#ifndef RAILGUN_ENGINE_NODE_H_
#define RAILGUN_ENGINE_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/frontend.h"
#include "engine/processor_unit.h"

namespace railgun::engine {

struct NodeOptions {
  int num_processor_units = 2;
  UnitOptions unit;
  FrontEndOptions frontend;
};

class RailgunNode {
 public:
  RailgunNode(const NodeOptions& options, std::string node_id,
              std::string dir, msg::Bus* bus,
              Coordinator* coordinator, Clock* clock);

  RailgunNode(const RailgunNode&) = delete;
  RailgunNode& operator=(const RailgunNode&) = delete;

  Status Start();
  // Graceful shutdown: units leave the consumer group (clean rebalance).
  void Stop();
  // Abrupt failure: unit threads die; the bus fences them after their
  // heartbeats expire. Pass immediate=true to also report the failure
  // to the bus right away (models fast failure detection).
  void Kill(bool immediate_detection = true);

  Status RegisterStream(const StreamDef& stream);

  FrontEnd* frontend() { return frontend_.get(); }
  ProcessorUnit* unit(int i) { return units_[static_cast<size_t>(i)].get(); }
  int num_units() const { return static_cast<int>(units_.size()); }
  const std::string& id() const { return node_id_; }
  bool alive() const { return alive_; }

 private:
  NodeOptions options_;
  std::string node_id_;
  std::string dir_;
  msg::Bus* bus_;
  Clock* clock_;

  std::unique_ptr<FrontEnd> frontend_;
  std::vector<std::unique_ptr<ProcessorUnit>> units_;
  bool alive_ = false;
};

}  // namespace railgun::engine

#endif  // RAILGUN_ENGINE_NODE_H_
