#include "engine/processor_unit.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"
#include "trace/tracer.h"

namespace railgun::engine {

ProcessorUnit::ProcessorUnit(const UnitOptions& options, std::string unit_id,
                             std::string node_id, std::string dir,
                             msg::Bus* bus, Coordinator* coordinator,
                             Clock* clock)
    : options_(options),
      unit_id_(std::move(unit_id)),
      node_id_(std::move(node_id)),
      dir_(std::move(dir)),
      bus_(bus),
      coordinator_(coordinator),
      clock_(clock) {
  if (options_.registry != nullptr) {
    batch_size_ = options_.registry->histogram("unit.batch_size");
    routed_published_ = options_.registry->counter("ops.routed.published");
    routed_dropped_ = options_.registry->counter("ops.routed.dropped");
  }
  // Pipeline counters register against the same registry.
  options_.task.registry = options_.registry;
}

ProcessorUnit::~ProcessorUnit() {
  Stop();
}

Status ProcessorUnit::Start() {
  coordinator_->RegisterUnitDir(unit_id_, dir_);
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void ProcessorUnit::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  op_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  (void)bus_->Unsubscribe(unit_id_);  // Best effort on shutdown.
}

void ProcessorUnit::Kill() {
  running_ = false;
  op_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  // No Unsubscribe: the bus discovers the death via heartbeat expiry
  // (or the harness calls KillConsumer for immediate detection).
}

void ProcessorUnit::EnqueueRegisterStream(const StreamDef& stream) {
  {
    MutexLock lock(&mu_);
    pending_streams_.push_back(stream);
  }
  op_cv_.NotifyAll();
  // A loop parked in a blocking bus poll applies the registration on
  // its next pass; interrupt it so DDL takes effect promptly (NotFound
  // before the first subscription: the op_cv_ park covers that phase).
  (void)bus_->WakeConsumer(unit_id_);
}

UnitStats ProcessorUnit::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

std::vector<msg::TopicPartition> ProcessorUnit::active_tasks() const {
  MutexLock lock(&mu_);
  return active_tasks_;
}

std::vector<msg::TopicPartition> ProcessorUnit::replica_tasks() const {
  MutexLock lock(&mu_);
  std::vector<msg::TopicPartition> result;
  for (const auto& [tp, pos] : replica_positions_) result.push_back(tp);
  return result;
}

TaskProcessor* ProcessorUnit::FindProcessor(const msg::TopicPartition& tp) {
  MutexLock lock(&mu_);
  auto it = processors_.find(Coordinator::TaskSubdir(tp));
  return it == processors_.end() ? nullptr : it->second.get();
}

const StreamDef* ProcessorUnit::StreamForTopic(
    const std::string& topic) const {
  for (const auto& [name, stream] : streams_) {
    for (const auto& p : stream.partitioners) {
      if (stream.TopicFor(p) == topic) return &stream;
    }
  }
  return nullptr;
}

void ProcessorUnit::DrainOperationalRequests() {
  std::deque<StreamDef> pending;
  {
    MutexLock lock(&mu_);
    pending.swap(pending_streams_);
  }
  if (pending.empty()) return;

  bool changed = false;
  {
    MutexLock lock(&mu_);
    for (auto& stream : pending) {
      streams_[stream.name] = std::move(stream);
      changed = true;
    }
  }
  if (!changed) return;

  // Propagate updated stream definitions into live task processors:
  // queries added at runtime are planned and backfilled (paper §3.1
  // operational requests / §6 metric backfill).
  {
    MutexLock lock(&mu_);
    for (auto& [key, processor] : processors_) {
      const StreamDef* stream = StreamForTopic(processor->topic());
      if (stream != nullptr && !processor->SyncQueries(*stream).ok()) {
        // A query whose backfill failed stays uninstalled; the next
        // RegisterStream retries it. Count it like a rejected message.
        ++stats_.process_failures;
      }
    }
  }

  // (Re-)subscribe to the union of all event topics.
  std::vector<std::string> topics;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, stream] : streams_) {
      for (const auto& p : stream.partitioners) {
        topics.push_back(stream.TopicFor(p));
      }
    }
  }
  msg::RebalanceListener listener;
  listener.on_assigned = [this](const std::vector<msg::TopicPartition>& a) {
    HandleAssigned(a);
  };
  listener.on_revoked = [this](const std::vector<msg::TopicPartition>& r) {
    MutexLock lock(&mu_);
    for (const auto& tp : r) {
      active_tasks_.erase(
          std::remove(active_tasks_.begin(), active_tasks_.end(), tp),
          active_tasks_.end());
    }
  };
  const Status subscribed = bus_->Subscribe(
      unit_id_, kActiveGroup, topics,
      "node=" + node_id_ + ";unit=" + unit_id_, coordinator_,
      std::move(listener));
  MutexLock lock(&mu_);
  if (subscribed.ok()) {
    subscribed_ = true;
  } else {
    ++stats_.poll_errors;
  }
}

void ProcessorUnit::HandleAssigned(
    const std::vector<msg::TopicPartition>& assigned) {
  for (const auto& tp : assigned) {
    uint64_t replay_offset = 0;
    auto proc_or = GetOrCreateProcessor(tp, &replay_offset);
    if (!proc_or.ok()) continue;
    Status seek = bus_->Seek(unit_id_, tp, replay_offset);
    MutexLock lock(&mu_);
    if (!seek.ok()) {
      // The poll continues from the committed position instead of the
      // checkpointed one; surfaced like any other failed bus call.
      ++stats_.poll_errors;
    }
    if (std::find(active_tasks_.begin(), active_tasks_.end(), tp) ==
        active_tasks_.end()) {
      active_tasks_.push_back(tp);
    }
  }
}

StatusOr<TaskProcessor*> ProcessorUnit::GetOrCreateProcessor(
    const msg::TopicPartition& tp, uint64_t* replay_offset) {
  const std::string key = Coordinator::TaskSubdir(tp);
  {
    MutexLock lock(&mu_);
    auto it = processors_.find(key);
    if (it != processors_.end()) {
      *replay_offset = it->second->replay_offset();
      return it->second.get();
    }
  }

  const StreamDef* stream;
  {
    MutexLock lock(&mu_);
    stream = StreamForTopic(tp.topic);
  }
  if (stream == nullptr) {
    return Status::NotFound("no stream registered for topic " + tp.topic);
  }

  Env* env = options_.task.db.env != nullptr ? options_.task.db.env
                                             : Env::Default();
  const std::string task_dir = dir_ + "/" + key;
  const bool have_local_data =
      env->FileExists(task_dir + "/reservoir") ||
      env->FileExists(task_dir + "/ckpt/CURRENT");

  bool recovered_from_donor = false;
  uint64_t copied_bytes = 0;
  if (!have_local_data) {
    // Recovery (paper §4.2): copy reservoir + state store checkpoint
    // from a unit that still has data for this task.
    const std::string donor = coordinator_->FindDonorDir(tp, unit_id_);
    if (!donor.empty() && env->FileExists(donor)) {
      RAILGUN_RETURN_IF_ERROR(
          TaskProcessor::CloneData(env, donor, task_dir));
      recovered_from_donor = true;
      std::vector<std::string> children;
      if (env->ListDir(task_dir + "/reservoir", &children).ok()) {
        for (const auto& c : children) {
          uint64_t size = 0;
          if (env->GetFileSize(task_dir + "/reservoir/" + c, &size).ok()) {
            copied_bytes += size;
          }
        }
      }
    }
  }

  auto processor = std::make_unique<TaskProcessor>(options_.task, task_dir,
                                                   *stream, tp.topic);
  RAILGUN_RETURN_IF_ERROR(processor->Open());
  *replay_offset = processor->replay_offset();

  TaskProcessor* raw = processor.get();
  {
    MutexLock lock(&mu_);
    processors_[key] = std::move(processor);
    if (recovered_from_donor) {
      ++stats_.recoveries;
      stats_.bytes_recovered += copied_bytes;
    } else if (!have_local_data) {
      ++stats_.fresh_tasks;
    }
  }
  return raw;
}

void ProcessorUnit::SyncReplicaTasks() {
  const uint64_t generation = coordinator_->generation();
  if (generation == seen_generation_) return;
  seen_generation_ = generation;

  const std::vector<msg::TopicPartition> replicas =
      coordinator_->ReplicaTasksFor(unit_id_);

  std::map<msg::TopicPartition, uint64_t> new_positions;
  for (const auto& tp : replicas) {
    MutexLock lock(&mu_);
    auto it = replica_positions_.find(tp);
    if (it != replica_positions_.end()) {
      new_positions[tp] = it->second;  // Keep progress.
    } else {
      new_positions[tp] = UINT64_MAX;  // Lazily initialized below.
    }
  }
  {
    MutexLock lock(&mu_);
    replica_positions_ = std::move(new_positions);
  }
}

namespace {
// Binds a routed field value to the target schema's declared type.
// Numeric widening/narrowing is allowed; anything is stringifiable;
// bools only accept bools and ints.
bool CoerceTo(reservoir::FieldType type, const reservoir::FieldValue& v,
              reservoir::FieldValue* out) {
  switch (type) {
    case reservoir::FieldType::kInt64:
      if (v.is_string()) return false;
      *out = reservoir::FieldValue(static_cast<int64_t>(v.ToNumber()));
      return true;
    case reservoir::FieldType::kDouble:
      if (v.is_string()) return false;
      *out = reservoir::FieldValue(v.ToNumber());
      return true;
    case reservoir::FieldType::kString:
      *out = reservoir::FieldValue(v.ToString());
      return true;
    case reservoir::FieldType::kBool:
      if (v.is_bool()) {
        *out = v;
      } else if (v.is_int()) {
        *out = reservoir::FieldValue(v.as_int() != 0);
      } else {
        return false;
      }
      return true;
  }
  return false;
}
}  // namespace

void ProcessorUnit::PublishRouted(std::vector<ops::RoutedEvent> routed) {
  if (routed.empty()) return;
  std::map<std::string, std::vector<msg::ProduceRecord>> batches;
  uint64_t dropped = 0;
  uint64_t prepared = 0;
  for (auto& re : routed) {
    StreamDef target;
    {
      MutexLock lock(&mu_);
      auto it = streams_.find(re.target);
      if (it == streams_.end()) {
        // Target stream unknown on this node: typed drop, not a crash —
        // registration may still be propagating.
        ++dropped;
        continue;
      }
      target = it->second;
    }
    const reservoir::Schema schema(0, target.fields);
    EventEnvelope envelope;  // request_id 0: fire-and-forget.
    envelope.event.timestamp = re.timestamp;
    // Deterministic derived id: a replayed source event re-derives the
    // same id, so the target reservoir's dedup keeps routing idempotent.
    envelope.event.id = MixHash64(Hash64(re.target) ^ re.source_id);
    envelope.event.values.reserve(target.fields.size());
    bool bound = true;
    for (const auto& field : target.fields) {
      const reservoir::FieldValue* found = nullptr;
      for (const auto& [name, value] : re.fields) {
        if (name == field.name) {
          found = &value;
          break;
        }
      }
      reservoir::FieldValue coerced;
      if (found == nullptr || !CoerceTo(field.type, *found, &coerced)) {
        bound = false;
        break;
      }
      envelope.event.values.push_back(std::move(coerced));
    }
    if (!bound) {
      ++dropped;
      continue;
    }
    std::string payload;
    EncodeEventEnvelope(envelope, schema, &payload);
    bool keyed = true;
    for (const auto& p : target.partitioners) {
      const int field = schema.FieldIndex(p);
      if (field < 0) {
        keyed = false;
        break;
      }
      batches[target.TopicFor(p)].push_back(
          {envelope.event.values[field].ToString(), payload});
    }
    if (keyed) {
      ++prepared;
    } else {
      ++dropped;
    }
  }
  uint64_t publish_errors = 0;
  for (auto& [topic, records] : batches) {
    if (!bus_->ProduceBatch(topic, std::move(records)).ok()) {
      ++publish_errors;
    }
  }
  if (routed_published_ != nullptr) routed_published_->Add(prepared);
  if (routed_dropped_ != nullptr) routed_dropped_->Add(dropped);
  MutexLock lock(&mu_);
  stats_.routed_events += prepared;
  stats_.routed_drops += dropped;
  stats_.publish_errors += publish_errors;
}

void ProcessorUnit::ProcessGrouped(
    const std::map<msg::TopicPartition, std::vector<msg::MessageView>>&
        groups,
    bool active) {
  // Replies for active tasks are batched per reply topic and published
  // with one ProduceBatch each; replicas stay silent (Algorithm 1).
  std::map<std::string, std::vector<msg::ProduceRecord>> reply_batches;
  // First traced reply per topic anchors that topic's publish span.
  std::map<std::string, trace::TraceContext> reply_trace_ctx;
  for (const auto& [tp, messages] : groups) {
    uint64_t replay_offset = 0;
    auto proc_or = GetOrCreateProcessor(tp, &replay_offset);
    if (!proc_or.ok()) continue;
    std::vector<ReplyEnvelope> replies;
    size_t failed = 0;
    if (!proc_or.value()->ProcessBatch(messages, &replies, &failed).ok()) {
      continue;
    }
    // Drain pipeline-routed events every batch (bounded memory). Only
    // the active task publishes; a replica ran the pipeline merely to
    // keep state warm, and its outputs would be duplicates.
    std::vector<ops::RoutedEvent> routed = proc_or.value()->TakeRouted();
    if (active) PublishRouted(std::move(routed));
    {
      MutexLock lock(&mu_);
      stats_.process_failures += failed;
      if (active) {
        stats_.active_messages += messages.size() - failed;
      } else {
        stats_.replica_messages += messages.size() - failed;
      }
    }
    if (!active) continue;
    for (size_t i = 0; i < messages.size(); ++i) {
      ReplyEnvelope& reply = replies[i];
      if (reply.request_id == 0 || reply.reply_topic.empty()) continue;
      std::string encoded;
      EncodeReplyEnvelope(reply, &encoded);
      // The trailer forwards the unit-side context so the front end's
      // completion span links into the same trace.
      trace::AppendTraceTrailer(reply.trace, &encoded);
      if (reply.trace.valid() &&
          !reply_trace_ctx.count(reply.reply_topic)) {
        reply_trace_ctx[reply.reply_topic] = reply.trace;
      }
      reply_batches[reply.reply_topic].push_back(
          {messages[i].key.ToString(), std::move(encoded)});
    }
  }
  trace::Tracer* tracer = trace::Tracer::Global();
  for (auto& [topic, records] : reply_batches) {
    const uint64_t count = records.size();
    const trace::TraceContext publish_ctx = reply_trace_ctx[topic];
    const Micros publish_start =
        tracer->enabled() ? tracer->NowMicros() : 0;
    Status published;
    {
      // Ambient context for the in-process broker's append span.
      trace::ScopedTraceContext scope(publish_ctx);
      published = bus_->ProduceBatch(topic, std::move(records));
    }
    if (publish_start != 0) {
      tracer->Record(trace::Stage::kReplyPublish, publish_ctx,
                     publish_start, tracer->NowMicros());
    }
    MutexLock lock(&mu_);
    if (published.ok()) {
      stats_.replies_sent += count;
    } else {
      ++stats_.publish_errors;
    }
  }
}

void ProcessorUnit::Run() {
  while (running_) {
    DrainOperationalRequests();
    SyncReplicaTasks();

    {
      MutexLock lock(&mu_);
      if (!subscribed_) {
        // Not yet a group member, so there is no consumer to block in:
        // park until the first stream registration (or shutdown).
        if (pending_streams_.empty() && running_) {
          op_cv_.WaitFor(&mu_, options_.poll_wait);
        }
        continue;
      }
    }

    // Active tasks: blocking poll through the consumer group. Acts as
    // the heartbeat and parks (wake-on-arrival) when nothing is ready.
    // PollBatch hands back views into the transport's pooled buffer, so
    // the hot path never copies event payloads into per-message strings.
    trace::Tracer* tracer = trace::Tracer::Global();
    const Micros poll_start = tracer->enabled() ? tracer->NowMicros() : 0;
    const Status poll_status = bus_->PollBatch(
        unit_id_, options_.poll_max, &active_batch_, options_.poll_wait);
    if (poll_start != 0 && !active_batch_.empty()) {
      // No context yet at poll time: histogram-only hop (park-to-batch
      // latency; empty polls are just the idle park, skip them).
      tracer->Record(trace::Stage::kUnitPoll, trace::TraceContext(),
                     poll_start, tracer->NowMicros());
    }
    if (!poll_status.ok()) {
      {
        MutexLock lock(&mu_);
        ++stats_.poll_errors;
      }
      // A failed poll (e.g. fenced consumer) returns immediately: park
      // briefly so replica duty continues without hot-spinning.
      MutexLock lock(&mu_);
      if (running_) {
        op_cv_.WaitFor(&mu_, options_.poll_wait);
      }
    }

    // Replica tasks: direct fetch, tracked positions. Fetched messages
    // are owned by keepalive batches so the grouped views stay valid.
    std::map<msg::TopicPartition, std::vector<msg::MessageView>>
        replica_groups;
    std::deque<msg::MessageBatch> replica_keepalive;
    std::vector<std::pair<msg::TopicPartition, uint64_t>> replica_list;
    {
      MutexLock lock(&mu_);
      for (const auto& [tp, pos] : replica_positions_) {
        replica_list.push_back({tp, pos});
      }
    }
    for (auto& [tp, pos] : replica_list) {
      if (pos == UINT64_MAX) {
        // First contact with this replica task: build the processor
        // (recovering data if needed) and start from its replay offset.
        uint64_t replay_offset = 0;
        auto proc_or = GetOrCreateProcessor(tp, &replay_offset);
        if (!proc_or.ok()) continue;
        pos = replay_offset;
      }
      std::vector<msg::Message> batch;
      const Status fetched = bus_->Fetch(tp, pos, options_.poll_max, &batch);
      if (fetched.ok()) {
        // Advance past what was actually read: retention may have
        // clamped the fetch forward of pos (offsets are absolute).
        if (!batch.empty()) {
          pos = batch.back().offset + 1;
          replica_keepalive.emplace_back();
          replica_keepalive.back().Adopt(std::move(batch));
          replica_groups[tp] = replica_keepalive.back().views();
        }
      } else {
        MutexLock lock(&mu_);
        ++stats_.poll_errors;
      }
      MutexLock lock(&mu_);
      auto it = replica_positions_.find(tp);
      if (it != replica_positions_.end()) it->second = pos;
    }

    if (batch_size_ != nullptr && !active_batch_.empty()) {
      batch_size_->Record(static_cast<int64_t>(active_batch_.size()));
    }

    // Group active message views by task so each task processor handles
    // its slice of the poll as one batch. Views stay backed by
    // active_batch_ (pooled wire buffer or adopted messages).
    std::map<msg::TopicPartition, std::vector<msg::MessageView>>
        active_groups;
    for (const auto& view : active_batch_.views()) {
      active_groups[view.topic_partition()].push_back(view);
    }

    ProcessGrouped(active_groups, /*active=*/true);
    ProcessGrouped(replica_groups, /*active=*/false);
    active_batch_.Clear();
  }
}

}  // namespace railgun::engine
