#include "engine/coordinator.h"

namespace railgun::engine {

namespace {
// Extracts "node=<id>" from member metadata.
std::string NodeOf(const std::string& metadata) {
  const size_t pos = metadata.find("node=");
  if (pos == std::string::npos) return metadata;
  const size_t start = pos + 5;
  const size_t end = metadata.find(';', start);
  return metadata.substr(start, end == std::string::npos ? std::string::npos
                                                         : end - start);
}
}  // namespace

msg::Assignment Coordinator::Assign(
    const std::vector<msg::MemberInfo>& members,
    const std::vector<msg::TopicPartition>& partitions) {
  MutexLock lock(&mu_);

  TaskAssignmentInput input;
  input.tasks = partitions;
  input.replication_factor = replication_factor_;
  for (const auto& m : members) {
    input.units.push_back(
        {m.member_id, NodeOf(m.metadata),
         std::set<std::string>(m.topics.begin(), m.topics.end())});
  }
  input.prev_active = prev_active_;
  input.prev_replicas = prev_replicas_;
  input.stale = stale_;

  TaskAssignmentResult result = ComputeStickyAssignment(input);

  // Units that lost a copy keep data leftovers: record them as stale.
  for (const auto& [task, unit] : prev_active_) {
    const auto now_active = result.active.find(task);
    const bool still_holds =
        (now_active != result.active.end() && now_active->second == unit);
    bool is_replica = false;
    auto reps = result.replicas.find(task);
    if (reps != result.replicas.end()) {
      for (const auto& r : reps->second) {
        if (r == unit) is_replica = true;
      }
    }
    if (!still_holds && !is_replica) stale_[task].insert(unit);
  }
  for (const auto& [task, units] : prev_replicas_) {
    for (const auto& unit : units) {
      const auto now_active = result.active.find(task);
      const bool is_active =
          (now_active != result.active.end() && now_active->second == unit);
      bool is_replica = false;
      auto reps = result.replicas.find(task);
      if (reps != result.replicas.end()) {
        for (const auto& r : reps->second) {
          if (r == unit) is_replica = true;
        }
      }
      if (!is_active && !is_replica) stale_[task].insert(unit);
    }
  }
  // Current holders are no longer stale.
  for (const auto& [task, unit] : result.active) stale_[task].erase(unit);
  for (const auto& [task, units] : result.replicas) {
    for (const auto& unit : units) stale_[task].erase(unit);
  }

  prev_active_ = result.active;
  prev_replicas_.clear();
  for (const auto& [task, units] : result.replicas) {
    prev_replicas_[task] = std::set<std::string>(units.begin(), units.end());
  }
  replicas_by_unit_ = result.replicas_by_unit;
  total_moved_active_ += result.moved_active;
  total_moved_replicas_ += result.moved_replicas;
  ++generation_;

  msg::Assignment out;
  for (const auto& m : members) {
    out[m.member_id] = {};  // Every member appears, even if empty.
  }
  for (const auto& [unit, tasks] : result.active_by_unit) {
    out[unit] = tasks;
  }
  return out;
}

void Coordinator::RegisterUnitDir(const std::string& unit_id,
                                  const std::string& dir) {
  MutexLock lock(&mu_);
  unit_dirs_[unit_id] = dir;
}

std::vector<msg::TopicPartition> Coordinator::ReplicaTasksFor(
    const std::string& unit_id) {
  MutexLock lock(&mu_);
  auto it = replicas_by_unit_.find(unit_id);
  return it == replicas_by_unit_.end() ? std::vector<msg::TopicPartition>{}
                                       : it->second;
}

std::string Coordinator::FindDonorDir(const msg::TopicPartition& task,
                                      const std::string& requesting_unit) {
  MutexLock lock(&mu_);
  auto dir_of = [&](const std::string& unit) -> std::string {
    auto it = unit_dirs_.find(unit);
    if (it == unit_dirs_.end()) return "";
    return it->second + "/" + TaskSubdir(task);
  };

  auto active = prev_active_.find(task);
  if (active != prev_active_.end() && active->second != requesting_unit) {
    const std::string dir = dir_of(active->second);
    if (!dir.empty()) return dir;
  }
  auto reps = prev_replicas_.find(task);
  if (reps != prev_replicas_.end()) {
    for (const auto& unit : reps->second) {
      if (unit == requesting_unit) continue;
      const std::string dir = dir_of(unit);
      if (!dir.empty()) return dir;
    }
  }
  auto stale = stale_.find(task);
  if (stale != stale_.end()) {
    for (const auto& unit : stale->second) {
      if (unit == requesting_unit) continue;
      const std::string dir = dir_of(unit);
      if (!dir.empty()) return dir;
    }
  }
  return "";
}

}  // namespace railgun::engine
