// Compiled stream-operator pipelines (the combinator layer the ROADMAP
// calls out, modeled on cavalieri's `by >> rate >> prn` chains). A
// textual `ADD PIPELINE` statement compiles — against the source
// stream's schema — into an executable chain of typed operators that
// TaskProcessor runs next to the aggregation plan, one instance per
// (pipeline, partition task).
//
// Execution model: each source event flows through the operators in
// order; an operator either forwards the (possibly annotated) event or
// absorbs it. `by(...)` rebinds the key that downstream stateful
// operators (`rate`, `window_count`, `changed`) partition their state
// on; with no upstream `by` they keep one global state per task.
// `route_to_stream(target)` is the only terminal with an external
// effect: it emits a RoutedEvent the owning ProcessorUnit republishes
// into the target stream (deterministic derived event id, so reservoir
// dedup makes replay/redelivery idempotent).
//
// Counters: every operator keeps in/out/dropped totals. When a
// registry is attached they are get-or-create by name
// (`ops.pipeline.<name>.opN.<kind>.{in,out,dropped}`), so instances of
// the same pipeline across tasks and nodes aggregate into one
// cluster-wide series on `__railgun.internals`. `dropped` counts
// errors (failed evals, state-capacity hits) — events a filter-like
// operator absorbs on purpose are just `in - out`.
#ifndef RAILGUN_OPS_PIPELINE_H_
#define RAILGUN_OPS_PIPELINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "introspect/registry.h"
#include "query/pipeline.h"
#include "reservoir/event.h"

namespace railgun::ops {

// Output of a route_to_stream terminal: a derived event addressed to
// another stream, carried as named fields so the publisher can bind it
// to the target schema by name (with numeric coercion).
struct RoutedEvent {
  std::string target;
  Micros timestamp = 0;
  uint64_t source_id = 0;  // Id of the event that produced this one.
  std::vector<std::pair<std::string, reservoir::FieldValue>> fields;
};

// Per-operator counter snapshot for `pipelines` listings.
struct OpCounters {
  std::string label;  // e.g. "filter(amount > 100)".
  uint64_t in = 0;
  uint64_t out = 0;
  uint64_t dropped = 0;
};

class Pipeline {
 public:
  // Bound, per-task state per stateful operator is capped; keys beyond
  // the cap are absorbed and counted as drops.
  static constexpr size_t kMaxTrackedKeys = 1 << 16;

  // Parses and compiles `statement` against the source stream schema.
  // `registry` may be null (tests); counters then stay pipeline-local.
  static StatusOr<std::unique_ptr<Pipeline>> Compile(
      const std::string& statement, const reservoir::Schema& source,
      introspect::Registry* registry);

  // Runs one source event through the chain, appending any routed
  // outputs. Single-threaded per instance (the owning task's thread).
  void Process(const reservoir::Event& event,
               std::vector<RoutedEvent>* routed);

  const query::PipelineSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  std::vector<OpCounters> CountersSnapshot() const;

 private:
  Pipeline() = default;

  struct KeyedState {
    Micros rate_start = 0;   // rate: current interval start.
    uint64_t count = 0;      // rate / window_count event count.
    reservoir::FieldValue last;  // changed: previous value.
    bool has_last = false;
  };

  struct CompiledOp {
    query::OpSpec spec;
    std::unique_ptr<query::Expr> expr;  // filter predicate / map value.
    int field_index = -1;               // map target, threshold/changed.
    std::vector<int> key_indices;       // by.
    introspect::Counter* in = nullptr;
    introspect::Counter* out = nullptr;
    introspect::Counter* dropped = nullptr;
    std::unordered_map<std::string, KeyedState> state;
  };

  introspect::Counter* MakeCounter(introspect::Registry* registry,
                                   const std::string& name);
  KeyedState* StateFor(CompiledOp* op, const std::string& key);

  query::PipelineSpec spec_;
  // Source schema extended with fields synthesized by map/rate/
  // window_count; routed events carry all of it.
  std::vector<reservoir::SchemaField> effective_fields_;
  std::vector<CompiledOp> ops_;
  // Fallback counter storage when no registry is attached.
  std::vector<std::unique_ptr<introspect::Counter>> owned_counters_;
  introspect::Counter* events_in_ = nullptr;
  introspect::Counter* events_routed_ = nullptr;
};

// Fluent builder for programmatic registration: synthesizes the ADD
// PIPELINE statement, which is the canonical form every layer (DDL
// shipping, StreamDef distribution, replay) already transports.
//
//   client->Execute(ops::PipelineBuilder("alerts", "payments")
//                       .Filter("amount > 100")
//                       .By({"cardId"})
//                       .Threshold("amount", 500)
//                       .RouteToStream("big_payments")
//                       .Statement());
class PipelineBuilder {
 public:
  PipelineBuilder(std::string name, std::string stream);

  PipelineBuilder& Filter(const std::string& predicate);
  PipelineBuilder& Map(const std::string& field, const std::string& expr);
  PipelineBuilder& By(const std::vector<std::string>& keys);
  PipelineBuilder& Rate(uint64_t interval_seconds);
  PipelineBuilder& WindowCount(uint64_t events);
  PipelineBuilder& Threshold(const std::string& field, double limit);
  PipelineBuilder& Changed(const std::string& field);
  PipelineBuilder& RouteToStream(const std::string& target);

  std::string Statement() const;

 private:
  std::string statement_;
  bool has_op_ = false;
};

}  // namespace railgun::ops

#endif  // RAILGUN_OPS_PIPELINE_H_
