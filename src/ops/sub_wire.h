// Wire messages for live subscriptions (opcodes kSubCreate / kSubFetch
// / kSubCancel in msg/remote/wire.h). The client ships the SUBSCRIBE
// statement verbatim (like DDL: both sides agree with the parser, and
// the text is the only versioned surface); the hub answers with a
// subscription id, then the client long-polls for record batches,
// acknowledging the highest sequence it has consumed. Records are
// self-describing (named, tagged field values) so a subscriber needs no
// schema exchange.
//
// Backpressure contract (see DESIGN.md "Operator pipelines &
// subscriptions"): the hub buffers at most queue_capacity records per
// subscription; when a slow subscriber lets the queue fill, the OLDEST
// records are evicted and counted in `dropped_total` — the tail stays
// live, lag is observable, memory is bounded.
#ifndef RAILGUN_OPS_SUB_WIRE_H_
#define RAILGUN_OPS_SUB_WIRE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "reservoir/event.h"

namespace railgun::ops {

// One pushed row: a raw tailed event or one metric update.
struct SubRecord {
  uint64_t seq = 0;  // Per-subscription, contiguous from 1. Gaps after
                     // eviction tell the subscriber how much it lost.
  Micros timestamp = 0;
  std::vector<std::pair<std::string, reservoir::FieldValue>> fields;
};

struct SubCreateRequest {
  std::string statement;  // The SUBSCRIBE ... text.
};

struct SubCreateReply {
  uint64_t sub_id = 0;
};

struct SubFetchRequest {
  uint64_t sub_id = 0;
  // Highest seq the subscriber has consumed; the hub trims its queue up
  // to it (records at or below are never redelivered).
  uint64_t acked_seq = 0;
  uint32_t max_records = 0;
  Micros max_wait_us = 0;  // Long-poll budget (server-capped).
};

struct SubFetchReply {
  std::vector<SubRecord> records;
  uint64_t dropped_total = 0;  // Lifetime evictions for this sub.
  uint64_t lag = 0;            // Records still queued after this batch.
};

struct SubCancelRequest {
  uint64_t sub_id = 0;
};

void EncodeSubCreateRequest(const SubCreateRequest& req, std::string* out);
Status DecodeSubCreateRequest(const Slice& data, SubCreateRequest* req);

void EncodeSubCreateReply(const SubCreateReply& reply, std::string* out);
Status DecodeSubCreateReply(const Slice& data, SubCreateReply* reply);

void EncodeSubFetchRequest(const SubFetchRequest& req, std::string* out);
Status DecodeSubFetchRequest(const Slice& data, SubFetchRequest* req);

void EncodeSubFetchReply(const SubFetchReply& reply, std::string* out);
Status DecodeSubFetchReply(const Slice& data, SubFetchReply* reply);

void EncodeSubCancelRequest(const SubCancelRequest& req, std::string* out);
Status DecodeSubCancelRequest(const Slice& data, SubCancelRequest* req);

}  // namespace railgun::ops

#endif  // RAILGUN_OPS_SUB_WIRE_H_
