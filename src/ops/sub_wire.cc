#include "ops/sub_wire.h"

#include <algorithm>

#include "common/coding.h"
#include "engine/stream_def.h"

namespace railgun::ops {

namespace {

// Caps a decoded count against the bytes actually available, so a
// corrupt frame cannot make reserve() allocate unbounded memory.
constexpr uint32_t kMaxReasonableCount = 1 << 20;

}  // namespace

void EncodeSubCreateRequest(const SubCreateRequest& req, std::string* out) {
  PutLengthPrefixedSlice(out, req.statement);
}

Status DecodeSubCreateRequest(const Slice& data, SubCreateRequest* req) {
  Slice in = data;
  Slice statement;
  if (!GetLengthPrefixedSlice(&in, &statement)) {
    return Status::Corruption("bad subscribe request");
  }
  req->statement = statement.ToString();
  return Status::OK();
}

void EncodeSubCreateReply(const SubCreateReply& reply, std::string* out) {
  PutFixed64(out, reply.sub_id);
}

Status DecodeSubCreateReply(const Slice& data, SubCreateReply* reply) {
  Slice in = data;
  if (!GetFixed64(&in, &reply->sub_id)) {
    return Status::Corruption("bad subscribe reply");
  }
  return Status::OK();
}

void EncodeSubFetchRequest(const SubFetchRequest& req, std::string* out) {
  PutFixed64(out, req.sub_id);
  PutVarint64(out, req.acked_seq);
  PutVarint32(out, req.max_records);
  PutVarint64(out, static_cast<uint64_t>(req.max_wait_us));
}

Status DecodeSubFetchRequest(const Slice& data, SubFetchRequest* req) {
  Slice in = data;
  uint64_t max_wait;
  if (!GetFixed64(&in, &req->sub_id) || !GetVarint64(&in, &req->acked_seq) ||
      !GetVarint32(&in, &req->max_records) || !GetVarint64(&in, &max_wait)) {
    return Status::Corruption("bad subscription fetch request");
  }
  req->max_wait_us = static_cast<Micros>(max_wait);
  return Status::OK();
}

void EncodeSubFetchReply(const SubFetchReply& reply, std::string* out) {
  PutVarint64(out, reply.dropped_total);
  PutVarint64(out, reply.lag);
  PutVarint32(out, static_cast<uint32_t>(reply.records.size()));
  for (const auto& record : reply.records) {
    PutVarint64(out, record.seq);
    PutVarint64(out, static_cast<uint64_t>(record.timestamp));
    PutVarint32(out, static_cast<uint32_t>(record.fields.size()));
    for (const auto& [name, value] : record.fields) {
      PutLengthPrefixedSlice(out, name);
      engine::EncodeFieldValue(value, out);
    }
  }
}

Status DecodeSubFetchReply(const Slice& data, SubFetchReply* reply) {
  Slice in = data;
  uint32_t num_records;
  if (!GetVarint64(&in, &reply->dropped_total) ||
      !GetVarint64(&in, &reply->lag) || !GetVarint32(&in, &num_records) ||
      num_records > kMaxReasonableCount) {
    return Status::Corruption("bad subscription fetch reply");
  }
  reply->records.clear();
  reply->records.reserve(std::min<size_t>(num_records, in.size()));
  for (uint32_t i = 0; i < num_records; ++i) {
    SubRecord record;
    uint64_t timestamp;
    uint32_t num_fields;
    if (!GetVarint64(&in, &record.seq) || !GetVarint64(&in, &timestamp) ||
        !GetVarint32(&in, &num_fields) || num_fields > in.size()) {
      return Status::Corruption("bad subscription record");
    }
    record.timestamp = static_cast<Micros>(timestamp);
    record.fields.reserve(num_fields);
    for (uint32_t f = 0; f < num_fields; ++f) {
      Slice name;
      reservoir::FieldValue value;
      if (!GetLengthPrefixedSlice(&in, &name)) {
        return Status::Corruption("bad subscription record field");
      }
      RAILGUN_RETURN_IF_ERROR(engine::DecodeFieldValue(&in, &value));
      record.fields.emplace_back(name.ToString(), std::move(value));
    }
    reply->records.push_back(std::move(record));
  }
  return Status::OK();
}

void EncodeSubCancelRequest(const SubCancelRequest& req, std::string* out) {
  PutFixed64(out, req.sub_id);
}

Status DecodeSubCancelRequest(const Slice& data, SubCancelRequest* req) {
  Slice in = data;
  if (!GetFixed64(&in, &req->sub_id)) {
    return Status::Corruption("bad subscription cancel request");
  }
  return Status::OK();
}

}  // namespace railgun::ops
