// Live subscription hub: serves `SUBSCRIBE SELECT ...` tails (stream-
// shell's lazily-consumed, backpressured streams, grafted onto the
// bus). One hub runs next to each broker/cluster; every subscription
// gets a private tail consumer on the source stream's first partitioner
// topic (each event is produced to every partitioner topic, so one
// topic sees each event exactly once), seeked to the end at attach so a
// fresh subscription — and a resubscribe after failure — never replays
// history.
//
// Two tail shapes, decided by the statement:
//  - raw tails (`SELECT *`): every event passing the WHERE filter
//    becomes a record of the stream's named fields.
//  - metric tails (`SELECT agg(...) ...`): the hub keeps incremental
//    per-group aggregator state (infinite or count-sliding windows
//    only) and pushes one update record per matching event.
//
// Backpressure: per-subscription bounded queue. Records stay queued
// until the subscriber acknowledges them (Fetch carries acked_seq), so
// redelivery after a dropped connection duplicates only unacked rows;
// when a slow subscriber lets the queue fill, the oldest records are
// evicted and counted (`subscribe.records.dropped`, per-sub
// dropped_total) — memory stays bounded and the tail stays current.
//
// Threading: one pump thread per subscription (Poll -> decode ->
// filter/aggregate -> enqueue). The hub table lock (kRankOpsSubscriptionHub)
// is held across bus Subscribe/Unsubscribe; each queue has a leaf lock
// (kRankOpsSubQueue) shared by pump, Fetch long-polls and probes.
#ifndef RAILGUN_OPS_SUBSCRIPTION_H_
#define RAILGUN_OPS_SUBSCRIPTION_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agg/aggregator.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "engine/stream_def.h"
#include "introspect/registry.h"
#include "msg/bus.h"
#include "ops/sub_wire.h"
#include "query/pipeline.h"

namespace railgun::ops {

struct SubscriptionHubOptions {
  // Bounded per-subscription record queue (eviction beyond).
  size_t queue_capacity = 1024;
  // Server-side cap on one Fetch long-poll.
  Micros max_fetch_wait = 2 * kMicrosPerSecond;
  // Pump poll quantum (also the cancel/stop latency bound).
  Micros poll_wait = 50 * kMicrosPerMilli;
};

class SubscriptionHub {
 public:
  using StreamLookup =
      std::function<StatusOr<engine::StreamDef>(const std::string&)>;

  // `bus` and `lookup` must outlive the hub; `registry` may be null.
  SubscriptionHub(msg::Bus* bus, StreamLookup lookup,
                  introspect::Registry* registry,
                  SubscriptionHubOptions options = {});
  ~SubscriptionHub();

  SubscriptionHub(const SubscriptionHub&) = delete;
  SubscriptionHub& operator=(const SubscriptionHub&) = delete;

  // Parses + validates the statement, attaches the tail consumer and
  // starts the pump. Returns the subscription id.
  StatusOr<uint64_t> Create(const std::string& statement);

  // Long-polls for records past acked_seq (trimming everything at or
  // below it first). Unknown ids yield NotFound — after a hub restart
  // every pre-restart id is unknown, which remote callers surface as a
  // typed signal to resubscribe.
  Status Fetch(uint64_t sub_id, uint64_t acked_seq, uint32_t max_records,
               Micros max_wait, SubFetchReply* reply);

  Status Cancel(uint64_t sub_id);

  // Cancels every subscription and joins the pumps. Idempotent.
  void Stop();

  // Extension-opcode dispatch for BusServer::SetExtension. Returns true
  // when the opcode is a subscription opcode (status/result filled).
  bool HandleWire(uint8_t opcode, const Slice& payload, Status* status,
                  std::string* result);

  size_t subscriber_count() const;
  // Records queued across all subscriptions (a cluster probe samples
  // this as subscribe.queue.depth).
  size_t TotalQueueDepth() const;

 private:
  struct GroupState {
    std::vector<std::string> agg_states;  // One blob per AggSpec.
    // Count-sliding windows: entered values pending expiry, one row per
    // event (inner vector parallel to the agg list).
    std::deque<std::vector<reservoir::FieldValue>> recent;
  };

  struct Subscription {
    uint64_t id = 0;
    query::SubscribeSpec spec;
    engine::StreamDef stream;
    reservoir::Schema schema;
    std::string consumer_id;
    std::string topic;
    std::vector<int> group_indices;           // Metric tails.
    std::vector<int> agg_field_indices;       // -1 for count(*).
    std::vector<std::unique_ptr<agg::Aggregator>> aggs;
    std::thread pump;
    std::atomic<bool> stop{false};
    // Aggregator state is touched only by the pump thread.
    std::map<std::string, GroupState> groups;

    Mutex mu{kRankOpsSubQueue};
    CondVar cv;
    std::deque<SubRecord> queue GUARDED_BY(mu);
    uint64_t next_seq GUARDED_BY(mu) = 1;
    uint64_t dropped_total GUARDED_BY(mu) = 0;
  };

  void Pump(Subscription* sub);
  void HandleEvent(Subscription* sub, const msg::Message& message);
  void Enqueue(Subscription* sub, SubRecord record);
  std::shared_ptr<Subscription> Find(uint64_t sub_id);

  msg::Bus* const bus_;
  const StreamLookup lookup_;
  introspect::Registry* const registry_;
  const SubscriptionHubOptions options_;

  // Fallback counter storage when no registry is attached.
  std::vector<std::unique_ptr<introspect::Counter>> owned_counters_;
  introspect::Counter* created_ = nullptr;
  introspect::Counter* pushed_ = nullptr;
  introspect::Counter* dropped_ = nullptr;
  introspect::Counter* decode_errors_ = nullptr;

  mutable Mutex mu_{kRankOpsSubscriptionHub};
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, std::shared_ptr<Subscription>> subs_ GUARDED_BY(mu_);
  bool stopped_ GUARDED_BY(mu_) = false;
};

}  // namespace railgun::ops

#endif  // RAILGUN_OPS_SUBSCRIPTION_H_
