#include "ops/subscription.h"

#include <algorithm>

#include "msg/remote/wire.h"
#include "trace/tracer.h"

namespace railgun::ops {

namespace {

constexpr size_t kPumpBatch = 256;

// Joins group-key field values with a separator no ToString produces.
constexpr char kKeySep = '\x1f';

}  // namespace

SubscriptionHub::SubscriptionHub(msg::Bus* bus, StreamLookup lookup,
                                 introspect::Registry* registry,
                                 SubscriptionHubOptions options)
    : bus_(bus),
      lookup_(std::move(lookup)),
      registry_(registry),
      options_(options) {
  if (registry_ != nullptr) {
    created_ = registry_->counter("subscribe.created");
    pushed_ = registry_->counter("subscribe.records.pushed");
    dropped_ = registry_->counter("subscribe.records.dropped");
    decode_errors_ = registry_->counter("subscribe.errors");
  } else {
    owned_counters_.reserve(4);
    for (int i = 0; i < 4; ++i) {
      owned_counters_.push_back(std::make_unique<introspect::Counter>());
    }
    created_ = owned_counters_[0].get();
    pushed_ = owned_counters_[1].get();
    dropped_ = owned_counters_[2].get();
    decode_errors_ = owned_counters_[3].get();
  }
}

SubscriptionHub::~SubscriptionHub() { Stop(); }

StatusOr<uint64_t> SubscriptionHub::Create(const std::string& statement) {
  RAILGUN_ASSIGN_OR_RETURN(query::SubscribeSpec spec,
                           query::ParseSubscribe(statement));
  RAILGUN_ASSIGN_OR_RETURN(engine::StreamDef stream, lookup_(spec.stream));
  if (stream.partitioners.empty()) {
    return Status::InvalidArgument("stream has no partitioners: " +
                                   spec.stream);
  }

  auto sub = std::make_shared<Subscription>();
  sub->spec = std::move(spec);
  sub->stream = std::move(stream);
  sub->schema = reservoir::Schema(0, sub->stream.fields);
  sub->topic = sub->stream.TopicFor(sub->stream.partitioners[0]);

  if (sub->spec.filter != nullptr) {
    // The parse above minted this Expr in this call, so binding it here
    // mutates state no other subscription shares.
    RAILGUN_RETURN_IF_ERROR(sub->spec.filter->Bind(sub->schema));
  }
  if (!sub->spec.raw_tail) {
    const query::QueryDef& q = sub->spec.query;
    if (q.window.kind != window::WindowKind::kInfinite &&
        q.window.kind != window::WindowKind::kCountSliding) {
      return Status::InvalidArgument(
          "SUBSCRIBE metric tails support OVER infinite or OVER sliding N "
          "events; time windows need a registered metric");
    }
    for (const auto& field : q.group_by) {
      const int index = sub->schema.FieldIndex(field);
      if (index < 0) {
        return Status::InvalidArgument("GROUP BY field is not a field of " +
                                       sub->spec.stream + ": " + field);
      }
      sub->group_indices.push_back(index);
    }
    for (const auto& agg : q.aggs) {
      if (agg.kind == agg::AggKind::kCountDistinct) {
        return Status::InvalidArgument(
            "countDistinct needs stateful storage; SUBSCRIBE metric tails "
            "do not support it");
      }
      int index = -1;
      if (!agg.field.empty()) {
        index = sub->schema.FieldIndex(agg.field);
        if (index < 0) {
          return Status::InvalidArgument(
              "aggregation field is not a field of " + sub->spec.stream +
              ": " + agg.field);
        }
      }
      sub->agg_field_indices.push_back(index);
      sub->aggs.push_back(agg::Aggregator::Create(agg.kind));
    }
  }

  MutexLock lock(&mu_);
  if (stopped_) return Status::Unavailable("subscription hub stopped");
  sub->id = next_id_++;
  sub->consumer_id = "__railgun.sub." +
                     std::to_string(reinterpret_cast<uintptr_t>(this)) + "." +
                     std::to_string(sub->id);

  // Capture the tail position *now*: the pump's rebalance listener
  // seeks here, so events submitted after Create returns are delivered
  // and history is not — the attach point is deterministic.
  std::map<msg::TopicPartition, uint64_t> start_offsets;
  for (const auto& tp : bus_->PartitionsOf(sub->topic)) {
    auto end = bus_->EndOffset(tp);
    start_offsets[tp] = end.ok() ? end.value() : 0;
  }
  if (start_offsets.empty()) {
    return Status::NotFound("no topic for stream: " + sub->spec.stream);
  }

  msg::RebalanceListener listener;
  Subscription* raw = sub.get();
  msg::Bus* bus = bus_;
  listener.on_assigned =
      [bus, raw, start_offsets](const std::vector<msg::TopicPartition>& tps) {
        for (const auto& tp : tps) {
          const auto it = start_offsets.find(tp);
          // Partitions that appeared after Create attach at their head.
          const uint64_t offset = it == start_offsets.end() ? 0 : it->second;
          (void)bus->Seek(raw->consumer_id, tp, offset);
        }
      };
  RAILGUN_RETURN_IF_ERROR(bus_->Subscribe(sub->consumer_id, sub->consumer_id,
                                          {sub->topic}, /*metadata=*/"",
                                          /*strategy=*/nullptr,
                                          std::move(listener)));
  sub->pump = std::thread([this, raw] { Pump(raw); });
  created_->Add(1);
  subs_[sub->id] = sub;
  return sub->id;
}

void SubscriptionHub::Pump(Subscription* sub) {
  std::vector<msg::Message> messages;
  while (!sub->stop.load(std::memory_order_acquire)) {
    messages.clear();
    const Status status = bus_->Poll(sub->consumer_id, kPumpBatch, &messages,
                                     options_.poll_wait);
    if (!status.ok()) {
      if (sub->stop.load(std::memory_order_acquire)) break;
      decode_errors_->Add(1);
      continue;
    }
    for (const auto& message : messages) {
      HandleEvent(sub, message);
    }
  }
}

void SubscriptionHub::HandleEvent(Subscription* sub,
                                  const msg::Message& message) {
  trace::Tracer* tracer = trace::Tracer::Global();
  const Micros t0 = tracer->NowMicros();

  engine::EventEnvelope envelope;
  Slice rest;
  if (!engine::DecodeEventEnvelope(Slice(message.payload), sub->schema,
                                   &envelope, &rest)
           .ok()) {
    decode_errors_->Add(1);
    return;
  }
  const reservoir::Event& event = envelope.event;
  if (sub->spec.filter != nullptr && !sub->spec.filter->EvalBool(event)) {
    return;
  }

  SubRecord record;
  record.timestamp = event.timestamp;
  if (sub->spec.raw_tail) {
    record.fields.reserve(sub->stream.fields.size());
    for (size_t i = 0; i < sub->stream.fields.size(); ++i) {
      record.fields.emplace_back(sub->stream.fields[i].name,
                                 event.values[i]);
    }
  } else {
    // Metric tail: fold the event into per-group aggregator state
    // (pump-thread-only, no lock needed) and emit one update row.
    std::string key;
    for (const int index : sub->group_indices) {
      key += event.values[index].ToString();
      key += kKeySep;
    }
    GroupState& group = sub->groups[key];
    if (group.agg_states.empty()) {
      group.agg_states.resize(sub->aggs.size());
    }
    agg::AggContext agg_ctx;
    std::vector<reservoir::FieldValue> entered;
    entered.reserve(sub->aggs.size());
    for (size_t i = 0; i < sub->aggs.size(); ++i) {
      const int index = sub->agg_field_indices[i];
      reservoir::FieldValue value =
          index >= 0 ? event.values[index]
                     : reservoir::FieldValue(int64_t{1});
      if (!sub->aggs[i]
               ->Enter(value, event, &group.agg_states[i], &agg_ctx)
               .ok()) {
        decode_errors_->Add(1);
        return;
      }
      entered.push_back(std::move(value));
    }
    if (sub->spec.query.window.kind == window::WindowKind::kCountSliding) {
      group.recent.push_back(std::move(entered));
      while (group.recent.size() > sub->spec.query.window.count) {
        for (size_t i = 0; i < sub->aggs.size(); ++i) {
          (void)sub->aggs[i]->Expire(group.recent.front()[i], event,
                                     &group.agg_states[i], &agg_ctx);
        }
        group.recent.pop_front();
      }
    }
    for (const int index : sub->group_indices) {
      record.fields.emplace_back(sub->stream.fields[index].name,
                                 event.values[index]);
    }
    for (size_t i = 0; i < sub->aggs.size(); ++i) {
      auto result = sub->aggs[i]->Result(group.agg_states[i]);
      if (!result.ok()) {
        decode_errors_->Add(1);
        return;
      }
      record.fields.emplace_back(sub->spec.query.aggs[i].name,
                                 std::move(result).value());
    }
  }

  Enqueue(sub, std::move(record));
  // The push span parents under the submit that produced the event, so
  // an exported trace shows client.submit -> ... -> subscribe.push.
  const trace::TraceContext ctx = trace::ParseTraceTrailer(rest);
  if (ctx.valid()) {
    (void)tracer->Record(trace::Stage::kSubscribePush, ctx, t0,
                         tracer->NowMicros());
  }
}

void SubscriptionHub::Enqueue(Subscription* sub, SubRecord record) {
  MutexLock lock(&sub->mu);
  record.seq = sub->next_seq++;
  sub->queue.push_back(std::move(record));
  while (sub->queue.size() > options_.queue_capacity) {
    sub->queue.pop_front();
    ++sub->dropped_total;
    dropped_->Add(1);
  }
  pushed_->Add(1);
  sub->cv.NotifyAll();
}

std::shared_ptr<SubscriptionHub::Subscription> SubscriptionHub::Find(
    uint64_t sub_id) {
  MutexLock lock(&mu_);
  auto it = subs_.find(sub_id);
  return it == subs_.end() ? nullptr : it->second;
}

Status SubscriptionHub::Fetch(uint64_t sub_id, uint64_t acked_seq,
                              uint32_t max_records, Micros max_wait,
                              SubFetchReply* reply) {
  std::shared_ptr<Subscription> sub = Find(sub_id);
  if (sub == nullptr) {
    return Status::NotFound("unknown subscription (resubscribe)");
  }
  reply->records.clear();

  MutexLock lock(&sub->mu);
  // Acked records are consumed: trim them so they are never redelivered.
  while (!sub->queue.empty() && sub->queue.front().seq <= acked_seq) {
    sub->queue.pop_front();
  }
  const Micros wait = std::min(max_wait, options_.max_fetch_wait);
  if (sub->queue.empty() && wait > 0) {
    (void)sub->cv.WaitFor(&sub->mu, wait, [&]() NO_THREAD_SAFETY_ANALYSIS {
      return !sub->queue.empty() ||
             sub->stop.load(std::memory_order_acquire);
    });
  }
  if (sub->stop.load(std::memory_order_acquire)) {
    return Status::NotFound("subscription cancelled");
  }
  const size_t take =
      std::min<size_t>(sub->queue.size(),
                       max_records == 0 ? kPumpBatch : max_records);
  for (size_t i = 0; i < take; ++i) {
    reply->records.push_back(sub->queue[i]);
  }
  reply->dropped_total = sub->dropped_total;
  reply->lag = sub->queue.size() - take;
  return Status::OK();
}

Status SubscriptionHub::Cancel(uint64_t sub_id) {
  std::shared_ptr<Subscription> sub;
  {
    MutexLock lock(&mu_);
    auto it = subs_.find(sub_id);
    if (it == subs_.end()) {
      return Status::NotFound("unknown subscription");
    }
    sub = std::move(it->second);
    subs_.erase(it);
  }
  sub->stop.store(true, std::memory_order_release);
  (void)bus_->WakeConsumer(sub->consumer_id);
  {
    MutexLock lock(&sub->mu);
    sub->cv.NotifyAll();
  }
  if (sub->pump.joinable()) sub->pump.join();
  (void)bus_->Unsubscribe(sub->consumer_id);
  return Status::OK();
}

void SubscriptionHub::Stop() {
  std::vector<uint64_t> ids;
  {
    MutexLock lock(&mu_);
    stopped_ = true;
    for (const auto& [id, sub] : subs_) ids.push_back(id);
  }
  for (const uint64_t id : ids) (void)Cancel(id);
}

bool SubscriptionHub::HandleWire(uint8_t opcode, const Slice& payload,
                                 Status* status, std::string* result) {
  using msg::remote::OpCode;
  switch (static_cast<OpCode>(opcode)) {
    case OpCode::kSubCreate: {
      SubCreateRequest request;
      Status s = DecodeSubCreateRequest(payload, &request);
      if (s.ok()) {
        StatusOr<uint64_t> id = Create(request.statement);
        if (id.ok()) {
          SubCreateReply reply;
          reply.sub_id = id.value();
          EncodeSubCreateReply(reply, result);
          s = Status::OK();
        } else {
          s = id.status();
        }
      }
      *status = s;
      return true;
    }
    case OpCode::kSubFetch: {
      SubFetchRequest request;
      Status s = DecodeSubFetchRequest(payload, &request);
      if (s.ok()) {
        SubFetchReply reply;
        s = Fetch(request.sub_id, request.acked_seq, request.max_records,
                  request.max_wait_us, &reply);
        if (s.ok()) EncodeSubFetchReply(reply, result);
      }
      *status = s;
      return true;
    }
    case OpCode::kSubCancel: {
      SubCancelRequest request;
      Status s = DecodeSubCancelRequest(payload, &request);
      if (s.ok()) s = Cancel(request.sub_id);
      *status = s;
      return true;
    }
    default:
      return false;
  }
}

size_t SubscriptionHub::subscriber_count() const {
  MutexLock lock(&mu_);
  return subs_.size();
}

size_t SubscriptionHub::TotalQueueDepth() const {
  std::vector<std::shared_ptr<Subscription>> subs;
  {
    MutexLock lock(&mu_);
    subs.reserve(subs_.size());
    for (const auto& [id, sub] : subs_) subs.push_back(sub);
  }
  size_t depth = 0;
  for (const auto& sub : subs) {
    MutexLock lock(&sub->mu);
    depth += sub->queue.size();
  }
  return depth;
}

}  // namespace railgun::ops
