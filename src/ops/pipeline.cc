#include "ops/pipeline.h"

#include <cinttypes>
#include <cstdio>

namespace railgun::ops {

namespace {

// Group keys join field values with a separator no ToString produces.
constexpr char kKeySep = '\x1f';

}  // namespace

introspect::Counter* Pipeline::MakeCounter(introspect::Registry* registry,
                                           const std::string& name) {
  if (registry != nullptr) return registry->counter(name);
  owned_counters_.push_back(std::make_unique<introspect::Counter>());
  return owned_counters_.back().get();
}

StatusOr<std::unique_ptr<Pipeline>> Pipeline::Compile(
    const std::string& statement, const reservoir::Schema& source,
    introspect::Registry* registry) {
  RAILGUN_ASSIGN_OR_RETURN(query::PipelineSpec spec,
                           query::ParsePipeline(statement));

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->spec_ = std::move(spec);
  pipeline->effective_fields_ = source.fields();

  auto field_index = [&](const std::string& name) {
    for (size_t i = 0; i < pipeline->effective_fields_.size(); ++i) {
      if (pipeline->effective_fields_[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  auto ensure_field = [&](const std::string& name,
                          reservoir::FieldType type) {
    int index = field_index(name);
    if (index >= 0) return index;
    pipeline->effective_fields_.push_back({name, type});
    return static_cast<int>(pipeline->effective_fields_.size() - 1);
  };

  const std::string prefix = "ops.pipeline." + pipeline->spec_.name;
  pipeline->events_in_ = pipeline->MakeCounter(registry, prefix + ".in");
  pipeline->events_routed_ =
      pipeline->MakeCounter(registry, prefix + ".routed");

  for (size_t i = 0; i < pipeline->spec_.ops.size(); ++i) {
    // The parse in *this* call produced the Expr instances, so they are
    // private to this Pipeline and safe to Bind here.
    query::OpSpec& op_spec = pipeline->spec_.ops[i];
    CompiledOp op;
    op.spec = op_spec;
    op.expr = nullptr;

    // Operators bind against the schema as extended by everything
    // upstream, so a filter can reference a mapped field.
    const reservoir::Schema effective(source.id(),
                                      pipeline->effective_fields_);
    switch (op_spec.kind) {
      case query::OpKind::kFilter: {
        RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<query::Expr> expr,
                                 query::ParseExpr(op_spec.expr->ToString()));
        RAILGUN_RETURN_IF_ERROR(expr->Bind(effective));
        op.expr = std::move(expr);
        break;
      }
      case query::OpKind::kMap: {
        RAILGUN_ASSIGN_OR_RETURN(std::unique_ptr<query::Expr> expr,
                                 query::ParseExpr(op_spec.expr->ToString()));
        RAILGUN_RETURN_IF_ERROR(expr->Bind(effective));
        op.expr = std::move(expr);
        op.field_index =
            ensure_field(op_spec.field, reservoir::FieldType::kDouble);
        break;
      }
      case query::OpKind::kBy: {
        for (const auto& key : op_spec.keys) {
          const int index = field_index(key);
          if (index < 0) {
            return Status::InvalidArgument("by key is not a field of " +
                                           pipeline->spec_.stream + ": " +
                                           key);
          }
          op.key_indices.push_back(index);
        }
        break;
      }
      case query::OpKind::kRate:
        op.field_index = ensure_field("rate", reservoir::FieldType::kDouble);
        break;
      case query::OpKind::kWindowCount:
        op.field_index =
            ensure_field("window_count", reservoir::FieldType::kInt64);
        break;
      case query::OpKind::kThreshold:
      case query::OpKind::kChanged: {
        op.field_index = field_index(op_spec.field);
        if (op.field_index < 0) {
          return Status::InvalidArgument(
              std::string(query::OpKindName(op_spec.kind)) +
              " field is not a field of " + pipeline->spec_.stream + ": " +
              op_spec.field);
        }
        break;
      }
      case query::OpKind::kRouteToStream:
        break;
    }

    char op_prefix[64];
    snprintf(op_prefix, sizeof(op_prefix), ".op%zu.", i);
    const std::string base =
        prefix + op_prefix + query::OpKindName(op_spec.kind);
    op.in = pipeline->MakeCounter(registry, base + ".in");
    op.out = pipeline->MakeCounter(registry, base + ".out");
    op.dropped = pipeline->MakeCounter(registry, base + ".dropped");
    pipeline->ops_.push_back(std::move(op));
  }
  return pipeline;
}

Pipeline::KeyedState* Pipeline::StateFor(CompiledOp* op,
                                         const std::string& key) {
  auto it = op->state.find(key);
  if (it != op->state.end()) return &it->second;
  if (op->state.size() >= kMaxTrackedKeys) return nullptr;
  return &op->state[key];
}

void Pipeline::Process(const reservoir::Event& event,
                       std::vector<RoutedEvent>* routed) {
  events_in_->Add(1);
  reservoir::Event row = event;
  row.values.resize(effective_fields_.size());

  std::string key;  // Empty until a `by` rebinds it.
  for (auto& op : ops_) {
    op.in->Add(1);
    switch (op.spec.kind) {
      case query::OpKind::kFilter: {
        if (!op.expr->EvalBool(row)) return;
        break;
      }
      case query::OpKind::kMap: {
        StatusOr<reservoir::FieldValue> value = op.expr->Eval(row);
        if (!value.ok()) {
          op.dropped->Add(1);
          return;
        }
        row.values[op.field_index] = std::move(value).value();
        break;
      }
      case query::OpKind::kBy: {
        key.clear();
        for (const int index : op.key_indices) {
          key += row.values[index].ToString();
          key += kKeySep;
        }
        break;
      }
      case query::OpKind::kRate: {
        KeyedState* state = StateFor(&op, key);
        if (state == nullptr) {
          op.dropped->Add(1);
          return;
        }
        if (state->rate_start == 0) {
          state->rate_start = row.timestamp;
          state->count = 1;
          return;
        }
        ++state->count;
        const Micros elapsed = row.timestamp - state->rate_start;
        const Micros interval =
            static_cast<Micros>(op.spec.count) * kMicrosPerSecond;
        if (elapsed < interval) return;
        row.values[op.field_index] = reservoir::FieldValue(
            static_cast<double>(state->count) * kMicrosPerSecond /
            static_cast<double>(elapsed));
        state->rate_start = row.timestamp;
        state->count = 0;
        break;
      }
      case query::OpKind::kWindowCount: {
        KeyedState* state = StateFor(&op, key);
        if (state == nullptr) {
          op.dropped->Add(1);
          return;
        }
        ++state->count;
        if (state->count % op.spec.count != 0) return;
        row.values[op.field_index] = reservoir::FieldValue(
            static_cast<int64_t>(op.spec.count));
        break;
      }
      case query::OpKind::kThreshold: {
        if (row.values[op.field_index].ToNumber() <= op.spec.limit) return;
        break;
      }
      case query::OpKind::kChanged: {
        KeyedState* state = StateFor(&op, key);
        if (state == nullptr) {
          op.dropped->Add(1);
          return;
        }
        const reservoir::FieldValue& current = row.values[op.field_index];
        if (state->has_last && state->last == current) return;
        state->last = current;
        state->has_last = true;
        break;
      }
      case query::OpKind::kRouteToStream: {
        RoutedEvent out;
        out.target = op.spec.target;
        out.timestamp = row.timestamp;
        out.source_id = row.id;
        out.fields.reserve(effective_fields_.size());
        for (size_t i = 0; i < effective_fields_.size(); ++i) {
          out.fields.emplace_back(effective_fields_[i].name, row.values[i]);
        }
        routed->push_back(std::move(out));
        events_routed_->Add(1);
        op.out->Add(1);
        return;  // Terminal (and guaranteed last by the parser).
      }
    }
    op.out->Add(1);
  }
}

std::vector<OpCounters> Pipeline::CountersSnapshot() const {
  std::vector<OpCounters> out;
  out.reserve(ops_.size());
  for (const auto& op : ops_) {
    OpCounters counters;
    counters.label = op.spec.raw;
    counters.in = op.in->value();
    counters.out = op.out->value();
    counters.dropped = op.dropped->value();
    out.push_back(std::move(counters));
  }
  return out;
}

// ----- PipelineBuilder ------------------------------------------------

PipelineBuilder::PipelineBuilder(std::string name, std::string stream) {
  statement_ = "ADD PIPELINE " + name + " ON " + stream;
}

PipelineBuilder& PipelineBuilder::Filter(const std::string& predicate) {
  statement_ += " | filter(" + predicate + ")";
  has_op_ = true;
  return *this;
}

PipelineBuilder& PipelineBuilder::Map(const std::string& field,
                                      const std::string& expr) {
  statement_ += " | map(" + field + " = " + expr + ")";
  has_op_ = true;
  return *this;
}

PipelineBuilder& PipelineBuilder::By(const std::vector<std::string>& keys) {
  statement_ += " | by(";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) statement_ += ", ";
    statement_ += keys[i];
  }
  statement_ += ")";
  has_op_ = true;
  return *this;
}

PipelineBuilder& PipelineBuilder::Rate(uint64_t interval_seconds) {
  char buf[48];
  snprintf(buf, sizeof(buf), " | rate(%" PRIu64 ")", interval_seconds);
  statement_ += buf;
  has_op_ = true;
  return *this;
}

PipelineBuilder& PipelineBuilder::WindowCount(uint64_t events) {
  char buf[56];
  snprintf(buf, sizeof(buf), " | window_count(%" PRIu64 ")", events);
  statement_ += buf;
  has_op_ = true;
  return *this;
}

PipelineBuilder& PipelineBuilder::Threshold(const std::string& field,
                                            double limit) {
  char buf[48];
  snprintf(buf, sizeof(buf), ", %g)", limit);
  statement_ += " | threshold(" + field + buf;
  has_op_ = true;
  return *this;
}

PipelineBuilder& PipelineBuilder::Changed(const std::string& field) {
  statement_ += " | changed(" + field + ")";
  has_op_ = true;
  return *this;
}

PipelineBuilder& PipelineBuilder::RouteToStream(const std::string& target) {
  statement_ += " | route_to_stream(" + target + ")";
  has_op_ = true;
  return *this;
}

std::string PipelineBuilder::Statement() const { return statement_; }

}  // namespace railgun::ops
