// Trace context: the identity one request carries across every hop —
// a 128-bit trace id minted at api::Client::Submit*, the span id of the
// most recently recorded hop (the parent for the next one), and a
// sampled flag decided once at the root by the head sampler.
//
// The context crosses process and layer boundaries as a fixed-size
// *trailer* appended after a payload's own fields (event envelopes,
// reply envelopes, remote produce request bodies). Every decoder in the
// codebase parses its payload front-to-back and ignores unconsumed
// bytes, so peers predating the trailer interop for free; peers that
// know it parse the tail. A trailer is only trusted when its magic and
// checksum both verify — truncation or bit flips degrade to "no
// context" (unsampled), never to a decode error.
#ifndef RAILGUN_TRACE_TRACE_CONTEXT_H_
#define RAILGUN_TRACE_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace railgun::trace {

struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  // Id of the last recorded span of this trace on this path; the next
  // recorded span parents under it. At the root it is the id the
  // client.submit span itself will use.
  uint64_t span_id = 0;
  uint8_t flags = 0;  // Bit 0: sampled.

  static constexpr uint8_t kSampledFlag = 0x01;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
  bool sampled() const { return (flags & kSampledFlag) != 0; }
};

// Trailer layout (27 bytes, all fixed-width so corrupt bytes can never
// desynchronize a varint scan):
//   [u8 magic][fixed64 trace_hi][fixed64 trace_lo][fixed64 span_id]
//   [u8 flags][u8 checksum]
// checksum = xor of the preceding 26 bytes, xor 0x5a (so an all-zero
// tail never verifies).
constexpr uint8_t kTraceTrailerMagic = 0xC7;
constexpr size_t kTraceTrailerSize = 27;

// Appends the trailer for `ctx` to *out. No-op for invalid contexts.
void AppendTraceTrailer(const TraceContext& ctx, std::string* out);

// Parses a trailer from the *unconsumed remainder* of a payload decode.
// The trailer is expected to be the last kTraceTrailerSize bytes of
// `rest` (unknown future fields before it are tolerated). Absent,
// truncated or corrupt trailers yield an invalid context.
TraceContext ParseTraceTrailer(const Slice& rest);

// Thread-local ambient context, for hops that cannot thread a context
// through their signature (the broker recording an append span under a
// produce call). Also stamps the logging layer's thread trace id so
// RAILGUN_LOG lines inside the scope correlate.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// The innermost ScopedTraceContext's context, or an invalid one.
const TraceContext& CurrentTraceContext();

}  // namespace railgun::trace

#endif  // RAILGUN_TRACE_TRACE_CONTEXT_H_
