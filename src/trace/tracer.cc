#include "trace/tracer.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "common/random.h"

namespace railgun::trace {

namespace {

// Collected spans are bounded: a capture nobody exports must not grow
// without limit. Overflow evicts the oldest spans (counted as drops).
constexpr size_t kMaxCollected = 1u << 17;

uint64_t ThreadSeed() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  static std::atomic<uint64_t> salt{0};
  return static_cast<uint64_t>(now.count()) ^
         (static_cast<uint64_t>(::getpid()) << 32) ^
         (salt.fetch_add(0x9e3779b97f4a7c15ull) | 1);
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kClientSubmit:
      return "client.submit";
    case Stage::kFrontendEnqueue:
      return "frontend.enqueue";
    case Stage::kFrontendProduce:
      return "frontend.produce";
    case Stage::kBrokerAppend:
      return "broker.append";
    case Stage::kBrokerPoll:
      return "broker.poll";
    case Stage::kUnitPoll:
      return "unit.poll";
    case Stage::kUnitDecode:
      return "unit.decode";
    case Stage::kUnitProcess:
      return "unit.process";
    case Stage::kUnitWindowApply:
      return "unit.window_apply";
    case Stage::kUnitPipeline:
      return "unit.pipeline";
    case Stage::kReplyPublish:
      return "reply.publish";
    case Stage::kFrontendComplete:
      return "frontend.complete";
    case Stage::kSubscribePush:
      return "subscribe.push";
    case Stage::kCount:
      break;
  }
  return "unknown";
}

// SPSC ring: the owning thread pushes at head, the collector drains at
// tail. Collector calls are serialized by the tracer mutex.
struct Tracer::ThreadRing {
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> tail{0};
  Span slots[kRingCapacity];
};

namespace {
struct TlsRingCache {
  Tracer* owner = nullptr;
  uint64_t epoch = 0;
  std::shared_ptr<Tracer::ThreadRing> ring;
};
thread_local TlsRingCache t_ring;
}  // namespace

Tracer::Tracer() = default;

Tracer::~Tracer() = default;

Tracer* Tracer::Global() {
  // Leaked: instrumented threads may record during static destruction.
  static Tracer* tracer = new Tracer();
  return tracer;
}

void Tracer::InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* on = std::getenv("RAILGUN_TRACE");
    if (on == nullptr || std::strcmp(on, "0") == 0 ||
        std::strcmp(on, "") == 0 || std::strcmp(on, "off") == 0) {
      return;
    }
    TracerOptions options;
    if (const char* sample = std::getenv("RAILGUN_TRACE_SAMPLE")) {
      const long long n = std::atoll(sample);
      options.sample_every = n > 0 ? static_cast<uint64_t>(n) : 1;
    }
    if (const char* slow = std::getenv("RAILGUN_TRACE_SLOW_US")) {
      options.slow_threshold_us = std::atoll(slow);
    }
    Global()->Enable(options);
    RAILGUN_LOG(kInfo, "trace",
                "tracing enabled (sample 1-in-%llu, slow threshold %lld us)",
                static_cast<unsigned long long>(options.sample_every),
                static_cast<long long>(options.slow_threshold_us));
  });
}

void Tracer::Enable(const TracerOptions& options) {
  sample_every_.store(options.sample_every > 0 ? options.sample_every : 1,
                      std::memory_order_relaxed);
  slow_threshold_us_.store(options.slow_threshold_us,
                           std::memory_order_relaxed);
  clock_.store(options.clock, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

Micros Tracer::NowMicros() const {
  if (!enabled()) return 0;
  Clock* clock = clock_.load(std::memory_order_relaxed);
  if (clock == nullptr) clock = MonotonicClock::Default();
  return clock->NowMicros();
}

uint64_t Tracer::NewId() {
  thread_local Random64 rng(ThreadSeed());
  uint64_t id;
  do {
    id = rng.Next();
  } while (id == 0);
  return id;
}

TraceContext Tracer::Mint() {
  TraceContext ctx;
  if (!enabled()) return ctx;
  ctx.trace_hi = NewId();
  ctx.trace_lo = NewId();
  ctx.span_id = NewId();
  const uint64_t n = sample_every_.load(std::memory_order_relaxed);
  if (sample_counter_.fetch_add(1, std::memory_order_relaxed) % n == 0) {
    ctx.flags |= TraceContext::kSampledFlag;
  }
  return ctx;
}

Tracer::ThreadRing* Tracer::RingForThisThread() {
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (t_ring.owner != this || t_ring.epoch != epoch) {
    auto ring = std::make_shared<ThreadRing>();
    {
      MutexLock lock(&mu_);
      rings_.push_back(ring);
    }
    t_ring.owner = this;
    t_ring.epoch = epoch;
    t_ring.ring = std::move(ring);
  }
  return t_ring.ring.get();
}

void Tracer::Push(const Span& span) {
  ThreadRing* ring = RingForThisThread();
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  const uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail >= kRingCapacity) {
    // Never block the hot path on a lagging collector: drop + count.
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->slots[head & (kRingCapacity - 1)] = span;
  ring->head.store(head + 1, std::memory_order_release);
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::FeedHistogram(Stage stage, Micros duration_us) {
  introspect::Histogram* hist =
      stage_hist_[static_cast<size_t>(stage)].load(std::memory_order_relaxed);
  if (hist != nullptr) hist->Record(duration_us);
}

TraceContext Tracer::Record(Stage stage, const TraceContext& ctx,
                            Micros start_us, Micros end_us, bool force) {
  if (!enabled()) return ctx;
  const Micros duration = end_us >= start_us ? end_us - start_us : 0;
  FeedHistogram(stage, duration);
  if (!ctx.valid() || (!ctx.sampled() && !force)) return ctx;

  Span span;
  span.trace_hi = ctx.trace_hi;
  span.trace_lo = ctx.trace_lo;
  span.span_id = NewId();
  span.parent_id = ctx.span_id;
  span.start_us = start_us;
  span.duration_us = duration;
  span.stage = stage;
  span.forced = force && !ctx.sampled() ? 1 : 0;
  Push(span);

  TraceContext advanced = ctx;
  advanced.span_id = span.span_id;
  return advanced;
}

void Tracer::RecordRoot(Stage stage, const TraceContext& ctx, Micros start_us,
                        Micros end_us, bool force) {
  if (!enabled()) return;
  const Micros duration = end_us >= start_us ? end_us - start_us : 0;
  FeedHistogram(stage, duration);
  if (!ctx.valid() || (!ctx.sampled() && !force)) return;
  if (force && !ctx.sampled()) {
    slow_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  Span span;
  span.trace_hi = ctx.trace_hi;
  span.trace_lo = ctx.trace_lo;
  span.span_id = ctx.span_id;
  span.parent_id = 0;
  span.start_us = start_us;
  span.duration_us = duration;
  span.stage = stage;
  span.forced = force && !ctx.sampled() ? 1 : 0;
  Push(span);
}

bool Tracer::SlowExceeded(Micros elapsed) const {
  if (!enabled()) return false;
  const Micros threshold = slow_threshold_us_.load(std::memory_order_relaxed);
  return threshold > 0 && elapsed >= threshold;
}

Micros Tracer::slow_threshold_us() const {
  return slow_threshold_us_.load(std::memory_order_relaxed);
}

size_t Tracer::Drain() {
  MutexLock lock(&mu_);
  size_t moved = 0;
  for (const auto& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      collected_.push_back(ring->slots[tail & (kRingCapacity - 1)]);
      ++moved;
    }
    ring->tail.store(head, std::memory_order_release);
  }
  if (collected_.size() > kMaxCollected) {
    const size_t excess = collected_.size() - kMaxCollected;
    collected_.erase(collected_.begin(),
                     collected_.begin() + static_cast<ptrdiff_t>(excess));
    spans_dropped_.fetch_add(excess, std::memory_order_relaxed);
  }
  return moved;
}

size_t Tracer::collected_size() const {
  MutexLock lock(&mu_);
  return collected_.size();
}

std::vector<Span> Tracer::CollectedSpans() const {
  MutexLock lock(&mu_);
  return collected_;
}

std::string Tracer::ExportChromeJson() {
  Drain();
  MutexLock lock(&mu_);
  std::string out;
  out.reserve(64 + collected_.size() * 224);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const int pid = static_cast<int>(::getpid());
  char buf[320];
  for (size_t i = 0; i < collected_.size(); ++i) {
    const Span& span = collected_[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cat\":\"railgun\",\"ph\":\"X\","
        "\"ts\":%lld,\"dur\":%lld,\"pid\":%d,\"tid\":%d,\"args\":{"
        "\"trace_id\":\"%016llx%016llx\",\"span_id\":\"%llx\","
        "\"parent_span_id\":\"%llx\",\"forced\":%s}}",
        i == 0 ? "" : ",", StageName(span.stage),
        static_cast<long long>(span.start_us),
        static_cast<long long>(span.duration_us > 0 ? span.duration_us : 1),
        pid, static_cast<int>(span.stage) + 1,
        static_cast<unsigned long long>(span.trace_hi),
        static_cast<unsigned long long>(span.trace_lo),
        static_cast<unsigned long long>(span.span_id),
        static_cast<unsigned long long>(span.parent_id),
        span.forced ? "true" : "false");
    out += buf;
  }
  out += "]}\n";
  return out;
}

Status Tracer::ExportToFile(const std::string& path) {
  const std::string json = ExportChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace export file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  if (written != json.size() || closed != 0) {
    return Status::IOError("short write to trace export file: " + path);
  }
  return Status::OK();
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  collected_.clear();
}

void Tracer::AttachRegistry(introspect::Registry* registry) {
  if (registry == nullptr ||
      registry_.load(std::memory_order_acquire) == registry) {
    return;
  }
  for (size_t i = 0; i < static_cast<size_t>(Stage::kCount); ++i) {
    const std::string name =
        std::string("trace.stage.") + StageName(static_cast<Stage>(i)) +
        "_us";
    stage_hist_[i].store(registry->histogram(name),
                         std::memory_order_release);
  }
  registry->AddProbe("trace.spans_recorded", [this] {
    return static_cast<double>(spans_recorded());
  });
  registry->AddProbe("trace.spans_dropped", [this] {
    return static_cast<double>(spans_dropped());
  });
  registry->AddProbe("trace.slow_requests", [this] {
    return static_cast<double>(slow_requests());
  });
  registry_.store(registry, std::memory_order_release);
}

void Tracer::DetachRegistry(introspect::Registry* registry) {
  if (registry_.load(std::memory_order_acquire) != registry) return;
  for (auto& hist : stage_hist_) {
    hist.store(nullptr, std::memory_order_release);
  }
  registry_.store(nullptr, std::memory_order_release);
}

void Tracer::ResetForTest() {
  Disable();
  DetachRegistry(registry_.load(std::memory_order_acquire));
  MutexLock lock(&mu_);
  rings_.clear();
  collected_.clear();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  sample_counter_.store(0, std::memory_order_relaxed);
  spans_recorded_.store(0, std::memory_order_relaxed);
  spans_dropped_.store(0, std::memory_order_relaxed);
  slow_requests_.store(0, std::memory_order_relaxed);
}

}  // namespace railgun::trace
