// Sampling distributed tracer (the observability substrate of
// DESIGN.md "Tracing & logging"). One Tracer serves a process; every
// instrumented hop calls Record() with the context it received and the
// wall-clock interval it spent, and gets back the context to forward
// (same trace, the new span as parent).
//
// Hot-path contract: when tracing is disabled, every entry point is one
// relaxed atomic load. When enabled, Record() feeds the per-stage
// latency histogram (always — histograms want the full population) and
// pushes a Span into the calling thread's lock-free SPSC ring only when
// the context is head-sampled or force-sampled. A full ring drops the
// span and counts it; it never blocks and never allocates.
//
// The collector side (Drain / ExportChromeJson) swings through the
// registered rings under a leaf-rank mutex and serializes collected
// spans as Chrome-trace-event JSON ("traceEvents" array of "X" phase
// events, timestamps in microseconds) that chrome://tracing and
// Perfetto load directly.
//
// Sampling: the head sampler marks 1-in-sample_every roots as sampled;
// the always-on slow-request path force-records a root that exceeded
// slow_threshold_us even when the sampler said no, and logs it.
#ifndef RAILGUN_TRACE_TRACER_H_
#define RAILGUN_TRACE_TRACER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "introspect/registry.h"
#include "trace/trace_context.h"

namespace railgun::trace {

// One span per instrumented hop. Names double as histogram keys
// (trace.stage.<name>_us) and Chrome event names.
enum class Stage : uint8_t {
  kClientSubmit = 0,  // client.submit: Submit* to ResultFuture complete.
  kFrontendEnqueue,   // frontend.enqueue: encode + queue (caller thread).
  kFrontendProduce,   // frontend.produce: one ProduceBatch fan-out.
  kBrokerAppend,      // broker.append: partition-log append.
  kBrokerPoll,        // broker.poll: park-to-delivery inside Poll.
  kUnitPoll,          // unit.poll: blocking PollBatch on the unit loop.
  kUnitDecode,        // unit.decode: columnar envelope decode.
  kUnitProcess,       // unit.process: one TaskProcessor::ProcessBatch.
  kUnitWindowApply,   // unit.window_apply: plan ProcessEvent (per event).
  kUnitPipeline,      // unit.pipeline: operator-chain run (per event).
  kReplyPublish,      // reply.publish: reply-topic ProduceBatch.
  kFrontendComplete,  // frontend.complete: reply decode to callback.
  kSubscribePush,     // subscribe.push: hub decode to queue handoff.
  kCount,
};

const char* StageName(Stage stage);

struct Span {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  Micros start_us = 0;
  Micros duration_us = 0;
  Stage stage = Stage::kClientSubmit;
  uint8_t forced = 0;  // 1 when recorded by slow-request force sampling.
};

struct TracerOptions {
  // Head sampling: 1 in sample_every minted roots is sampled (1 = all).
  uint64_t sample_every = 1024;
  // Roots slower than this are force-recorded and logged even when
  // unsampled; 0 disables the slow path.
  Micros slow_threshold_us = 50 * kMicrosPerMilli;
  // Timestamp source for NowMicros(); tests inject a simulated clock.
  Clock* clock = nullptr;
};

class Tracer {
 public:
  // Spans a thread can buffer between collector drains. Power of two.
  static constexpr size_t kRingCapacity = 2048;

  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer every instrumented layer records into.
  static Tracer* Global();
  // Enables Global() from RAILGUN_TRACE / RAILGUN_TRACE_SAMPLE /
  // RAILGUN_TRACE_SLOW_US once per process (no-op when RAILGUN_TRACE is
  // unset/0 or on repeat calls).
  static void InitFromEnvOnce();

  void Enable(const TracerOptions& options);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Current time on the tracer's clock (0 when disabled, so callers can
  // use `t0 == 0` as "not measuring").
  Micros NowMicros() const;

  // Mints a root context: fresh 128-bit trace id, the root span's own
  // id, and the head sampler's verdict. Invalid when disabled.
  TraceContext Mint();

  // Records one hop: duration always lands in the stage histogram; a
  // Span enters the thread ring when ctx is sampled (or force is set).
  // Returns the context to forward — same trace, parented under the
  // just-recorded span. Invalid ctx: histogram only, returned as-is.
  TraceContext Record(Stage stage, const TraceContext& ctx, Micros start_us,
                      Micros end_us, bool force = false);

  // Records the root span itself (span id = ctx.span_id, no parent).
  // The slow-request path passes force=true for unsampled roots.
  void RecordRoot(Stage stage, const TraceContext& ctx, Micros start_us,
                  Micros end_us, bool force = false);

  // True when a completed root of `elapsed` must be force-sampled.
  bool SlowExceeded(Micros elapsed) const;
  Micros slow_threshold_us() const;

  // Moves every ring's pending spans into the collected buffer.
  // Returns the number of spans moved.
  size_t Drain();

  // Drain + serialize everything collected so far as Chrome-trace-event
  // JSON. Does not clear (call Clear() to start a fresh capture).
  std::string ExportChromeJson();
  Status ExportToFile(const std::string& path);
  void Clear();

  // Copy of everything collected so far (call Drain() first to include
  // spans still sitting in thread rings).
  std::vector<Span> CollectedSpans() const;

  // Registers per-stage histograms and trace.* probes. The registry
  // must outlive recording, or DetachRegistry must be called first.
  void AttachRegistry(introspect::Registry* registry);
  void DetachRegistry(introspect::Registry* registry);

  uint64_t spans_recorded() const {
    return spans_recorded_.load(std::memory_order_relaxed);
  }
  uint64_t spans_dropped() const {
    return spans_dropped_.load(std::memory_order_relaxed);
  }
  uint64_t slow_requests() const {
    return slow_requests_.load(std::memory_order_relaxed);
  }
  size_t collected_size() const;

  // Test hook: drops every registered ring and collected span, detaches
  // any registry, and disables.
  void ResetForTest();

  // Opaque here; defined in tracer.cc (public so the thread-local ring
  // cache at namespace scope can hold one).
  struct ThreadRing;

 private:
  uint64_t NewId();
  ThreadRing* RingForThisThread();
  void Push(const Span& span);
  void FeedHistogram(Stage stage, Micros duration_us);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> sample_every_{1024};
  std::atomic<Micros> slow_threshold_us_{0};
  std::atomic<Clock*> clock_{nullptr};
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> spans_recorded_{0};
  std::atomic<uint64_t> spans_dropped_{0};
  std::atomic<uint64_t> slow_requests_{0};
  // Bumped by ResetForTest so thread-local ring caches re-register.
  std::atomic<uint64_t> epoch_{1};

  // Stage histogram handles are owned by the attached registry; atomics
  // because Record() reads them wherever it runs.
  std::atomic<introspect::Histogram*> stage_hist_[
      static_cast<size_t>(Stage::kCount)] = {};
  std::atomic<introspect::Registry*> registry_{nullptr};

  mutable Mutex mu_{kRankTraceCollector};
  std::vector<std::shared_ptr<ThreadRing>> rings_ GUARDED_BY(mu_);
  std::vector<Span> collected_ GUARDED_BY(mu_);
};

}  // namespace railgun::trace

#endif  // RAILGUN_TRACE_TRACER_H_
