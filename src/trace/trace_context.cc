#include "trace/trace_context.h"

#include "common/coding.h"
#include "common/logging.h"

namespace railgun::trace {

namespace {

uint8_t TrailerChecksum(const char* bytes, size_t n) {
  uint8_t x = 0x5a;
  for (size_t i = 0; i < n; ++i) x ^= static_cast<uint8_t>(bytes[i]);
  return x;
}

thread_local TraceContext t_current;

}  // namespace

void AppendTraceTrailer(const TraceContext& ctx, std::string* out) {
  if (!ctx.valid()) return;
  const size_t base = out->size();
  out->push_back(static_cast<char>(kTraceTrailerMagic));
  PutFixed64(out, ctx.trace_hi);
  PutFixed64(out, ctx.trace_lo);
  PutFixed64(out, ctx.span_id);
  out->push_back(static_cast<char>(ctx.flags));
  out->push_back(static_cast<char>(
      TrailerChecksum(out->data() + base, kTraceTrailerSize - 1)));
}

TraceContext ParseTraceTrailer(const Slice& rest) {
  TraceContext none;
  if (rest.size() < kTraceTrailerSize) return none;
  const char* t = rest.data() + rest.size() - kTraceTrailerSize;
  if (static_cast<uint8_t>(t[0]) != kTraceTrailerMagic) return none;
  if (static_cast<uint8_t>(t[kTraceTrailerSize - 1]) !=
      TrailerChecksum(t, kTraceTrailerSize - 1)) {
    return none;
  }
  Slice in(t + 1, kTraceTrailerSize - 2);
  TraceContext ctx;
  if (!GetFixed64(&in, &ctx.trace_hi) || !GetFixed64(&in, &ctx.trace_lo) ||
      !GetFixed64(&in, &ctx.span_id)) {
    return none;
  }
  ctx.flags = static_cast<uint8_t>(t[kTraceTrailerSize - 2]);
  if (!ctx.valid()) return none;  // A zero trace id is no trace at all.
  return ctx;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_(t_current) {
  t_current = ctx;
  SetLogTraceId(ctx.trace_hi, ctx.trace_lo);
}

ScopedTraceContext::~ScopedTraceContext() {
  t_current = saved_;
  SetLogTraceId(saved_.trace_hi, saved_.trace_lo);
}

const TraceContext& CurrentTraceContext() { return t_current; }

}  // namespace railgun::trace
