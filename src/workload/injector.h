// Open-loop injector (paper §5): events are submitted on a fixed
// schedule derived from the target rate, and each latency is measured
// against the *scheduled* send time — the standard correction for the
// coordinated-omission problem the paper applies [26]. A slow system
// therefore accumulates backlogged latency instead of silently slowing
// the injector down.
#ifndef RAILGUN_WORKLOAD_INJECTOR_H_
#define RAILGUN_WORKLOAD_INJECTOR_H_

#include <atomic>
#include <functional>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/status.h"
#include "reservoir/event.h"
#include "workload/generator.h"

namespace railgun::workload {

struct InjectorOptions {
  double events_per_second = 500;
  uint64_t total_events = 10000;
  // Warmup events excluded from the histogram (paper: first 5 of 35
  // minutes).
  uint64_t warmup_events = 0;
  Micros completion_timeout = 30 * kMicrosPerSecond;
};

struct InjectorReport {
  LatencyHistogram latencies;  // Microseconds, CO-corrected by schedule.
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t timed_out = 0;
  double achieved_rate = 0;  // Submissions per second of wall time.
};

class OpenLoopInjector {
 public:
  // submit(event, done): submit one event; invoke done() exactly once
  // when the system's reply arrives.
  using SubmitFn = std::function<Status(
      const reservoir::Event& event, std::function<void()> done)>;

  OpenLoopInjector(const InjectorOptions& options, Clock* clock)
      : options_(options), clock_(clock) {}

  // Runs the schedule to completion and waits (bounded) for stragglers.
  // Event timestamps advance in step with the schedule so event time and
  // processing time share the same rate.
  Status Run(FraudStreamGenerator* generator, const SubmitFn& submit,
             InjectorReport* report);

 private:
  InjectorOptions options_;
  Clock* clock_;
};

}  // namespace railgun::workload

#endif  // RAILGUN_WORKLOAD_INJECTOR_H_
