#include "workload/generator.h"

#include <cmath>

namespace railgun::workload {

using reservoir::FieldType;
using reservoir::FieldValue;

FraudStreamGenerator::FraudStreamGenerator(const FraudStreamConfig& config)
    : config_(config),
      rng_(config.seed),
      card_sampler_(config.num_cards, config.zipf_theta, config.seed + 1),
      merchant_sampler_(config.num_merchants, config.zipf_theta,
                        config.seed + 2) {
  fields_.push_back({"cardId", FieldType::kString});
  fields_.push_back({"merchantId", FieldType::kString});
  fields_.push_back({"amount", FieldType::kDouble});
  for (int i = 3; i < config_.total_fields; ++i) {
    const std::string name = "f" + std::to_string(i);
    switch (i % 4) {
      case 0:
        fields_.push_back({name, FieldType::kInt64});
        break;
      case 1:
        fields_.push_back({name, FieldType::kDouble});
        break;
      case 2:
        fields_.push_back({name, FieldType::kString});
        break;
      default:
        fields_.push_back({name, FieldType::kBool});
        break;
    }
  }
}

reservoir::Event FraudStreamGenerator::Next(Micros timestamp) {
  reservoir::Event event;
  event.timestamp = timestamp;
  event.id = next_id_++;

  event.values.reserve(fields_.size());
  event.values.emplace_back("card" + std::to_string(card_sampler_.Next()));
  event.values.emplace_back("merch" +
                            std::to_string(merchant_sampler_.Next()));
  // Log-normal-ish transaction amounts: most small, a heavy tail.
  const double amount =
      std::round(std::exp(rng_.NextGaussian(3.0, 1.2)) * 100.0) / 100.0;
  event.values.emplace_back(amount);

  for (size_t i = 3; i < fields_.size(); ++i) {
    switch (fields_[i].type) {
      case FieldType::kInt64:
        event.values.emplace_back(
            static_cast<int64_t>(rng_.Uniform(1000000)));
        break;
      case FieldType::kDouble:
        event.values.emplace_back(rng_.NextDouble() * 1000.0);
        break;
      case FieldType::kString:
        event.values.emplace_back("v" + std::to_string(rng_.Uniform(9999)));
        break;
      case FieldType::kBool:
        event.values.emplace_back(rng_.OneIn(2));
        break;
    }
  }
  return event;
}

}  // namespace railgun::workload
