// Synthetic fraud-stream generator. Substitutes the paper's real client
// dataset (§5): 103 fields, Zipf-skewed card/merchant cardinalities (the
// properties the experiments actually exploit: aggregation-state
// dictionary sizes and per-partition load imbalance).
#ifndef RAILGUN_WORKLOAD_GENERATOR_H_
#define RAILGUN_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "reservoir/event.h"

namespace railgun::workload {

struct FraudStreamConfig {
  uint64_t num_cards = 100000;
  uint64_t num_merchants = 5000;
  double zipf_theta = 0.99;
  // Total fields including cardId, merchantId, amount (paper: 103).
  int total_fields = 103;
  uint64_t seed = 42;
};

class FraudStreamGenerator {
 public:
  explicit FraudStreamGenerator(const FraudStreamConfig& config);

  // Field 0 = cardId (string), 1 = merchantId (string),
  // 2 = amount (double), 3.. = filler fields of mixed types.
  const std::vector<reservoir::SchemaField>& schema_fields() const {
    return fields_;
  }

  // Generates the next event with the given timestamp. Event ids are
  // sequential and unique.
  reservoir::Event Next(Micros timestamp);

 private:
  FraudStreamConfig config_;
  std::vector<reservoir::SchemaField> fields_;
  Random64 rng_;
  ZipfGenerator card_sampler_;
  ZipfGenerator merchant_sampler_;
  uint64_t next_id_ = 1;
};

}  // namespace railgun::workload

#endif  // RAILGUN_WORKLOAD_GENERATOR_H_
