#include "workload/injector.h"

#include <memory>

#include "common/mutex.h"

namespace railgun::workload {

Status OpenLoopInjector::Run(FraudStreamGenerator* generator,
                             const SubmitFn& submit,
                             InjectorReport* report) {
  const Micros interval =
      static_cast<Micros>(1e6 / options_.events_per_second);

  struct Shared {
    Mutex mu{kRankWorkloadInjector};
    LatencyHistogram hist GUARDED_BY(mu);
    uint64_t completed GUARDED_BY(mu) = 0;
  };
  auto shared = std::make_shared<Shared>();

  const Micros start = clock_->NowMicros();
  uint64_t submitted = 0;

  for (uint64_t i = 0; i < options_.total_events; ++i) {
    const Micros scheduled = start + static_cast<Micros>(i) * interval;
    const Micros now = clock_->NowMicros();
    if (scheduled > now) clock_->SleepMicros(scheduled - now);

    reservoir::Event event = generator->Next(scheduled);
    const bool measured = i >= options_.warmup_events;
    Clock* clock = clock_;
    auto done = [shared, scheduled, measured, clock]() {
      const Micros latency = clock->NowMicros() - scheduled;
      MutexLock lock(&shared->mu);
      if (measured) shared->hist.Record(latency);
      ++shared->completed;
    };
    RAILGUN_RETURN_IF_ERROR(submit(event, std::move(done)));
    ++submitted;
  }

  // Drain stragglers.
  const Micros drain_deadline =
      clock_->NowMicros() + options_.completion_timeout;
  while (clock_->NowMicros() < drain_deadline) {
    {
      MutexLock lock(&shared->mu);
      if (shared->completed >= submitted) break;
    }
    clock_->SleepMicros(5000);
  }

  const Micros elapsed = clock_->NowMicros() - start;
  MutexLock lock(&shared->mu);
  report->latencies = shared->hist;
  report->submitted = submitted;
  report->completed = shared->completed;
  report->timed_out = submitted - shared->completed;
  report->achieved_rate =
      elapsed > 0 ? submitted * 1e6 / static_cast<double>(elapsed) : 0;
  return Status::OK();
}

}  // namespace railgun::workload
