// Plain-data membership model shared by the metadata service, its wire
// protocol and the admin surface: what a node announces when it joins,
// and the generation-numbered cluster view everyone else reads.
#ifndef RAILGUN_META_CLUSTER_VIEW_H_
#define RAILGUN_META_CLUSTER_VIEW_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace railgun::meta {

// What a worker process sends when it joins the cluster.
struct NodeAnnouncement {
  std::string node_id;
  // Informational contact string ("host:port" or empty); the data path
  // always flows through the shared bus, so nothing dials this.
  std::string address;
  // Consumer ids of the node's processor units: the metadata service
  // fences exactly these on lease expiry.
  std::vector<std::string> unit_ids;
};

// One row of the cluster view.
struct NodeMember {
  std::string node_id;
  std::string address;
  int num_units = 0;
  bool alive = true;
};

// Generation-numbered snapshot of the whole deployment. The generation
// advances on every membership or schema change, so workers detect
// staleness with one integer compare (piggybacked on heartbeats).
struct ClusterView {
  uint64_t generation = 0;
  std::vector<NodeMember> nodes;
  std::vector<std::string> streams;  // Registered stream names.
};

// What Announce returns to the joining node.
struct AnnounceResult {
  Micros lease_timeout = 0;  // Heartbeat faster than this or be fenced.
  uint64_t generation = 0;
};

// Wire codecs (length-prefixed strings + varints, like the rest of the
// remote protocol). Decoders return Corruption on malformed input.
void EncodeNodeAnnouncement(const NodeAnnouncement& announcement,
                            std::string* out);
Status DecodeNodeAnnouncement(Slice* in, NodeAnnouncement* announcement);

void EncodeClusterView(const ClusterView& view, std::string* out);
Status DecodeClusterView(Slice* in, ClusterView* view);

}  // namespace railgun::meta

#endif  // RAILGUN_META_CLUSTER_VIEW_H_
