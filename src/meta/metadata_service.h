// Cluster membership & metadata service: the control plane that turns
// one BusServer-hosted broker plus N independent worker processes into
// the paper's real multi-machine deployment.
//
// Hosted in the broker process next to the BusServer, it keeps three
// things behind one generation counter:
//   - membership: worker nodes announce, heartbeat and leave; a node
//     whose heartbeats stop loses its lease (measured on the *bus
//     clock*, so simulated-time tests are exact) and its processor
//     units are fenced through the bus, triggering a rebalance onto the
//     survivors;
//   - a schema registry of wire-serializable StreamDefs, so any client
//     or worker can fetch streams it did not declare;
//   - DDL execution (absorbed from PR 3's api::DdlService): statements
//     arriving on the "__railgun.ddl" topic are executed through an
//     attached api::Client and folded into the registry. The DDL
//     consumer runs in a consumer group, which is the failover path: a
//     standby metadata service joining the same group would take over
//     the topic when this one dies (leader election is the seeded next
//     step, see ROADMAP.md).
//
// Wire surface: the BusServer extension hook routes the kMeta* opcodes
// (msg/remote/wire.h) into HandleWire; meta::MetaClient is the client
// stub.
#ifndef RAILGUN_META_METADATA_SERVICE_H_
#define RAILGUN_META_METADATA_SERVICE_H_

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/client.h"
#include "common/mutex.h"
#include "engine/cluster.h"
#include "engine/stream_def.h"
#include "meta/cluster_view.h"
#include "msg/bus.h"

namespace railgun::meta {

struct MetadataServiceOptions {
  // A node missing heartbeats for this long (on the bus clock) loses
  // its lease: it is marked dead in the view and its units are fenced.
  Micros lease_timeout = 5 * kMicrosPerSecond;
  // Dead nodes stay visible in the view this long after leaving or
  // expiring (so operators see recent departures), then their records
  // are pruned — workers restart under fresh generated ids, so without
  // a bound the node map would grow forever.
  Micros dead_node_retention = 10 * kMicrosPerMinute;
  // Consume the "__railgun.ddl" topic and execute statements. Disabled
  // by tests that drive ExecuteDdl directly.
  bool run_ddl_service = true;
};

class MetadataService {
 public:
  MetadataService(const MetadataServiceOptions& options,
                  engine::Cluster* cluster);
  ~MetadataService();

  MetadataService(const MetadataService&) = delete;
  MetadataService& operator=(const MetadataService&) = delete;

  Status Start();
  void Stop();

  // ----- Membership ---------------------------------------------------
  // Registers a joining node. AlreadyExists while another holder of the
  // same id is alive and inside its lease; rejoining after a leave or
  // an expiry succeeds. Bumps the view generation.
  StatusOr<AnnounceResult> Announce(const NodeAnnouncement& announcement);
  // Renews the lease; returns the current view generation so the node
  // can cheaply detect membership/schema changes. NotFound for unknown
  // or expired nodes — the caller should re-announce.
  StatusOr<uint64_t> Heartbeat(const std::string& node_id);
  // Graceful departure: the node is marked dead in the view but its
  // units are NOT fenced (they unsubscribe cleanly themselves).
  Status Leave(const std::string& node_id);

  // Expires leases against the bus clock; fences the units of every
  // newly expired node through the bus (one rebalance per fenced unit).
  // Runs inside Announce/Heartbeat and from a background sweeper on
  // real-time clocks; simulated-time tests call it directly. Returns
  // the number of nodes expired by this call.
  int CheckLeases();

  // Snapshot: broker-local engine nodes first (address "broker-local"),
  // then announced worker nodes.
  ClusterView View() const;

  // ----- Schema registry ----------------------------------------------
  Status RegisterStream(const engine::StreamDef& stream);
  StatusOr<engine::StreamDef> GetStream(const std::string& name) const;
  std::vector<engine::StreamDef> ListStreamDefs() const;

  // ----- DDL ----------------------------------------------------------
  // Executes one statement through the attached client (full
  // validation, applied-by-every-local-unit synchronization) and folds
  // the result into the schema registry. AlreadyExists still syncs the
  // registry, mirroring client reattachment semantics.
  Status ExecuteDdl(const std::string& statement);

  // ----- Introspection -------------------------------------------------
  // Cumulative control-plane activity, exported as registry probes by
  // the hosting meta::Broker.
  uint64_t announce_count() const {
    return announces_.load(std::memory_order_relaxed);
  }
  uint64_t heartbeat_count() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  uint64_t leases_expired() const {
    return leases_expired_.load(std::memory_order_relaxed);
  }
  uint64_t ddl_executed() const {
    return ddl_executed_.load(std::memory_order_relaxed);
  }

  // ----- Wire hook ----------------------------------------------------
  // BusServer extension: true when `opcode` is a kMeta* RPC (filling
  // *status and, on OK, *result), false to fall through.
  bool HandleWire(uint8_t opcode, const Slice& payload, Status* status,
                  std::string* result);

 private:
  struct NodeRecord {
    NodeAnnouncement info;
    Micros last_heartbeat = 0;
    bool alive = true;
    Micros died_at = 0;  // Leave/expiry time; prunes the tombstone.
    // True while this node's units are being fenced outside mu_; the
    // id cannot re-announce until fencing completes, so a fence can
    // never kill a successor incarnation's fresh subscriptions.
    bool fencing = false;
  };

  void DdlLoop();
  void SweepLoop();
  // Appends newly expired nodes' unit ids to *fence and their node ids
  // to *fenced (the caller must hand both to FenceUnits). Also prunes
  // tombstones past dead_node_retention. Requires mu_.
  int CheckLeasesLocked(Micros now, std::vector<std::string>* fence,
                        std::vector<std::string>* fenced) REQUIRES(mu_);
  // Kills the listed unit consumers on the bus (never under mu_ — the
  // bus takes its own group lock and may run listeners), then clears
  // the named nodes' fencing flags, unblocking re-announces.
  void FenceUnits(const std::vector<std::string>& units,
                  const std::vector<std::string>& fenced);
  void AddMetricToRegistry(query::QueryDef metric);
  void AddPipelineToRegistry(query::PipelineSpec pipeline);

  MetadataServiceOptions options_;
  engine::Cluster* cluster_;
  msg::Bus* bus_;
  Clock* clock_;  // The cluster's (= bus's) clock.
  api::Client client_;  // Attached to the cluster; executes DDL.

  mutable Mutex mu_{kRankMetaService};
  std::map<std::string, NodeRecord> nodes_ GUARDED_BY(mu_);
  std::map<std::string, engine::StreamDef> streams_ GUARDED_BY(mu_);
  uint64_t generation_ GUARDED_BY(mu_) = 1;

  // Serializes ExecuteDdl. Exception rank: held while driving the
  // embedded api::Client, so it sits above the api band (common/mutex.h).
  Mutex ddl_mu_{kRankMetaDdlSerializer};

  std::atomic<uint64_t> announces_{0};
  std::atomic<uint64_t> heartbeats_{0};
  std::atomic<uint64_t> leases_expired_{0};
  std::atomic<uint64_t> ddl_executed_{0};

  std::atomic<bool> running_{false};
  std::thread ddl_thread_;
  std::thread sweep_thread_;
  Mutex sweep_mu_{kRankMetaSweep};
  CondVar sweep_cv_;
  const std::string ddl_consumer_id_ = "ddl.svc";
};

}  // namespace railgun::meta

#endif  // RAILGUN_META_METADATA_SERVICE_H_
