#include "meta/broker.h"

#include "introspect/internals.h"

namespace railgun::meta {

Broker::Broker(const BrokerOptions& options) : options_(options) {
  cluster_ = std::make_unique<engine::Cluster>(options_.cluster);
  msg::remote::BusServerOptions server_options;
  server_options.host = options_.host;
  server_options.port = options_.port;
  server_ = std::make_unique<msg::remote::BusServer>(server_options,
                                                     cluster_->bus());
  meta_ = std::make_unique<MetadataService>(options_.meta, cluster_.get());
  // Route the kMeta* opcodes into the metadata service and the kSub*
  // opcodes into the cluster's subscription hub (installed before
  // Start: the server reads the hook unlocked). Opcodes neither claims
  // fall through to the server's NotSupported unknown-opcode reply.
  server_->SetExtension(
      [this](uint8_t opcode, const Slice& payload, Status* status,
             std::string* result) {
        if (cluster_->subscription_hub()->HandleWire(opcode, payload,
                                                     status, result)) {
          return true;
        }
        return meta_->HandleWire(opcode, payload, status, result);
      });

  // Control-plane metrics flow into the hosted cluster's registry, so
  // one internals stream carries data-plane and control-plane health.
  introspect::Registry* registry = cluster_->registry();
  registry->AddProbe("meta.announces", [this] {
    return static_cast<double>(meta_->announce_count());
  });
  registry->AddProbe("meta.heartbeats", [this] {
    return static_cast<double>(meta_->heartbeat_count());
  });
  registry->AddProbe("meta.leases_expired", [this] {
    return static_cast<double>(meta_->leases_expired());
  });
  registry->AddProbe("meta.ddl_executed", [this] {
    return static_cast<double>(meta_->ddl_executed());
  });
  registry->AddProbe("server.connections", [this] {
    return static_cast<double>(server_->live_connections());
  });
  // Wire hot-path health: pooled receive-buffer reuse and columnar batch
  // adoption on the server side of every connection.
  registry->AddProbe("wire.decode.pool_hit", [this] {
    return static_cast<double>(server_->pool_hits());
  });
  registry->AddProbe("wire.decode.pool_miss", [this] {
    return static_cast<double>(server_->pool_misses());
  });
  registry->AddProbe("wire.decode.bytes", [this] {
    return static_cast<double>(server_->decode_bytes());
  });
  registry->AddProbe("wire.columnar.batches", [this] {
    return static_cast<double>(server_->columnar_batches());
  });
}

Broker::~Broker() { Stop(); }

Status Broker::Start() {
  if (started_) return Status::OK();
  RAILGUN_RETURN_IF_ERROR(cluster_->Start());
  RAILGUN_RETURN_IF_ERROR(server_->Start());
  RAILGUN_RETURN_IF_ERROR(meta_->Start());
  // Pre-register the built-in internals stream in the schema registry:
  // remote clients EnsureStream("__railgun.internals") like any user
  // stream and can immediately query the engine's own stats.
  RAILGUN_RETURN_IF_ERROR(
      meta_->RegisterStream(introspect::InternalsStreamDef()));
  started_ = true;
  return Status::OK();
}

void Broker::Stop() {
  if (!started_) return;
  started_ = false;
  meta_->Stop();
  server_->Stop();
  cluster_->Stop();
}

}  // namespace railgun::meta
