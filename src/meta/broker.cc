#include "meta/broker.h"

namespace railgun::meta {

Broker::Broker(const BrokerOptions& options) : options_(options) {
  cluster_ = std::make_unique<engine::Cluster>(options_.cluster);
  msg::remote::BusServerOptions server_options;
  server_options.host = options_.host;
  server_options.port = options_.port;
  server_ = std::make_unique<msg::remote::BusServer>(server_options,
                                                     cluster_->bus());
  meta_ = std::make_unique<MetadataService>(options_.meta, cluster_.get());
  // Route the kMeta* opcodes into the metadata service (installed
  // before Start: the server reads the hook unlocked).
  server_->SetExtension(
      [this](uint8_t opcode, const Slice& payload, Status* status,
             std::string* result) {
        return meta_->HandleWire(opcode, payload, status, result);
      });
}

Broker::~Broker() { Stop(); }

Status Broker::Start() {
  if (started_) return Status::OK();
  RAILGUN_RETURN_IF_ERROR(cluster_->Start());
  RAILGUN_RETURN_IF_ERROR(server_->Start());
  RAILGUN_RETURN_IF_ERROR(meta_->Start());
  started_ = true;
  return Status::OK();
}

void Broker::Stop() {
  if (!started_) return;
  started_ = false;
  meta_->Stop();
  server_->Stop();
  cluster_->Stop();
}

}  // namespace railgun::meta
