#include "meta/worker_node.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/env.h"
#include "common/random.h"

namespace railgun::meta {

namespace {

// Process-unique worker id: distinct across hosts' processes and across
// restarts, so a restarted worker never collides with its own expiring
// lease under a different incarnation.
std::string GeneratedNodeId() {
  static std::atomic<uint64_t> sequence{0};
  Random64 rng(static_cast<uint64_t>(MonotonicClock::Default()->NowMicros()) ^
               (static_cast<uint64_t>(::getpid()) << 32) ^
               (sequence.fetch_add(1) << 16));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "noded-%012llx",
                static_cast<unsigned long long>(rng.Next() & 0xffffffffffffull));
  return buf;
}

// Informational default for the announced address: where this worker
// runs, for Admin / REPL node listings.
std::string DefaultAddress() {
  char host[256] = "unknown-host";
  ::gethostname(host, sizeof(host) - 1);
  return std::string(host) + "/" + std::to_string(::getpid());
}

}  // namespace

WorkerNode::WorkerNode(const WorkerNodeOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Default()),
      node_id_(options.node_id.empty() ? GeneratedNodeId()
                                       : options.node_id),
      address_(options.address.empty() ? DefaultAddress()
                                       : options.address),
      dir_(options.base_dir.empty() ? "/tmp/railgun-noded-" + node_id_
                                    : options.base_dir) {
  // The engine layers of this worker record into its private registry;
  // snapshots carry node=<node_id>, so per-worker series stay separable
  // at query time (GROUP BY node).
  options_.node.frontend.registry = &registry_;
  options_.node.unit.registry = &registry_;
  registry_.AddProbe("bus.dial_attempts", [this] {
    return bus_ != nullptr ? static_cast<double>(bus_->dial_attempts()) : 0.0;
  });
  registry_.AddProbe("bus.backlog", [this] {
    return bus_ != nullptr ? static_cast<double>(bus_->BacklogHint()) : 0.0;
  });
  // Client side of the wire hot path: pooled poll-buffer reuse and how
  // many batches travelled in the columnar frame encoding.
  registry_.AddProbe("wire.decode.pool_hit", [this] {
    return bus_ != nullptr ? static_cast<double>(bus_->pool_hits()) : 0.0;
  });
  registry_.AddProbe("wire.decode.pool_miss", [this] {
    return bus_ != nullptr ? static_cast<double>(bus_->pool_misses()) : 0.0;
  });
  registry_.AddProbe("wire.decode.bytes", [this] {
    return bus_ != nullptr ? static_cast<double>(bus_->decode_bytes()) : 0.0;
  });
  registry_.AddProbe("wire.columnar.batches", [this] {
    return bus_ != nullptr ? static_cast<double>(bus_->columnar_batches())
                           : 0.0;
  });
}

NodeAnnouncement WorkerNode::BuildAnnouncement() const {
  NodeAnnouncement announcement;
  announcement.node_id = node_id_;
  announcement.address = address_;
  for (int i = 0; i < options_.num_units; ++i) {
    announcement.unit_ids.push_back(node_id_ + "/u" + std::to_string(i));
  }
  return announcement;
}

void WorkerNode::AdoptLease(Micros lease_timeout) {
  lease_timeout_.store(lease_timeout, std::memory_order_relaxed);
  heartbeat_period_ = options_.heartbeat_period > 0
                          ? options_.heartbeat_period
                          : std::max<Micros>(lease_timeout / 3,
                                             10 * kMicrosPerMilli);
}

WorkerNode::~WorkerNode() { Stop(); }

Status WorkerNode::Start() {
  if (running_.exchange(true)) return Status::OK();

  msg::remote::RemoteBusOptions bus_options;
  bus_options.address = options_.broker_address;
  // One clock domain: backoff windows elapse on the node's clock.
  bus_options.clock = clock_;
  bus_ = std::make_unique<msg::remote::RemoteBus>(bus_options);
  // The metadata stub shares the bus's control connection.
  meta_ = std::make_unique<MetaClient>(bus_.get());
  Status started = bus_->Connect();
  if (!started.ok()) {
    running_ = false;
    return started;
  }

  auto announced = meta_->Announce(BuildAnnouncement());
  if (!announced.ok()) {
    running_ = false;
    return announced.status();
  }
  AdoptLease(announced.value().lease_timeout);
  last_generation_ = announced.value().generation;

  // Past this point we hold a live lease: a failed start must leave it
  // gracefully or the node id stays blocked until the lease expires.
  auto abandon = [this](Status status) {
    (void)meta_->Leave(node_id_);  // Best effort.
    running_ = false;
    return status;
  };

  started = Env::Default()->RemoveDirRecursive(dir_);
  if (started.ok()) started = Env::Default()->CreateDir(dir_);
  if (!started.ok()) return abandon(started);

  // Replication stays process-local: this coordinator only hands out
  // unit data directories for donor copies inside this worker.
  coordinator_ = std::make_unique<engine::Coordinator>(1);
  engine::NodeOptions node_options = options_.node;
  node_options.num_processor_units = options_.num_units;
  node_ = std::make_unique<engine::RailgunNode>(
      node_options, node_id_, dir_, bus_.get(), coordinator_.get(), clock_);
  started = node_->Start();
  if (!started.ok()) return abandon(started);

  started = SyncStreams();
  if (!started.ok()) {
    node_->Stop();
    return abandon(started);
  }

  if (options_.introspect_period > 0) {
    introspect::PublisherOptions pub_options;
    pub_options.period = options_.introspect_period;
    pub_options.node = node_id_;
    publisher_ = std::make_unique<introspect::Publisher>(
        pub_options, &registry_, bus_.get(), clock_);
    started = publisher_->Start();
    if (!started.ok()) {
      node_->Stop();
      return abandon(started);
    }
  }

  if (options_.auto_heartbeat && clock_->IsRealTime()) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  }
  return Status::OK();
}

void WorkerNode::Stop() {
  if (!running_.exchange(false)) return;
  {
    MutexLock lock(&hb_mu_);
  }
  hb_cv_.NotifyAll();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  // Leave first so the view stops counting this node, then let the
  // units unsubscribe cleanly (one rebalance, no lease wait). Best
  // effort: a dead broker cannot be left politely anyway.
  if (publisher_ != nullptr) publisher_->Stop();
  if (meta_ != nullptr) (void)meta_->Leave(node_id_);
  if (node_ != nullptr) node_->Stop();
}

Status WorkerNode::SyncStreams() {
  MutexLock lock(&sync_mu_);
  RAILGUN_ASSIGN_OR_RETURN(std::vector<engine::StreamDef> defs,
                           meta_->ListStreams());
  for (auto& def : defs) {
    std::string encoded;
    engine::EncodeStreamDef(def, &encoded);
    auto it = registered_.find(def.name);
    if (it != registered_.end() && it->second == encoded) continue;
    RAILGUN_RETURN_IF_ERROR(node_->RegisterStream(def));
    registered_[def.name] = std::move(encoded);
  }
  return Status::OK();
}

Status WorkerNode::AnnounceAndSync() {
  RAILGUN_ASSIGN_OR_RETURN(AnnounceResult announced,
                           meta_->Announce(BuildAnnouncement()));
  AdoptLease(announced.lease_timeout);
  // Force a full re-register: the broker may have fenced our units, so
  // their group membership needs refreshing regardless of stream
  // equality.
  {
    MutexLock lock(&sync_mu_);
    registered_.clear();
  }
  RAILGUN_RETURN_IF_ERROR(SyncStreams());
  // Only now: a failed sync must keep looking out of date so the next
  // heartbeat retries it (the announce itself bumped the generation,
  // so the stale value cannot match).
  last_generation_.store(announced.generation, std::memory_order_relaxed);
  return Status::OK();
}

Status WorkerNode::Heartbeat() {
  auto generation = meta_->Heartbeat(node_id_);
  if (generation.status().IsNotFound()) {
    // Lease expired (e.g. a network partition outlived the timeout):
    // rejoin from scratch rather than silently resurrect.
    return AnnounceAndSync();
  }
  RAILGUN_RETURN_IF_ERROR(generation.status());
  if (generation.value() ==
      last_generation_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  // Record the generation only once the sync lands, so a transient
  // sync failure is retried on the next tick instead of being
  // mistaken for already-seen.
  RAILGUN_RETURN_IF_ERROR(SyncStreams());
  last_generation_.store(generation.value(), std::memory_order_relaxed);
  return Status::OK();
}

void WorkerNode::HeartbeatLoop() {
  MutexLock lock(&hb_mu_);
  while (running_) {
    hb_cv_.WaitFor(&hb_mu_, heartbeat_period_);
    if (!running_) break;
    lock.Unlock();
    // Transient failures (broker restarting, backoff) are retried on
    // the next tick; the lease gives us lease_timeout of slack.
    (void)Heartbeat();
    lock.Lock();
  }
}

}  // namespace railgun::meta
