#include "meta/metadata_service.h"

#include <algorithm>
#include <chrono>

#include "api/remote_ddl.h"
#include "common/coding.h"
#include "msg/remote/wire.h"
#include "query/ddl.h"

namespace railgun::meta {

MetadataService::MetadataService(const MetadataServiceOptions& options,
                                 engine::Cluster* cluster)
    : options_(options),
      cluster_(cluster),
      bus_(cluster->bus()),
      clock_(cluster->clock()),
      client_(cluster) {}

MetadataService::~MetadataService() { Stop(); }

Status MetadataService::Start() {
  if (running_.exchange(true)) return Status::OK();
  if (options_.run_ddl_service) {
    Status s = bus_->CreateTopic(api::kDdlTopic, 1);
    if (!s.ok() && !s.IsAlreadyExists()) {
      running_ = false;
      return s;
    }
    // The consumer group is the failover seam: a standby service
    // joining "ddl.svc" takes over the topic when this member dies.
    s = bus_->Subscribe(ddl_consumer_id_, "ddl.svc", {api::kDdlTopic}, "",
                        nullptr, {});
    if (!s.ok()) {
      running_ = false;
      return s;
    }
    ddl_thread_ = std::thread([this] { DdlLoop(); });
  }
  // Leases are measured on the bus clock; under a simulated clock there
  // is no real time to sweep on — tests drive CheckLeases directly.
  if (clock_->IsRealTime()) {
    sweep_thread_ = std::thread([this] { SweepLoop(); });
  }
  return Status::OK();
}

void MetadataService::Stop() {
  if (!running_.exchange(false)) return;
  {
    MutexLock lock(&sweep_mu_);
  }
  sweep_cv_.NotifyAll();
  // Cut a parked DDL poll short (best effort).
  (void)bus_->WakeConsumer(ddl_consumer_id_);
  if (ddl_thread_.joinable()) ddl_thread_.join();
  if (sweep_thread_.joinable()) sweep_thread_.join();
  if (options_.run_ddl_service) (void)bus_->Unsubscribe(ddl_consumer_id_);
}

// ----- Membership -----------------------------------------------------

void MetadataService::FenceUnits(const std::vector<std::string>& units,
                                 const std::vector<std::string>& fenced) {
  // Best effort: a unit that never subscribed answers NotFound, which
  // is exactly the desired end state.
  for (const auto& unit : units) (void)bus_->KillConsumer(unit);
  if (fenced.empty()) return;
  MutexLock lock(&mu_);
  for (const auto& node_id : fenced) {
    auto it = nodes_.find(node_id);
    if (it != nodes_.end()) it->second.fencing = false;
  }
}

int MetadataService::CheckLeasesLocked(Micros now,
                                       std::vector<std::string>* fence,
                                       std::vector<std::string>* fenced) {
  int expired = 0;
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    NodeRecord& record = it->second;
    if (!record.alive) {
      // Prune old tombstones (workers restart under fresh ids; without
      // a bound the map and every view would grow forever).
      if (!record.fencing &&
          now - record.died_at >= options_.dead_node_retention) {
        it = nodes_.erase(it);
        continue;
      }
      ++it;
      continue;
    }
    if (now - record.last_heartbeat < options_.lease_timeout) {
      ++it;
      continue;
    }
    record.alive = false;
    record.died_at = now;
    record.fencing = true;
    ++expired;
    fence->insert(fence->end(), record.info.unit_ids.begin(),
                  record.info.unit_ids.end());
    fenced->push_back(it->first);
    ++it;
  }
  if (expired > 0) {
    ++generation_;
    leases_expired_.fetch_add(static_cast<uint64_t>(expired),
                              std::memory_order_relaxed);
  }
  return expired;
}

int MetadataService::CheckLeases() {
  std::vector<std::string> fence, fenced;
  int expired;
  {
    MutexLock lock(&mu_);
    expired = CheckLeasesLocked(clock_->NowMicros(), &fence, &fenced);
  }
  FenceUnits(fence, fenced);
  return expired;
}

StatusOr<AnnounceResult> MetadataService::Announce(
    const NodeAnnouncement& announcement) {
  announces_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string> fence, fenced;
  Status status;
  AnnounceResult result;
  {
    MutexLock lock(&mu_);
    const Micros now = clock_->NowMicros();
    CheckLeasesLocked(now, &fence, &fenced);
    if (announcement.node_id.empty()) {
      status = Status::InvalidArgument("node announcement without an id");
    } else {
      auto it = nodes_.find(announcement.node_id);
      if (it != nodes_.end() && it->second.alive) {
        status = Status::AlreadyExists("node already announced and alive: " +
                                       announcement.node_id);
      } else if (it != nodes_.end() && it->second.fencing) {
        // A fence for this id's previous incarnation is in flight
        // outside mu_; admitting the successor now would let that
        // fence kill its fresh subscriptions. Retry shortly.
        status = Status::Unavailable(
            "previous incarnation still being fenced: " +
            announcement.node_id);
      } else {
        NodeRecord record;
        record.info = announcement;
        record.last_heartbeat = now;
        nodes_[announcement.node_id] = std::move(record);
        ++generation_;
        result.lease_timeout = options_.lease_timeout;
        result.generation = generation_;
      }
    }
  }
  FenceUnits(fence, fenced);
  RAILGUN_RETURN_IF_ERROR(status);
  return result;
}

StatusOr<uint64_t> MetadataService::Heartbeat(const std::string& node_id) {
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string> fence, fenced;
  Status status;
  uint64_t generation = 0;
  {
    MutexLock lock(&mu_);
    const Micros now = clock_->NowMicros();
    CheckLeasesLocked(now, &fence, &fenced);
    auto it = nodes_.find(node_id);
    if (it == nodes_.end() || !it->second.alive) {
      // Expired or never announced: the node must re-announce (and
      // rebuild its tasks) rather than silently resurrect a fenced
      // lease.
      status = Status::NotFound("no live lease for node: " + node_id);
    } else {
      it->second.last_heartbeat = now;
      generation = generation_;
    }
  }
  FenceUnits(fence, fenced);
  RAILGUN_RETURN_IF_ERROR(status);
  return generation;
}

Status MetadataService::Leave(const std::string& node_id) {
  MutexLock lock(&mu_);
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    return Status::NotFound("unknown node: " + node_id);
  }
  if (it->second.alive) {
    it->second.alive = false;
    it->second.died_at = clock_->NowMicros();
    ++generation_;
  }
  return Status::OK();
}

ClusterView MetadataService::View() const {
  ClusterView view;
  // Broker-local engine nodes first: they are part of the deployment
  // but never announce (they share the process with this service).
  const int local = cluster_->num_nodes();
  for (int i = 0; i < local; ++i) {
    engine::RailgunNode* node = cluster_->node(i);
    view.nodes.push_back(
        {node->id(), "broker-local", node->num_units(), node->alive()});
  }
  MutexLock lock(&mu_);
  view.generation = generation_;
  const Micros now = clock_->NowMicros();
  for (const auto& [node_id, record] : nodes_) {
    // Present expiry immediately even if no CheckLeases ran yet; the
    // fencing side effect still belongs to CheckLeases.
    const bool alive =
        record.alive && now - record.last_heartbeat < options_.lease_timeout;
    view.nodes.push_back({node_id, record.info.address,
                          static_cast<int>(record.info.unit_ids.size()),
                          alive});
  }
  for (const auto& [name, def] : streams_) view.streams.push_back(name);
  return view;
}

// ----- Schema registry ------------------------------------------------

Status MetadataService::RegisterStream(const engine::StreamDef& stream) {
  if (stream.name.empty()) {
    return Status::InvalidArgument("stream definition without a name");
  }
  MutexLock lock(&mu_);
  streams_[stream.name] = stream;
  ++generation_;
  return Status::OK();
}

StatusOr<engine::StreamDef> MetadataService::GetStream(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + name);
  }
  return it->second;
}

std::vector<engine::StreamDef> MetadataService::ListStreamDefs() const {
  MutexLock lock(&mu_);
  std::vector<engine::StreamDef> defs;
  defs.reserve(streams_.size());
  for (const auto& [name, def] : streams_) defs.push_back(def);
  return defs;
}

// ----- DDL ------------------------------------------------------------

Status MetadataService::ExecuteDdl(const std::string& statement) {
  MutexLock ddl_lock(&ddl_mu_);
  // The attached client is the source of validation and synchronization
  // (the statement is applied by every alive broker-local unit before
  // Execute returns). AlreadyExists still syncs the registry so a
  // reattaching declarer and the registry agree.
  const Status executed = client_.Execute(statement);
  if (!executed.ok() && !executed.IsAlreadyExists()) return executed;
  ddl_executed_.fetch_add(1, std::memory_order_relaxed);

  if (query::IsDdlStatement(statement)) {
    auto ddl = query::ParseDdl(statement);
    if (!ddl.ok()) return executed;  // Client accepted it; cannot happen.
    if (ddl.value().kind == query::DdlKind::kCreateStream) {
      engine::StreamDef def;
      query::StreamSchemaDef& schema = ddl.value().create_stream;
      def.name = std::move(schema.name);
      def.fields = std::move(schema.fields);
      def.partitioners = std::move(schema.partitioners);
      def.partitions_per_topic = schema.partitions_per_topic;
      MutexLock lock(&mu_);
      // Keep registered metrics when the stream was already known.
      if (streams_.count(def.name) == 0) {
        streams_[def.name] = std::move(def);
        ++generation_;
      }
      return executed;
    }
    if (ddl.value().kind == query::DdlKind::kAddPipeline) {
      AddPipelineToRegistry(std::move(ddl.value().pipeline));
      return executed;
    }
    AddMetricToRegistry(std::move(ddl.value().metric));
    return executed;
  }
  auto metric = query::ParseQuery(statement);
  if (metric.ok()) AddMetricToRegistry(std::move(metric).value());
  return executed;
}

void MetadataService::AddMetricToRegistry(query::QueryDef metric) {
  MutexLock lock(&mu_);
  auto it = streams_.find(metric.stream);
  if (it == streams_.end()) return;
  for (const auto& existing : it->second.queries) {
    if (existing.raw == metric.raw) return;
  }
  it->second.queries.push_back(std::move(metric));
  ++generation_;
}

void MetadataService::AddPipelineToRegistry(query::PipelineSpec pipeline) {
  MutexLock lock(&mu_);
  auto it = streams_.find(pipeline.stream);
  if (it == streams_.end()) return;
  for (const auto& existing : it->second.pipelines) {
    if (existing.raw == pipeline.raw) return;
  }
  it->second.pipelines.push_back(std::move(pipeline));
  ++generation_;
}

void MetadataService::DdlLoop() {
  std::vector<msg::Message> batch;
  while (running_) {
    const Status polled =
        bus_->Poll(ddl_consumer_id_, 16, &batch, 50 * kMicrosPerMilli);
    if (!polled.ok()) {
      // Fenced or unreachable: back off without spinning; statements
      // in flight simply time out on the client.
      batch.clear();
      MonotonicClock::Default()->SleepMicros(10 * kMicrosPerMilli);
      continue;
    }
    for (const auto& message : batch) {
      api::DdlRequest request;
      if (!api::DecodeDdlRequest(Slice(message.payload), &request).ok()) {
        continue;
      }
      api::DdlReply reply;
      reply.request_id = request.request_id;
      reply.result = ExecuteDdl(request.statement);
      std::string encoded;
      api::EncodeDdlReply(reply, &encoded);
      // Best effort: an unreachable reply topic means the client died;
      // it would have timed out anyway.
      (void)bus_->Produce(request.reply_topic, request.reply_topic,
                          std::move(encoded));
    }
  }
}

void MetadataService::SweepLoop() {
  const Micros period =
      std::max<Micros>(options_.lease_timeout / 4, 10 * kMicrosPerMilli);
  MutexLock lock(&sweep_mu_);
  while (running_) {
    sweep_cv_.WaitFor(&sweep_mu_, period);
    if (!running_) break;
    lock.Unlock();
    CheckLeases();
    lock.Lock();
  }
}

// ----- Wire hook ------------------------------------------------------

bool MetadataService::HandleWire(uint8_t opcode, const Slice& payload,
                                 Status* status, std::string* result) {
  using msg::remote::OpCode;
  Slice in = payload;
  switch (static_cast<OpCode>(opcode)) {
    case OpCode::kMetaAnnounce: {
      NodeAnnouncement announcement;
      const Status parsed = DecodeNodeAnnouncement(&in, &announcement);
      if (!parsed.ok()) {
        *status = parsed;
        return true;
      }
      auto announced = Announce(announcement);
      *status = announced.status();
      if (announced.ok()) {
        PutVarsint64(result, announced.value().lease_timeout);
        PutVarint64(result, announced.value().generation);
      }
      return true;
    }
    case OpCode::kMetaHeartbeat: {
      Slice node_id;
      if (!GetLengthPrefixedSlice(&in, &node_id)) {
        *status = Status::Corruption("malformed heartbeat");
        return true;
      }
      auto generation = Heartbeat(node_id.ToString());
      *status = generation.status();
      if (generation.ok()) PutVarint64(result, generation.value());
      return true;
    }
    case OpCode::kMetaLeave: {
      Slice node_id;
      if (!GetLengthPrefixedSlice(&in, &node_id)) {
        *status = Status::Corruption("malformed leave");
        return true;
      }
      *status = Leave(node_id.ToString());
      return true;
    }
    case OpCode::kMetaGetView: {
      EncodeClusterView(View(), result);
      *status = Status::OK();
      return true;
    }
    case OpCode::kMetaGetStream: {
      Slice name;
      if (!GetLengthPrefixedSlice(&in, &name)) {
        *status = Status::Corruption("malformed stream fetch");
        return true;
      }
      auto def = GetStream(name.ToString());
      *status = def.status();
      if (def.ok()) engine::EncodeStreamDef(def.value(), result);
      return true;
    }
    case OpCode::kMetaListStreams: {
      const std::vector<engine::StreamDef> defs = ListStreamDefs();
      PutVarint32(result, static_cast<uint32_t>(defs.size()));
      for (const auto& def : defs) engine::EncodeStreamDef(def, result);
      *status = Status::OK();
      return true;
    }
    default:
      return false;
  }
}

}  // namespace railgun::meta
