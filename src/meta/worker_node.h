// The embeddable half of railgun_noded: one Railgun node (front end +
// processor units) that joins a remote broker instead of living inside
// its cluster process.
//
// Join protocol:
//   1. connect a MetaClient and a RemoteBus to the broker's BusServer;
//   2. Announce(node_id, unit ids) — the broker leases the node;
//   3. start the engine::RailgunNode against the RemoteBus (units join
//      the shared "railgun-active" consumer group; the broker-side
//      sticky coordinator places tasks);
//   4. fetch every registered StreamDef from the metadata service and
//      register it locally (creates topics idempotently, arms units);
//   5. heartbeat at a fraction of the lease; when the view generation
//      moves, re-sync streams — this is how DDL executed by any client
//      reaches every worker process.
// Stop() leaves gracefully: metadata Leave + clean unit unsubscribe
// (one rebalance, no lease wait). A crash is the lease-expiry path.
//
// Replica/donor recovery stays process-local (the Coordinator here is
// private to this worker): replication_factor > 1 across processes is
// the seeded next step. A fenced task restarting on another worker
// rebuilds state by replaying its partition from the broker log.
#ifndef RAILGUN_META_WORKER_NODE_H_
#define RAILGUN_META_WORKER_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "engine/coordinator.h"
#include "engine/node.h"
#include "introspect/publisher.h"
#include "introspect/registry.h"
#include "meta/meta_client.h"
#include "msg/remote/remote_bus.h"

namespace railgun::meta {

struct WorkerNodeOptions {
  std::string broker_address;  // "host:port" of the broker's BusServer.
  std::string node_id;         // Empty: a process-unique id is generated.
  // Informational address announced to the metadata service (shown in
  // Admin / REPL node listings). Empty derives "<hostname>/<pid>".
  std::string address;
  int num_units = 2;
  // Data directory; empty derives "/tmp/railgun-noded-<node_id>".
  // Wiped on Start.
  std::string base_dir;
  // Heartbeat cadence; 0 derives lease_timeout / 3 from the broker's
  // announce response.
  Micros heartbeat_period = 0;
  // Run the heartbeat thread. Tests drive Heartbeat() manually when
  // false (or when the clock is simulated).
  bool auto_heartbeat = true;
  engine::NodeOptions node;  // Unit / front-end tuning.
  Clock* clock = nullptr;    // Defaults to the monotonic clock.
  // Period of this worker's "__railgun.internals" snapshots (published
  // to the broker under node=<node_id>). 0 disables publication; the
  // local registry still collects.
  Micros introspect_period = kMicrosPerSecond;
};

class WorkerNode {
 public:
  explicit WorkerNode(const WorkerNodeOptions& options);
  ~WorkerNode();

  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  Status Start();
  // Graceful departure: metadata Leave, then clean unit unsubscribe.
  void Stop();

  // One heartbeat + stream re-sync when the view generation moved.
  // Re-announces (and fully re-syncs) after a lease expiry. Public so
  // tests and manual-heartbeat deployments can drive the cadence.
  Status Heartbeat();
  // Fetches all registered streams and registers new/changed ones.
  Status SyncStreams();

  const std::string& node_id() const { return node_id_; }
  engine::RailgunNode* node() { return node_.get(); }
  // This worker's metric registry (its publisher streams snapshots to
  // the broker's internals topic under node=<node_id>).
  introspect::Registry* registry() { return &registry_; }
  uint64_t view_generation() const {
    return last_generation_.load(std::memory_order_relaxed);
  }
  Micros lease_timeout() const {
    return lease_timeout_.load(std::memory_order_relaxed);
  }

 private:
  void HeartbeatLoop();
  Status AnnounceAndSync();
  NodeAnnouncement BuildAnnouncement() const;
  // Records the broker's lease and (re)derives the heartbeat cadence —
  // a rejoin may hand back a different lease than the first join.
  void AdoptLease(Micros lease_timeout);

  WorkerNodeOptions options_;
  Clock* clock_;
  std::string node_id_;
  std::string address_;
  std::string dir_;

  // meta_ borrows bus_: keep the bus declared first so the stub never
  // outlives its transport.
  std::unique_ptr<msg::remote::RemoteBus> bus_;
  std::unique_ptr<MetaClient> meta_;
  std::unique_ptr<engine::Coordinator> coordinator_;
  std::unique_ptr<engine::RailgunNode> node_;
  introspect::Registry registry_;
  std::unique_ptr<introspect::Publisher> publisher_;

  // Atomic: rewritten by the heartbeat thread on a lease-expiry rejoin
  // (AdoptLease) while the public accessor may read concurrently.
  std::atomic<Micros> lease_timeout_{0};
  // Only touched by Start() and the heartbeat thread itself.
  Micros heartbeat_period_ = 0;
  std::atomic<uint64_t> last_generation_{0};
  // Encoded form of each registered stream, to skip no-op re-registers
  // (a re-register forces a group resubscribe).
  std::map<std::string, std::string> registered_ GUARDED_BY(sync_mu_);
  Mutex sync_mu_{kRankMetaWorkerSync};  // Serializes SyncStreams/Heartbeat.

  std::atomic<bool> running_{false};
  std::thread heartbeat_thread_;
  Mutex hb_mu_{kRankMetaWorkerHeartbeat};
  CondVar hb_cv_;
};

}  // namespace railgun::meta

#endif  // RAILGUN_META_WORKER_NODE_H_
