// The broker process in a box: an engine::Cluster (by default with zero
// local nodes — pure coordination), the BusServer exposing its message
// bus over TCP, and the MetadataService answering membership/schema
// RPCs through the server's extension hook.
//
// A multi-process Railgun deployment is one Broker process, N
// railgun_noded worker processes (meta::WorkerNode) joining it, and M
// api::Client processes attaching with ClientOptions::remote_address —
// the paper's N-machine topology with this process standing in for
// Kafka + the coordination plane.
#ifndef RAILGUN_META_BROKER_H_
#define RAILGUN_META_BROKER_H_

#include <memory>
#include <string>

#include "engine/cluster.h"
#include "meta/metadata_service.h"
#include "msg/remote/bus_server.h"

namespace railgun::meta {

struct BrokerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; Broker::port() reports the bound one.
  // The hosted cluster. Defaults to zero local nodes: all processing
  // capacity joins as worker processes. Set num_nodes > 0 to colocate
  // engine nodes with the broker (the PR 3 hub-and-spoke shape).
  engine::ClusterOptions cluster;
  MetadataServiceOptions meta;

  BrokerOptions() {
    cluster.num_nodes = 0;
    cluster.base_dir = "/tmp/railgun-broker";
  }
};

class Broker {
 public:
  explicit Broker(const BrokerOptions& options);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  Status Start();
  void Stop();

  int port() const { return server_->port(); }
  // "host:port" for ClientOptions::remote_address / WorkerNodeOptions.
  std::string address() const { return server_->address(); }

  engine::Cluster* cluster() { return cluster_.get(); }
  MetadataService* metadata() { return meta_.get(); }
  msg::remote::BusServer* bus_server() { return server_.get(); }

 private:
  BrokerOptions options_;
  std::unique_ptr<engine::Cluster> cluster_;
  std::unique_ptr<msg::remote::BusServer> server_;
  std::unique_ptr<MetadataService> meta_;
  bool started_ = false;
};

}  // namespace railgun::meta

#endif  // RAILGUN_META_BROKER_H_
