#include "meta/meta_client.h"

#include <utility>

#include "common/coding.h"

namespace railgun::meta {

using msg::remote::OpCode;

Status MetaClient::Call(OpCode opcode, const std::string& payload,
                        std::string* result) {
  return bus_->CallOpcode(static_cast<uint8_t>(opcode), payload, result);
}

StatusOr<AnnounceResult> MetaClient::Announce(
    const NodeAnnouncement& announcement) {
  std::string payload, result;
  EncodeNodeAnnouncement(announcement, &payload);
  RAILGUN_RETURN_IF_ERROR(Call(OpCode::kMetaAnnounce, payload, &result));
  Slice in(result);
  AnnounceResult out;
  if (!GetVarsint64(&in, &out.lease_timeout) ||
      !GetVarint64(&in, &out.generation)) {
    return Status::Corruption("malformed announce response");
  }
  return out;
}

StatusOr<uint64_t> MetaClient::Heartbeat(const std::string& node_id) {
  std::string payload, result;
  PutLengthPrefixedSlice(&payload, node_id);
  RAILGUN_RETURN_IF_ERROR(Call(OpCode::kMetaHeartbeat, payload, &result));
  Slice in(result);
  uint64_t generation;
  if (!GetVarint64(&in, &generation)) {
    return Status::Corruption("malformed heartbeat response");
  }
  return generation;
}

Status MetaClient::Leave(const std::string& node_id) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, node_id);
  return Call(OpCode::kMetaLeave, payload, nullptr);
}

StatusOr<ClusterView> MetaClient::GetView() {
  std::string result;
  RAILGUN_RETURN_IF_ERROR(Call(OpCode::kMetaGetView, "", &result));
  Slice in(result);
  ClusterView view;
  RAILGUN_RETURN_IF_ERROR(DecodeClusterView(&in, &view));
  return view;
}

StatusOr<engine::StreamDef> MetaClient::GetStream(const std::string& name) {
  std::string payload, result;
  PutLengthPrefixedSlice(&payload, name);
  RAILGUN_RETURN_IF_ERROR(Call(OpCode::kMetaGetStream, payload, &result));
  Slice in(result);
  engine::StreamDef def;
  RAILGUN_RETURN_IF_ERROR(engine::DecodeStreamDef(&in, &def));
  return def;
}

StatusOr<std::vector<engine::StreamDef>> MetaClient::ListStreams() {
  std::string result;
  RAILGUN_RETURN_IF_ERROR(Call(OpCode::kMetaListStreams, "", &result));
  Slice in(result);
  uint32_t count;
  if (!GetVarint32(&in, &count)) {
    return Status::Corruption("malformed stream listing");
  }
  std::vector<engine::StreamDef> defs;
  defs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    engine::StreamDef def;
    RAILGUN_RETURN_IF_ERROR(engine::DecodeStreamDef(&in, &def));
    defs.push_back(std::move(def));
  }
  return defs;
}

}  // namespace railgun::meta
