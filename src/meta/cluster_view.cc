#include "meta/cluster_view.h"

#include "common/coding.h"

namespace railgun::meta {

void EncodeNodeAnnouncement(const NodeAnnouncement& announcement,
                            std::string* out) {
  PutLengthPrefixedSlice(out, announcement.node_id);
  PutLengthPrefixedSlice(out, announcement.address);
  PutVarint32(out, static_cast<uint32_t>(announcement.unit_ids.size()));
  for (const auto& unit : announcement.unit_ids) {
    PutLengthPrefixedSlice(out, unit);
  }
}

Status DecodeNodeAnnouncement(Slice* in, NodeAnnouncement* announcement) {
  Slice node_id, address;
  uint32_t num_units;
  if (!GetLengthPrefixedSlice(in, &node_id) ||
      !GetLengthPrefixedSlice(in, &address) ||
      !GetVarint32(in, &num_units)) {
    return Status::Corruption("malformed node announcement");
  }
  announcement->node_id = node_id.ToString();
  announcement->address = address.ToString();
  announcement->unit_ids.clear();
  for (uint32_t i = 0; i < num_units; ++i) {
    Slice unit;
    if (!GetLengthPrefixedSlice(in, &unit)) {
      return Status::Corruption("malformed node announcement");
    }
    announcement->unit_ids.push_back(unit.ToString());
  }
  return Status::OK();
}

void EncodeClusterView(const ClusterView& view, std::string* out) {
  PutVarint64(out, view.generation);
  PutVarint32(out, static_cast<uint32_t>(view.nodes.size()));
  for (const auto& node : view.nodes) {
    PutLengthPrefixedSlice(out, node.node_id);
    PutLengthPrefixedSlice(out, node.address);
    PutVarint32(out, static_cast<uint32_t>(node.num_units));
    out->push_back(node.alive ? 1 : 0);
  }
  PutVarint32(out, static_cast<uint32_t>(view.streams.size()));
  for (const auto& stream : view.streams) {
    PutLengthPrefixedSlice(out, stream);
  }
}

Status DecodeClusterView(Slice* in, ClusterView* view) {
  uint32_t num_nodes;
  if (!GetVarint64(in, &view->generation) || !GetVarint32(in, &num_nodes)) {
    return Status::Corruption("malformed cluster view");
  }
  view->nodes.clear();
  for (uint32_t i = 0; i < num_nodes; ++i) {
    NodeMember node;
    Slice node_id, address;
    uint32_t num_units;
    if (!GetLengthPrefixedSlice(in, &node_id) ||
        !GetLengthPrefixedSlice(in, &address) ||
        !GetVarint32(in, &num_units) ||
        num_units > static_cast<uint32_t>(INT32_MAX) || in->empty()) {
      return Status::Corruption("malformed cluster view node");
    }
    node.node_id = node_id.ToString();
    node.address = address.ToString();
    node.num_units = static_cast<int>(num_units);
    node.alive = (*in)[0] != 0;
    in->remove_prefix(1);
    view->nodes.push_back(std::move(node));
  }
  uint32_t num_streams;
  if (!GetVarint32(in, &num_streams)) {
    return Status::Corruption("malformed cluster view");
  }
  view->streams.clear();
  for (uint32_t i = 0; i < num_streams; ++i) {
    Slice stream;
    if (!GetLengthPrefixedSlice(in, &stream)) {
      return Status::Corruption("malformed cluster view stream");
    }
    view->streams.push_back(stream.ToString());
  }
  return Status::OK();
}

}  // namespace railgun::meta
