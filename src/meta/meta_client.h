// Client stub for the metadata service: speaks the kMeta* opcodes of
// the remote wire protocol over a RemoteBus's control connection to a
// BusServer whose extension hook routes them into the broker's
// MetadataService.
//
// Used by worker daemons (announce/heartbeat/leave, stream sync) and by
// remote api::Clients (foreign-schema fetch, admin listings). The stub
// is a pure encoder/decoder: transport — lazy reconnect with capped
// backoff, correlation ids, Unavailable on failure — is the borrowed
// RemoteBus's, so metadata RPCs share the connection and failure model
// of the data path. A broker without a metadata service answers
// NotSupported ("unknown opcode"), which callers treat as "no metadata
// available".
#ifndef RAILGUN_META_META_CLIENT_H_
#define RAILGUN_META_META_CLIENT_H_

#include <string>
#include <vector>

#include "engine/stream_def.h"
#include "meta/cluster_view.h"
#include "msg/remote/remote_bus.h"

namespace railgun::meta {

class MetaClient {
 public:
  // Borrows the bus (typically the owning client's/worker's data-path
  // RemoteBus); it must outlive this stub.
  explicit MetaClient(msg::remote::RemoteBus* bus) : bus_(bus) {}

  MetaClient(const MetaClient&) = delete;
  MetaClient& operator=(const MetaClient&) = delete;

  // ----- Membership ---------------------------------------------------
  StatusOr<AnnounceResult> Announce(const NodeAnnouncement& announcement);
  StatusOr<uint64_t> Heartbeat(const std::string& node_id);
  Status Leave(const std::string& node_id);
  StatusOr<ClusterView> GetView();

  // ----- Schema registry ----------------------------------------------
  StatusOr<engine::StreamDef> GetStream(const std::string& name);
  StatusOr<std::vector<engine::StreamDef>> ListStreams();

 private:
  Status Call(msg::remote::OpCode opcode, const std::string& payload,
              std::string* result);

  msg::remote::RemoteBus* bus_;
};

}  // namespace railgun::meta

#endif  // RAILGUN_META_META_CLIENT_H_
