// Message model of the messaging layer (the role Kafka plays in the
// paper §3.3): partitioned, offset-addressed, replayable logs.
#ifndef RAILGUN_MSG_MESSAGE_H_
#define RAILGUN_MSG_MESSAGE_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace railgun::msg {

struct TopicPartition {
  std::string topic;
  int partition = 0;

  bool operator==(const TopicPartition& other) const {
    return partition == other.partition && topic == other.topic;
  }
  bool operator<(const TopicPartition& other) const {
    if (topic != other.topic) return topic < other.topic;
    return partition < other.partition;
  }
  std::string ToString() const {
    return topic + "-" + std::to_string(partition);
  }
};

struct Message {
  std::string topic;
  int partition = 0;
  uint64_t offset = 0;
  std::string key;
  std::string payload;
  // Broker-side publish time; consumers only see the message once the
  // simulated delivery delay has elapsed.
  Micros publish_time = 0;
  Micros visible_time = 0;
};

}  // namespace railgun::msg

#endif  // RAILGUN_MSG_MESSAGE_H_
