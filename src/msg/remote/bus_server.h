// BusServer hosts any msg::Bus (in practice an InProcessBus, typically
// the one owned by an engine::Cluster) behind a TCP listener speaking
// the wire protocol of msg/remote/wire.h.
//
// Threading: one accept thread plus one thread per connection, each
// handling its connection's requests strictly in order. Blocking Poll
// parks *server-side* inside the hosted bus — the paired RemoteBus uses
// a dedicated connection per consumer, so a parked poll never stalls
// control traffic, and a WakeConsumer arriving on another connection
// wakes it through the bus's own wake channel.
//
// Rebalance callbacks are streamed to clients piggybacked on Poll
// responses: the server subscribes with a buffering listener, and the
// hosted bus delivers revoke/assign synchronously inside that consumer's
// own Poll, so the buffer is drained into the very response that poll
// produces.
#ifndef RAILGUN_MSG_REMOTE_BUS_SERVER_H_
#define RAILGUN_MSG_REMOTE_BUS_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "msg/bus.h"
#include "msg/remote/socket.h"
#include "msg/remote/wire.h"

namespace railgun::msg::remote {

struct BusServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; port() reports the bound one.
  // Answer kPollColumnar/kProduceColumnar. Off simulates a server
  // predating the columnar frames, exercising the client's
  // NotSupported downgrade path.
  bool enable_columnar = true;
  // Answer kTraceHello (and honor produce trace trailers). Off
  // simulates a server predating trace propagation, exercising the
  // client's NotSupported downgrade path.
  bool enable_trace = true;
};

class BusServer {
 public:
  BusServer(const BusServerOptions& options, Bus* bus);
  ~BusServer();

  BusServer(const BusServer&) = delete;
  BusServer& operator=(const BusServer&) = delete;

  Status Start();
  void Stop();

  int port() const { return port_; }
  // "host:port" suitable for RemoteBusOptions::address.
  std::string address() const {
    return options_.host + ":" + std::to_string(port_);
  }

  // Hook for services co-hosted with the bus (the metadata service):
  // called for any opcode the bus itself does not handle. Returns true
  // when the opcode was recognized, filling *status and (on OK) the
  // RPC-specific *result bytes; false falls through to the typed
  // NotSupported unknown-opcode response. Must be installed before
  // Start() — the server reads it from connection threads unlocked.
  using ExtensionHandler = std::function<bool(
      uint8_t opcode, const Slice& payload, Status* status,
      std::string* result)>;
  void SetExtension(ExtensionHandler extension) {
    extension_ = std::move(extension);
  }

  // Connections currently being served (introspection).
  size_t live_connections() const {
    MutexLock lock(&mu_);
    return live_connections_;
  }

  // Decodes one request and executes it against `bus`, producing the
  // response frame (same correlation id, opcode | kResponseBit).
  // Malformed payloads yield a Corruption response, unhandled opcodes a
  // typed NotSupported one; this never crashes on hostile input.
  // Exposed for wire-level tests.
  Frame HandleRequest(const Frame& request);
  // Zero-copy form the connection threads use: the request payload
  // views into the connection's pooled receive buffer and is only
  // borrowed for the duration of the call.
  Frame HandleRequest(const FrameView& request);

  // Receive-path statistics (exported as introspect probes by owners —
  // meta::Broker registers them next to server.connections).
  uint64_t pool_hits() const { return pool_.hits(); }
  uint64_t pool_misses() const { return pool_.misses(); }
  uint64_t decode_bytes() const { return pool_.bytes(); }
  // Columnar poll/produce batches served.
  uint64_t columnar_batches() const {
    return columnar_batches_.load(std::memory_order_relaxed);
  }

 private:
  // Revoke/assign lists buffered by the server-side listener until the
  // consumer's next Poll response carries them to the client.
  struct RebalanceBuffer {
    Mutex mu{kRankMsgServerRebalance};
    std::vector<TopicPartition> revoked GUARDED_BY(mu);
    std::vector<TopicPartition> assigned GUARDED_BY(mu);
  };

  void AcceptLoop();
  // Runs detached; erases its conns_ entry and drops the live count on
  // exit so long-running servers don't accumulate per-connection state.
  void ServeConnection(uint64_t conn_id, std::shared_ptr<Socket> sock);
  std::shared_ptr<RebalanceBuffer> BufferFor(const std::string& consumer_id);

  BusServerOptions options_;
  Bus* bus_;
  ExtensionHandler extension_;  // Immutable after Start().
  int port_ = 0;
  std::atomic<bool> running_{false};
  // Receive buffers shared by all connection threads (BufferPool is
  // internally synchronized); steady state serves every frame from a
  // warm buffer with zero heap allocation.
  BufferPool pool_;
  std::atomic<uint64_t> columnar_batches_{0};

  ListenSocket listener_;
  std::thread accept_thread_;

  mutable Mutex mu_{kRankMsgServer};
  uint64_t next_conn_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, std::shared_ptr<Socket>> conns_ GUARDED_BY(mu_);
  size_t live_connections_ GUARDED_BY(mu_) = 0;
  CondVar conns_drained_;  // Stop waits for count == 0.
  std::map<std::string, std::shared_ptr<RebalanceBuffer>> rebalances_
      GUARDED_BY(mu_);
};

}  // namespace railgun::msg::remote

#endif  // RAILGUN_MSG_REMOTE_BUS_SERVER_H_
