#include "msg/remote/bus_server.h"

#include <utility>

#include "common/coding.h"
#include "trace/trace_context.h"

namespace railgun::msg::remote {

BusServer::BusServer(const BusServerOptions& options, Bus* bus)
    : options_(options), bus_(bus) {}

BusServer::~BusServer() { Stop(); }

Status BusServer::Start() {
  RAILGUN_ASSIGN_OR_RETURN(listener_,
                           ListenSocket::Listen(options_.host, options_.port));
  port_ = listener_.port();
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void BusServer::Stop() {
  if (!running_.exchange(false)) return;
  listener_.Close();  // Unblocks the parked accept.
  {
    MutexLock lock(&mu_);
    for (auto& [id, sock] : conns_) sock->ShutdownBoth();
  }
  // Unpark server-side blocking Polls so their connection threads notice
  // the shut-down sockets. The wake is level-triggered and consumed, so
  // local consumers of the same bus just re-scan once.
  bus_->Wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  MutexLock lock(&mu_);
  conns_drained_.Wait(&mu_, [this] { return live_connections_ == 0; });
}

void BusServer::AcceptLoop() {
  while (running_) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (!running_) return;
      continue;  // Transient accept failure; keep serving.
    }
    auto sock = std::make_shared<Socket>(std::move(accepted).value());
    MutexLock lock(&mu_);
    if (!running_) return;
    const uint64_t conn_id = next_conn_id_++;
    conns_[conn_id] = sock;
    ++live_connections_;
    // Detached: each connection reaps itself on exit (long-running
    // servers see connection churn); Stop() waits for the live count
    // to drain, so no thread outlives the server.
    std::thread([this, conn_id, sock] {
      ServeConnection(conn_id, sock);
    }).detach();
  }
}

void BusServer::ServeConnection(uint64_t conn_id,
                                std::shared_ptr<Socket> sock) {
  std::string encoded;
  while (running_) {
    BufferRef buffer;
    FrameView request;
    // A framing failure (bad length or checksum) means the byte stream
    // itself can't be trusted; drop the connection rather than guess.
    // The body lands in a pooled buffer that recycles when `buffer`
    // drops at the end of the iteration — per-frame heap traffic is
    // zero once the pool is warm.
    if (!ReadFramePooled(sock.get(), &pool_, &buffer, &request).ok()) break;
    const Frame response = HandleRequest(request);
    encoded.clear();
    EncodeFrame(response, &encoded);
    if (!sock->SendAll(encoded.data(), encoded.size()).ok()) break;
  }
  sock->Close();
  MutexLock lock(&mu_);
  conns_.erase(conn_id);
  --live_connections_;
  conns_drained_.NotifyAll();
}

std::shared_ptr<BusServer::RebalanceBuffer> BusServer::BufferFor(
    const std::string& consumer_id) {
  MutexLock lock(&mu_);
  auto& buffer = rebalances_[consumer_id];
  if (buffer == nullptr) buffer = std::make_shared<RebalanceBuffer>();
  return buffer;
}

Frame BusServer::HandleRequest(const Frame& request) {
  FrameView view;
  view.correlation_id = request.correlation_id;
  view.opcode = request.opcode;
  view.payload = Slice(request.payload);
  return HandleRequest(view);
}

Frame BusServer::HandleRequest(const FrameView& request) {
  Frame response;
  response.correlation_id = request.correlation_id;
  response.opcode = request.opcode | kResponseBit;

  Slice in = request.payload;
  Status status;
  std::string result;  // RPC-specific fields, appended after the status.
  bool parsed = true;

  switch (static_cast<OpCode>(request.opcode)) {
    case OpCode::kCreateTopic: {
      Slice topic;
      uint32_t partitions;
      if ((parsed = GetLengthPrefixedSlice(&in, &topic) &&
                    GetVarint32(&in, &partitions) &&
                    partitions <= static_cast<uint32_t>(INT32_MAX))) {
        status = bus_->CreateTopic(topic.ToString(),
                                   static_cast<int>(partitions));
      }
      break;
    }
    case OpCode::kDeleteTopic: {
      Slice topic;
      if ((parsed = GetLengthPrefixedSlice(&in, &topic))) {
        status = bus_->DeleteTopic(topic.ToString());
      }
      break;
    }
    case OpCode::kNumPartitions: {
      Slice topic;
      if ((parsed = GetLengthPrefixedSlice(&in, &topic))) {
        auto n = bus_->NumPartitions(topic.ToString());
        status = n.status();
        if (n.ok()) PutVarint32(&result, static_cast<uint32_t>(n.value()));
      }
      break;
    }
    case OpCode::kPartitionsOf: {
      Slice topic;
      if ((parsed = GetLengthPrefixedSlice(&in, &topic))) {
        PutTopicPartitionList(&result, bus_->PartitionsOf(topic.ToString()));
      }
      break;
    }
    case OpCode::kProduce: {
      Slice topic, key, payload;
      if ((parsed = GetLengthPrefixedSlice(&in, &topic) &&
                    GetLengthPrefixedSlice(&in, &key) &&
                    GetLengthPrefixedSlice(&in, &payload))) {
        auto offset = bus_->Produce(topic.ToString(), key.ToString(),
                                    payload.ToString());
        status = offset.status();
        if (offset.ok()) PutVarint64(&result, offset.value());
      }
      break;
    }
    case OpCode::kProduceToPartition: {
      Slice topic, key, payload;
      uint32_t partition;
      if ((parsed = GetLengthPrefixedSlice(&in, &topic) &&
                    GetVarint32(&in, &partition) &&
                    partition <= static_cast<uint32_t>(INT32_MAX) &&
                    GetLengthPrefixedSlice(&in, &key) &&
                    GetLengthPrefixedSlice(&in, &payload))) {
        auto offset = bus_->ProduceToPartition(
            topic.ToString(), static_cast<int>(partition), key.ToString(),
            payload.ToString());
        status = offset.status();
        if (offset.ok()) PutVarint64(&result, offset.value());
      }
      break;
    }
    case OpCode::kProduceBatch: {
      Slice topic;
      uint32_t n = 0;
      std::vector<ProduceRecord> records;
      parsed = GetLengthPrefixedSlice(&in, &topic) && GetVarint32(&in, &n);
      for (uint32_t i = 0; parsed && i < n; ++i) {
        Slice key, payload;
        if ((parsed = GetLengthPrefixedSlice(&in, &key) &&
                      GetLengthPrefixedSlice(&in, &payload))) {
          records.push_back({key.ToString(), payload.ToString()});
        }
      }
      if (parsed) {
        // A trace trailer may follow the last record (see kTraceHello);
        // make it ambient so the hosted bus's append span links. A
        // corrupt trailer degrades to an untraced produce, never an
        // error.
        const trace::ScopedTraceContext scope(
            options_.enable_trace ? trace::ParseTraceTrailer(in)
                                  : trace::TraceContext());
        status = bus_->ProduceBatch(topic.ToString(), std::move(records));
      }
      break;
    }
    case OpCode::kSubscribe: {
      Slice consumer, group, metadata;
      uint32_t n = 0;
      std::vector<std::string> topics;
      parsed = GetLengthPrefixedSlice(&in, &consumer) &&
               GetLengthPrefixedSlice(&in, &group) && GetVarint32(&in, &n);
      for (uint32_t i = 0; parsed && i < n; ++i) {
        Slice topic;
        if ((parsed = GetLengthPrefixedSlice(&in, &topic))) {
          topics.push_back(topic.ToString());
        }
      }
      parsed = parsed && GetLengthPrefixedSlice(&in, &metadata);
      if (parsed) {
        // The buffering listener feeds rebalances into this consumer's
        // Poll responses; the client-side strategy cannot cross the
        // wire, so the group runs the server default.
        auto buffer = BufferFor(consumer.ToString());
        RebalanceListener listener;
        listener.on_revoked =
            [buffer](const std::vector<TopicPartition>& revoked) {
              MutexLock lock(&buffer->mu);
              buffer->revoked.insert(buffer->revoked.end(), revoked.begin(),
                                     revoked.end());
            };
        listener.on_assigned =
            [buffer](const std::vector<TopicPartition>& assigned) {
              MutexLock lock(&buffer->mu);
              buffer->assigned.insert(buffer->assigned.end(),
                                      assigned.begin(), assigned.end());
            };
        status = bus_->Subscribe(consumer.ToString(), group.ToString(),
                                 topics, metadata.ToString(), nullptr,
                                 std::move(listener));
      }
      break;
    }
    case OpCode::kUnsubscribe: {
      Slice consumer;
      if ((parsed = GetLengthPrefixedSlice(&in, &consumer))) {
        status = bus_->Unsubscribe(consumer.ToString());
        MutexLock lock(&mu_);
        rebalances_.erase(consumer.ToString());
      }
      break;
    }
    case OpCode::kPoll: {
      Slice consumer;
      uint64_t max_messages;
      int64_t max_wait;
      if ((parsed = GetLengthPrefixedSlice(&in, &consumer) &&
                    GetVarint64(&in, &max_messages) &&
                    GetVarsint64(&in, &max_wait))) {
        std::vector<Message> messages;
        status = bus_->Poll(consumer.ToString(),
                            static_cast<size_t>(max_messages), &messages,
                            max_wait);
        if (status.ok()) {
          std::vector<TopicPartition> revoked, assigned;
          auto buffer = BufferFor(consumer.ToString());
          {
            MutexLock lock(&buffer->mu);
            revoked.swap(buffer->revoked);
            assigned.swap(buffer->assigned);
          }
          PutTopicPartitionList(&result, revoked);
          PutTopicPartitionList(&result, assigned);
          PutWireMessageList(&result, messages);
          // Backlog hint: trailing varint appended after the original
          // kPoll body. Old clients stop decoding before it; new
          // clients treat it as optional — both directions stay
          // compatible across versions.
          PutVarint64(&result, bus_->BacklogHint());
        }
      }
      break;
    }
    case OpCode::kFetch: {
      TopicPartition tp;
      uint64_t offset, max_messages;
      if ((parsed = GetTopicPartition(&in, &tp) &&
                    GetVarint64(&in, &offset) &&
                    GetVarint64(&in, &max_messages))) {
        std::vector<Message> messages;
        status = bus_->Fetch(tp, offset, static_cast<size_t>(max_messages),
                             &messages);
        if (status.ok()) PutWireMessageList(&result, messages);
      }
      break;
    }
    case OpCode::kCommit:
    case OpCode::kSeek: {
      Slice consumer;
      TopicPartition tp;
      uint64_t offset;
      if ((parsed = GetLengthPrefixedSlice(&in, &consumer) &&
                    GetTopicPartition(&in, &tp) &&
                    GetVarint64(&in, &offset))) {
        status = static_cast<OpCode>(request.opcode) == OpCode::kCommit
                     ? bus_->Commit(consumer.ToString(), tp, offset)
                     : bus_->Seek(consumer.ToString(), tp, offset);
      }
      break;
    }
    case OpCode::kEndOffset:
    case OpCode::kBaseOffset: {
      TopicPartition tp;
      if ((parsed = GetTopicPartition(&in, &tp))) {
        auto offset = static_cast<OpCode>(request.opcode) == OpCode::kEndOffset
                          ? bus_->EndOffset(tp)
                          : bus_->BaseOffset(tp);
        status = offset.status();
        if (offset.ok()) PutVarint64(&result, offset.value());
      }
      break;
    }
    case OpCode::kKillConsumer: {
      Slice consumer;
      if ((parsed = GetLengthPrefixedSlice(&in, &consumer))) {
        status = bus_->KillConsumer(consumer.ToString());
      }
      break;
    }
    case OpCode::kWakeConsumer: {
      Slice consumer;
      if ((parsed = GetLengthPrefixedSlice(&in, &consumer))) {
        status = bus_->WakeConsumer(consumer.ToString());
      }
      break;
    }
    case OpCode::kWake:
      bus_->Wake();
      break;
    case OpCode::kCheckLiveness:
      bus_->CheckLiveness();
      break;
    case OpCode::kAssignmentOf: {
      Slice consumer;
      if ((parsed = GetLengthPrefixedSlice(&in, &consumer))) {
        PutTopicPartitionList(&result, bus_->AssignmentOf(consumer.ToString()));
      }
      break;
    }
    case OpCode::kRebalanceCount:
      PutVarint64(&result, bus_->rebalance_count());
      break;
    case OpCode::kPollColumnar: {
      if (!options_.enable_columnar) {
        // Mirror a server predating the columnar frames byte-for-byte
        // so the client downgrade path sees the real thing.
        status = Status::NotSupported("unknown opcode " +
                                      std::to_string(request.opcode));
        break;
      }
      Slice consumer;
      uint64_t max_messages;
      int64_t max_wait;
      if ((parsed = GetLengthPrefixedSlice(&in, &consumer) &&
                    GetVarint64(&in, &max_messages) &&
                    GetVarsint64(&in, &max_wait))) {
        std::vector<Message> messages;
        status = bus_->Poll(consumer.ToString(),
                            static_cast<size_t>(max_messages), &messages,
                            max_wait);
        if (status.ok()) {
          std::vector<TopicPartition> revoked, assigned;
          auto buffer = BufferFor(consumer.ToString());
          {
            MutexLock lock(&buffer->mu);
            revoked.swap(buffer->revoked);
            assigned.swap(buffer->assigned);
          }
          PutTopicPartitionList(&result, revoked);
          PutTopicPartitionList(&result, assigned);
          PutColumnarMessageList(&result, messages);
          PutVarint64(&result, bus_->BacklogHint());
          columnar_batches_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      break;
    }
    case OpCode::kProduceColumnar: {
      if (!options_.enable_columnar) {
        status = Status::NotSupported("unknown opcode " +
                                      std::to_string(request.opcode));
        break;
      }
      std::string topic;
      std::vector<ProduceRecord> records;
      if ((parsed = GetColumnarProduceBatch(&in, &topic, &records))) {
        const trace::ScopedTraceContext scope(
            options_.enable_trace ? trace::ParseTraceTrailer(in)
                                  : trace::TraceContext());
        status = bus_->ProduceBatch(topic, std::move(records));
        if (status.ok()) {
          columnar_batches_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      break;
    }
    case OpCode::kTraceHello:
      if (!options_.enable_trace) {
        // Mirror a server predating trace propagation byte-for-byte so
        // the client downgrade path sees the real thing.
        status = Status::NotSupported("unknown opcode " +
                                      std::to_string(request.opcode));
      }
      break;
    default:
      if (extension_ == nullptr ||
          !extension_(request.opcode, in, &status, &result)) {
        // The frame passed CRC and framing, so this is a protocol
        // mismatch (e.g. a newer client's RPC), not line corruption.
        status = Status::NotSupported("unknown opcode " +
                                      std::to_string(request.opcode));
      }
      break;
  }
  if (!parsed) status = Status::Corruption("malformed request payload");

  PutStatus(&response.payload, status);
  if (status.ok()) response.payload.append(result);
  return response;
}

}  // namespace railgun::msg::remote
