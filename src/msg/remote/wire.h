// Binary wire protocol of the remote message bus. One RPC = one request
// frame from client to server and one response frame back, matched by
// correlation id (the client may multiplex connections, the server
// answers in request order per connection).
//
// Frame layout (all integers little-endian / LEB128 varints from
// common/coding):
//
//   [fixed32 body_len][fixed32 masked crc32c(body)][body]
//   body = [varint64 correlation_id][u8 opcode][payload]
//
// Response frames reuse the request opcode with kResponseBit set, and
// their payload always starts with an encoded Status; RPC-specific
// result fields follow only when that status is OK. Decoders return
// Status::Corruption for truncated frames, oversized bodies, checksum
// mismatches and malformed payloads — never crash, never trust lengths.
#ifndef RAILGUN_MSG_REMOTE_WIRE_H_
#define RAILGUN_MSG_REMOTE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "msg/batch.h"
#include "msg/bus.h"
#include "msg/buffer_pool.h"
#include "msg/message.h"
#include "msg/remote/socket.h"

namespace railgun::msg::remote {

// Frames larger than this are rejected as corrupt: nothing the bus
// exchanges legitimately approaches it, and it bounds what a broken (or
// hostile) peer can make the other side allocate.
constexpr uint32_t kMaxFrameBody = 64u << 20;

constexpr size_t kFrameHeaderSize = 8;  // body_len + masked crc.

constexpr uint8_t kResponseBit = 0x80;

enum class OpCode : uint8_t {
  kCreateTopic = 1,
  kDeleteTopic = 2,
  kNumPartitions = 3,
  kPartitionsOf = 4,
  kProduce = 5,
  kProduceToPartition = 6,
  kProduceBatch = 7,
  kSubscribe = 8,
  kUnsubscribe = 9,
  // kPoll responses carry [revoked tps][assigned tps][messages] plus an
  // optional trailing varint64 backlog hint (Bus::BacklogHint at the
  // server). Decoders written before the hint stop early and ignore it;
  // decoders that know it treat absence as "no hint".
  kPoll = 10,
  kFetch = 11,
  kCommit = 12,
  kSeek = 13,
  kEndOffset = 14,
  kBaseOffset = 15,
  kKillConsumer = 16,
  kWakeConsumer = 17,
  kWake = 18,
  kAssignmentOf = 19,
  kCheckLiveness = 20,
  kRebalanceCount = 21,

  // Columnar batch frames (PR 7). Same request payloads as kPoll /
  // kProduceBatch but message data travels as per-column contiguous
  // arrays (see PutColumnarMessageList / PutColumnarProduceBatch), and a
  // kPollColumnar response is decoded zero-copy into Slice views over
  // the pooled receive buffer. Negotiation rides the unknown-opcode
  // fallback: a server predating these opcodes answers NotSupported and
  // the client permanently downgrades to the row forms.
  kPollColumnar = 22,
  kProduceColumnar = 23,

  // Trace-context negotiation (PR 9). An empty-payload hello: a server
  // that understands the optional trace trailer appended after produce
  // payloads answers OK; older servers answer NotSupported through the
  // unknown-opcode fallback and the client never appends trailers. The
  // trailer itself is trace::kTraceTrailerSize checksummed bytes after
  // the last record of kProduceBatch / kProduceColumnar (decoders parse
  // front-to-back, so peers that predate it skip it untouched).
  kTraceHello = 24,

  // Live subscriptions (src/ops/subscription.h), answered by the
  // BusServer's extension handler. Payloads are defined in
  // ops/sub_wire.h; servers predating them answer NotSupported through
  // the unknown-opcode fallback and the client sticky-downgrades
  // (api::Client::Subscribe returns NotSupported thereafter).
  kSubCreate = 40,
  kSubFetch = 41,
  kSubCancel = 42,

  // Metadata-service RPCs (src/meta/), answered by the BusServer's
  // extension handler rather than the hosted bus. Opcodes stay below
  // kResponseBit so the response-bit convention holds.
  kMetaAnnounce = 32,
  kMetaHeartbeat = 33,
  kMetaLeave = 34,
  kMetaGetView = 35,
  kMetaGetStream = 36,
  kMetaListStreams = 37,
};

struct Frame {
  uint64_t correlation_id = 0;
  uint8_t opcode = 0;
  std::string payload;
};

// Zero-copy variant: the payload is a view into storage the caller owns
// (a pooled receive buffer, or the request body an Encode produced).
struct FrameView {
  uint64_t correlation_id = 0;
  uint8_t opcode = 0;
  Slice payload;
};

// Appends the full wire encoding (header + body) of one frame.
void EncodeFrame(const Frame& frame, std::string* out);

// Parses one frame from *in, advancing past it on success.
Status DecodeFrame(Slice* in, Frame* out);

// Validates and parses a frame body whose header was already consumed
// (the socket path reads header and body separately).
Status DecodeBody(const Slice& body, uint32_t masked_crc, Frame* out);

// Reads exactly one frame off a blocking socket: header, bounds check,
// body, checksum. Unavailable for transport failures, Corruption for
// framing violations (after which the stream cannot be trusted).
Status ReadFrame(Socket* sock, Frame* out);

// Like DecodeBody but without copying the payload: *out views into
// `body`, which must stay alive while *out is used.
Status DecodeBodyView(const Slice& body, uint32_t masked_crc,
                      FrameView* out);

// Zero-copy ReadFrame: the body lands in a buffer leased from *pool and
// *out views into it. The caller keeps *buffer alive for as long as any
// view derived from *out is; dropping the last ref recycles the buffer.
Status ReadFramePooled(Socket* sock, BufferPool* pool, BufferRef* buffer,
                       FrameView* out);

// ----- Payload building blocks shared by RemoteBus and BusServer -----

void PutStatus(std::string* out, const Status& status);
bool GetStatus(Slice* in, Status* status);

void PutTopicPartition(std::string* out, const TopicPartition& tp);
bool GetTopicPartition(Slice* in, TopicPartition* tp);

void PutTopicPartitionList(std::string* out,
                           const std::vector<TopicPartition>& tps);
bool GetTopicPartitionList(Slice* in, std::vector<TopicPartition>* tps);

void PutWireMessage(std::string* out, const Message& message);
bool GetWireMessage(Slice* in, Message* message);

void PutWireMessageList(std::string* out,
                        const std::vector<Message>& messages);
bool GetWireMessageList(Slice* in, std::vector<Message>* messages);

// Zero-copy decoders of the row wire forms: views point into *in's
// underlying storage, which must outlive them.
bool GetWireMessageView(Slice* in, MessageView* view);
// Appends decoded views to out->mutable_views() (does not Clear).
bool GetWireMessageListViews(Slice* in, MessageBatch* out);

// ----- Columnar batch forms (kPollColumnar / kProduceColumnar) -----
//
// A columnar message list groups consecutive messages sharing
// (topic, partition) — preserving global order — and transposes each
// group into per-column arrays:
//
//   varint32 ngroups
//   per group: [len-prefixed topic][varint32 partition][varint32 n]
//     [varint64 offset_0][(n-1) x varsint64 offset delta]
//     [varsint64 publish_0][(n-1) x varsint64 delta]
//     [varsint64 visible_0][(n-1) x varsint64 delta]
//     [n x varint32 key_len][concatenated key bytes]
//     [n x varint32 payload_len][concatenated payload bytes]
//
// Every length is validated against the remaining input before any
// array is walked; mismatched column lengths fail the decode (mapped to
// Corruption by callers), never read out of bounds.
void PutColumnarMessageList(std::string* out,
                            const std::vector<Message>& messages);
// Appends zero-copy views into out (topic shared per group). Storage
// behind *in must outlive the batch's views.
bool GetColumnarMessageList(Slice* in, MessageBatch* out);

// Columnar produce payload: [len-prefixed topic][varint32 n]
//   [n x varint32 key_len][key bytes][n x varint32 payload_len][bytes].
void PutColumnarProduceBatch(std::string* out, const std::string& topic,
                             const std::vector<ProduceRecord>& records);
bool GetColumnarProduceBatch(Slice* in, std::string* topic,
                             std::vector<ProduceRecord>* records);

}  // namespace railgun::msg::remote

#endif  // RAILGUN_MSG_REMOTE_WIRE_H_
