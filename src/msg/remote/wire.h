// Binary wire protocol of the remote message bus. One RPC = one request
// frame from client to server and one response frame back, matched by
// correlation id (the client may multiplex connections, the server
// answers in request order per connection).
//
// Frame layout (all integers little-endian / LEB128 varints from
// common/coding):
//
//   [fixed32 body_len][fixed32 masked crc32c(body)][body]
//   body = [varint64 correlation_id][u8 opcode][payload]
//
// Response frames reuse the request opcode with kResponseBit set, and
// their payload always starts with an encoded Status; RPC-specific
// result fields follow only when that status is OK. Decoders return
// Status::Corruption for truncated frames, oversized bodies, checksum
// mismatches and malformed payloads — never crash, never trust lengths.
#ifndef RAILGUN_MSG_REMOTE_WIRE_H_
#define RAILGUN_MSG_REMOTE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "msg/message.h"
#include "msg/remote/socket.h"

namespace railgun::msg::remote {

// Frames larger than this are rejected as corrupt: nothing the bus
// exchanges legitimately approaches it, and it bounds what a broken (or
// hostile) peer can make the other side allocate.
constexpr uint32_t kMaxFrameBody = 64u << 20;

constexpr size_t kFrameHeaderSize = 8;  // body_len + masked crc.

constexpr uint8_t kResponseBit = 0x80;

enum class OpCode : uint8_t {
  kCreateTopic = 1,
  kDeleteTopic = 2,
  kNumPartitions = 3,
  kPartitionsOf = 4,
  kProduce = 5,
  kProduceToPartition = 6,
  kProduceBatch = 7,
  kSubscribe = 8,
  kUnsubscribe = 9,
  // kPoll responses carry [revoked tps][assigned tps][messages] plus an
  // optional trailing varint64 backlog hint (Bus::BacklogHint at the
  // server). Decoders written before the hint stop early and ignore it;
  // decoders that know it treat absence as "no hint".
  kPoll = 10,
  kFetch = 11,
  kCommit = 12,
  kSeek = 13,
  kEndOffset = 14,
  kBaseOffset = 15,
  kKillConsumer = 16,
  kWakeConsumer = 17,
  kWake = 18,
  kAssignmentOf = 19,
  kCheckLiveness = 20,
  kRebalanceCount = 21,

  // Metadata-service RPCs (src/meta/), answered by the BusServer's
  // extension handler rather than the hosted bus. Opcodes stay below
  // kResponseBit so the response-bit convention holds.
  kMetaAnnounce = 32,
  kMetaHeartbeat = 33,
  kMetaLeave = 34,
  kMetaGetView = 35,
  kMetaGetStream = 36,
  kMetaListStreams = 37,
};

struct Frame {
  uint64_t correlation_id = 0;
  uint8_t opcode = 0;
  std::string payload;
};

// Appends the full wire encoding (header + body) of one frame.
void EncodeFrame(const Frame& frame, std::string* out);

// Parses one frame from *in, advancing past it on success.
Status DecodeFrame(Slice* in, Frame* out);

// Validates and parses a frame body whose header was already consumed
// (the socket path reads header and body separately).
Status DecodeBody(const Slice& body, uint32_t masked_crc, Frame* out);

// Reads exactly one frame off a blocking socket: header, bounds check,
// body, checksum. Unavailable for transport failures, Corruption for
// framing violations (after which the stream cannot be trusted).
Status ReadFrame(Socket* sock, Frame* out);

// ----- Payload building blocks shared by RemoteBus and BusServer -----

void PutStatus(std::string* out, const Status& status);
bool GetStatus(Slice* in, Status* status);

void PutTopicPartition(std::string* out, const TopicPartition& tp);
bool GetTopicPartition(Slice* in, TopicPartition* tp);

void PutTopicPartitionList(std::string* out,
                           const std::vector<TopicPartition>& tps);
bool GetTopicPartitionList(Slice* in, std::vector<TopicPartition>* tps);

void PutWireMessage(std::string* out, const Message& message);
bool GetWireMessage(Slice* in, Message* message);

void PutWireMessageList(std::string* out,
                        const std::vector<Message>& messages);
bool GetWireMessageList(Slice* in, std::vector<Message>* messages);

}  // namespace railgun::msg::remote

#endif  // RAILGUN_MSG_REMOTE_WIRE_H_
