#include "msg/remote/wire.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace railgun::msg::remote {

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string body;
  PutVarint64(&body, frame.correlation_id);
  body.push_back(static_cast<char>(frame.opcode));
  body.append(frame.payload);

  PutFixed32(out, static_cast<uint32_t>(body.size()));
  PutFixed32(out, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  out->append(body);
}

Status DecodeBody(const Slice& body, uint32_t masked_crc, Frame* out) {
  const uint32_t expected = crc32c::Unmask(masked_crc);
  if (crc32c::Value(body.data(), body.size()) != expected) {
    return Status::Corruption("frame checksum mismatch");
  }
  Slice in = body;
  if (!GetVarint64(&in, &out->correlation_id) || in.empty()) {
    return Status::Corruption("truncated frame body");
  }
  out->opcode = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  out->payload.assign(in.data(), in.size());
  return Status::OK();
}

Status ReadFrame(Socket* sock, Frame* out) {
  char header[kFrameHeaderSize];
  RAILGUN_RETURN_IF_ERROR(sock->RecvAll(header, sizeof(header)));
  const uint32_t body_len = DecodeFixed32(header);
  const uint32_t masked_crc = DecodeFixed32(header + 4);
  if (body_len > kMaxFrameBody) {
    return Status::Corruption("oversized frame body");
  }
  std::string body(body_len, '\0');
  RAILGUN_RETURN_IF_ERROR(sock->RecvAll(body.data(), body.size()));
  return DecodeBody(Slice(body), masked_crc, out);
}

Status DecodeFrame(Slice* in, Frame* out) {
  if (in->size() < kFrameHeaderSize) {
    return Status::Corruption("truncated frame header");
  }
  uint32_t body_len, masked_crc;
  GetFixed32(in, &body_len);
  GetFixed32(in, &masked_crc);
  if (body_len > kMaxFrameBody) {
    return Status::Corruption("oversized frame body");
  }
  if (in->size() < body_len) {
    return Status::Corruption("truncated frame body");
  }
  const Slice body(in->data(), body_len);
  in->remove_prefix(body_len);
  return DecodeBody(body, masked_crc, out);
}

void PutStatus(std::string* out, const Status& status) {
  PutVarint32(out, static_cast<uint32_t>(status.code()));
  PutLengthPrefixedSlice(out, status.message());
}

bool GetStatus(Slice* in, Status* status) {
  uint32_t code;
  Slice message;
  if (!GetVarint32(in, &code) || !GetLengthPrefixedSlice(in, &message)) {
    return false;
  }
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) return false;
  *status = Status(static_cast<StatusCode>(code), message.ToString());
  return true;
}

void PutTopicPartition(std::string* out, const TopicPartition& tp) {
  PutLengthPrefixedSlice(out, tp.topic);
  PutVarint32(out, static_cast<uint32_t>(tp.partition));
}

bool GetTopicPartition(Slice* in, TopicPartition* tp) {
  Slice topic;
  uint32_t partition;
  if (!GetLengthPrefixedSlice(in, &topic) || !GetVarint32(in, &partition) ||
      partition > static_cast<uint32_t>(INT32_MAX)) {
    return false;
  }
  tp->topic = topic.ToString();
  tp->partition = static_cast<int>(partition);
  return true;
}

void PutTopicPartitionList(std::string* out,
                           const std::vector<TopicPartition>& tps) {
  PutVarint32(out, static_cast<uint32_t>(tps.size()));
  for (const auto& tp : tps) PutTopicPartition(out, tp);
}

bool GetTopicPartitionList(Slice* in, std::vector<TopicPartition>* tps) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  tps->clear();
  for (uint32_t i = 0; i < n; ++i) {
    TopicPartition tp;
    if (!GetTopicPartition(in, &tp)) return false;
    tps->push_back(std::move(tp));
  }
  return true;
}

void PutWireMessage(std::string* out, const Message& message) {
  PutLengthPrefixedSlice(out, message.topic);
  PutVarint32(out, static_cast<uint32_t>(message.partition));
  PutVarint64(out, message.offset);
  PutLengthPrefixedSlice(out, message.key);
  PutLengthPrefixedSlice(out, message.payload);
  PutVarsint64(out, message.publish_time);
  PutVarsint64(out, message.visible_time);
}

bool GetWireMessage(Slice* in, Message* message) {
  Slice topic, key, payload;
  uint32_t partition;
  if (!GetLengthPrefixedSlice(in, &topic) || !GetVarint32(in, &partition) ||
      partition > static_cast<uint32_t>(INT32_MAX) ||
      !GetVarint64(in, &message->offset) ||
      !GetLengthPrefixedSlice(in, &key) ||
      !GetLengthPrefixedSlice(in, &payload) ||
      !GetVarsint64(in, &message->publish_time) ||
      !GetVarsint64(in, &message->visible_time)) {
    return false;
  }
  message->topic = topic.ToString();
  message->partition = static_cast<int>(partition);
  message->key = key.ToString();
  message->payload = payload.ToString();
  return true;
}

void PutWireMessageList(std::string* out,
                        const std::vector<Message>& messages) {
  PutVarint32(out, static_cast<uint32_t>(messages.size()));
  for (const auto& message : messages) PutWireMessage(out, message);
}

bool GetWireMessageList(Slice* in, std::vector<Message>* messages) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  messages->clear();
  for (uint32_t i = 0; i < n; ++i) {
    Message message;
    if (!GetWireMessage(in, &message)) return false;
    messages->push_back(std::move(message));
  }
  return true;
}

}  // namespace railgun::msg::remote
