#include "msg/remote/wire.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace railgun::msg::remote {

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string body;
  PutVarint64(&body, frame.correlation_id);
  body.push_back(static_cast<char>(frame.opcode));
  body.append(frame.payload);

  PutFixed32(out, static_cast<uint32_t>(body.size()));
  PutFixed32(out, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  out->append(body);
}

Status DecodeBody(const Slice& body, uint32_t masked_crc, Frame* out) {
  const uint32_t expected = crc32c::Unmask(masked_crc);
  if (crc32c::Value(body.data(), body.size()) != expected) {
    return Status::Corruption("frame checksum mismatch");
  }
  Slice in = body;
  if (!GetVarint64(&in, &out->correlation_id) || in.empty()) {
    return Status::Corruption("truncated frame body");
  }
  out->opcode = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  out->payload.assign(in.data(), in.size());
  return Status::OK();
}

Status ReadFrame(Socket* sock, Frame* out) {
  char header[kFrameHeaderSize];
  RAILGUN_RETURN_IF_ERROR(sock->RecvAll(header, sizeof(header)));
  const uint32_t body_len = DecodeFixed32(header);
  const uint32_t masked_crc = DecodeFixed32(header + 4);
  if (body_len > kMaxFrameBody) {
    return Status::Corruption("oversized frame body");
  }
  std::string body(body_len, '\0');
  RAILGUN_RETURN_IF_ERROR(sock->RecvAll(body.data(), body.size()));
  return DecodeBody(Slice(body), masked_crc, out);
}

Status DecodeBodyView(const Slice& body, uint32_t masked_crc,
                      FrameView* out) {
  const uint32_t expected = crc32c::Unmask(masked_crc);
  if (crc32c::Value(body.data(), body.size()) != expected) {
    return Status::Corruption("frame checksum mismatch");
  }
  Slice in = body;
  if (!GetVarint64(&in, &out->correlation_id) || in.empty()) {
    return Status::Corruption("truncated frame body");
  }
  out->opcode = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  out->payload = in;
  return Status::OK();
}

Status ReadFramePooled(Socket* sock, BufferPool* pool, BufferRef* buffer,
                       FrameView* out) {
  char header[kFrameHeaderSize];
  RAILGUN_RETURN_IF_ERROR(sock->RecvAll(header, sizeof(header)));
  const uint32_t body_len = DecodeFixed32(header);
  const uint32_t masked_crc = DecodeFixed32(header + 4);
  if (body_len > kMaxFrameBody) {
    return Status::Corruption("oversized frame body");
  }
  *buffer = pool->Acquire(body_len);
  RAILGUN_RETURN_IF_ERROR(sock->RecvAll((*buffer)->data(), body_len));
  return DecodeBodyView((*buffer)->slice(), masked_crc, out);
}

Status DecodeFrame(Slice* in, Frame* out) {
  if (in->size() < kFrameHeaderSize) {
    return Status::Corruption("truncated frame header");
  }
  uint32_t body_len, masked_crc;
  GetFixed32(in, &body_len);
  GetFixed32(in, &masked_crc);
  if (body_len > kMaxFrameBody) {
    return Status::Corruption("oversized frame body");
  }
  if (in->size() < body_len) {
    return Status::Corruption("truncated frame body");
  }
  const Slice body(in->data(), body_len);
  in->remove_prefix(body_len);
  return DecodeBody(body, masked_crc, out);
}

void PutStatus(std::string* out, const Status& status) {
  PutVarint32(out, static_cast<uint32_t>(status.code()));
  PutLengthPrefixedSlice(out, status.message());
}

bool GetStatus(Slice* in, Status* status) {
  uint32_t code;
  Slice message;
  if (!GetVarint32(in, &code) || !GetLengthPrefixedSlice(in, &message)) {
    return false;
  }
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) return false;
  *status = Status(static_cast<StatusCode>(code), message.ToString());
  return true;
}

void PutTopicPartition(std::string* out, const TopicPartition& tp) {
  PutLengthPrefixedSlice(out, tp.topic);
  PutVarint32(out, static_cast<uint32_t>(tp.partition));
}

bool GetTopicPartition(Slice* in, TopicPartition* tp) {
  Slice topic;
  uint32_t partition;
  if (!GetLengthPrefixedSlice(in, &topic) || !GetVarint32(in, &partition) ||
      partition > static_cast<uint32_t>(INT32_MAX)) {
    return false;
  }
  tp->topic = topic.ToString();
  tp->partition = static_cast<int>(partition);
  return true;
}

void PutTopicPartitionList(std::string* out,
                           const std::vector<TopicPartition>& tps) {
  PutVarint32(out, static_cast<uint32_t>(tps.size()));
  for (const auto& tp : tps) PutTopicPartition(out, tp);
}

bool GetTopicPartitionList(Slice* in, std::vector<TopicPartition>* tps) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  tps->clear();
  for (uint32_t i = 0; i < n; ++i) {
    TopicPartition tp;
    if (!GetTopicPartition(in, &tp)) return false;
    tps->push_back(std::move(tp));
  }
  return true;
}

void PutWireMessage(std::string* out, const Message& message) {
  PutLengthPrefixedSlice(out, message.topic);
  PutVarint32(out, static_cast<uint32_t>(message.partition));
  PutVarint64(out, message.offset);
  PutLengthPrefixedSlice(out, message.key);
  PutLengthPrefixedSlice(out, message.payload);
  PutVarsint64(out, message.publish_time);
  PutVarsint64(out, message.visible_time);
}

bool GetWireMessage(Slice* in, Message* message) {
  Slice topic, key, payload;
  uint32_t partition;
  if (!GetLengthPrefixedSlice(in, &topic) || !GetVarint32(in, &partition) ||
      partition > static_cast<uint32_t>(INT32_MAX) ||
      !GetVarint64(in, &message->offset) ||
      !GetLengthPrefixedSlice(in, &key) ||
      !GetLengthPrefixedSlice(in, &payload) ||
      !GetVarsint64(in, &message->publish_time) ||
      !GetVarsint64(in, &message->visible_time)) {
    return false;
  }
  message->topic = topic.ToString();
  message->partition = static_cast<int>(partition);
  message->key = key.ToString();
  message->payload = payload.ToString();
  return true;
}

void PutWireMessageList(std::string* out,
                        const std::vector<Message>& messages) {
  PutVarint32(out, static_cast<uint32_t>(messages.size()));
  for (const auto& message : messages) PutWireMessage(out, message);
}

bool GetWireMessageList(Slice* in, std::vector<Message>* messages) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  messages->clear();
  for (uint32_t i = 0; i < n; ++i) {
    Message message;
    if (!GetWireMessage(in, &message)) return false;
    messages->push_back(std::move(message));
  }
  return true;
}

bool GetWireMessageView(Slice* in, MessageView* view) {
  uint32_t partition;
  if (!GetLengthPrefixedSlice(in, &view->topic) ||
      !GetVarint32(in, &partition) ||
      partition > static_cast<uint32_t>(INT32_MAX) ||
      !GetVarint64(in, &view->offset) ||
      !GetLengthPrefixedSlice(in, &view->key) ||
      !GetLengthPrefixedSlice(in, &view->payload) ||
      !GetVarsint64(in, &view->publish_time) ||
      !GetVarsint64(in, &view->visible_time)) {
    return false;
  }
  view->partition = static_cast<int>(partition);
  return true;
}

bool GetWireMessageListViews(Slice* in, MessageBatch* out) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  std::vector<MessageView>* views = out->mutable_views();
  views->reserve(views->size() + n);
  for (uint32_t i = 0; i < n; ++i) {
    MessageView view;
    if (!GetWireMessageView(in, &view)) return false;
    views->push_back(view);
  }
  return true;
}

namespace {

// Reads n varint32 column lengths, then carves the concatenated bytes
// region that follows into *columns. Fails (without reading past the
// input) when the lengths overrun what's left — the column-length
// mismatch case of the fuzz suite.
bool GetByteColumn(Slice* in, uint32_t n, std::vector<Slice>* columns) {
  columns->clear();
  columns->reserve(n);
  size_t total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t len;
    if (!GetVarint32(in, &len)) return false;
    if (len > in->size()) return false;
    total += len;
    if (total > in->size()) return false;
    columns->push_back(Slice(nullptr, len));  // Length now, data below.
  }
  if (total > in->size()) return false;
  const char* base = in->data();
  for (uint32_t i = 0; i < n; ++i) {
    const size_t len = (*columns)[i].size();
    (*columns)[i] = Slice(base, len);
    base += len;
  }
  in->remove_prefix(total);
  return true;
}

}  // namespace

void PutColumnarMessageList(std::string* out,
                            const std::vector<Message>& messages) {
  // Count runs of consecutive (topic, partition).
  uint32_t ngroups = 0;
  for (size_t i = 0; i < messages.size(); ++i) {
    if (i == 0 || messages[i].topic != messages[i - 1].topic ||
        messages[i].partition != messages[i - 1].partition) {
      ++ngroups;
    }
  }
  PutVarint32(out, ngroups);
  size_t start = 0;
  while (start < messages.size()) {
    size_t end = start + 1;
    while (end < messages.size() &&
           messages[end].topic == messages[start].topic &&
           messages[end].partition == messages[start].partition) {
      ++end;
    }
    const uint32_t n = static_cast<uint32_t>(end - start);
    PutLengthPrefixedSlice(out, messages[start].topic);
    PutVarint32(out, static_cast<uint32_t>(messages[start].partition));
    PutVarint32(out, n);
    PutVarint64(out, messages[start].offset);
    for (size_t i = start + 1; i < end; ++i) {
      PutVarsint64(out, static_cast<int64_t>(messages[i].offset) -
                            static_cast<int64_t>(messages[i - 1].offset));
    }
    PutVarsint64(out, messages[start].publish_time);
    for (size_t i = start + 1; i < end; ++i) {
      PutVarsint64(out,
                   messages[i].publish_time - messages[i - 1].publish_time);
    }
    PutVarsint64(out, messages[start].visible_time);
    for (size_t i = start + 1; i < end; ++i) {
      PutVarsint64(out,
                   messages[i].visible_time - messages[i - 1].visible_time);
    }
    for (size_t i = start; i < end; ++i) {
      PutVarint32(out, static_cast<uint32_t>(messages[i].key.size()));
    }
    for (size_t i = start; i < end; ++i) out->append(messages[i].key);
    for (size_t i = start; i < end; ++i) {
      PutVarint32(out, static_cast<uint32_t>(messages[i].payload.size()));
    }
    for (size_t i = start; i < end; ++i) out->append(messages[i].payload);
    start = end;
  }
}

bool GetColumnarMessageList(Slice* in, MessageBatch* out) {
  uint32_t ngroups;
  if (!GetVarint32(in, &ngroups)) return false;
  // Each group needs at least a topic length byte, partition, count and
  // one message; bound ngroups by what could possibly fit.
  if (ngroups > in->size()) return false;
  std::vector<MessageView>* views = out->mutable_views();
  std::vector<Slice> keys, payloads;
  for (uint32_t g = 0; g < ngroups; ++g) {
    Slice topic;
    uint32_t partition, n;
    if (!GetLengthPrefixedSlice(in, &topic) || !GetVarint32(in, &partition) ||
        partition > static_cast<uint32_t>(INT32_MAX) ||
        !GetVarint32(in, &n) || n == 0 || n > in->size()) {
      return false;
    }
    uint64_t offset;
    Micros publish = 0, visible = 0;
    if (!GetVarint64(in, &offset)) return false;
    std::vector<MessageView> group(n);
    group[0].offset = offset;
    for (uint32_t i = 1; i < n; ++i) {
      int64_t delta;
      if (!GetVarsint64(in, &delta)) return false;
      offset = static_cast<uint64_t>(static_cast<int64_t>(offset) + delta);
      group[i].offset = offset;
    }
    if (!GetVarsint64(in, &publish)) return false;
    group[0].publish_time = publish;
    for (uint32_t i = 1; i < n; ++i) {
      int64_t delta;
      if (!GetVarsint64(in, &delta)) return false;
      publish += delta;
      group[i].publish_time = publish;
    }
    if (!GetVarsint64(in, &visible)) return false;
    group[0].visible_time = visible;
    for (uint32_t i = 1; i < n; ++i) {
      int64_t delta;
      if (!GetVarsint64(in, &delta)) return false;
      visible += delta;
      group[i].visible_time = visible;
    }
    if (!GetByteColumn(in, n, &keys)) return false;
    if (!GetByteColumn(in, n, &payloads)) return false;
    views->reserve(views->size() + n);
    for (uint32_t i = 0; i < n; ++i) {
      group[i].topic = topic;
      group[i].partition = static_cast<int>(partition);
      group[i].key = keys[i];
      group[i].payload = payloads[i];
      views->push_back(group[i]);
    }
  }
  return true;
}

void PutColumnarProduceBatch(std::string* out, const std::string& topic,
                             const std::vector<ProduceRecord>& records) {
  PutLengthPrefixedSlice(out, topic);
  PutVarint32(out, static_cast<uint32_t>(records.size()));
  for (const auto& record : records) {
    PutVarint32(out, static_cast<uint32_t>(record.key.size()));
  }
  for (const auto& record : records) out->append(record.key);
  for (const auto& record : records) {
    PutVarint32(out, static_cast<uint32_t>(record.payload.size()));
  }
  for (const auto& record : records) out->append(record.payload);
}

bool GetColumnarProduceBatch(Slice* in, std::string* topic,
                             std::vector<ProduceRecord>* records) {
  Slice topic_slice;
  uint32_t n;
  if (!GetLengthPrefixedSlice(in, &topic_slice) || !GetVarint32(in, &n) ||
      n > in->size()) {
    return false;
  }
  *topic = topic_slice.ToString();
  std::vector<Slice> keys, payloads;
  if (!GetByteColumn(in, n, &keys)) return false;
  if (!GetByteColumn(in, n, &payloads)) return false;
  records->clear();
  records->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ProduceRecord record;
    record.key = keys[i].ToString();
    record.payload = payloads[i].ToString();
    records->push_back(std::move(record));
  }
  return true;
}

}  // namespace railgun::msg::remote
