// Capped exponential backoff with jitter for lazy reconnects, shared
// by every client-side stub that dials a BusServer (RemoteBus
// connections, meta::MetaClient): the first failed dial backs off for
// `min_backoff`, doubling per consecutive failure up to `max_backoff`,
// plus up to +25% jitter so a fleet of clients doesn't re-dial a
// recovering broker in lockstep. While inside the window, callers fail
// fast without touching the network.
//
// Not thread-safe: guard with the owning connection's mutex.
#ifndef RAILGUN_MSG_REMOTE_BACKOFF_H_
#define RAILGUN_MSG_REMOTE_BACKOFF_H_

#include "common/clock.h"
#include "common/random.h"

namespace railgun::msg::remote {

class ReconnectBackoff {
 public:
  ReconnectBackoff(Micros min_backoff, Micros max_backoff)
      : min_backoff_(min_backoff),
        max_backoff_(max_backoff),
        // Seeded per instance so independent clients draw distinct
        // jitter sequences.
        jitter_(0x9e3779b97f4a7c15ull ^
                reinterpret_cast<uint64_t>(this)) {}

  // True when a dial may go out (i.e. the window elapsed).
  bool CanDial(Micros now) const { return now >= next_dial_at_; }

  void RecordFailure(Micros now) {
    const int failures = ++consecutive_failures_;
    Micros backoff = min_backoff_;
    for (int i = 1; i < failures && backoff < max_backoff_; ++i) {
      backoff *= 2;
    }
    if (backoff > max_backoff_) backoff = max_backoff_;
    if (backoff > 0) {
      backoff += static_cast<Micros>(
          jitter_.Uniform(static_cast<uint64_t>(backoff) / 4 + 1));
    }
    next_dial_at_ = now + backoff;
  }

  void RecordSuccess() {
    consecutive_failures_ = 0;
    next_dial_at_ = 0;
  }

  // User-initiated connects skip any pending window.
  void Clear() { next_dial_at_ = 0; }

 private:
  Micros min_backoff_;
  Micros max_backoff_;
  Random64 jitter_;
  int consecutive_failures_ = 0;
  Micros next_dial_at_ = 0;
};

}  // namespace railgun::msg::remote

#endif  // RAILGUN_MSG_REMOTE_BACKOFF_H_
