#include "msg/remote/remote_bus.h"

#include <algorithm>
#include <utility>

#include "common/coding.h"
#include "trace/tracer.h"

namespace railgun::msg::remote {

RemoteBus::RemoteBus(const RemoteBusOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Default()) {
  address_status_ = ParseAddress(options_.address, &host_, &port_);
}

RemoteBus::~RemoteBus() {
  MutexLock lock(&mu_);
  for (auto& [key, conn] : conns_) {
    MutexLock conn_lock(&conn->mu);
    conn->sock.Close();
  }
}

Status RemoteBus::Connect() {
  RAILGUN_RETURN_IF_ERROR(address_status_);
  auto conn = ConnFor("");
  MutexLock lock(&conn->mu);
  // An explicit Connect is user-initiated: skip any backoff window.
  conn->backoff.Clear();
  return EnsureConnectedLocked(conn.get());
}

std::shared_ptr<RemoteBus::Conn> RemoteBus::ConnFor(
    const std::string& key) const {
  MutexLock lock(&mu_);
  auto& conn = conns_[key];
  if (conn == nullptr) conn = std::make_shared<Conn>(options_);
  return conn;
}

Status RemoteBus::EnsureConnectedLocked(Conn* conn) const {
  if (conn->connected) return Status::OK();
  const Micros now = clock_->NowMicros();
  if (!conn->backoff.CanDial(now)) {
    // Inside the backoff window: fail fast without touching the
    // network, so poll loops retrying every few milliseconds don't
    // hammer a dead (or recovering) broker with SYNs.
    return Status::Unavailable("broker unreachable: " + options_.address +
                               " (reconnect backing off)");
  }
  dial_attempts_.fetch_add(1, std::memory_order_relaxed);
  auto sock = Socket::Connect(host_, port_);
  if (!sock.ok()) {
    // Re-read the clock: a blackholed peer can block connect() for far
    // longer than the backoff window, and anchoring at the pre-dial
    // time would put the whole window in the past.
    conn->backoff.RecordFailure(clock_->NowMicros());
    return sock.status();
  }
  conn->sock = std::move(sock).value();
  conn->connected = true;
  conn->backoff.RecordSuccess();
  return Status::OK();
}

Status RemoteBus::CallOpcode(uint8_t opcode, const std::string& payload,
                             std::string* result) {
  return CallControl(static_cast<OpCode>(opcode), payload, result);
}

Status RemoteBus::Call(const std::shared_ptr<Conn>& conn, OpCode opcode,
                       const std::string& payload,
                       std::string* result) const {
  BufferRef buffer;
  Slice in;
  RAILGUN_RETURN_IF_ERROR(CallView(conn, opcode, payload, &buffer, &in));
  if (result != nullptr) result->assign(in.data(), in.size());
  return Status::OK();
}

Status RemoteBus::CallView(const std::shared_ptr<Conn>& conn, OpCode opcode,
                           const std::string& payload, BufferRef* buffer,
                           Slice* result) const {
  RAILGUN_RETURN_IF_ERROR(address_status_);
  MutexLock lock(&conn->mu);
  RAILGUN_RETURN_IF_ERROR(EnsureConnectedLocked(conn.get()));

  Frame request;
  request.correlation_id = conn->next_correlation++;
  request.opcode = static_cast<uint8_t>(opcode);
  request.payload = payload;
  std::string encoded;
  EncodeFrame(request, &encoded);

  auto fail = [&conn](Status status) {
    conn->sock.Close();
    conn->connected = false;
    return status;
  };

  Status sent = conn->sock.SendAll(encoded.data(), encoded.size());
  if (!sent.ok()) return fail(std::move(sent));

  FrameView response;
  Status received = ReadFramePooled(&conn->sock, &pool_, buffer, &response);
  if (!received.ok()) return fail(std::move(received));
  if (response.correlation_id != request.correlation_id ||
      response.opcode != (request.opcode | kResponseBit)) {
    return fail(Status::Corruption("response does not match request"));
  }

  Slice in = response.payload;
  Status remote;
  if (!GetStatus(&in, &remote)) {
    return fail(Status::Corruption("malformed response status"));
  }
  RAILGUN_RETURN_IF_ERROR(remote);
  *result = in;
  return Status::OK();
}

Status RemoteBus::CallControl(OpCode opcode, const std::string& payload,
                              std::string* result) const {
  return Call(ConnFor(""), opcode, payload, result);
}

// --- Topic administration --------------------------------------------

Status RemoteBus::CreateTopic(const std::string& topic, int partitions) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, topic);
  PutVarint32(&payload, static_cast<uint32_t>(std::max(partitions, 0)));
  return CallControl(OpCode::kCreateTopic, payload, nullptr);
}

Status RemoteBus::DeleteTopic(const std::string& topic) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, topic);
  return CallControl(OpCode::kDeleteTopic, payload, nullptr);
}

StatusOr<int> RemoteBus::NumPartitions(const std::string& topic) const {
  std::string payload, result;
  PutLengthPrefixedSlice(&payload, topic);
  RAILGUN_RETURN_IF_ERROR(
      CallControl(OpCode::kNumPartitions, payload, &result));
  Slice in(result);
  uint32_t n;
  if (!GetVarint32(&in, &n)) {
    return Status::Corruption("malformed NumPartitions response");
  }
  return static_cast<int>(n);
}

std::vector<TopicPartition> RemoteBus::PartitionsOf(
    const std::string& topic) const {
  std::string payload, result;
  PutLengthPrefixedSlice(&payload, topic);
  std::vector<TopicPartition> tps;
  if (!CallControl(OpCode::kPartitionsOf, payload, &result).ok()) return tps;
  Slice in(result);
  GetTopicPartitionList(&in, &tps);
  return tps;
}

// --- Producing -------------------------------------------------------

StatusOr<uint64_t> RemoteBus::Produce(const std::string& topic,
                                      const std::string& key,
                                      std::string payload_bytes) {
  std::string payload, result;
  PutLengthPrefixedSlice(&payload, topic);
  PutLengthPrefixedSlice(&payload, key);
  PutLengthPrefixedSlice(&payload, payload_bytes);
  RAILGUN_RETURN_IF_ERROR(CallControl(OpCode::kProduce, payload, &result));
  Slice in(result);
  uint64_t offset;
  if (!GetVarint64(&in, &offset)) {
    return Status::Corruption("malformed Produce response");
  }
  return offset;
}

StatusOr<uint64_t> RemoteBus::ProduceToPartition(const std::string& topic,
                                                 int partition,
                                                 std::string key,
                                                 std::string payload_bytes) {
  // Same contract as the in-process bus: never silently reroute a bad
  // partition.
  if (partition < 0) return Status::InvalidArgument("bad partition");
  std::string payload, result;
  PutLengthPrefixedSlice(&payload, topic);
  PutVarint32(&payload, static_cast<uint32_t>(partition));
  PutLengthPrefixedSlice(&payload, key);
  PutLengthPrefixedSlice(&payload, payload_bytes);
  RAILGUN_RETURN_IF_ERROR(
      CallControl(OpCode::kProduceToPartition, payload, &result));
  Slice in(result);
  uint64_t offset;
  if (!GetVarint64(&in, &offset)) {
    return Status::Corruption("malformed Produce response");
  }
  return offset;
}

Status RemoteBus::ProduceBatch(const std::string& topic,
                               std::vector<ProduceRecord> records) {
  // When the producer left a trace context ambient, forward it as a
  // request trailer so the server-side append span joins the trace —
  // but only once the kTraceHello handshake confirmed the server
  // understands trailers.
  trace::TraceContext trace_ctx = trace::CurrentTraceContext();
  if (trace_ctx.valid() && (!trace::Tracer::Global()->enabled() ||
                            !TraceTrailerNegotiated())) {
    trace_ctx = trace::TraceContext();
  }
  if (server_columnar_.load(std::memory_order_relaxed)) {
    std::string payload;
    PutColumnarProduceBatch(&payload, topic, records);
    trace::AppendTraceTrailer(trace_ctx, &payload);
    const Status status =
        CallControl(OpCode::kProduceColumnar, payload, nullptr);
    if (!status.IsNotSupported()) {
      if (status.ok()) {
        columnar_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      return status;
    }
    // Old server: downgrade to row frames for good and retry below
    // (NotSupported means the batch was never applied).
    server_columnar_.store(false, std::memory_order_relaxed);
  }
  std::string payload;
  PutLengthPrefixedSlice(&payload, topic);
  PutVarint32(&payload, static_cast<uint32_t>(records.size()));
  for (const auto& record : records) {
    PutLengthPrefixedSlice(&payload, record.key);
    PutLengthPrefixedSlice(&payload, record.payload);
  }
  trace::AppendTraceTrailer(trace_ctx, &payload);
  return CallControl(OpCode::kProduceBatch, payload, nullptr);
}

bool RemoteBus::TraceTrailerNegotiated() {
  const int state = server_trace_.load(std::memory_order_relaxed);
  if (state != 0) return state > 0;
  const Status hello =
      CallControl(OpCode::kTraceHello, std::string(), nullptr);
  if (hello.ok()) {
    server_trace_.store(1, std::memory_order_relaxed);
    return true;
  }
  if (hello.IsNotSupported()) {
    server_trace_.store(-1, std::memory_order_relaxed);
    return false;
  }
  return false;  // Transport hiccup: stay unknown, retry next produce.
}

// --- Group management ------------------------------------------------

Status RemoteBus::Subscribe(const std::string& consumer_id,
                            const std::string& group,
                            const std::vector<std::string>& topics,
                            const std::string& metadata,
                            AssignmentStrategy* strategy,
                            RebalanceListener listener) {
  (void)strategy;  // Cannot cross the wire; the server default applies.
  std::string payload;
  PutLengthPrefixedSlice(&payload, consumer_id);
  PutLengthPrefixedSlice(&payload, group);
  PutVarint32(&payload, static_cast<uint32_t>(topics.size()));
  for (const auto& topic : topics) PutLengthPrefixedSlice(&payload, topic);
  PutLengthPrefixedSlice(&payload, metadata);
  {
    // Installed before the RPC: the first poll may already carry the
    // initial assignment.
    MutexLock lock(&mu_);
    listeners_[consumer_id] = std::move(listener);
  }
  const Status subscribed = CallControl(OpCode::kSubscribe, payload, nullptr);
  if (!subscribed.ok()) {
    MutexLock lock(&mu_);
    listeners_.erase(consumer_id);
  }
  return subscribed;
}

Status RemoteBus::Unsubscribe(const std::string& consumer_id) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, consumer_id);
  const Status status = CallControl(OpCode::kUnsubscribe, payload, nullptr);
  MutexLock lock(&mu_);
  listeners_.erase(consumer_id);
  conns_.erase(consumer_id);  // Drop the dedicated poll connection.
  return status;
}

// --- Consuming -------------------------------------------------------

Status RemoteBus::Poll(const std::string& consumer_id, size_t max_messages,
                       std::vector<Message>* out, Micros max_wait) {
  // Row-interface adapter over the zero-copy path: exactly one string
  // construction per field, same as the old direct decode.
  out->clear();
  MessageBatch batch;
  RAILGUN_RETURN_IF_ERROR(
      PollBatch(consumer_id, max_messages, &batch, max_wait));
  out->reserve(batch.size());
  for (const MessageView& view : batch.views()) {
    out->push_back(view.ToMessage());
  }
  return Status::OK();
}

void RemoteBus::DeliverRebalance(const std::string& consumer_id,
                                 const std::vector<TopicPartition>& revoked,
                                 const std::vector<TopicPartition>& assigned) {
  if (revoked.empty() && assigned.empty()) return;
  RebalanceListener listener;
  {
    MutexLock lock(&mu_);
    auto it = listeners_.find(consumer_id);
    if (it != listeners_.end()) listener = it->second;
  }
  if (!revoked.empty() && listener.on_revoked) listener.on_revoked(revoked);
  if (!assigned.empty() && listener.on_assigned) {
    listener.on_assigned(assigned);
  }
}

Status RemoteBus::PollBatch(const std::string& consumer_id,
                            size_t max_messages, MessageBatch* out,
                            Micros max_wait) {
  out->Clear();
  std::string payload;
  PutLengthPrefixedSlice(&payload, consumer_id);
  PutVarint64(&payload, max_messages);
  PutVarsint64(&payload, max_wait);
  // The dedicated per-consumer connection lets the server park this
  // poll without stalling control traffic (wakes, produces, commits).
  auto conn = ConnFor(consumer_id);

  if (server_columnar_.load(std::memory_order_relaxed)) {
    BufferRef buffer;
    Slice in;
    const Status called =
        CallView(conn, OpCode::kPollColumnar, payload, &buffer, &in);
    if (called.ok()) {
      std::vector<TopicPartition> revoked, assigned;
      if (!GetTopicPartitionList(&in, &revoked) ||
          !GetTopicPartitionList(&in, &assigned) ||
          !GetColumnarMessageList(&in, out)) {
        out->Clear();
        return Status::Corruption("malformed Poll response");
      }
      out->BorrowBuffer(std::move(buffer));
      uint64_t backlog = 0;
      if (GetVarint64(&in, &backlog)) {
        backlog_hint_.store(backlog, std::memory_order_relaxed);
      }
      columnar_batches_.fetch_add(1, std::memory_order_relaxed);
      DeliverRebalance(consumer_id, revoked, assigned);
      return Status::OK();
    }
    if (!called.IsNotSupported()) return called;
    server_columnar_.store(false, std::memory_order_relaxed);
  }

  BufferRef buffer;
  Slice in;
  RAILGUN_RETURN_IF_ERROR(
      CallView(conn, OpCode::kPoll, payload, &buffer, &in));
  std::vector<TopicPartition> revoked, assigned;
  if (!GetTopicPartitionList(&in, &revoked) ||
      !GetTopicPartitionList(&in, &assigned) ||
      !GetWireMessageListViews(&in, out)) {
    out->Clear();
    return Status::Corruption("malformed Poll response");
  }
  out->BorrowBuffer(std::move(buffer));
  // Optional trailing backlog hint (servers predating it send none).
  uint64_t backlog = 0;
  if (GetVarint64(&in, &backlog)) {
    backlog_hint_.store(backlog, std::memory_order_relaxed);
  }
  DeliverRebalance(consumer_id, revoked, assigned);
  return Status::OK();
}

Status RemoteBus::Fetch(const TopicPartition& tp, uint64_t offset,
                        size_t max_messages,
                        std::vector<Message>* out) const {
  out->clear();
  std::string payload, result;
  PutTopicPartition(&payload, tp);
  PutVarint64(&payload, offset);
  PutVarint64(&payload, max_messages);
  RAILGUN_RETURN_IF_ERROR(CallControl(OpCode::kFetch, payload, &result));
  Slice in(result);
  if (!GetWireMessageList(&in, out)) {
    return Status::Corruption("malformed Fetch response");
  }
  return Status::OK();
}

Status RemoteBus::Commit(const std::string& consumer_id,
                         const TopicPartition& tp, uint64_t next_offset) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, consumer_id);
  PutTopicPartition(&payload, tp);
  PutVarint64(&payload, next_offset);
  return CallControl(OpCode::kCommit, payload, nullptr);
}

Status RemoteBus::Seek(const std::string& consumer_id,
                       const TopicPartition& tp, uint64_t offset) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, consumer_id);
  PutTopicPartition(&payload, tp);
  PutVarint64(&payload, offset);
  return CallControl(OpCode::kSeek, payload, nullptr);
}

StatusOr<uint64_t> RemoteBus::EndOffset(const TopicPartition& tp) const {
  std::string payload, result;
  PutTopicPartition(&payload, tp);
  RAILGUN_RETURN_IF_ERROR(CallControl(OpCode::kEndOffset, payload, &result));
  Slice in(result);
  uint64_t offset;
  if (!GetVarint64(&in, &offset)) {
    return Status::Corruption("malformed EndOffset response");
  }
  return offset;
}

StatusOr<uint64_t> RemoteBus::BaseOffset(const TopicPartition& tp) const {
  std::string payload, result;
  PutTopicPartition(&payload, tp);
  RAILGUN_RETURN_IF_ERROR(CallControl(OpCode::kBaseOffset, payload, &result));
  Slice in(result);
  uint64_t offset;
  if (!GetVarint64(&in, &offset)) {
    return Status::Corruption("malformed BaseOffset response");
  }
  return offset;
}

Status RemoteBus::KillConsumer(const std::string& consumer_id) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, consumer_id);
  return CallControl(OpCode::kKillConsumer, payload, nullptr);
}

void RemoteBus::CheckLiveness() {
  // Probe only: failure surfaces through the next real call's status.
  (void)CallControl(OpCode::kCheckLiveness, "", nullptr);
}

Status RemoteBus::WakeConsumer(const std::string& consumer_id) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, consumer_id);
  return CallControl(OpCode::kWakeConsumer, payload, nullptr);
}

void RemoteBus::Wake() { (void)CallControl(OpCode::kWake, "", nullptr); }

std::vector<TopicPartition> RemoteBus::AssignmentOf(
    const std::string& consumer_id) {
  std::string payload, result;
  PutLengthPrefixedSlice(&payload, consumer_id);
  std::vector<TopicPartition> tps;
  if (!CallControl(OpCode::kAssignmentOf, payload, &result).ok()) return tps;
  Slice in(result);
  GetTopicPartitionList(&in, &tps);
  return tps;
}

uint64_t RemoteBus::rebalance_count() const {
  std::string result;
  if (!CallControl(OpCode::kRebalanceCount, "", &result).ok()) return 0;
  Slice in(result);
  uint64_t count = 0;
  GetVarint64(&in, &count);
  return count;
}

}  // namespace railgun::msg::remote
