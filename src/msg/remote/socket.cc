#include "msg/remote/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace railgun::msg::remote {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Status FillSockaddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1), std::memory_order_release);
  }
  return *this;
}

StatusOr<Socket> Socket::Connect(const std::string& host, int port) {
  sockaddr_in addr;
  RAILGUN_RETURN_IF_ERROR(FillSockaddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect to " + host + ":" + std::to_string(port));
  }
  // The wire protocol is request/response with small frames: latency
  // matters more than segment coalescing.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status Socket::SendAll(const char* data, size_t n) {
  const int fd = fd_.load(std::memory_order_acquire);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as a Status, not SIGPIPE.
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return Errno("send");
    }
    data += sent;
    n -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status Socket::RecvAll(char* data, size_t n) {
  const int fd = fd_.load(std::memory_order_acquire);
  while (n > 0) {
    const ssize_t got = ::recv(fd, data, n, 0);
    if (got == 0) return Status::Unavailable("connection closed by peer");
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    data += got;
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Socket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1), std::memory_order_release);
    port_ = other.port_;
  }
  return *this;
}

StatusOr<ListenSocket> ListenSocket::Listen(const std::string& host,
                                            int port) {
  sockaddr_in addr;
  RAILGUN_RETURN_IF_ERROR(FillSockaddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ListenSocket sock;
  sock.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  sock.port_ = ntohs(addr.sin_port);
  return sock;
}

StatusOr<Socket> ListenSocket::Accept() {
  const int fd = ::accept(fd_.load(std::memory_order_acquire), nullptr,
                          nullptr);
  if (fd < 0) return Errno("accept");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void ListenSocket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown on a listening socket unblocks a parked accept (Linux
    // returns EINVAL to the waiter).
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Status ParseAddress(const std::string& address, std::string* host,
                    int* port) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument("address must be host:port, got \"" +
                                   address + "\"");
  }
  *host = address.substr(0, colon);
  char* end = nullptr;
  const long parsed = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || parsed <= 0 || parsed > 65535) {
    return Status::InvalidArgument("bad port in address \"" + address +
                                   "\"");
  }
  *port = static_cast<int>(parsed);
  return Status::OK();
}

}  // namespace railgun::msg::remote
