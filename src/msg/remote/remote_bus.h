// RemoteBus: a msg::Bus implementation that forwards every call to a
// BusServer over TCP, so front ends and processor units attach to a
// broker in another process without touching engine/ or api/ code.
//
// Connection model: one control connection for administrative and
// producer traffic, plus one lazily created connection per consumer for
// Poll — a blocking poll parks server-side on the consumer connection
// while WakeConsumer/Produce traffic flows on the control connection,
// mirroring the in-process wake-on-arrival contract. Each connection
// carries one outstanding request at a time (correlation ids are still
// checked defensively).
//
// Failure model: any transport error marks the connection broken and
// surfaces Status::Unavailable. Reconnects are lazy with capped
// exponential backoff plus jitter per connection: while a connection is
// backing off, calls fail fast with Unavailable instead of re-dialing,
// so a dead broker is not hammered by the engine's high-frequency poll
// loops. Consumer-group state does not survive a server restart — the
// engine's poll-error paths (backoff + request deadlines) handle that,
// exactly as they would a fenced consumer.
//
// Rebalance callbacks arrive piggybacked on Poll responses and are
// invoked synchronously before Poll returns, preserving the Bus
// contract. The client-side AssignmentStrategy cannot cross the wire:
// remote subscribers always run the server's default strategy.
#ifndef RAILGUN_MSG_REMOTE_REMOTE_BUS_H_
#define RAILGUN_MSG_REMOTE_REMOTE_BUS_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "msg/bus.h"
#include "msg/remote/backoff.h"
#include "msg/remote/socket.h"
#include "msg/remote/wire.h"

namespace railgun::msg::remote {

struct RemoteBusOptions {
  std::string address;  // "host:port" of a BusServer.
  // Reconnect backoff window: the first failed dial backs a connection
  // off for reconnect_backoff_min, doubling per consecutive failure up
  // to reconnect_backoff_max, with up to +25% jitter so a fleet of
  // clients doesn't re-dial a recovering broker in lockstep.
  Micros reconnect_backoff_min = 50 * kMicrosPerMilli;
  Micros reconnect_backoff_max = 2 * kMicrosPerSecond;
  // Clock the backoff window is measured on (tests inject a simulated
  // one). Defaults to the monotonic clock.
  Clock* clock = nullptr;
};

class RemoteBus : public Bus {
 public:
  explicit RemoteBus(const RemoteBusOptions& options);
  ~RemoteBus() override;

  RemoteBus(const RemoteBus&) = delete;
  RemoteBus& operator=(const RemoteBus&) = delete;

  // Establishes the control connection (also validates the address).
  // Calls made without (or after a failed) Connect lazily retry.
  Status Connect();

  // --- Bus interface -------------------------------------------------
  Status CreateTopic(const std::string& topic, int partitions) override;
  Status DeleteTopic(const std::string& topic) override;
  StatusOr<int> NumPartitions(const std::string& topic) const override;
  std::vector<TopicPartition> PartitionsOf(
      const std::string& topic) const override;

  StatusOr<uint64_t> Produce(const std::string& topic, const std::string& key,
                             std::string payload) override;
  StatusOr<uint64_t> ProduceToPartition(const std::string& topic,
                                        int partition, std::string key,
                                        std::string payload) override;
  Status ProduceBatch(const std::string& topic,
                      std::vector<ProduceRecord> records) override;

  Status Subscribe(const std::string& consumer_id, const std::string& group,
                   const std::vector<std::string>& topics,
                   const std::string& metadata, AssignmentStrategy* strategy,
                   RebalanceListener listener) override;
  Status Unsubscribe(const std::string& consumer_id) override;

  Status Poll(const std::string& consumer_id, size_t max_messages,
              std::vector<Message>* out, Micros max_wait = 0) override;
  // Zero-copy poll: the response body stays in a pooled receive buffer
  // and *out's views point straight into it (columnar frames when the
  // server speaks them, row frames otherwise — both without copying a
  // single key/payload byte). The first NotSupported answer to a
  // columnar opcode permanently downgrades this client to row frames.
  Status PollBatch(const std::string& consumer_id, size_t max_messages,
                   MessageBatch* out, Micros max_wait = 0) override;
  Status Fetch(const TopicPartition& tp, uint64_t offset,
               size_t max_messages, std::vector<Message>* out) const override;

  Status Commit(const std::string& consumer_id, const TopicPartition& tp,
                uint64_t next_offset) override;
  Status Seek(const std::string& consumer_id, const TopicPartition& tp,
              uint64_t offset) override;

  StatusOr<uint64_t> EndOffset(const TopicPartition& tp) const override;
  StatusOr<uint64_t> BaseOffset(const TopicPartition& tp) const override;

  Status KillConsumer(const std::string& consumer_id) override;
  void CheckLiveness() override;
  Status WakeConsumer(const std::string& consumer_id) override;
  void Wake() override;

  std::vector<TopicPartition> AssignmentOf(
      const std::string& consumer_id) override;
  uint64_t rebalance_count() const override;
  // Broker queue depth as of the last kPoll response this client saw
  // (the trailing hint of wire.h's kPoll). 0 until the first poll.
  uint64_t BacklogHint() const override {
    return backlog_hint_.load(std::memory_order_relaxed);
  }

  // Total TCP connect attempts across all connections (introspection
  // for tests and operators watching reconnect churn).
  uint64_t dial_attempts() const {
    return dial_attempts_.load(std::memory_order_relaxed);
  }

  // Receive-path statistics (exported as introspect probes by owners —
  // meta::WorkerNode registers them next to bus.dial_attempts).
  uint64_t pool_hits() const { return pool_.hits(); }
  uint64_t pool_misses() const { return pool_.misses(); }
  uint64_t decode_bytes() const { return pool_.bytes(); }
  // Columnar poll responses decoded + columnar produce batches sent.
  uint64_t columnar_batches() const {
    return columnar_batches_.load(std::memory_order_relaxed);
  }
  // False once the server answered NotSupported to a columnar opcode.
  bool columnar_enabled() const {
    return server_columnar_.load(std::memory_order_relaxed);
  }
  // True once the server answered the kTraceHello handshake OK (i.e.
  // produce requests may carry trace trailers). False while unknown or
  // after a NotSupported downgrade.
  bool trace_negotiated() const {
    return server_trace_.load(std::memory_order_relaxed) > 0;
  }

  // Generic RPC on the control connection, for stubs speaking opcodes
  // the bus itself does not (the metadata service's kMeta* RPCs via
  // meta::MetaClient): same correlation, reconnect-backoff and
  // failure model as every built-in call.
  Status CallOpcode(uint8_t opcode, const std::string& payload,
                    std::string* result);

 private:
  struct Conn {
    explicit Conn(const RemoteBusOptions& options)
        : backoff(options.reconnect_backoff_min,
                  options.reconnect_backoff_max) {}

    Mutex mu{kRankMsgRemoteConn};
    Socket sock GUARDED_BY(mu);
    uint64_t next_correlation GUARDED_BY(mu) = 1;
    bool connected GUARDED_BY(mu) = false;
    ReconnectBackoff backoff GUARDED_BY(mu);
  };

  // Returns the connection for `key` ("" = control, else per-consumer),
  // creating and connecting it if needed.
  std::shared_ptr<Conn> ConnFor(const std::string& key) const;
  // Dials conn->sock if disconnected, honoring the backoff window.
  Status EnsureConnectedLocked(Conn* conn) const REQUIRES(conn->mu);
  // One RPC: send the request on `conn`, await its response, split off
  // the remote status; *result receives the RPC-specific fields (only
  // populated when the remote status is OK).
  Status Call(const std::shared_ptr<Conn>& conn, OpCode opcode,
              const std::string& payload, std::string* result) const;
  // Zero-copy Call: the response lands in a buffer leased from pool_,
  // *result views into it and *buffer keeps it alive (so do any views
  // decoded from *result, via MessageBatch::BorrowBuffer).
  Status CallView(const std::shared_ptr<Conn>& conn, OpCode opcode,
                  const std::string& payload, BufferRef* buffer,
                  Slice* result) const;
  Status CallControl(OpCode opcode, const std::string& payload,
                     std::string* result) const;
  // Lazily runs the kTraceHello handshake on the first traced produce.
  // OK caches yes, NotSupported caches a permanent downgrade; transport
  // errors stay unknown and retry on a later produce.
  bool TraceTrailerNegotiated();
  // Fires the consumer's rebalance listener for non-empty lists.
  void DeliverRebalance(const std::string& consumer_id,
                        const std::vector<TopicPartition>& revoked,
                        const std::vector<TopicPartition>& assigned);

  RemoteBusOptions options_;
  Clock* clock_;
  std::string host_;
  int port_ = 0;
  Status address_status_;  // Result of parsing options_.address.
  mutable std::atomic<uint64_t> dial_attempts_{0};
  std::atomic<uint64_t> backlog_hint_{0};
  // Receive buffers shared by all connections (BufferPool is internally
  // synchronized). Optimistically assume the server speaks columnar
  // frames until it proves otherwise.
  mutable BufferPool pool_;
  std::atomic<bool> server_columnar_{true};
  std::atomic<uint64_t> columnar_batches_{0};
  // Trace-trailer handshake state: 0 unknown, 1 negotiated, -1 the
  // server answered NotSupported (permanent downgrade).
  std::atomic<int> server_trace_{0};

  mutable Mutex mu_{kRankMsgRemoteBus};
  mutable std::map<std::string, std::shared_ptr<Conn>> conns_ GUARDED_BY(mu_);
  std::map<std::string, RebalanceListener> listeners_ GUARDED_BY(mu_);
};

}  // namespace railgun::msg::remote

#endif  // RAILGUN_MSG_REMOTE_REMOTE_BUS_H_
