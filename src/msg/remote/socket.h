// Minimal RAII TCP helpers for the remote bus transport: blocking
// sockets with full-buffer send/recv, an ephemeral-port listener, and
// "host:port" address parsing. POSIX-only, like the rest of the tree.
#ifndef RAILGUN_MSG_REMOTE_SOCKET_H_
#define RAILGUN_MSG_REMOTE_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "common/status.h"

namespace railgun::msg::remote {

// The descriptor is atomic so another thread may ShutdownBoth() a
// socket whose owner is parked in RecvAll (the server's Stop path);
// Close() itself must only race with ShutdownBoth, never with an
// in-flight Send/Recv on another thread.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  static StatusOr<Socket> Connect(const std::string& host, int port);

  // Blocks until all n bytes are written / read. Returns Unavailable on
  // EOF or any socket error (the peer is gone, not misbehaving).
  Status SendAll(const char* data, size_t n);
  Status RecvAll(char* data, size_t n);

  // Unblocks any thread parked in SendAll/RecvAll on this socket.
  void ShutdownBoth();
  void Close();

  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }

 private:
  std::atomic<int> fd_{-1};
};

class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(ListenSocket&& other) noexcept
      : fd_(other.fd_.exchange(-1)), port_(other.port_) {}
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  // port 0 binds an ephemeral port; port() reports the resolved one.
  static StatusOr<ListenSocket> Listen(const std::string& host, int port);

  StatusOr<Socket> Accept();

  // Unblocks a thread parked in Accept, then closes.
  void Close();

  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }
  int port() const { return port_; }

 private:
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

// Splits "host:port". Returns InvalidArgument on malformed input.
Status ParseAddress(const std::string& address, std::string* host,
                    int* port);

}  // namespace railgun::msg::remote

#endif  // RAILGUN_MSG_REMOTE_SOCKET_H_
