// Abstract messaging-layer contract (the role Kafka plays in the paper
// §3.3). Engine layers (FrontEnd, ProcessorUnit, the baseline worker)
// program against this interface so the broker behind it is swappable:
// InProcessBus (src/msg/broker.h) keeps the whole cluster in one
// process, RemoteBus (src/msg/remote/remote_bus.h) speaks the binary
// wire protocol to a BusServer hosting the broker in another process.
//
// Contract highlights every implementation must honor:
//  - Partitioned, offset-addressed, replayable logs; Produce returns the
//    assigned offset; per-key order is preserved within ProduceBatch.
//  - Consumer groups with exactly-one-active-consumer-per-partition,
//    heartbeat liveness (Poll is the heartbeat) and coordinator-driven
//    rebalances delivered synchronously inside Poll via the listener.
//  - Poll(max_wait > 0) blocks (wake-on-arrival) until a message becomes
//    visible, a rebalance is delivered, WakeConsumer fires, or max_wait
//    elapses. WakeConsumer is level-triggered: a wake issued between
//    polls is consumed by the next Poll, never lost.
//  - Seek/Fetch never position a consumer below the retention-trimmed
//    log head: offsets inside truncated data clamp forward.
#ifndef RAILGUN_MSG_BUS_H_
#define RAILGUN_MSG_BUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "msg/assignment.h"
#include "msg/batch.h"
#include "msg/message.h"

namespace railgun::msg {

// Callbacks a consumer registers to learn about rebalances.
struct RebalanceListener {
  std::function<void(const std::vector<TopicPartition>& revoked)> on_revoked;
  std::function<void(const std::vector<TopicPartition>& assigned)> on_assigned;
};

// One keyed record of a producer batch.
struct ProduceRecord {
  std::string key;
  std::string payload;
};

class Bus {
 public:
  virtual ~Bus() = default;

  // ----- Topic administration -----
  virtual Status CreateTopic(const std::string& topic, int partitions) = 0;
  virtual Status DeleteTopic(const std::string& topic) = 0;
  virtual StatusOr<int> NumPartitions(const std::string& topic) const = 0;
  virtual std::vector<TopicPartition> PartitionsOf(
      const std::string& topic) const = 0;

  // ----- Producing -----
  // Publishes to partition = Hash(key) % partitions. Returns the offset.
  virtual StatusOr<uint64_t> Produce(const std::string& topic,
                                     const std::string& key,
                                     std::string payload) = 0;
  virtual StatusOr<uint64_t> ProduceToPartition(const std::string& topic,
                                                int partition,
                                                std::string key,
                                                std::string payload) = 0;
  // Publishes a whole batch; records with the same key keep their
  // relative order (same key -> same partition, appended in input
  // order).
  virtual Status ProduceBatch(const std::string& topic,
                              std::vector<ProduceRecord> records) = 0;

  // ----- Group management -----
  // Registers a consumer in a group. The strategy pointer is shared by
  // the whole group (the first subscriber's strategy wins); pass nullptr
  // for the broker's default. Remote implementations cannot ship a
  // strategy across the wire and always use the server-side default.
  virtual Status Subscribe(const std::string& consumer_id,
                           const std::string& group,
                           const std::vector<std::string>& topics,
                           const std::string& metadata,
                           AssignmentStrategy* strategy,
                           RebalanceListener listener) = 0;
  virtual Status Unsubscribe(const std::string& consumer_id) = 0;

  // ----- Consuming -----
  // Pulls up to max_messages across the consumer's assigned partitions;
  // acts as the heartbeat; delivers rebalance callbacks synchronously
  // before returning. With max_wait > 0 an empty poll blocks
  // (wake-on-arrival) until data, a rebalance, a wake, or the deadline.
  virtual Status Poll(const std::string& consumer_id, size_t max_messages,
                      std::vector<Message>* out, Micros max_wait = 0) = 0;

  // Batched poll into a view batch. Implementations that can avoid
  // per-message copies (RemoteBus decodes poll responses zero-copy into
  // a pooled receive buffer) override this; the default adopts the
  // row-at-a-time Poll result so every Bus supports it.
  virtual Status PollBatch(const std::string& consumer_id,
                           size_t max_messages, MessageBatch* out,
                           Micros max_wait = 0) {
    std::vector<Message> messages;
    const Status status = Poll(consumer_id, max_messages, &messages, max_wait);
    out->Clear();
    if (status.ok()) out->Adopt(std::move(messages));
    return status;
  }

  // Direct partition read outside any group (replay, replica shadowing).
  // Offsets below the retention-trimmed head clamp forward.
  virtual Status Fetch(const TopicPartition& tp, uint64_t offset,
                       size_t max_messages,
                       std::vector<Message>* out) const = 0;

  virtual Status Commit(const std::string& consumer_id,
                        const TopicPartition& tp, uint64_t next_offset) = 0;
  // Rewinds the consumer's position (recovery replay). Clamps to the
  // earliest retained offset.
  virtual Status Seek(const std::string& consumer_id,
                      const TopicPartition& tp, uint64_t offset) = 0;

  virtual StatusOr<uint64_t> EndOffset(const TopicPartition& tp) const = 0;
  // First offset still retained (> 0 once retention truncated the log).
  virtual StatusOr<uint64_t> BaseOffset(const TopicPartition& tp) const = 0;

  // Declares a consumer dead immediately (fault injection).
  virtual Status KillConsumer(const std::string& consumer_id) = 0;

  // Runs heartbeat expiry checks (tests driving simulated time).
  virtual void CheckLiveness() = 0;

  // Interrupts a consumer's blocking Poll (level-triggered).
  virtual Status WakeConsumer(const std::string& consumer_id) = 0;
  // Interrupts every consumer (shutdown sweep).
  virtual void Wake() = 0;

  // Introspection.
  virtual std::vector<TopicPartition> AssignmentOf(
      const std::string& consumer_id) = 0;
  virtual uint64_t rebalance_count() const = 0;
  // Total messages produced but not yet consumed across all partitions —
  // the broker-side queue-depth signal admission control watches.
  // InProcessBus computes it live; RemoteBus reports the last hint a
  // kPoll response carried (see wire.h). 0 = empty or unknown.
  virtual uint64_t BacklogHint() const { return 0; }
};

}  // namespace railgun::msg

#endif  // RAILGUN_MSG_BUS_H_
