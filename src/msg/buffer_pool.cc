#include "msg/buffer_pool.h"

#include <utility>

namespace railgun::msg {

char* PooledBuffer::Resize(size_t bytes, bool* allocated) {
  const size_t before = arena_.MemoryUsage();
  arena_.Reset();
  // Arena::Allocate asserts non-zero; an empty frame body still needs a
  // valid (if degenerate) region for Slice views.
  data_ = arena_.Allocate(bytes == 0 ? 1 : bytes);
  size_ = bytes;
  if (allocated != nullptr) *allocated = arena_.MemoryUsage() > before;
  return data_;
}

BufferPool::BufferPool(size_t max_idle) : state_(std::make_shared<State>()) {
  state_->max_idle = max_idle;
}

BufferRef BufferPool::Acquire(size_t bytes) {
  std::unique_ptr<PooledBuffer> buffer;
  {
    MutexLock lock(&state_->mu);
    if (!state_->free_list.empty()) {
      buffer = std::move(state_->free_list.back());
      state_->free_list.pop_back();
    }
  }
  const bool pooled = buffer != nullptr;
  if (!pooled) buffer.reset(new PooledBuffer());
  bool allocated = false;
  buffer->Resize(bytes, &allocated);
  if (pooled && !allocated) {
    state_->hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    state_->misses.fetch_add(1, std::memory_order_relaxed);
  }
  state_->bytes.fetch_add(bytes, std::memory_order_relaxed);

  std::weak_ptr<State> weak_state = state_;
  return BufferRef(buffer.release(), [weak_state](PooledBuffer* released) {
    std::unique_ptr<PooledBuffer> owned(released);
    if (auto state = weak_state.lock()) {
      MutexLock lock(&state->mu);
      if (state->free_list.size() < state->max_idle) {
        state->free_list.push_back(std::move(owned));
      }
    }
  });
}

size_t BufferPool::idle() const {
  MutexLock lock(&state_->mu);
  return state_->free_list.size();
}

}  // namespace railgun::msg
