#include "msg/assignment.h"

#include <algorithm>

namespace railgun::msg {

Assignment RoundRobinStrategy::Assign(
    const std::vector<MemberInfo>& members,
    const std::vector<TopicPartition>& partitions) {
  Assignment result;
  if (members.empty()) return result;

  std::vector<std::string> ids;
  for (const auto& m : members) ids.push_back(m.member_id);
  std::sort(ids.begin(), ids.end());

  std::vector<TopicPartition> sorted = partitions;
  std::sort(sorted.begin(), sorted.end());

  size_t i = 0;
  for (const auto& tp : sorted) {
    result[ids[i % ids.size()]].push_back(tp);
    ++i;
  }
  return result;
}

}  // namespace railgun::msg
