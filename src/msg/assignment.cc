#include "msg/assignment.h"

#include <algorithm>

namespace railgun::msg {

Assignment RoundRobinStrategy::Assign(
    const std::vector<MemberInfo>& members,
    const std::vector<TopicPartition>& partitions) {
  Assignment result;
  if (members.empty()) return result;

  std::vector<const MemberInfo*> sorted_members;
  for (const auto& m : members) sorted_members.push_back(&m);
  std::sort(sorted_members.begin(), sorted_members.end(),
            [](const MemberInfo* a, const MemberInfo* b) {
              return a->member_id < b->member_id;
            });

  std::vector<TopicPartition> sorted = partitions;
  std::sort(sorted.begin(), sorted.end());

  size_t i = 0;
  for (const auto& tp : sorted) {
    // Round-robin over the members eligible for this partition's topic.
    const MemberInfo* picked = nullptr;
    for (size_t probe = 0; probe < sorted_members.size(); ++probe) {
      const MemberInfo* m = sorted_members[(i + probe) % sorted_members.size()];
      if (m->topics.empty() ||
          std::find(m->topics.begin(), m->topics.end(), tp.topic) !=
              m->topics.end()) {
        picked = m;
        break;
      }
    }
    ++i;
    if (picked == nullptr) continue;  // Nobody subscribed: leave unowned.
    result[picked->member_id].push_back(tp);
  }
  return result;
}

}  // namespace railgun::msg
