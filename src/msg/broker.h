// In-process message bus implementing the messaging-layer contract the
// paper requires of Kafka (§3.3): partitioned topics, keyed publishing,
// pull-based consumption by offset, replay, consumer groups with
// exactly-one-active-consumer-per-partition, heartbeat failure
// detection, and coordinator-driven rebalances with a pluggable
// assignment strategy. A configurable delivery delay models broker and
// network latency so end-to-end measurements include the messaging hop.
#ifndef RAILGUN_MSG_BROKER_H_
#define RAILGUN_MSG_BROKER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "msg/assignment.h"
#include "msg/message.h"

namespace railgun::msg {

struct BusOptions {
  // One-way delivery delay applied to every message (producer -> broker
  // visibility). Models the network + broker hop of a real deployment.
  Micros delivery_delay = 500;
  // A consumer missing heartbeats (polls) for longer than this is
  // declared dead and its group rebalances.
  Micros session_timeout = 3 * kMicrosPerSecond;
  Clock* clock = nullptr;  // Defaults to MonotonicClock.
};

// Callbacks a consumer registers to learn about rebalances.
struct RebalanceListener {
  std::function<void(const std::vector<TopicPartition>& revoked)> on_revoked;
  std::function<void(const std::vector<TopicPartition>& assigned)> on_assigned;
};

class MessageBus {
 public:
  explicit MessageBus(const BusOptions& options = BusOptions());
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  // ----- Topic administration -----
  Status CreateTopic(const std::string& topic, int partitions);
  Status DeleteTopic(const std::string& topic);
  StatusOr<int> NumPartitions(const std::string& topic) const;
  std::vector<TopicPartition> PartitionsOf(const std::string& topic) const;

  // ----- Producing -----
  // Publishes to partition = Hash(key) % partitions. Returns the offset.
  StatusOr<uint64_t> Produce(const std::string& topic, const std::string& key,
                             std::string payload);
  StatusOr<uint64_t> ProduceToPartition(const std::string& topic,
                                        int partition, std::string key,
                                        std::string payload);

  // ----- Group management -----
  // Registers a consumer in a group. The strategy pointer is shared by
  // the whole group (the first subscriber's strategy wins); pass nullptr
  // for the default round-robin.
  Status Subscribe(const std::string& consumer_id, const std::string& group,
                   const std::vector<std::string>& topics,
                   const std::string& metadata,
                   AssignmentStrategy* strategy,
                   RebalanceListener listener);
  Status Unsubscribe(const std::string& consumer_id);

  // ----- Consuming -----
  // Pulls up to max_messages across the consumer's assigned partitions,
  // starting at its committed/next offsets. Acts as the heartbeat.
  // Delivers rebalance callbacks (revoke/assign) synchronously before
  // returning when the group generation advanced.
  Status Poll(const std::string& consumer_id, size_t max_messages,
              std::vector<Message>* out);

  // Direct partition read (used for replay during recovery and by the
  // injectors, outside any group).
  Status Fetch(const TopicPartition& tp, uint64_t offset,
               size_t max_messages, std::vector<Message>* out) const;

  // Commits the consumer's position for a partition.
  Status Commit(const std::string& consumer_id, const TopicPartition& tp,
                uint64_t next_offset);
  // Rewinds the consumer's position (recovery replay).
  Status Seek(const std::string& consumer_id, const TopicPartition& tp,
              uint64_t offset);

  StatusOr<uint64_t> EndOffset(const TopicPartition& tp) const;

  // Declares a consumer dead immediately (fault injection), as if its
  // heartbeats timed out.
  Status KillConsumer(const std::string& consumer_id);

  // Runs heartbeat expiry checks; called internally on every Poll and
  // available to tests driving simulated time.
  void CheckLiveness();

  // Introspection.
  std::vector<TopicPartition> AssignmentOf(const std::string& consumer_id);
  uint64_t rebalance_count() const { return rebalance_count_; }

 private:
  struct PartitionLog {
    std::vector<Message> messages;
  };
  struct Topic {
    std::vector<PartitionLog> partitions;
  };
  struct ConsumerState {
    std::string group;
    std::vector<std::string> topics;
    std::string metadata;
    RebalanceListener listener;
    std::vector<TopicPartition> assignment;
    std::map<TopicPartition, uint64_t> positions;
    Micros last_heartbeat = 0;
    uint64_t seen_generation = 0;
    bool alive = true;
  };
  struct Group {
    AssignmentStrategy* strategy = nullptr;  // Borrowed.
    std::set<std::string> members;
    uint64_t generation = 0;
    Assignment current;  // member -> partitions.
  };

  void RebalanceGroupLocked(const std::string& group_name);
  void CheckLivenessLocked();
  std::vector<TopicPartition> GroupPartitionsLocked(const Group& group) const;

  BusOptions options_;
  Clock* clock_;
  RoundRobinStrategy default_strategy_;

  mutable std::mutex mu_;
  std::map<std::string, Topic> topics_;
  std::map<std::string, ConsumerState> consumers_;
  std::map<std::string, Group> groups_;
  std::atomic<uint64_t> rebalance_count_{0};
};

}  // namespace railgun::msg

#endif  // RAILGUN_MSG_BROKER_H_
