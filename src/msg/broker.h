// In-process implementation of the msg::Bus contract (see msg/bus.h):
// partitioned topics, keyed publishing, pull-based consumption by
// offset, replay, consumer groups with
// exactly-one-active-consumer-per-partition, heartbeat failure
// detection, and coordinator-driven rebalances with a pluggable
// assignment strategy. A configurable delivery delay models broker and
// network latency so end-to-end measurements include the messaging hop.
// BusServer (src/msg/remote/bus_server.h) hosts an InProcessBus behind a
// TCP listener to make it a real network broker.
//
// Concurrency model: broker state is sharded. Each partition log has a
// private mutex, so producers to different partitions never contend;
// group coordination (membership, assignments, positions, heartbeats)
// lives behind a separate lock. Consumers may park inside Poll on a
// condition variable; every produce, rebalance and Wake() call notifies
// parked consumers, so the engine's hot loops block on arrival instead
// of sleep-polling. Lock order: group_mu_ -> topics_mu_ -> PartitionLog
// mutexes (innermost); never the reverse.
#ifndef RAILGUN_MSG_BROKER_H_
#define RAILGUN_MSG_BROKER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "msg/bus.h"
#include "msg/message.h"

namespace railgun::msg {

struct BusOptions {
  // One-way delivery delay applied to every message (producer -> broker
  // visibility). Models the network + broker hop of a real deployment.
  Micros delivery_delay = 500;
  // A consumer missing heartbeats (polls) for longer than this is
  // declared dead and its group rebalances.
  Micros session_timeout = 3 * kMicrosPerSecond;
  // Per-partition retention cap: when a log exceeds this many messages,
  // its head is truncated down to the cap — but never past the minimum
  // committed position of the consumers tracking that partition, so no
  // group member loses unread data. Direct Fetch readers (replica
  // shadowing, replay) are not tracked: a fetch below the trimmed head
  // clamps forward to the earliest retained message, so lagging
  // replicas skip the gap and re-sync from a donor on promotion.
  // 0 retains everything (needed for unbounded replay-from-zero
  // recovery).
  uint64_t retention_messages = 0;
  Clock* clock = nullptr;  // Defaults to MonotonicClock.
};

class InProcessBus : public Bus {
 public:
  explicit InProcessBus(const BusOptions& options = BusOptions());
  InProcessBus(const InProcessBus&) = delete;
  InProcessBus& operator=(const InProcessBus&) = delete;

  // ----- Topic administration -----
  Status CreateTopic(const std::string& topic, int partitions) override;
  Status DeleteTopic(const std::string& topic) override;
  StatusOr<int> NumPartitions(const std::string& topic) const override;
  std::vector<TopicPartition> PartitionsOf(
      const std::string& topic) const override;

  // ----- Producing -----
  StatusOr<uint64_t> Produce(const std::string& topic, const std::string& key,
                             std::string payload) override;
  StatusOr<uint64_t> ProduceToPartition(const std::string& topic,
                                        int partition, std::string key,
                                        std::string payload) override;
  // Publishes a whole batch with one partition-lock acquisition per
  // touched partition and one consumer wake-up.
  Status ProduceBatch(const std::string& topic,
                      std::vector<ProduceRecord> records) override;

  // ----- Group management -----
  Status Subscribe(const std::string& consumer_id, const std::string& group,
                   const std::vector<std::string>& topics,
                   const std::string& metadata,
                   AssignmentStrategy* strategy,
                   RebalanceListener listener) override;
  Status Unsubscribe(const std::string& consumer_id) override;

  // Installs (or replaces) the assignment strategy of a group
  // server-side, before or after members join. Remote subscribers
  // cannot ship a strategy across the wire, so a broker process
  // pre-installs the engine's sticky coordinator here and every joining
  // worker — local or remote — gets the same placement policy.
  void SetGroupStrategy(const std::string& group,
                        AssignmentStrategy* strategy);

  // ----- Consuming -----
  // Pulls up to max_messages across the consumer's assigned partitions,
  // starting at its committed/next offsets. Acts as the heartbeat.
  // Delivers rebalance callbacks (revoke/assign) synchronously before
  // returning when the group generation advanced.
  //
  // With max_wait > 0 an empty poll parks on the bus's condition
  // variable (wake-on-arrival) until a message becomes visible, a
  // rebalance is delivered, Wake() is called, or max_wait elapses.
  // max_wait, like every other duration here, is interpreted in the
  // bus clock's domain: virtual time under a simulated clock, real time
  // under the monotonic clock. The consumer keeps heartbeating and
  // re-running liveness checks while parked.
  Status Poll(const std::string& consumer_id, size_t max_messages,
              std::vector<Message>* out, Micros max_wait = 0) override;

  // Direct partition read (used for replay during recovery and by the
  // injectors, outside any group). Offsets below the retention-trimmed
  // log head are clamped to the earliest retained message.
  Status Fetch(const TopicPartition& tp, uint64_t offset,
               size_t max_messages, std::vector<Message>* out) const override;

  // Commits the consumer's position for a partition.
  Status Commit(const std::string& consumer_id, const TopicPartition& tp,
                uint64_t next_offset) override;
  // Rewinds the consumer's position (recovery replay). Offsets below the
  // retention-trimmed log head clamp forward to the earliest retained
  // message — the same rule as Fetch — so a replaying consumer can never
  // be positioned inside truncated data (which would also pin the
  // committed floor there and stall retention forever).
  Status Seek(const std::string& consumer_id, const TopicPartition& tp,
              uint64_t offset) override;

  StatusOr<uint64_t> EndOffset(const TopicPartition& tp) const override;
  // First offset still retained (> 0 once retention truncated the log).
  StatusOr<uint64_t> BaseOffset(const TopicPartition& tp) const override;

  // Declares a consumer dead immediately (fault injection), as if its
  // heartbeats timed out.
  Status KillConsumer(const std::string& consumer_id) override;

  // Runs heartbeat expiry checks; called internally on every Poll and
  // available to tests driving simulated time.
  void CheckLiveness() override;

  // Interrupts a consumer's blocking Poll: its next (or current) Poll
  // returns (possibly empty) instead of waiting out max_wait. The
  // interrupt is level-triggered — a wake issued while the consumer is
  // between polls is consumed by its next Poll, never lost. Arrival
  // notifications from producers are internal — a parked consumer
  // re-scans and re-parks if the message was not for it — whereas this
  // is the engine's lever for loops that multiplex bus polling with
  // local work (e.g. a front end with queued submissions to fan out).
  Status WakeConsumer(const std::string& consumer_id) override;
  // Interrupts every consumer (shutdown sweep).
  void Wake() override;

  // Per-topic retention override (introspect: the internals stream is
  // bounded regardless of the broker-wide retention policy, which most
  // deployments leave at 0 = keep everything for replay). 0 restores
  // the broker-wide setting. Applies immediately to existing backlog.
  Status SetTopicRetention(const std::string& topic,
                           uint64_t retention_messages);

  // Introspection.
  std::vector<TopicPartition> AssignmentOf(
      const std::string& consumer_id) override;
  uint64_t rebalance_count() const override { return rebalance_count_; }
  // Sum of (end offset - live read position) over every partition some
  // alive consumer tracks: the broker-side queue depth admission
  // control and the kPoll response hint report. Uses the in-place poll
  // positions, not the committed floors — floors only move on Commit
  // and would overstate backlog for consumers that batch commits.
  uint64_t BacklogHint() const override;
  // Blocking-poll park/wake-up counts (wake-on-arrival health: parks
  // without wakes means idle, wakes without parks means busy-spinning).
  uint64_t poll_park_count() const {
    return poll_parks_.load(std::memory_order_relaxed);
  }
  uint64_t poll_wake_count() const {
    return poll_wakes_.load(std::memory_order_relaxed);
  }
  // The consumer's tracked position for a partition (its committed
  // floor contribution). NotFound when the consumer does not track it.
  StatusOr<uint64_t> PositionOf(const std::string& consumer_id,
                                const TopicPartition& tp) const;

 private:
  struct PartitionLog {
    mutable Mutex mu{kRankMsgPartition};
    // messages.front() is at base_offset.
    std::deque<Message> messages GUARDED_BY(mu);
    uint64_t base_offset GUARDED_BY(mu) = 0;
    std::atomic<uint64_t> end_offset{0};  // Next offset to assign.
    // Minimum committed position across the consumers tracking this
    // partition; retention never truncates past it. UINT64_MAX when no
    // consumer tracks the partition (retention cap applies alone).
    std::atomic<uint64_t> committed_floor{UINT64_MAX};
    // Per-topic retention override; 0 = use the broker-wide
    // BusOptions::retention_messages.
    uint64_t retention_override GUARDED_BY(mu) = 0;
  };
  struct Topic {
    // unique_ptr elements keep per-partition mutexes address-stable.
    std::vector<std::unique_ptr<PartitionLog>> partitions;
  };
  struct ConsumerState {
    std::string group;
    std::vector<std::string> topics;
    std::string metadata;
    RebalanceListener listener;
    std::vector<TopicPartition> assignment;
    std::map<TopicPartition, uint64_t> positions;
    Micros last_heartbeat = 0;
    uint64_t seen_generation = 0;
    // Level-triggered WakeConsumer flag; consumed by the next Poll.
    bool interrupted = false;
    bool alive = true;
  };
  struct Group {
    AssignmentStrategy* strategy = nullptr;  // Borrowed.
    // True when the strategy came from SetGroupStrategy: it must
    // survive the group emptying out (a later joiner gets the same
    // policy), not be dropped with the last member.
    bool pinned_strategy = false;
    std::set<std::string> members;
    uint64_t generation = 0;
    Assignment current;  // member -> partitions.
  };

  std::shared_ptr<Topic> FindTopic(const std::string& topic) const;
  void AppendLocked(PartitionLog* log, const std::string& topic,
                    int partition, std::string key, std::string payload,
                    Micros now) REQUIRES(log->mu);
  void TruncateLocked(PartitionLog* log) REQUIRES(log->mu);
  void RebalanceGroupLocked(const std::string& group_name)
      REQUIRES(group_mu_);
  void CheckLivenessLocked() REQUIRES(group_mu_);
  void RecomputeCommittedFloorLocked(const TopicPartition& tp)
      REQUIRES(group_mu_);
  std::vector<TopicPartition> GroupPartitionsLocked(const Group& group) const
      REQUIRES(group_mu_);
  // One non-blocking poll attempt. On an empty result, *earliest_visible
  // is the soonest visible_time among the consumer's pending messages
  // (or 0 when it has none buffered). Consumes a pending WakeConsumer
  // interrupt into *interrupted.
  Status PollOnce(const std::string& consumer_id, size_t max_messages,
                  std::vector<Message>* out, bool* delivered_callbacks,
                  Micros* earliest_visible, bool* interrupted);
  void NotifyArrival();

  BusOptions options_;
  Clock* clock_;
  RoundRobinStrategy default_strategy_;

  // Guards the topics_ map structure only; per-partition data is behind
  // each PartitionLog's own mutex. shared_ptr keeps a topic alive for
  // producers that looked it up concurrently with DeleteTopic.
  mutable Mutex topics_mu_{kRankMsgTopics};
  std::map<std::string, std::shared_ptr<Topic>> topics_ GUARDED_BY(topics_mu_);

  // Group-coordination lock: consumers, groups, assignments, positions.
  mutable Mutex group_mu_{kRankMsgGroup};
  std::map<std::string, ConsumerState> consumers_ GUARDED_BY(group_mu_);
  std::map<std::string, Group> groups_ GUARDED_BY(group_mu_);

  // Wake-on-arrival channel for blocking Poll: parked consumers re-scan
  // whenever the epoch advances (new message, rebalance, or a
  // WakeConsumer interrupt flagged in their ConsumerState).
  Mutex wake_mu_{kRankMsgWake};
  CondVar wake_cv_;
  uint64_t wake_epoch_ GUARDED_BY(wake_mu_) = 0;

  std::atomic<uint64_t> rebalance_count_{0};
  std::atomic<uint64_t> poll_parks_{0};
  std::atomic<uint64_t> poll_wakes_{0};
};

// Historical name of the in-process broker, kept for call sites that
// construct one directly (tests, benches, the baseline engine).
using MessageBus = InProcessBus;

}  // namespace railgun::msg

#endif  // RAILGUN_MSG_BROKER_H_
