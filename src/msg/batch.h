// Zero-copy poll results. A MessageView is a msg::Message whose string
// fields are Slices into storage owned by the enclosing MessageBatch —
// either a pooled wire receive buffer (remote zero-copy path) or a
// vector of owned Messages adopted from a row-at-a-time bus. Views stay
// valid until the batch is Clear()ed, refilled or destroyed.
#ifndef RAILGUN_MSG_BATCH_H_
#define RAILGUN_MSG_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "msg/buffer_pool.h"
#include "msg/message.h"

namespace railgun::msg {

struct MessageView {
  Slice topic;
  int partition = 0;
  uint64_t offset = 0;
  Slice key;
  Slice payload;
  Micros publish_time = 0;
  Micros visible_time = 0;

  TopicPartition topic_partition() const {
    return TopicPartition{topic.ToString(), partition};
  }
  Message ToMessage() const {
    Message message;
    message.topic = topic.ToString();
    message.partition = partition;
    message.offset = offset;
    message.key = key.ToString();
    message.payload = payload.ToString();
    message.publish_time = publish_time;
    message.visible_time = visible_time;
    return message;
  }
};

class MessageBatch {
 public:
  MessageBatch() = default;
  MessageBatch(const MessageBatch&) = delete;
  MessageBatch& operator=(const MessageBatch&) = delete;

  void Clear() {
    views_.clear();
    owned_.clear();
    buffer_.reset();
  }

  bool empty() const { return views_.empty(); }
  size_t size() const { return views_.size(); }
  const MessageView& operator[](size_t i) const { return views_[i]; }
  const std::vector<MessageView>& views() const { return views_; }

  // Owned path (default Bus::PollBatch, replica fetches): take the row
  // messages and build views over them. Replaces current contents.
  void Adopt(std::vector<Message> messages) {
    Clear();
    owned_ = std::move(messages);
    views_.reserve(owned_.size());
    for (const Message& message : owned_) {
      MessageView view;
      view.topic = Slice(message.topic);
      view.partition = message.partition;
      view.offset = message.offset;
      view.key = Slice(message.key);
      view.payload = Slice(message.payload);
      view.publish_time = message.publish_time;
      view.visible_time = message.visible_time;
      views_.push_back(view);
    }
  }

  // Zero-copy path: decoders append views pointing into `buffer`, and
  // the batch keeps the pooled buffer alive until Clear().
  void BorrowBuffer(BufferRef buffer) { buffer_ = std::move(buffer); }
  std::vector<MessageView>* mutable_views() { return &views_; }
  bool zero_copy() const { return buffer_ != nullptr; }

 private:
  std::vector<MessageView> views_;
  std::vector<Message> owned_;
  BufferRef buffer_;
};

}  // namespace railgun::msg

#endif  // RAILGUN_MSG_BATCH_H_
