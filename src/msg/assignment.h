// Pluggable partition-assignment strategy invoked by the group
// coordinator on every rebalance (paper §4.2). Railgun installs its
// sticky, locality-aware strategy from src/engine; a round-robin
// fallback lives here for baselines and ablations.
#ifndef RAILGUN_MSG_ASSIGNMENT_H_
#define RAILGUN_MSG_ASSIGNMENT_H_

#include <map>
#include <string>
#include <vector>

#include "msg/message.h"

namespace railgun::msg {

struct MemberInfo {
  std::string member_id;
  // Opaque locality metadata supplied at subscription (Railgun packs the
  // physical node id here so the strategy can enforce its invariants).
  std::string metadata;
  // Partitions this member held in the previous generation.
  std::vector<TopicPartition> previous_assignment;
  // Topics this member subscribed to. Members of one group may be
  // mid-transition on different topic sets (a stream created while
  // some units haven't registered it yet); a strategy must never hand
  // a partition to a member that didn't subscribe to its topic — the
  // member would consume and drop the messages. Empty = all topics.
  std::vector<std::string> topics;
};

using Assignment = std::map<std::string, std::vector<TopicPartition>>;

class AssignmentStrategy {
 public:
  virtual ~AssignmentStrategy() = default;
  virtual Assignment Assign(const std::vector<MemberInfo>& members,
                            const std::vector<TopicPartition>& partitions) = 0;
  virtual std::string name() const = 0;
};

// Deterministic round-robin (the non-sticky baseline in the rebalance
// ablation).
class RoundRobinStrategy : public AssignmentStrategy {
 public:
  Assignment Assign(const std::vector<MemberInfo>& members,
                    const std::vector<TopicPartition>& partitions) override;
  std::string name() const override { return "round-robin"; }
};

}  // namespace railgun::msg

#endif  // RAILGUN_MSG_ASSIGNMENT_H_
