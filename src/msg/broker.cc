#include "msg/broker.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"
#include "trace/tracer.h"

namespace railgun::msg {

InProcessBus::InProcessBus(const BusOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Default()) {}

std::shared_ptr<InProcessBus::Topic> InProcessBus::FindTopic(
    const std::string& topic) const {
  MutexLock lock(&topics_mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : it->second;
}

void InProcessBus::NotifyArrival() {
  {
    MutexLock lock(&wake_mu_);
    ++wake_epoch_;
  }
  poll_wakes_.fetch_add(1, std::memory_order_relaxed);
  wake_cv_.NotifyAll();
}

Status InProcessBus::SetTopicRetention(const std::string& topic,
                                       uint64_t retention_messages) {
  auto t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("no topic: " + topic);
  for (auto& log : t->partitions) {
    MutexLock lock(&log->mu);
    log->retention_override = retention_messages;
    TruncateLocked(log.get());
  }
  return Status::OK();
}

uint64_t InProcessBus::BacklogHint() const {
  // Collapse the live read positions to a per-partition minimum first
  // (several group members or groups may track one partition), then
  // read end offsets outside group_mu_ — the totals are a sampled hint,
  // not a transactional snapshot.
  std::map<TopicPartition, uint64_t> min_pos;
  {
    MutexLock lock(&group_mu_);
    for (const auto& [id, consumer] : consumers_) {
      if (!consumer.alive) continue;
      for (const auto& [tp, pos] : consumer.positions) {
        auto it = min_pos.find(tp);
        if (it == min_pos.end()) {
          min_pos.emplace(tp, pos);
        } else if (pos < it->second) {
          it->second = pos;
        }
      }
    }
  }
  uint64_t backlog = 0;
  for (const auto& [tp, pos] : min_pos) {
    auto t = FindTopic(tp.topic);
    if (t == nullptr || tp.partition < 0 ||
        static_cast<size_t>(tp.partition) >= t->partitions.size()) {
      continue;
    }
    const uint64_t end = t->partitions[static_cast<size_t>(tp.partition)]
                             ->end_offset.load(std::memory_order_acquire);
    if (end > pos) backlog += end - pos;
  }
  return backlog;
}

Status InProcessBus::WakeConsumer(const std::string& consumer_id) {
  {
    MutexLock lock(&group_mu_);
    auto it = consumers_.find(consumer_id);
    if (it == consumers_.end()) return Status::NotFound("no consumer");
    it->second.interrupted = true;
  }
  NotifyArrival();
  return Status::OK();
}

void InProcessBus::Wake() {
  {
    MutexLock lock(&group_mu_);
    for (auto& [id, consumer] : consumers_) consumer.interrupted = true;
  }
  NotifyArrival();
}

Status InProcessBus::CreateTopic(const std::string& topic, int partitions) {
  if (partitions <= 0) {
    return Status::InvalidArgument("partitions must be positive");
  }
  {
    MutexLock lock(&topics_mu_);
    if (topics_.count(topic) > 0) {
      return Status::AlreadyExists("topic exists: " + topic);
    }
    auto t = std::make_shared<Topic>();
    for (int p = 0; p < partitions; ++p) {
      t->partitions.push_back(std::make_unique<PartitionLog>());
    }
    topics_[topic] = std::move(t);
  }

  // New partitions affect every group subscribed to this topic.
  {
    MutexLock lock(&group_mu_);
    for (auto& [name, group] : groups_) {
      for (const auto& member : group.members) {
        const auto& consumer = consumers_[member];
        if (std::find(consumer.topics.begin(), consumer.topics.end(),
                      topic) != consumer.topics.end()) {
          RebalanceGroupLocked(name);
          break;
        }
      }
    }
  }
  NotifyArrival();
  return Status::OK();
}

Status InProcessBus::DeleteTopic(const std::string& topic) {
  MutexLock lock(&topics_mu_);
  if (topics_.erase(topic) == 0) {
    return Status::NotFound("no topic: " + topic);
  }
  return Status::OK();
}

StatusOr<int> InProcessBus::NumPartitions(const std::string& topic) const {
  auto t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("no topic: " + topic);
  return static_cast<int>(t->partitions.size());
}

std::vector<TopicPartition> InProcessBus::PartitionsOf(
    const std::string& topic) const {
  std::vector<TopicPartition> result;
  auto t = FindTopic(topic);
  if (t == nullptr) return result;
  for (size_t p = 0; p < t->partitions.size(); ++p) {
    result.push_back({topic, static_cast<int>(p)});
  }
  return result;
}

void InProcessBus::AppendLocked(PartitionLog* log, const std::string& topic,
                                int partition, std::string key,
                                std::string payload, Micros now) {
  Message m;
  m.topic = topic;
  m.partition = partition;
  m.offset = log->end_offset.load(std::memory_order_relaxed);
  m.key = std::move(key);
  m.payload = std::move(payload);
  m.publish_time = now;
  m.visible_time = m.publish_time + options_.delivery_delay;
  log->messages.push_back(std::move(m));
  log->end_offset.store(log->messages.back().offset + 1,
                        std::memory_order_release);
  TruncateLocked(log);
}

void InProcessBus::TruncateLocked(PartitionLog* log) {
  const uint64_t cap = log->retention_override != 0
                           ? log->retention_override
                           : options_.retention_messages;
  if (cap == 0) return;
  if (log->messages.size() <= cap) return;
  const uint64_t cap_base =
      log->end_offset.load(std::memory_order_relaxed) - cap;
  const uint64_t floor =
      log->committed_floor.load(std::memory_order_acquire);
  const uint64_t new_base = std::min(cap_base, floor);
  while (log->base_offset < new_base && !log->messages.empty()) {
    log->messages.pop_front();
    ++log->base_offset;
  }
}

StatusOr<uint64_t> InProcessBus::Produce(const std::string& topic,
                                         const std::string& key,
                                         std::string payload) {
  auto t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("no topic: " + topic);
  const int partition =
      static_cast<int>(Hash64(key) % t->partitions.size());
  PartitionLog* log = t->partitions[static_cast<size_t>(partition)].get();
  uint64_t offset;
  {
    MutexLock lock(&log->mu);
    AppendLocked(log, topic, partition, key, std::move(payload),
                 clock_->NowMicros());
    offset = log->end_offset.load(std::memory_order_relaxed) - 1;
  }
  NotifyArrival();
  return offset;
}

StatusOr<uint64_t> InProcessBus::ProduceToPartition(const std::string& topic,
                                                    int partition,
                                                    std::string key,
                                                    std::string payload) {
  auto t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("no topic: " + topic);
  if (partition < 0 ||
      static_cast<size_t>(partition) >= t->partitions.size()) {
    return Status::InvalidArgument("bad partition");
  }
  PartitionLog* log = t->partitions[static_cast<size_t>(partition)].get();
  uint64_t offset;
  {
    MutexLock lock(&log->mu);
    AppendLocked(log, topic, partition, std::move(key), std::move(payload),
                 clock_->NowMicros());
    offset = log->end_offset.load(std::memory_order_relaxed) - 1;
  }
  NotifyArrival();
  return offset;
}

Status InProcessBus::ProduceBatch(const std::string& topic,
                                  std::vector<ProduceRecord> records) {
  if (records.empty()) return Status::OK();
  auto t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("no topic: " + topic);

  // Bucket records by partition in input order: same key -> same
  // partition, so per-key order is preserved within each bucket.
  std::vector<std::vector<size_t>> buckets(t->partitions.size());
  for (size_t i = 0; i < records.size(); ++i) {
    buckets[Hash64(records[i].key) % t->partitions.size()].push_back(i);
  }

  // The producer (front end / unit) leaves its trace context ambient so
  // the append hop records under the same trace.
  trace::Tracer* tracer = trace::Tracer::Global();
  const Micros append_start = tracer->enabled() ? tracer->NowMicros() : 0;
  const Micros now = clock_->NowMicros();
  for (size_t p = 0; p < buckets.size(); ++p) {
    if (buckets[p].empty()) continue;
    PartitionLog* log = t->partitions[p].get();
    MutexLock lock(&log->mu);
    for (size_t i : buckets[p]) {
      AppendLocked(log, topic, static_cast<int>(p),
                   std::move(records[i].key), std::move(records[i].payload),
                   now);
    }
  }
  if (append_start != 0) {
    tracer->Record(trace::Stage::kBrokerAppend,
                   trace::CurrentTraceContext(), append_start,
                   tracer->NowMicros());
  }
  NotifyArrival();
  return Status::OK();
}

Status InProcessBus::Subscribe(const std::string& consumer_id,
                               const std::string& group,
                               const std::vector<std::string>& topics,
                               const std::string& metadata,
                               AssignmentStrategy* strategy,
                               RebalanceListener listener) {
  {
    MutexLock lock(&group_mu_);
    ConsumerState& consumer = consumers_[consumer_id];
    consumer.group = group;
    consumer.topics = topics;
    consumer.metadata = metadata;
    consumer.listener = std::move(listener);
    consumer.last_heartbeat = clock_->NowMicros();
    consumer.alive = true;

    Group& g = groups_[group];
    if (g.strategy == nullptr) {
      g.strategy = strategy != nullptr ? strategy : &default_strategy_;
    }
    g.members.insert(consumer_id);
    RebalanceGroupLocked(group);
  }
  NotifyArrival();
  return Status::OK();
}

void InProcessBus::SetGroupStrategy(const std::string& group,
                                    AssignmentStrategy* strategy) {
  MutexLock lock(&group_mu_);
  Group& g = groups_[group];
  g.strategy = strategy;
  g.pinned_strategy = true;
}

Status InProcessBus::Unsubscribe(const std::string& consumer_id) {
  {
    MutexLock lock(&group_mu_);
    auto it = consumers_.find(consumer_id);
    if (it == consumers_.end()) return Status::NotFound("no consumer");
    const std::string group = it->second.group;
    std::vector<TopicPartition> tracked;
    for (const auto& [tp, pos] : it->second.positions) tracked.push_back(tp);
    consumers_.erase(it);
    for (const auto& tp : tracked) RecomputeCommittedFloorLocked(tp);
    auto git = groups_.find(group);
    if (git != groups_.end()) {
      git->second.members.erase(consumer_id);
      if (git->second.members.empty()) {
        if (git->second.pinned_strategy) {
          // Keep the group record: its pinned strategy must apply to
          // the next joiner (erasing would silently fall back to the
          // default policy).
          git->second.current.clear();
        } else {
          groups_.erase(git);
        }
      } else {
        RebalanceGroupLocked(group);
      }
    }
  }
  NotifyArrival();
  return Status::OK();
}

std::vector<TopicPartition> InProcessBus::GroupPartitionsLocked(
    const Group& group) const {
  std::set<std::string> topic_names;
  for (const auto& member : group.members) {
    auto it = consumers_.find(member);
    if (it == consumers_.end()) continue;
    for (const auto& t : it->second.topics) topic_names.insert(t);
  }
  std::vector<TopicPartition> partitions;
  for (const auto& name : topic_names) {
    auto t = FindTopic(name);
    if (t == nullptr) continue;
    for (size_t p = 0; p < t->partitions.size(); ++p) {
      partitions.push_back({name, static_cast<int>(p)});
    }
  }
  return partitions;
}

void InProcessBus::RebalanceGroupLocked(const std::string& group_name) {
  Group& group = groups_[group_name];
  std::vector<MemberInfo> members;
  for (const auto& member_id : group.members) {
    auto it = consumers_.find(member_id);
    if (it == consumers_.end() || !it->second.alive) continue;
    MemberInfo info;
    info.member_id = member_id;
    info.metadata = it->second.metadata;
    info.topics = it->second.topics;
    auto prev = group.current.find(member_id);
    if (prev != group.current.end()) {
      info.previous_assignment = prev->second;
    }
    members.push_back(std::move(info));
  }
  group.current = group.strategy->Assign(members,
                                         GroupPartitionsLocked(group));
  ++group.generation;
  ++rebalance_count_;
}

void InProcessBus::CheckLiveness() {
  MutexLock lock(&group_mu_);
  CheckLivenessLocked();
}

void InProcessBus::CheckLivenessLocked() {
  const Micros now = clock_->NowMicros();
  std::vector<std::string> dead;
  for (auto& [id, consumer] : consumers_) {
    if (consumer.alive &&
        now - consumer.last_heartbeat > options_.session_timeout) {
      consumer.alive = false;
      dead.push_back(id);
    }
  }
  std::set<std::string> groups_to_rebalance;
  for (const auto& id : dead) {
    ConsumerState& consumer = consumers_[id];
    for (const auto& [tp, pos] : consumer.positions) {
      RecomputeCommittedFloorLocked(tp);
    }
    auto git = groups_.find(consumer.group);
    if (git != groups_.end()) {
      git->second.members.erase(id);
      groups_to_rebalance.insert(git->first);
    }
  }
  for (const auto& g : groups_to_rebalance) RebalanceGroupLocked(g);
}

void InProcessBus::RecomputeCommittedFloorLocked(const TopicPartition& tp) {
  uint64_t floor = UINT64_MAX;
  for (const auto& [id, consumer] : consumers_) {
    if (!consumer.alive) continue;  // Fenced consumers don't pin the log.
    auto it = consumer.positions.find(tp);
    if (it != consumer.positions.end()) {
      floor = std::min(floor, it->second);
    }
  }
  auto t = FindTopic(tp.topic);
  if (t == nullptr || tp.partition < 0 ||
      static_cast<size_t>(tp.partition) >= t->partitions.size()) {
    return;
  }
  t->partitions[static_cast<size_t>(tp.partition)]->committed_floor.store(
      floor, std::memory_order_release);
}

Status InProcessBus::Poll(const std::string& consumer_id, size_t max_messages,
                          std::vector<Message>* out, Micros max_wait) {
  // The park deadline lives entirely in the bus clock's domain, the same
  // domain as message visibility: under a simulated clock both elapse in
  // virtual time, so a parked consumer never sleeps real-time slices
  // waiting on virtual-time visibility (or vice versa).
  const Micros deadline =
      clock_->NowMicros() + std::max<Micros>(max_wait, 0);
  trace::Tracer* tracer = trace::Tracer::Global();
  const Micros trace_poll_start =
      tracer->enabled() ? tracer->NowMicros() : 0;
  for (;;) {
    uint64_t epoch;
    {
      MutexLock lock(&wake_mu_);
      epoch = wake_epoch_;
    }
    bool delivered_callbacks = false;
    bool interrupted = false;
    Micros earliest_visible = 0;
    RAILGUN_RETURN_IF_ERROR(PollOnce(consumer_id, max_messages, out,
                                     &delivered_callbacks,
                                     &earliest_visible, &interrupted));
    if (!out->empty() || delivered_callbacks || interrupted ||
        max_wait <= 0) {
      if (trace_poll_start != 0 && !out->empty()) {
        // Park-to-delivery latency; no context travels into a park, so
        // this hop is histogram-only.
        tracer->Record(trace::Stage::kBrokerPoll, trace::TraceContext(),
                       trace_poll_start, tracer->NowMicros());
      }
      return Status::OK();
    }
    const Micros now = clock_->NowMicros();
    if (now >= deadline) return Status::OK();
    // Park until something arrives, but never longer than a bounded
    // real-time slice: the consumer keeps heartbeating (every PollOnce
    // refreshes it), re-checks delivery-delay visibility and the
    // deadline — which is how a simulated clock advanced by another
    // thread is noticed without any wake-up.
    Micros horizon = deadline;
    if (earliest_visible > 0 && earliest_visible < horizon) {
      horizon = earliest_visible;
    }
    const Micros delta = horizon - now;
    if (delta <= 0) continue;  // Became visible while scanning.
    Micros slice = 10 * kMicrosPerMilli;
    // Only a real-time clock's deltas are meaningful as condition-
    // variable wait bounds; a simulated clock re-checks each slice.
    if (clock_->IsRealTime() && delta < slice) slice = delta;
    MutexLock lock(&wake_mu_);
    if (wake_epoch_ == epoch) {
      poll_parks_.fetch_add(1, std::memory_order_relaxed);
      wake_cv_.WaitFor(&wake_mu_, slice);
    }
  }
}

Status InProcessBus::PollOnce(const std::string& consumer_id,
                              size_t max_messages, std::vector<Message>* out,
                              bool* delivered_callbacks,
                              Micros* earliest_visible, bool* interrupted) {
  out->clear();
  *delivered_callbacks = false;
  *earliest_visible = 0;
  *interrupted = false;
  std::vector<TopicPartition> revoked, assigned;
  RebalanceListener listener;

  {
    MutexLock lock(&group_mu_);
    auto it = consumers_.find(consumer_id);
    if (it == consumers_.end()) return Status::NotFound("no consumer");
    ConsumerState& consumer = it->second;
    if (!consumer.alive) return Status::Unavailable("consumer fenced");
    consumer.last_heartbeat = clock_->NowMicros();
    if (consumer.interrupted) {
      consumer.interrupted = false;
      *interrupted = true;
    }
    CheckLivenessLocked();

    Group& group = groups_[consumer.group];
    if (consumer.seen_generation != group.generation) {
      // Deliver the rebalance: revoke old, assign new.
      const auto new_it = group.current.find(consumer_id);
      const std::vector<TopicPartition> new_assignment =
          new_it == group.current.end() ? std::vector<TopicPartition>{}
                                        : new_it->second;
      for (const auto& tp : consumer.assignment) {
        if (std::find(new_assignment.begin(), new_assignment.end(), tp) ==
            new_assignment.end()) {
          revoked.push_back(tp);
        }
      }
      for (const auto& tp : new_assignment) {
        if (std::find(consumer.assignment.begin(), consumer.assignment.end(),
                      tp) == consumer.assignment.end()) {
          assigned.push_back(tp);
          if (consumer.positions.count(tp) == 0) {
            consumer.positions[tp] = 0;
            RecomputeCommittedFloorLocked(tp);
          }
        }
      }
      consumer.assignment = new_assignment;
      consumer.seen_generation = group.generation;
      listener = consumer.listener;
      *delivered_callbacks = true;
    }

    // A poll that observed a rebalance delivers only the callbacks: the
    // consumer may reposition (seek) newly assigned partitions before
    // its next fetch.
    const Micros now = clock_->NowMicros();
    if (!*delivered_callbacks) {
      for (const auto& tp : consumer.assignment) {
        if (out->size() >= max_messages) break;
        auto t = FindTopic(tp.topic);
        if (t == nullptr ||
            static_cast<size_t>(tp.partition) >= t->partitions.size()) {
          continue;
        }
        PartitionLog* log =
            t->partitions[static_cast<size_t>(tp.partition)].get();
        uint64_t& pos = consumer.positions[tp];
        MutexLock log_lock(&log->mu);
        if (pos < log->base_offset) pos = log->base_offset;  // Truncated.
        while (pos < log->end_offset.load(std::memory_order_relaxed) &&
               out->size() < max_messages) {
          const Message& m = log->messages[pos - log->base_offset];
          if (m.visible_time > now) {
            if (*earliest_visible == 0 ||
                m.visible_time < *earliest_visible) {
              *earliest_visible = m.visible_time;
            }
            break;
          }
          out->push_back(m);
          ++pos;
        }
      }
    }
  }

  if (*delivered_callbacks) {
    if (!revoked.empty() && listener.on_revoked) listener.on_revoked(revoked);
    if (!assigned.empty() && listener.on_assigned) {
      listener.on_assigned(assigned);
    }
  }
  return Status::OK();
}

Status InProcessBus::Fetch(const TopicPartition& tp, uint64_t offset,
                           size_t max_messages,
                           std::vector<Message>* out) const {
  out->clear();
  auto t = FindTopic(tp.topic);
  if (t == nullptr) return Status::NotFound("no topic: " + tp.topic);
  if (tp.partition < 0 ||
      static_cast<size_t>(tp.partition) >= t->partitions.size()) {
    return Status::InvalidArgument("bad partition");
  }
  PartitionLog* log = t->partitions[static_cast<size_t>(tp.partition)].get();
  const Micros now = clock_->NowMicros();
  MutexLock lock(&log->mu);
  uint64_t pos = std::max(offset, log->base_offset);
  const uint64_t end = log->end_offset.load(std::memory_order_relaxed);
  while (pos < end && out->size() < max_messages) {
    const Message& m = log->messages[pos - log->base_offset];
    if (m.visible_time > now) break;
    out->push_back(m);
    ++pos;
  }
  return Status::OK();
}

Status InProcessBus::Commit(const std::string& consumer_id,
                            const TopicPartition& tp, uint64_t next_offset) {
  MutexLock lock(&group_mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) return Status::NotFound("no consumer");
  it->second.positions[tp] = next_offset;
  RecomputeCommittedFloorLocked(tp);
  return Status::OK();
}

Status InProcessBus::Seek(const std::string& consumer_id,
                          const TopicPartition& tp, uint64_t offset) {
  // Clamp forward to the retention-trimmed head, exactly like Fetch: a
  // position inside truncated data is unreadable and — because committed
  // positions floor retention — would freeze truncation at the stale
  // offset forever.
  auto t = FindTopic(tp.topic);
  if (t != nullptr && tp.partition >= 0 &&
      static_cast<size_t>(tp.partition) < t->partitions.size()) {
    PartitionLog* log = t->partitions[static_cast<size_t>(tp.partition)].get();
    MutexLock lock(&log->mu);
    offset = std::max(offset, log->base_offset);
  }
  return Commit(consumer_id, tp, offset);
}

StatusOr<uint64_t> InProcessBus::EndOffset(const TopicPartition& tp) const {
  auto t = FindTopic(tp.topic);
  if (t == nullptr) return Status::NotFound("no topic");
  if (tp.partition < 0 ||
      static_cast<size_t>(tp.partition) >= t->partitions.size()) {
    return Status::InvalidArgument("bad partition");
  }
  return t->partitions[static_cast<size_t>(tp.partition)]
      ->end_offset.load(std::memory_order_acquire);
}

StatusOr<uint64_t> InProcessBus::BaseOffset(const TopicPartition& tp) const {
  auto t = FindTopic(tp.topic);
  if (t == nullptr) return Status::NotFound("no topic");
  if (tp.partition < 0 ||
      static_cast<size_t>(tp.partition) >= t->partitions.size()) {
    return Status::InvalidArgument("bad partition");
  }
  PartitionLog* log = t->partitions[static_cast<size_t>(tp.partition)].get();
  MutexLock lock(&log->mu);
  return log->base_offset;
}

Status InProcessBus::KillConsumer(const std::string& consumer_id) {
  {
    MutexLock lock(&group_mu_);
    auto it = consumers_.find(consumer_id);
    if (it == consumers_.end()) return Status::NotFound("no consumer");
    it->second.alive = false;
    for (const auto& [tp, pos] : it->second.positions) {
      RecomputeCommittedFloorLocked(tp);
    }
    auto git = groups_.find(it->second.group);
    if (git != groups_.end()) {
      git->second.members.erase(consumer_id);
      RebalanceGroupLocked(git->first);
    }
  }
  NotifyArrival();
  return Status::OK();
}

StatusOr<uint64_t> InProcessBus::PositionOf(const std::string& consumer_id,
                                            const TopicPartition& tp) const {
  MutexLock lock(&group_mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) return Status::NotFound("no consumer");
  auto pos = it->second.positions.find(tp);
  if (pos == it->second.positions.end()) {
    return Status::NotFound("consumer does not track " + tp.ToString());
  }
  return pos->second;
}

std::vector<TopicPartition> InProcessBus::AssignmentOf(
    const std::string& consumer_id) {
  MutexLock lock(&group_mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) return {};
  const Group& group = groups_[it->second.group];
  auto ait = group.current.find(consumer_id);
  return ait == group.current.end() ? std::vector<TopicPartition>{}
                                    : ait->second;
}

}  // namespace railgun::msg
