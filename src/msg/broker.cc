#include "msg/broker.h"

#include <algorithm>

#include "common/hash.h"

namespace railgun::msg {

MessageBus::MessageBus(const BusOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Default()) {}

Status MessageBus::CreateTopic(const std::string& topic, int partitions) {
  if (partitions <= 0) {
    return Status::InvalidArgument("partitions must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.count(topic) > 0) {
    return Status::AlreadyExists("topic exists: " + topic);
  }
  topics_[topic].partitions.resize(static_cast<size_t>(partitions));

  // New partitions affect every group subscribed to this topic.
  for (auto& [name, group] : groups_) {
    for (const auto& member : group.members) {
      const auto& consumer = consumers_[member];
      if (std::find(consumer.topics.begin(), consumer.topics.end(), topic) !=
          consumer.topics.end()) {
        RebalanceGroupLocked(name);
        break;
      }
    }
  }
  return Status::OK();
}

Status MessageBus::DeleteTopic(const std::string& topic) {
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.erase(topic) == 0) {
    return Status::NotFound("no topic: " + topic);
  }
  return Status::OK();
}

StatusOr<int> MessageBus::NumPartitions(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
  return static_cast<int>(it->second.partitions.size());
}

std::vector<TopicPartition> MessageBus::PartitionsOf(
    const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TopicPartition> result;
  auto it = topics_.find(topic);
  if (it == topics_.end()) return result;
  for (size_t p = 0; p < it->second.partitions.size(); ++p) {
    result.push_back({topic, static_cast<int>(p)});
  }
  return result;
}

StatusOr<uint64_t> MessageBus::Produce(const std::string& topic,
                                       const std::string& key,
                                       std::string payload) {
  int partition;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
    partition = static_cast<int>(Hash64(key) %
                                 it->second.partitions.size());
  }
  return ProduceToPartition(topic, partition, key, std::move(payload));
}

StatusOr<uint64_t> MessageBus::ProduceToPartition(const std::string& topic,
                                                  int partition,
                                                  std::string key,
                                                  std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
  if (partition < 0 ||
      static_cast<size_t>(partition) >= it->second.partitions.size()) {
    return Status::InvalidArgument("bad partition");
  }
  auto& log = it->second.partitions[static_cast<size_t>(partition)];
  Message m;
  m.topic = topic;
  m.partition = partition;
  m.offset = log.messages.size();
  m.key = std::move(key);
  m.payload = std::move(payload);
  m.publish_time = clock_->NowMicros();
  m.visible_time = m.publish_time + options_.delivery_delay;
  log.messages.push_back(std::move(m));
  return log.messages.back().offset;
}

Status MessageBus::Subscribe(const std::string& consumer_id,
                             const std::string& group,
                             const std::vector<std::string>& topics,
                             const std::string& metadata,
                             AssignmentStrategy* strategy,
                             RebalanceListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  ConsumerState& consumer = consumers_[consumer_id];
  consumer.group = group;
  consumer.topics = topics;
  consumer.metadata = metadata;
  consumer.listener = std::move(listener);
  consumer.last_heartbeat = clock_->NowMicros();
  consumer.alive = true;

  Group& g = groups_[group];
  if (g.strategy == nullptr) {
    g.strategy = strategy != nullptr ? strategy : &default_strategy_;
  }
  g.members.insert(consumer_id);
  RebalanceGroupLocked(group);
  return Status::OK();
}

Status MessageBus::Unsubscribe(const std::string& consumer_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) return Status::NotFound("no consumer");
  const std::string group = it->second.group;
  consumers_.erase(it);
  auto git = groups_.find(group);
  if (git != groups_.end()) {
    git->second.members.erase(consumer_id);
    if (git->second.members.empty()) {
      groups_.erase(git);
    } else {
      RebalanceGroupLocked(group);
    }
  }
  return Status::OK();
}

std::vector<TopicPartition> MessageBus::GroupPartitionsLocked(
    const Group& group) const {
  std::set<std::string> topic_names;
  for (const auto& member : group.members) {
    auto it = consumers_.find(member);
    if (it == consumers_.end()) continue;
    for (const auto& t : it->second.topics) topic_names.insert(t);
  }
  std::vector<TopicPartition> partitions;
  for (const auto& name : topic_names) {
    auto it = topics_.find(name);
    if (it == topics_.end()) continue;
    for (size_t p = 0; p < it->second.partitions.size(); ++p) {
      partitions.push_back({name, static_cast<int>(p)});
    }
  }
  return partitions;
}

void MessageBus::RebalanceGroupLocked(const std::string& group_name) {
  Group& group = groups_[group_name];
  std::vector<MemberInfo> members;
  for (const auto& member_id : group.members) {
    auto it = consumers_.find(member_id);
    if (it == consumers_.end() || !it->second.alive) continue;
    MemberInfo info;
    info.member_id = member_id;
    info.metadata = it->second.metadata;
    auto prev = group.current.find(member_id);
    if (prev != group.current.end()) {
      info.previous_assignment = prev->second;
    }
    members.push_back(std::move(info));
  }
  group.current = group.strategy->Assign(members,
                                         GroupPartitionsLocked(group));
  ++group.generation;
  ++rebalance_count_;
}

void MessageBus::CheckLiveness() {
  std::lock_guard<std::mutex> lock(mu_);
  CheckLivenessLocked();
}

void MessageBus::CheckLivenessLocked() {
  const Micros now = clock_->NowMicros();
  std::vector<std::string> dead;
  for (auto& [id, consumer] : consumers_) {
    if (consumer.alive &&
        now - consumer.last_heartbeat > options_.session_timeout) {
      consumer.alive = false;
      dead.push_back(id);
    }
  }
  std::set<std::string> groups_to_rebalance;
  for (const auto& id : dead) {
    auto git = groups_.find(consumers_[id].group);
    if (git != groups_.end()) {
      git->second.members.erase(id);
      groups_to_rebalance.insert(git->first);
    }
  }
  for (const auto& g : groups_to_rebalance) RebalanceGroupLocked(g);
}

Status MessageBus::Poll(const std::string& consumer_id, size_t max_messages,
                        std::vector<Message>* out) {
  out->clear();
  std::vector<TopicPartition> revoked, assigned;
  RebalanceListener listener;
  bool deliver_callbacks = false;

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = consumers_.find(consumer_id);
    if (it == consumers_.end()) return Status::NotFound("no consumer");
    ConsumerState& consumer = it->second;
    if (!consumer.alive) return Status::Unavailable("consumer fenced");
    consumer.last_heartbeat = clock_->NowMicros();
    CheckLivenessLocked();

    Group& group = groups_[consumer.group];
    if (consumer.seen_generation != group.generation) {
      // Deliver the rebalance: revoke old, assign new.
      const auto new_it = group.current.find(consumer_id);
      const std::vector<TopicPartition> new_assignment =
          new_it == group.current.end() ? std::vector<TopicPartition>{}
                                        : new_it->second;
      for (const auto& tp : consumer.assignment) {
        if (std::find(new_assignment.begin(), new_assignment.end(), tp) ==
            new_assignment.end()) {
          revoked.push_back(tp);
        }
      }
      for (const auto& tp : new_assignment) {
        if (std::find(consumer.assignment.begin(), consumer.assignment.end(),
                      tp) == consumer.assignment.end()) {
          assigned.push_back(tp);
          if (consumer.positions.count(tp) == 0) {
            consumer.positions[tp] = 0;
          }
        }
      }
      consumer.assignment = new_assignment;
      consumer.seen_generation = group.generation;
      listener = consumer.listener;
      deliver_callbacks = true;
    }

    // A poll that observed a rebalance delivers only the callbacks: the
    // consumer may reposition (seek) newly assigned partitions before
    // its next fetch.
    const Micros now = clock_->NowMicros();
    if (!deliver_callbacks)
    for (const auto& tp : consumer.assignment) {
      if (out->size() >= max_messages) break;
      auto topic_it = topics_.find(tp.topic);
      if (topic_it == topics_.end()) continue;
      const auto& log =
          topic_it->second.partitions[static_cast<size_t>(tp.partition)];
      uint64_t& pos = consumer.positions[tp];
      while (pos < log.messages.size() && out->size() < max_messages) {
        const Message& m = log.messages[pos];
        if (m.visible_time > now) break;
        out->push_back(m);
        ++pos;
      }
    }
  }

  if (deliver_callbacks) {
    if (!revoked.empty() && listener.on_revoked) listener.on_revoked(revoked);
    if (!assigned.empty() && listener.on_assigned) {
      listener.on_assigned(assigned);
    }
  }
  return Status::OK();
}

Status MessageBus::Fetch(const TopicPartition& tp, uint64_t offset,
                         size_t max_messages,
                         std::vector<Message>* out) const {
  out->clear();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(tp.topic);
  if (it == topics_.end()) return Status::NotFound("no topic: " + tp.topic);
  if (tp.partition < 0 ||
      static_cast<size_t>(tp.partition) >= it->second.partitions.size()) {
    return Status::InvalidArgument("bad partition");
  }
  const auto& log = it->second.partitions[static_cast<size_t>(tp.partition)];
  const Micros now = clock_->NowMicros();
  for (uint64_t i = offset;
       i < log.messages.size() && out->size() < max_messages; ++i) {
    if (log.messages[i].visible_time > now) break;
    out->push_back(log.messages[i]);
  }
  return Status::OK();
}

Status MessageBus::Commit(const std::string& consumer_id,
                          const TopicPartition& tp, uint64_t next_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) return Status::NotFound("no consumer");
  it->second.positions[tp] = next_offset;
  return Status::OK();
}

Status MessageBus::Seek(const std::string& consumer_id,
                        const TopicPartition& tp, uint64_t offset) {
  return Commit(consumer_id, tp, offset);
}

StatusOr<uint64_t> MessageBus::EndOffset(const TopicPartition& tp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(tp.topic);
  if (it == topics_.end()) return Status::NotFound("no topic");
  return static_cast<uint64_t>(
      it->second.partitions[static_cast<size_t>(tp.partition)]
          .messages.size());
}

Status MessageBus::KillConsumer(const std::string& consumer_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) return Status::NotFound("no consumer");
  it->second.alive = false;
  auto git = groups_.find(it->second.group);
  if (git != groups_.end()) {
    git->second.members.erase(consumer_id);
    RebalanceGroupLocked(git->first);
  }
  return Status::OK();
}

std::vector<TopicPartition> MessageBus::AssignmentOf(
    const std::string& consumer_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) return {};
  const Group& group = groups_[it->second.group];
  auto ait = group.current.find(consumer_id);
  return ait == group.current.end() ? std::vector<TopicPartition>{}
                                    : ait->second;
}

}  // namespace railgun::msg
