// Pooled, refcounted receive buffers for the remote wire hot path.
//
// A PooledBuffer is one contiguous region carved from a private arena;
// Resize() rewinds the arena (keeping its largest block) before carving
// again, so once a buffer has grown to the working frame size, refilling
// it allocates nothing. The pool hands buffers out behind a shared_ptr
// whose deleter returns them to a bounded freelist: decoded Slice views
// (FrameView, MessageBatch) hold the ref, and the buffer recycles
// exactly when the last view is dropped.
//
// Counters are plain atomics — msg/ does not depend on introspect;
// owners (meta::Broker, meta::WorkerNode) export them as probes.
#ifndef RAILGUN_MSG_BUFFER_POOL_H_
#define RAILGUN_MSG_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/mutex.h"
#include "common/slice.h"

namespace railgun::msg {

class PooledBuffer {
 public:
  // Discards previous contents (and any views into them) and returns a
  // writable region of exactly `bytes`. Sets *allocated when the arena
  // had to grow — false once the buffer is warm.
  char* Resize(size_t bytes, bool* allocated);

  char* data() { return data_; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  Slice slice() const { return Slice(data_, size_); }

 private:
  Arena arena_;
  char* data_ = nullptr;
  size_t size_ = 0;
};

// Shared handle to a pooled buffer; dropping the last ref returns the
// buffer to its pool (or frees it if the pool is gone).
using BufferRef = std::shared_ptr<PooledBuffer>;

class BufferPool {
 public:
  // Up to `max_idle` buffers are retained for reuse; excess returns are
  // freed.
  explicit BufferPool(size_t max_idle = 8);

  // Returns a buffer resized to `bytes`. A hit reuses a warm pooled
  // buffer without any heap allocation; a miss constructed or grew one.
  BufferRef Acquire(size_t bytes);

  uint64_t hits() const { return state_->hits.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return state_->misses.load(std::memory_order_relaxed);
  }
  uint64_t bytes() const {
    return state_->bytes.load(std::memory_order_relaxed);
  }
  size_t idle() const;

 private:
  // Shared with the handed-out deleters so outstanding refs stay safe
  // even if the pool itself is destroyed first.
  struct State {
    Mutex mu{kRankMsgBufferPool};
    size_t max_idle;
    std::vector<std::unique_ptr<PooledBuffer>> free_list GUARDED_BY(mu);
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> bytes{0};
  };

  std::shared_ptr<State> state_;
};

}  // namespace railgun::msg

#endif  // RAILGUN_MSG_BUFFER_POOL_H_
