#include "api/client.h"

#include <unistd.h>

#include <cstdio>

#include <algorithm>

#include "api/remote_ddl.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "meta/meta_client.h"
#include "msg/remote/remote_bus.h"
#include "msg/remote/wire.h"
#include "ops/pipeline.h"
#include "query/ddl.h"
#include "trace/tracer.h"

namespace railgun::api {

namespace {

// Process-unique id for a remote client: names its reply topics and
// salts its request ids, so independent clients (and restarts of the
// same client) never collide on the shared bus. The per-process
// counter keeps clients created within the same microsecond distinct.
std::string RandomClientId() {
  static std::atomic<uint64_t> sequence{0};
  Random64 rng(static_cast<uint64_t>(MonotonicClock::Default()->NowMicros()) ^
               (static_cast<uint64_t>(::getpid()) << 32) ^
               (sequence.fetch_add(1) << 16));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(rng.Next()));
  return buf;
}

// Completes a request's root span: records client.submit — forced when
// the request crossed the slow threshold — and logs slow requests the
// head sampler would otherwise have skipped.
void FinishRootSpan(const trace::TraceContext& ctx, Micros start_us,
                    const std::string& stream_name) {
  trace::Tracer* tracer = trace::Tracer::Global();
  if (!ctx.valid() || !tracer->enabled()) return;
  const Micros end = tracer->NowMicros();
  const Micros elapsed = end >= start_us ? end - start_us : 0;
  const bool slow = tracer->SlowExceeded(elapsed);
  tracer->RecordRoot(trace::Stage::kClientSubmit, ctx, start_us, end, slow);
  if (slow) {
    RAILGUN_LOG(kWarn, "trace",
                "slow request on %s: %lld us (threshold %lld us), trace "
                "%016llx%016llx force-sampled",
                stream_name.c_str(), static_cast<long long>(elapsed),
                static_cast<long long>(tracer->slow_threshold_us()),
                static_cast<unsigned long long>(ctx.trace_hi),
                static_cast<unsigned long long>(ctx.trace_lo));
  }
}

}  // namespace

engine::ClusterOptions ClientOptions::ToClusterOptions() const {
  engine::ClusterOptions out = engine;
  out.num_nodes = num_nodes;
  out.node.num_processor_units = processor_units_per_node;
  out.replication_factor = replication_factor;
  out.base_dir = base_dir;
  out.node.frontend.request_timeout = request_timeout;
  out.node.frontend.admission = admission;
  if (clock != nullptr) out.clock = clock;
  return out;
}

Client::Client(const ClientOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Default()) {
  trace::Tracer::InitFromEnvOnce();
  client_id_ = RandomClientId();
  // Reservoirs deduplicate events by id (paper §4.1.1), so ids minted
  // by independent clients sharing one cluster must not collide: each
  // client mints from a random 64-bit base (base+1, base+2, ...), so a
  // collision needs two clients' id ranges to overlap — vanishingly
  // unlikely, where a narrow per-client prefix would alias entire id
  // streams on a prefix collision.
  event_id_base_ = Hash64(client_id_);
  if (options_.remote_address.empty()) {
    owned_cluster_.reset(new engine::Cluster(options.ToClusterOptions()));
    cluster_ = owned_cluster_.get();
  } else {
    msg::remote::RemoteBusOptions bus_options;
    bus_options.address = options_.remote_address;
    // One clock domain end to end: reconnect backoff windows must
    // elapse on the same clock as the front end's deadlines.
    bus_options.clock = clock_;
    remote_bus_.reset(new msg::remote::RemoteBus(bus_options));
    engine::FrontEndOptions frontend_options;
    frontend_options.request_timeout = options_.request_timeout;
    frontend_options.admission = options_.admission;
    remote_frontend_.reset(new engine::FrontEnd(
        frontend_options, "client-" + client_id_, remote_bus_.get(),
        clock_));
    remote_ddl_.reset(
        new RemoteDdlClient(remote_bus_.get(), client_id_, clock_));
    // The stub shares the bus's control connection (and so its
    // reconnect backoff and clock domain).
    meta_.reset(new meta::MetaClient(remote_bus_.get()));
  }
  if (!remote()) {
    // The built-in internals stream is queryable out of the box in
    // local mode: preloading its definition lets AddMetric validate
    // against it (the cluster-side registration rides along with the
    // first metric). Remote mode instead resolves it like any foreign
    // stream — the broker pre-registers it in the metadata service —
    // so the client's front end learns the routing too.
    engine::StreamDef internals = introspect::InternalsStreamDef();
    streams_.emplace(internals.name, std::move(internals));
  }
  if (options_.noreply_tokens_per_sec > 0) {
    noreply_bucket_ = std::make_unique<engine::TokenBucket>(
        options_.noreply_tokens_per_sec, options_.noreply_burst, clock_);
  }
  admin_.reset(new Admin(cluster_, meta_.get()));
}

Client::Client(engine::Cluster* cluster)
    : cluster_(cluster),
      admin_(new Admin(cluster_)),
      clock_(MonotonicClock::Default()) {
  // Attached clients share the cluster with other clients by
  // definition — their auto-minted event ids need the same collision
  // protection as the owning constructor's.
  trace::Tracer::InitFromEnvOnce();
  client_id_ = RandomClientId();
  event_id_base_ = Hash64(client_id_);
  engine::StreamDef internals = introspect::InternalsStreamDef();
  streams_.emplace(internals.name, std::move(internals));
}

Client::~Client() { Stop(); }

Status Client::Start() {
  if (started_) return Status::OK();
  if (remote()) {
    RAILGUN_RETURN_IF_ERROR(remote_bus_->Connect());
    RAILGUN_RETURN_IF_ERROR(remote_frontend_->Start());
    started_ = true;
    return Status::OK();
  }
  if (owned_cluster_ == nullptr) return Status::OK();
  RAILGUN_RETURN_IF_ERROR(owned_cluster_->Start());
  started_ = true;
  return Status::OK();
}

void Client::Stop() {
  if (!started_) return;
  if (remote()) {
    remote_frontend_->Stop();
    remote_ddl_->Shutdown();
    started_ = false;
    return;
  }
  if (owned_cluster_ == nullptr) return;
  owned_cluster_->Stop();
  started_ = false;
}

// --- Stream DDL ------------------------------------------------------

Status Client::AddStream(engine::StreamDef stream) {
  {
    MutexLock lock(&mu_);
    if (streams_.count(stream.name) > 0) {
      return Status::AlreadyExists("stream already exists: " + stream.name);
    }
    RAILGUN_RETURN_IF_ERROR(cluster_->RegisterStream(stream));
    streams_[stream.name] = std::move(stream);
  }
  return WaitForRegistration(options_.request_timeout);
}

Status Client::AddMetric(query::QueryDef metric) {
  {
    MutexLock lock(&mu_);
    auto it = streams_.find(metric.stream);
    if (it == streams_.end()) {
      return Status::NotFound("unknown stream: " + metric.stream);
    }
    // Validate against a copy; the client's view must not change unless
    // the cluster accepted the registration.
    engine::StreamDef updated = it->second;
    // Fail fast when no partitioner covers the metric's group-by set
    // (paper §4: metrics hash by a subset of the partitioners).
    RAILGUN_RETURN_IF_ERROR(updated.PartitionerForQuery(metric).status());
    for (const auto& existing : updated.queries) {
      if (existing.raw == metric.raw) {
        return Status::AlreadyExists("metric already registered: " +
                                     metric.raw);
      }
    }
    updated.queries.push_back(std::move(metric));
    RAILGUN_RETURN_IF_ERROR(cluster_->RegisterStream(updated));
    it->second = std::move(updated);
  }
  return WaitForRegistration(options_.request_timeout);
}

Status Client::AddPipelineLocal(query::PipelineSpec pipeline) {
  {
    MutexLock lock(&mu_);
    auto it = streams_.find(pipeline.stream);
    if (it == streams_.end()) {
      return Status::NotFound("unknown stream: " + pipeline.stream);
    }
    engine::StreamDef updated = it->second;
    for (const auto& existing : updated.pipelines) {
      if (existing.raw == pipeline.raw) {
        return Status::AlreadyExists("pipeline already registered: " +
                                     pipeline.raw);
      }
    }
    // Compile-validate against the source schema before shipping (the
    // throwaway instance's counters are pipeline-local).
    RAILGUN_RETURN_IF_ERROR(
        ops::Pipeline::Compile(pipeline.raw,
                               reservoir::Schema(0, updated.fields),
                               /*registry=*/nullptr)
            .status());
    updated.pipelines.push_back(std::move(pipeline));
    RAILGUN_RETURN_IF_ERROR(cluster_->RegisterStream(updated));
    it->second = std::move(updated);
  }
  return WaitForRegistration(options_.request_timeout);
}

Status Client::RemoteAddPipeline(const std::string& statement,
                                 query::PipelineSpec pipeline) {
  RAILGUN_RETURN_IF_ERROR(EnsureStream(pipeline.stream));
  {
    MutexLock lock(&mu_);
    auto it = streams_.find(pipeline.stream);
    if (it == streams_.end()) {
      return Status::NotFound("unknown stream: " + pipeline.stream);
    }
    for (const auto& existing : it->second.pipelines) {
      if (existing.raw == pipeline.raw) {
        return Status::AlreadyExists("pipeline already registered: " +
                                     pipeline.raw);
      }
    }
    RAILGUN_RETURN_IF_ERROR(
        ops::Pipeline::Compile(pipeline.raw,
                               reservoir::Schema(0, it->second.fields),
                               /*registry=*/nullptr)
            .status());
  }
  // As with streams/metrics, AlreadyExists still syncs the local view.
  const Status executed =
      remote_ddl_->Execute(statement, options_.request_timeout);
  if (!executed.ok() && !executed.IsAlreadyExists()) return executed;
  {
    MutexLock lock(&mu_);
    auto it = streams_.find(pipeline.stream);
    if (it != streams_.end()) {
      bool known = false;
      for (const auto& existing : it->second.pipelines) {
        known = known || existing.raw == pipeline.raw;
      }
      if (!known) it->second.pipelines.push_back(std::move(pipeline));
    }
  }
  return executed;
}

Status Client::AddPipeline(const std::string& statement) {
  RAILGUN_ASSIGN_OR_RETURN(query::DdlStatement ddl,
                           query::ParseDdl(statement));
  if (ddl.kind != query::DdlKind::kAddPipeline) {
    return Status::InvalidArgument(
        "AddPipeline() takes ADD PIPELINE statements");
  }
  if (remote()) return RemoteAddPipeline(statement, std::move(ddl.pipeline));
  return AddPipelineLocal(std::move(ddl.pipeline));
}

std::vector<query::PipelineSpec> Client::ListPipelines() const {
  MutexLock lock(&mu_);
  std::vector<query::PipelineSpec> out;
  for (const auto& [name, stream] : streams_) {
    out.insert(out.end(), stream.pipelines.begin(), stream.pipelines.end());
  }
  return out;
}

StatusOr<std::unique_ptr<Subscription>> Client::Subscribe(
    const std::string& statement) {
  if (!started_) return Status::Unavailable("client not started");
  if (remote()) {
    if (subscribe_unsupported_.load(std::memory_order_relaxed)) {
      return Status::NotSupported(
          "server predates live subscriptions (sticky downgrade)");
    }
    ops::SubCreateRequest request;
    request.statement = statement;
    std::string payload, result;
    ops::EncodeSubCreateRequest(request, &payload);
    const Status created = remote_bus_->CallOpcode(
        static_cast<uint8_t>(msg::remote::OpCode::kSubCreate), payload,
        &result);
    if (created.IsNotSupported()) {
      subscribe_unsupported_.store(true, std::memory_order_relaxed);
      return created;
    }
    RAILGUN_RETURN_IF_ERROR(created);
    ops::SubCreateReply reply;
    RAILGUN_RETURN_IF_ERROR(ops::DecodeSubCreateReply(Slice(result), &reply));
    return std::unique_ptr<Subscription>(
        new Subscription(remote_bus_.get(), reply.sub_id));
  }
  ops::SubscriptionHub* hub = cluster_->subscription_hub();
  if (hub == nullptr) {
    return Status::NotSupported("cluster has no subscription hub");
  }
  RAILGUN_ASSIGN_OR_RETURN(const uint64_t id, hub->Create(statement));
  return std::unique_ptr<Subscription>(new Subscription(hub, id));
}

Status Client::RemoteAddStream(const std::string& statement,
                               engine::StreamDef stream) {
  {
    MutexLock lock(&mu_);
    if (streams_.count(stream.name) > 0) {
      return Status::AlreadyExists("stream already exists: " + stream.name);
    }
  }
  // The broker's metadata service replies only after the cluster
  // applied the statement on every alive unit, so no second
  // registration wait is needed.
  // AlreadyExists means the cluster has the stream (e.g. this client
  // reattached after a restart): still register it locally so the
  // client can bind and submit rows, and let the caller see the typed
  // status.
  const Status executed =
      remote_ddl_->Execute(statement, options_.request_timeout);
  if (!executed.ok() && !executed.IsAlreadyExists()) return executed;
  // Teach the client's own front end the fan-out routing (topic
  // creation over the remote bus is idempotent).
  RAILGUN_RETURN_IF_ERROR(remote_frontend_->RegisterStream(stream));
  {
    MutexLock lock(&mu_);
    streams_[stream.name] = std::move(stream);
  }
  return executed;
}

Status Client::RemoteAddMetric(const std::string& statement,
                               query::QueryDef metric) {
  // Foreign streams are fair game: fetch the definition from the
  // metadata service before validating the metric against it.
  RAILGUN_RETURN_IF_ERROR(EnsureStream(metric.stream));
  {
    MutexLock lock(&mu_);
    auto it = streams_.find(metric.stream);
    if (it == streams_.end()) {
      return Status::NotFound("unknown stream: " + metric.stream);
    }
    RAILGUN_RETURN_IF_ERROR(
        it->second.PartitionerForQuery(metric).status());
    for (const auto& existing : it->second.queries) {
      if (existing.raw == metric.raw) {
        return Status::AlreadyExists("metric already registered: " +
                                     metric.raw);
      }
    }
  }
  // As with streams, AlreadyExists still syncs the client's local view
  // (the cluster knows this metric from a previous attachment).
  const Status executed =
      remote_ddl_->Execute(statement, options_.request_timeout);
  if (!executed.ok() && !executed.IsAlreadyExists()) return executed;
  {
    MutexLock lock(&mu_);
    auto it = streams_.find(metric.stream);
    if (it != streams_.end()) {
      it->second.queries.push_back(std::move(metric));
    }
  }
  return executed;
}

Status Client::EnsureStream(const std::string& stream) {
  const Micros now = clock_->NowMicros();
  {
    MutexLock lock(&mu_);
    if (streams_.count(stream) > 0) return Status::OK();
    // Negative cache: a producer stuck on a misspelled stream name
    // must keep failing on a map lookup, not turn every submit into a
    // metadata round trip.
    auto it = unknown_streams_.find(stream);
    if (it != unknown_streams_.end()) {
      if (now < it->second) {
        return Status::NotFound("unknown stream: " + stream);
      }
      unknown_streams_.erase(it);
    }
  }
  if (!remote()) return Status::NotFound("unknown stream: " + stream);
  auto def_or = meta_->GetStream(stream);
  if (!def_or.ok()) {
    // Transport failures stay Unavailable and wire corruption stays
    // Corruption (both retryable). A broker without a metadata service
    // answers the RPC itself with a typed NotSupported ("unknown
    // opcode"); that and a plain miss both mean the stream cannot be
    // resolved — keep the submit paths' typed NotFound.
    const Status& status = def_or.status();
    if (!status.IsNotFound() && !status.IsNotSupported()) return status;
    MutexLock lock(&mu_);
    // The negative cache is bounded: expired entries are swept on
    // insert, so it holds at most the distinct unknown names of the
    // last TTL window.
    for (auto it = unknown_streams_.begin();
         it != unknown_streams_.end();) {
      it = now < it->second ? std::next(it) : unknown_streams_.erase(it);
    }
    unknown_streams_[stream] = now + options_.unknown_stream_ttl;
    return Status::NotFound("unknown stream: " + stream + " (metadata: " +
                            status.ToString() + ")");
  }
  engine::StreamDef def = std::move(def_or).value();
  RAILGUN_RETURN_IF_ERROR(remote_frontend_->RegisterStream(def));
  MutexLock lock(&mu_);
  streams_.emplace(def.name, std::move(def));
  unknown_streams_.erase(stream);
  return Status::OK();
}

Status Client::WaitForRegistration(Micros timeout) {
  const Micros deadline = clock_->NowMicros() + timeout;
  while (true) {
    bool pending = false;
    const int n = cluster_->num_nodes();
    for (int i = 0; i < n && !pending; ++i) {
      engine::RailgunNode* node = cluster_->node(i);
      if (!node->alive()) continue;  // Dead units never drain.
      for (int u = 0; u < node->num_units(); ++u) {
        if (node->unit(u)->has_pending_streams()) {
          pending = true;
          break;
        }
      }
    }
    if (!pending) return Status::OK();
    if (clock_->NowMicros() >= deadline) {
      return Status::Unavailable(
          "stream registration accepted but not yet applied by every "
          "processor unit");
    }
    clock_->SleepMicros(kMicrosPerMilli);
  }
}

Status Client::CreateStream(const std::string& ddl) {
  RAILGUN_ASSIGN_OR_RETURN(query::StreamSchemaDef schema,
                           query::ParseCreateStream(ddl));
  engine::StreamDef stream;
  stream.name = std::move(schema.name);
  stream.fields = std::move(schema.fields);
  stream.partitioners = std::move(schema.partitioners);
  stream.partitions_per_topic = schema.partitions_per_topic;
  if (remote()) return RemoteAddStream(ddl, std::move(stream));
  return AddStream(std::move(stream));
}

Status Client::Query(const std::string& statement) {
  if (query::IsDdlStatement(statement)) {
    RAILGUN_ASSIGN_OR_RETURN(query::DdlStatement ddl,
                             query::ParseDdl(statement));
    if (ddl.kind != query::DdlKind::kAddMetric) {
      return Status::InvalidArgument(
          "Query() takes ADD METRIC / SELECT statements; use "
          "CreateStream() for CREATE STREAM");
    }
    if (remote()) return RemoteAddMetric(statement, std::move(ddl.metric));
    return AddMetric(std::move(ddl.metric));
  }
  RAILGUN_ASSIGN_OR_RETURN(query::QueryDef metric,
                           query::ParseQuery(statement));
  if (remote()) return RemoteAddMetric(statement, std::move(metric));
  return AddMetric(std::move(metric));
}

Status Client::Execute(const std::string& statement) {
  if (query::IsDdlStatement(statement)) {
    RAILGUN_ASSIGN_OR_RETURN(query::DdlStatement ddl,
                             query::ParseDdl(statement));
    if (ddl.kind == query::DdlKind::kCreateStream) {
      engine::StreamDef stream;
      stream.name = std::move(ddl.create_stream.name);
      stream.fields = std::move(ddl.create_stream.fields);
      stream.partitioners = std::move(ddl.create_stream.partitioners);
      stream.partitions_per_topic = ddl.create_stream.partitions_per_topic;
      if (remote()) return RemoteAddStream(statement, std::move(stream));
      return AddStream(std::move(stream));
    }
    if (ddl.kind == query::DdlKind::kAddPipeline) {
      if (remote()) {
        return RemoteAddPipeline(statement, std::move(ddl.pipeline));
      }
      return AddPipelineLocal(std::move(ddl.pipeline));
    }
    if (remote()) return RemoteAddMetric(statement, std::move(ddl.metric));
    return AddMetric(std::move(ddl.metric));
  }
  if (query::IsSubscribeStatement(statement)) {
    return Status::InvalidArgument(
        "SUBSCRIBE returns a live tail; use Client::Subscribe()");
  }
  RAILGUN_ASSIGN_OR_RETURN(query::QueryDef metric,
                           query::ParseQuery(statement));
  if (remote()) return RemoteAddMetric(statement, std::move(metric));
  return AddMetric(std::move(metric));
}

std::vector<std::string> Client::ListStreams() const {
  std::vector<std::string> names;
  {
    MutexLock lock(&mu_);
    names.reserve(streams_.size());
    for (const auto& [name, stream] : streams_) names.push_back(name);
  }
  if (remote() && meta_ != nullptr) {
    // Merge in streams other clients declared (best effort: a broker
    // without a metadata service just yields the local view).
    auto view = meta_->GetView();
    if (view.ok()) {
      names.insert(names.end(), view.value().streams.begin(),
                   view.value().streams.end());
      std::sort(names.begin(), names.end());
      names.erase(std::unique(names.begin(), names.end()), names.end());
    }
  }
  return names;
}

StatusOr<reservoir::Schema> Client::GetSchema(const std::string& stream) {
  if (remote()) RAILGUN_RETURN_IF_ERROR(EnsureStream(stream));
  MutexLock lock(&mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + stream);
  }
  return reservoir::Schema(0, it->second.fields);
}

// --- Event submission ------------------------------------------------

StatusOr<reservoir::Event> Client::BindRow(const std::string& stream_name,
                                           const Row& row) const {
  std::vector<reservoir::SchemaField> fields;
  {
    MutexLock lock(&mu_);
    auto it = streams_.find(stream_name);
    if (it == streams_.end()) {
      return Status::NotFound("unknown stream: " + stream_name);
    }
    fields = it->second.fields;
  }
  const reservoir::Schema schema(0, std::move(fields));
  RAILGUN_ASSIGN_OR_RETURN(reservoir::Event event, row.Bind(schema));
  event.timestamp =
      row.has_timestamp() ? row.timestamp() : clock_->NowMicros();
  // Wrapping add: the counter walks a contiguous range from the
  // client's random 64-bit base.
  event.id = row.has_id() ? row.id()
                          : event_id_base_ + next_event_id_.fetch_add(1);
  return event;
}

engine::FrontEnd* Client::PickFrontEnd() {
  if (remote()) return started_ ? remote_frontend_.get() : nullptr;
  const int n = cluster_->num_nodes();
  if (n == 0) return nullptr;
  // Round-robin over alive nodes so attached multi-node clusters spread
  // client load the way independent per-node clients would.
  const uint64_t start = next_frontend_.fetch_add(1);
  for (int i = 0; i < n; ++i) {
    engine::RailgunNode* node =
        cluster_->node(static_cast<int>((start + i) % n));
    if (node->alive()) return node->frontend();
  }
  return nullptr;
}

ResultFuture Client::Submit(const std::string& stream_name, const Row& row) {
  auto reject = [](Status status) {
    EventResult result;
    result.status = std::move(status);
    return ResultFuture::Ready(std::move(result));
  };

  if (remote()) {
    const Status known = EnsureStream(stream_name);
    if (!known.ok()) return reject(known);
  }
  auto event_or = BindRow(stream_name, row);
  if (!event_or.ok()) return reject(event_or.status());

  engine::FrontEnd* frontend = PickFrontEnd();
  if (frontend == nullptr) {
    return reject(Status::Unavailable("no alive node to submit to"));
  }

  // Root of the distributed trace: minted here, carried through the
  // event envelope, completed when the reply lands.
  trace::Tracer* tracer = trace::Tracer::Global();
  const trace::TraceContext trace_ctx = tracer->Mint();
  const Micros trace_start = trace_ctx.valid() ? tracer->NowMicros() : 0;

  auto state = std::make_shared<ResultFuture::State>();
  const Status submitted = frontend->Submit(
      stream_name, event_or.value(),
      [state, trace_ctx, trace_start, stream_name](
          Status status, const std::vector<engine::MetricReply>& replies) {
        EventResult result;
        result.status = std::move(status);
        result.metrics.reserve(replies.size());
        for (const auto& reply : replies) {
          result.metrics.push_back(
              {reply.metric_name, reply.group_key, reply.value});
        }
        FinishRootSpan(trace_ctx, trace_start, stream_name);
        ResultFuture::Complete(state, std::move(result));
      },
      trace_ctx);
  if (!submitted.ok()) return reject(submitted);
  return ResultFuture(std::move(state));
}

std::vector<ResultFuture> Client::SubmitBatch(const std::string& stream_name,
                                              const std::vector<Row>& rows) {
  std::vector<ResultFuture> futures(rows.size());
  auto reject = [](const Status& status) {
    EventResult result;
    result.status = status;
    return ResultFuture::Ready(std::move(result));
  };

  if (remote()) {
    const Status known = EnsureStream(stream_name);
    if (!known.ok()) {
      for (auto& future : futures) future = reject(known);
      return futures;
    }
  }
  // Bind every row up front; individual binding failures complete that
  // row's future without sinking the batch.
  trace::Tracer* tracer = trace::Tracer::Global();
  std::vector<reservoir::Event> events;
  std::vector<engine::FrontEnd::ReplyCallback> callbacks;
  std::vector<trace::TraceContext> traces;
  std::vector<size_t> accepted;  // Index into rows/futures.
  events.reserve(rows.size());
  callbacks.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    auto event_or = BindRow(stream_name, rows[i]);
    if (!event_or.ok()) {
      futures[i] = reject(event_or.status());
      continue;
    }
    auto state = std::make_shared<ResultFuture::State>();
    futures[i] = ResultFuture(state);
    accepted.push_back(i);
    events.push_back(std::move(event_or).value());
    // Each row is its own trace: the head sampler decides per root.
    const trace::TraceContext trace_ctx = tracer->Mint();
    const Micros trace_start = trace_ctx.valid() ? tracer->NowMicros() : 0;
    traces.push_back(trace_ctx);
    callbacks.push_back(
        [state, trace_ctx, trace_start, stream_name](
            Status status, const std::vector<engine::MetricReply>& replies) {
          EventResult result;
          result.status = std::move(status);
          result.metrics.reserve(replies.size());
          for (const auto& reply : replies) {
            result.metrics.push_back(
                {reply.metric_name, reply.group_key, reply.value});
          }
          FinishRootSpan(trace_ctx, trace_start, stream_name);
          ResultFuture::Complete(state, std::move(result));
        });
  }
  if (events.empty()) return futures;

  engine::FrontEnd* frontend = PickFrontEnd();
  if (frontend == nullptr) {
    const Status unavailable =
        Status::Unavailable("no alive node to submit to");
    for (size_t i : accepted) futures[i] = reject(unavailable);
    return futures;
  }
  const Status submitted = frontend->SubmitBatch(
      stream_name, events, std::move(callbacks), traces);
  if (!submitted.ok()) {
    // Synchronous rejection: no callback fires for this batch.
    for (size_t i : accepted) futures[i] = reject(submitted);
  }
  return futures;
}

EventResult Client::SubmitSync(const std::string& stream_name,
                               const Row& row) {
  ResultFuture future = Submit(stream_name, row);
  // Every accepted request completes — with replies, with the
  // front-end's own deadline, or with Unavailable on shutdown — so an
  // unbounded wait cannot hang.
  return future.Get();
}

Status Client::SubmitNoReply(const std::string& stream_name, const Row& row) {
  // Fail fast before binding: when the bucket is drained (or frozen by
  // a server shed), the whole point is to not do per-event work.
  if (noreply_bucket_ != nullptr) {
    RAILGUN_RETURN_IF_ERROR(noreply_bucket_->Acquire());
  }
  if (remote()) RAILGUN_RETURN_IF_ERROR(EnsureStream(stream_name));
  RAILGUN_ASSIGN_OR_RETURN(reservoir::Event event,
                           BindRow(stream_name, row));
  engine::FrontEnd* frontend = PickFrontEnd();
  if (frontend == nullptr) {
    return Status::Unavailable("no alive node to submit to");
  }
  const Status submitted = frontend->SubmitNoReply(stream_name, event);
  if (submitted.IsOverloaded() && noreply_bucket_ != nullptr) {
    // Honor the server's pacing hint: freeze refill so the flood backs
    // off for the whole retry-after window instead of per-call luck.
    noreply_bucket_->Penalize(engine::RetryAfterMicros(submitted));
  }
  return submitted;
}

uint64_t Client::noreply_rejected() const {
  return noreply_bucket_ != nullptr ? noreply_bucket_->rejected_count() : 0;
}

StatusOr<std::vector<introspect::InternalsSample>> Client::InternalsSnapshot() {
  msg::Bus* bus = remote() ? static_cast<msg::Bus*>(remote_bus_.get())
                           : (cluster_ != nullptr ? cluster_->bus() : nullptr);
  if (bus == nullptr || (remote() && !started_)) {
    return Status::Unavailable("client not started");
  }
  const engine::StreamDef def = introspect::InternalsStreamDef();
  const msg::TopicPartition tp{def.TopicFor(def.partitioners[0]), 0};
  auto base = bus->BaseOffset(tp);
  if (!base.ok()) {
    // No publisher has created the topic yet: empty stats, not an
    // error (e.g. a cluster with introspection disabled).
    if (base.status().IsNotFound()) {
      return std::vector<introspect::InternalsSample>{};
    }
    return base.status();
  }
  RAILGUN_ASSIGN_OR_RETURN(const uint64_t end, bus->EndOffset(tp));
  const reservoir::Schema schema(0, def.fields);
  // Offset order is publish order, so overwriting keeps the newest
  // sample of each (node, metric) series.
  std::map<std::pair<std::string, std::string>, introspect::InternalsSample>
      latest;
  uint64_t pos = base.value();
  std::vector<msg::Message> batch;
  while (pos < end) {
    batch.clear();
    RAILGUN_RETURN_IF_ERROR(bus->Fetch(tp, pos, 512, &batch));
    if (batch.empty()) break;  // Retention raced us past `end`.
    for (const msg::Message& message : batch) {
      pos = message.offset + 1;
      engine::EventEnvelope envelope;
      if (!engine::DecodeEventEnvelope(Slice(message.payload), schema,
                                       &envelope)
               .ok()) {
        continue;  // Foreign writer; skip rather than fail the snapshot.
      }
      introspect::InternalsSample sample;
      if (!introspect::ParseInternalsEvent(envelope.event, &sample).ok()) {
        continue;
      }
      latest[{sample.node, sample.metric}] = std::move(sample);
    }
  }
  std::vector<introspect::InternalsSample> out;
  out.reserve(latest.size());
  for (auto& [key, sample] : latest) out.push_back(std::move(sample));
  return out;
}

}  // namespace railgun::api
