// Administrative surface over a running cluster: elasticity, fault
// injection and observability, behind a stable API so operators (and
// the REPL / examples) never touch engine internals directly.
//
// Two backings: a local engine::Cluster (full control), or — for a
// remote client — the broker's metadata service, which answers topology
// and stream listings (ClusterView) while mutating calls degrade to
// Unavailable.
#ifndef RAILGUN_API_ADMIN_H_
#define RAILGUN_API_ADMIN_H_

#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "meta/cluster_view.h"

namespace railgun::engine {
class Cluster;
}  // namespace railgun::engine

namespace railgun::meta {
class MetaClient;
}  // namespace railgun::meta

namespace railgun::api {

// A stable, plain-data snapshot of cluster-wide counters.
struct ClusterStats {
  int nodes_total = 0;
  int nodes_alive = 0;
  uint64_t events_processed = 0;  // Active-task messages.
  uint64_t replica_events = 0;    // Replica (shadow) messages.
  uint64_t replies_sent = 0;
  uint64_t recoveries = 0;        // Tasks recovered from a donor.
  uint64_t fresh_tasks = 0;       // Tasks started with empty state.
  uint64_t bytes_recovered = 0;
  uint64_t rebalances = 0;        // Bus consumer-group rebalances.
  uint64_t poll_errors = 0;       // Failed bus polls / replica fetches.
  uint64_t publish_errors = 0;    // Failed reply publishes.
  uint64_t process_failures = 0;  // Messages rejected by task processors.
};

class Admin {
 public:
  // cluster may be nullptr (a remote api::Client has no local cluster):
  // mutating calls then return Unavailable, and queries answer from the
  // metadata service when `meta` is set (empty topology otherwise).
  explicit Admin(engine::Cluster* cluster,
                 meta::MetaClient* meta = nullptr)
      : cluster_(cluster), meta_(meta) {}

  // Elastic scale-out: starts one more node and registers every known
  // stream on it. Returns the new node's index. Local clusters only —
  // remote deployments scale by launching railgun_noded processes.
  StatusOr<int> AddNode();

  // Fault injection: abrupt node death (unit threads stop heartbeating;
  // with immediate_detection the bus fences them right away).
  Status KillNode(int node_index, bool immediate_detection = true);
  // Graceful shutdown (clean consumer-group leave).
  Status StopNode(int node_index);

  // Remote-backed, each call fetches a fresh cluster view: when
  // enumerating topology (count + per-node liveness), call FetchView()
  // once instead — indices from one snapshot may not match another.
  int num_nodes() const;
  bool NodeAlive(int node_index) const;

  // The deployment-wide membership/schema snapshot from the broker's
  // metadata service. Unavailable without one (local clusters have no
  // metadata service; build listings from the cluster instead).
  StatusOr<meta::ClusterView> FetchView() const;

  ClusterStats TotalStats() const;

  // Blocks until every event topic is fully consumed or the timeout
  // elapses; returns the processed message count (0 on timeout).
  uint64_t WaitForQuiescence(Micros timeout);

  // Multi-line human-readable topology + counters summary.
  std::string Describe() const;
  // One line per node: id, liveness, unit count (both backings).
  std::string DescribeNodes() const;

 private:
  // Renders an already-fetched view (Describe reuses its own fetch so
  // the summary header and the node rows cannot disagree).
  std::string DescribeNodes(const meta::ClusterView& view) const;

  engine::Cluster* cluster_;
  meta::MetaClient* meta_;
};

}  // namespace railgun::api

#endif  // RAILGUN_API_ADMIN_H_
