#include "api/result.h"

#include <chrono>

namespace railgun::api {

namespace {

// Exact display name, or the bare aggregation name as a prefix of
// "<agg> over <window>...".
bool MetricNameMatches(const std::string& name, const std::string& wanted) {
  if (name == wanted) return true;
  const std::string prefix = wanted + " over ";
  return name.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

const MetricValue* EventResult::Find(const std::string& metric) const {
  for (const auto& m : metrics) {
    if (MetricNameMatches(m.metric, metric)) return &m;
  }
  return nullptr;
}

const MetricValue* EventResult::Find(const std::string& metric,
                                     const std::string& group) const {
  for (const auto& m : metrics) {
    if (MetricNameMatches(m.metric, metric) && m.group == group) return &m;
  }
  return nullptr;
}

std::string EventResult::ToString() const {
  std::string out;
  if (!status.ok()) {
    out += status.ToString();
    out += "\n";
  }
  for (const auto& m : metrics) {
    out += "    " + m.metric + " [" + m.group + "] = " +
           m.value.ToString() + "\n";
  }
  if (metrics.empty() && status.ok()) out += "    (no metrics)\n";
  return out;
}

bool ResultFuture::ready() const {
  if (state_ == nullptr) return false;
  MutexLock lock(&state_->mu);
  return state_->ready;
}

bool ResultFuture::Wait(Micros timeout) const {
  if (state_ == nullptr) return false;
  MutexLock lock(&state_->mu);
  if (timeout < 0) {
    state_->cv.Wait(&state_->mu, [this] { return state_->ready; });
    return true;
  }
  return state_->cv.WaitFor(&state_->mu, timeout,
                            [this] { return state_->ready; });
}

EventResult ResultFuture::Get(Micros timeout) const {
  if (state_ == nullptr) {
    EventResult result;
    result.status = Status::Unavailable("invalid ResultFuture");
    return result;
  }
  if (!Wait(timeout)) {
    EventResult result;
    result.status =
        Status::Unavailable("timed out waiting for the event result");
    return result;
  }
  MutexLock lock(&state_->mu);
  return state_->result;
}

ResultFuture ResultFuture::Ready(EventResult result) {
  auto state = std::make_shared<State>();
  state->ready = true;
  state->result = std::move(result);
  return ResultFuture(std::move(state));
}

void ResultFuture::Complete(const std::shared_ptr<State>& state,
                            EventResult result) {
  {
    MutexLock lock(&state->mu);
    if (state->ready) return;  // At-most-once completion.
    state->result = std::move(result);
    state->ready = true;
  }
  state->cv.NotifyAll();
}

}  // namespace railgun::api
