// DDL over the message bus: the control channel that lets a remote
// api::Client declare streams and metrics on a cluster it can only
// reach through a Bus (paper §3.1 operational requests, stretched
// across the network hop).
//
// Topology: clients publish statements to the single-partition
// "__railgun.ddl" topic with a private reply topic; the broker process
// consumes it in its MetadataService (src/meta/metadata_service.h,
// which absorbed PR 3's DdlService), executes each statement through an
// attached api::Client (so validation, metric merging and
// applied-by-every-unit synchronization are exactly the local DDL path)
// and publishes the typed result back. Requests from one client execute
// in submission order.
#ifndef RAILGUN_API_REMOTE_DDL_H_
#define RAILGUN_API_REMOTE_DDL_H_

#include <string>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "msg/bus.h"

namespace railgun::api {

inline constexpr char kDdlTopic[] = "__railgun.ddl";

// ----- Wire format (exposed for tests) -----

struct DdlRequest {
  uint64_t request_id = 0;
  std::string reply_topic;
  std::string statement;
};

void EncodeDdlRequest(const DdlRequest& request, std::string* out);
Status DecodeDdlRequest(const Slice& data, DdlRequest* request);

struct DdlReply {
  uint64_t request_id = 0;
  Status result;
};

void EncodeDdlReply(const DdlReply& reply, std::string* out);
Status DecodeDdlReply(const Slice& data, DdlReply* reply);

// Client side: ships one statement and blocks for its reply (or the
// timeout). Used by api::Client in remote mode; DDL is rare and
// synchronous, so requests are serialized.
class RemoteDdlClient {
 public:
  // client_id must be unique per attached client process (it names the
  // private reply topic).
  RemoteDdlClient(msg::Bus* bus, std::string client_id, Clock* clock);

  Status Execute(const std::string& statement, Micros timeout);

  // Leaves the reply consumer group (idempotent).
  void Shutdown();

 private:
  Status EnsureSubscribedLocked() REQUIRES(mu_);

  msg::Bus* bus_;
  std::string client_id_;
  std::string reply_topic_;
  std::string consumer_id_;
  Clock* clock_;

  // Held across the produce/poll round trip, so it ranks above msg.
  Mutex mu_{kRankApiRemoteDdl};
  bool subscribed_ GUARDED_BY(mu_) = false;
  uint64_t next_request_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace railgun::api

#endif  // RAILGUN_API_REMOTE_DDL_H_
