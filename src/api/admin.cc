#include "api/admin.h"

#include "engine/cluster.h"
#include "meta/meta_client.h"

namespace railgun::api {

StatusOr<int> Admin::AddNode() {
  if (cluster_ == nullptr) {
    return Status::Unavailable("admin requires a local cluster");
  }
  RAILGUN_RETURN_IF_ERROR(cluster_->AddNode().status());
  return cluster_->num_nodes() - 1;
}

Status Admin::KillNode(int node_index, bool immediate_detection) {
  if (cluster_ == nullptr) {
    return Status::Unavailable("admin requires a local cluster");
  }
  if (node_index < 0 || node_index >= cluster_->num_nodes()) {
    return Status::NotFound("no such node: " + std::to_string(node_index));
  }
  return cluster_->KillNode(node_index, immediate_detection);
}

Status Admin::StopNode(int node_index) {
  if (cluster_ == nullptr) {
    return Status::Unavailable("admin requires a local cluster");
  }
  if (node_index < 0 || node_index >= cluster_->num_nodes()) {
    return Status::NotFound("no such node: " + std::to_string(node_index));
  }
  return cluster_->StopNode(node_index);
}

StatusOr<meta::ClusterView> Admin::FetchView() const {
  if (meta_ == nullptr) {
    return Status::Unavailable("no metadata service to answer from");
  }
  return meta_->GetView();
}

int Admin::num_nodes() const {
  if (cluster_ != nullptr) return cluster_->num_nodes();
  auto view = FetchView();
  return view.ok() ? static_cast<int>(view.value().nodes.size()) : 0;
}

bool Admin::NodeAlive(int node_index) const {
  if (cluster_ != nullptr) {
    if (node_index < 0 || node_index >= cluster_->num_nodes()) return false;
    return cluster_->node(node_index)->alive();
  }
  auto view = FetchView();
  if (!view.ok()) return false;
  if (node_index < 0 ||
      node_index >= static_cast<int>(view.value().nodes.size())) {
    return false;
  }
  return view.value().nodes[static_cast<size_t>(node_index)].alive;
}

ClusterStats Admin::TotalStats() const {
  if (cluster_ == nullptr) return ClusterStats{};
  const engine::UnitStats stats = cluster_->TotalStats();
  ClusterStats out;
  out.nodes_total = cluster_->num_nodes();
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    if (cluster_->node(n)->alive()) ++out.nodes_alive;
  }
  out.events_processed = stats.active_messages;
  out.replica_events = stats.replica_messages;
  out.replies_sent = stats.replies_sent;
  out.recoveries = stats.recoveries;
  out.fresh_tasks = stats.fresh_tasks;
  out.bytes_recovered = stats.bytes_recovered;
  out.rebalances = cluster_->bus()->rebalance_count();
  out.poll_errors = stats.poll_errors;
  out.publish_errors = stats.publish_errors;
  out.process_failures = stats.process_failures;
  return out;
}

uint64_t Admin::WaitForQuiescence(Micros timeout) {
  if (cluster_ == nullptr) return 0;
  return cluster_->WaitForQuiescence(timeout);
}

std::string Admin::DescribeNodes(const meta::ClusterView& view) const {
  std::string out;
  for (const auto& node : view.nodes) {
    out += "  " + node.node_id + ": " + (node.alive ? "alive" : "DEAD") +
           ", " + std::to_string(node.num_units) + " unit(s)";
    if (!node.address.empty()) out += " @ " + node.address;
    out += "\n";
  }
  if (view.nodes.empty()) out = "  (no nodes joined)\n";
  return out;
}

std::string Admin::DescribeNodes() const {
  std::string out;
  if (cluster_ != nullptr) {
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      engine::RailgunNode* node = cluster_->node(n);
      out += "  " + node->id() + ": " +
             (node->alive() ? "alive" : "DEAD") + ", " +
             std::to_string(node->num_units()) + " unit(s)\n";
    }
    return out;
  }
  auto view = FetchView();
  if (!view.ok()) {
    if (meta_ == nullptr) {
      return "  (no metadata service)\n";
    }
    return "  (metadata view unavailable: " + view.status().ToString() +
           ")\n";
  }
  return DescribeNodes(view.value());
}

std::string Admin::Describe() const {
  if (cluster_ == nullptr) {
    auto view = FetchView();
    if (!view.ok()) {
      if (meta_ == nullptr) {
        return "remote client: no local cluster to administer\n";
      }
      // The metadata service exists but this fetch failed (broker
      // restarting, reconnect backoff): say so, like `nodes` does.
      return "remote client: metadata view unavailable (" +
             view.status().ToString() + ")\n";
    }
    int alive = 0;
    for (const auto& node : view.value().nodes) {
      if (node.alive) ++alive;
    }
    std::string out = "cluster (metadata view, generation " +
                      std::to_string(view.value().generation) + "): " +
                      std::to_string(alive) + "/" +
                      std::to_string(view.value().nodes.size()) +
                      " node(s) alive\n";
    // One fetch for the whole summary: header and rows must agree.
    out += DescribeNodes(view.value());
    out += "  streams:";
    for (const auto& stream : view.value().streams) out += " " + stream;
    if (view.value().streams.empty()) out += " (none)";
    out += "\n";
    return out;
  }
  const ClusterStats stats = TotalStats();
  std::string out;
  out += "cluster: " + std::to_string(stats.nodes_alive) + "/" +
         std::to_string(stats.nodes_total) + " node(s) alive\n";
  out += "  events processed (active): " +
         std::to_string(stats.events_processed) + "\n";
  out += "  replies sent: " + std::to_string(stats.replies_sent) + "\n";
  out += "  recoveries: " + std::to_string(stats.recoveries) +
         ", fresh tasks: " + std::to_string(stats.fresh_tasks) +
         ", bytes recovered: " + std::to_string(stats.bytes_recovered) + "\n";
  out += "  bus rebalances: " + std::to_string(stats.rebalances) + "\n";
  if (stats.poll_errors + stats.publish_errors + stats.process_failures >
      0) {
    out += "  errors: " + std::to_string(stats.poll_errors) + " poll, " +
           std::to_string(stats.publish_errors) + " publish, " +
           std::to_string(stats.process_failures) + " process\n";
  }
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    engine::RailgunNode* node = cluster_->node(n);
    if (!node->alive()) {
      out += "  " + node->id() + ": DEAD\n";
      continue;
    }
    for (int u = 0; u < node->num_units(); ++u) {
      engine::ProcessorUnit* unit = node->unit(u);
      out += "  " + unit->unit_id() + ": " +
             std::to_string(unit->active_tasks().size()) + " active / " +
             std::to_string(unit->replica_tasks().size()) +
             " replica tasks\n";
    }
  }
  return out;
}

}  // namespace railgun::api
