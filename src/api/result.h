// Result types for the client API: the per-event aggregation answer
// (EventResult) and the future handed back by Client::Submit, which
// replaces the raw FrontEnd callback + atomic idiom.
#ifndef RAILGUN_API_RESULT_H_
#define RAILGUN_API_RESULT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "reservoir/event.h"

namespace railgun::api {

// One computed metric for a submitted event.
struct MetricValue {
  std::string metric;  // Display name, e.g. "sum(amount)".
  std::string group;   // Group-key value, e.g. "card17".
  reservoir::FieldValue value;
};

// Everything Railgun returned for one submitted event. `status` is OK
// when every partitioner replied in time; Unavailable when the request
// timed out (with whatever partial metrics arrived); NotFound /
// InvalidArgument when submission itself was rejected.
struct EventResult {
  Status status;
  std::vector<MetricValue> metrics;

  bool ok() const { return status.ok(); }

  // First metric matching `metric` (and `group`, when given); null when
  // absent. Full display names are "<agg> over <window> by <groups>"
  // (e.g. "count(*) over sliding 5m by cardId"); the bare aggregation
  // name ("count(*)") also matches, as a prefix.
  const MetricValue* Find(const std::string& metric) const;
  const MetricValue* Find(const std::string& metric,
                          const std::string& group) const;

  // Multi-line human-readable rendering, one metric per line.
  std::string ToString() const;
};

// A one-shot future for an EventResult. Copyable; all copies share the
// same completion state. Default-constructed futures are invalid.
class ResultFuture {
 public:
  ResultFuture() = default;

  bool valid() const { return state_ != nullptr; }
  // True once the result is available (never blocks).
  bool ready() const;

  // Blocks until the result is ready or `timeout` elapses. A negative
  // timeout waits forever. Returns whether the result became ready.
  bool Wait(Micros timeout = -1) const;

  // Blocks like Wait, then returns the result. If the wait times out
  // (or the future is invalid) the returned result carries
  // Status::Unavailable.
  EventResult Get(Micros timeout = -1) const;

  // An already-completed future (used for synchronous rejections).
  static ResultFuture Ready(EventResult result);

 private:
  friend class Client;

  struct State {
    Mutex mu{kRankApiResult};
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
    EventResult result GUARDED_BY(mu);
  };

  explicit ResultFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  static void Complete(const std::shared_ptr<State>& state,
                       EventResult result);

  std::shared_ptr<State> state_;
};

}  // namespace railgun::api

#endif  // RAILGUN_API_RESULT_H_
