#include "api/subscription.h"

#include "msg/remote/remote_bus.h"
#include "msg/remote/wire.h"
#include "ops/subscription.h"

namespace railgun::api {

Subscription::Subscription(ops::SubscriptionHub* hub, uint64_t id)
    : id_(id), hub_(hub) {}

Subscription::Subscription(msg::remote::RemoteBus* bus, uint64_t id)
    : id_(id), bus_(bus) {}

Subscription::~Subscription() { (void)Cancel(); }

Status Subscription::Next(std::vector<ops::SubRecord>* records,
                          Micros max_wait) {
  records->clear();
  MutexLock lock(&mu_);
  if (cancelled_) {
    return Status::Unavailable("subscription cancelled");
  }
  ops::SubFetchReply reply;
  Status fetched;
  if (hub_ != nullptr) {
    fetched = hub_->Fetch(id_, acked_seq_, /*max_records=*/0, max_wait,
                          &reply);
  } else {
    ops::SubFetchRequest request;
    request.sub_id = id_;
    request.acked_seq = acked_seq_;
    request.max_records = 0;
    request.max_wait_us = max_wait;
    std::string payload, result;
    EncodeSubFetchRequest(request, &payload);
    fetched = bus_->CallOpcode(
        static_cast<uint8_t>(msg::remote::OpCode::kSubFetch), payload,
        &result);
    if (fetched.ok()) {
      fetched = DecodeSubFetchReply(Slice(result), &reply);
    }
  }
  RAILGUN_RETURN_IF_ERROR(fetched);
  if (!reply.records.empty()) {
    // Handed to the caller = delivered: the next fetch acks through
    // here, so these records can never come back.
    acked_seq_ = reply.records.back().seq;
  }
  dropped_total_ = reply.dropped_total;
  lag_ = reply.lag;
  *records = std::move(reply.records);
  return Status::OK();
}

Status Subscription::Cancel() {
  MutexLock lock(&mu_);
  if (cancelled_) return Status::OK();
  cancelled_ = true;
  if (hub_ != nullptr) {
    const Status s = hub_->Cancel(id_);
    // Already gone (hub stopped or restarted) is a successful cancel.
    return s.IsNotFound() ? Status::OK() : s;
  }
  ops::SubCancelRequest request;
  request.sub_id = id_;
  std::string payload, result;
  EncodeSubCancelRequest(request, &payload);
  const Status s = bus_->CallOpcode(
      static_cast<uint8_t>(msg::remote::OpCode::kSubCancel), payload,
      &result);
  return s.IsNotFound() ? Status::OK() : s;
}

uint64_t Subscription::dropped_total() const {
  MutexLock lock(&mu_);
  return dropped_total_;
}

uint64_t Subscription::lag() const {
  MutexLock lock(&mu_);
  return lag_;
}

}  // namespace railgun::api
