// api::Subscription — the client-side handle of one live `SUBSCRIBE`
// tail (see src/ops/subscription.h for the server side). Obtained from
// Client::Subscribe; Next() long-polls for new records, acknowledging
// the previous batch in the same call, so a record handed to the caller
// is never redelivered — not even across a dropped connection — while
// records fetched but lost in flight are.
//
// Failure semantics: a hub restart invalidates every subscription id;
// Next() then returns NotFound, the typed signal to call
// Client::Subscribe again (the fresh tail attaches at the stream's
// head, so acked history cannot be replayed). Transport failures stay
// Unavailable and retrying Next() rides the remote bus's reconnect
// backoff.
#ifndef RAILGUN_API_SUBSCRIPTION_H_
#define RAILGUN_API_SUBSCRIPTION_H_

#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "ops/sub_wire.h"

namespace railgun::msg::remote {
class RemoteBus;
}  // namespace railgun::msg::remote

namespace railgun::ops {
class SubscriptionHub;
}  // namespace railgun::ops

namespace railgun::api {

class Client;

class Subscription {
 public:
  ~Subscription();  // Best-effort Cancel.

  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  // Fetches the next batch of records, blocking up to max_wait when the
  // tail is empty (the server caps the long-poll; an empty vector with
  // OK just means "nothing yet, poll again"). Records returned by the
  // *previous* Next are acknowledged by this call.
  Status Next(std::vector<ops::SubRecord>* records, Micros max_wait);

  // Cancels server-side. Idempotent; the destructor calls it too.
  Status Cancel();

  uint64_t id() const { return id_; }
  // Records evicted server-side because this subscriber was too slow
  // (cumulative), and the queue depth left behind by the last Next.
  uint64_t dropped_total() const;
  uint64_t lag() const;

 private:
  friend class Client;
  // Local tail: served directly by the in-process hub.
  Subscription(ops::SubscriptionHub* hub, uint64_t id);
  // Remote tail: kSubFetch/kSubCancel RPCs on the control connection.
  Subscription(msg::remote::RemoteBus* bus, uint64_t id);

  const uint64_t id_;
  ops::SubscriptionHub* const hub_ = nullptr;
  msg::remote::RemoteBus* const bus_ = nullptr;

  // Held across the fetch (hub call or RPC): Next/Cancel are
  // serialized, which the ack-on-next-fetch contract requires anyway.
  mutable Mutex mu_{kRankApiSubscription};
  uint64_t acked_seq_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_total_ GUARDED_BY(mu_) = 0;
  uint64_t lag_ GUARDED_BY(mu_) = 0;
  bool cancelled_ GUARDED_BY(mu_) = false;
};

}  // namespace railgun::api

#endif  // RAILGUN_API_SUBSCRIPTION_H_
