#include "api/row.h"

namespace railgun::api {

namespace {

// Checks the value against the schema type, applying the int -> double
// coercion aggregators rely on elsewhere.
StatusOr<reservoir::FieldValue> CoerceTo(const reservoir::FieldValue& value,
                                         reservoir::FieldType type,
                                         const std::string& field) {
  switch (type) {
    case reservoir::FieldType::kString:
      if (value.is_string()) return value;
      break;
    case reservoir::FieldType::kDouble:
      if (value.is_double()) return value;
      if (value.is_int()) {
        return reservoir::FieldValue(static_cast<double>(value.as_int()));
      }
      break;
    case reservoir::FieldType::kInt64:
      if (value.is_int()) return value;
      break;
    case reservoir::FieldType::kBool:
      if (value.is_bool()) return value;
      break;
  }
  return Status::InvalidArgument("type mismatch for field '" + field +
                                 "': got " + value.ToString());
}

}  // namespace

StatusOr<reservoir::Event> Row::Bind(const reservoir::Schema& schema) const {
  reservoir::Event event;
  event.values.resize(schema.num_fields());
  std::vector<bool> seen(schema.num_fields(), false);

  for (const auto& [name, value] : values_) {
    const int index = schema.FieldIndex(name);
    if (index < 0) {
      return Status::InvalidArgument("unknown field: " + name);
    }
    const auto i = static_cast<size_t>(index);
    if (seen[i]) {
      return Status::InvalidArgument("field set twice: " + name);
    }
    RAILGUN_ASSIGN_OR_RETURN(
        event.values[i], CoerceTo(value, schema.fields()[i].type, name));
    seen[i] = true;
  }

  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return Status::InvalidArgument("missing field: " +
                                     schema.fields()[i].name);
    }
  }
  return event;
}

}  // namespace railgun::api
