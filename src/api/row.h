// Fluent event construction for the client API: named field values bound
// against the stream schema at submit time, replacing hand-built
// positional FieldValue vectors.
//
//   client.Submit("payments", Row()
//                                 .At(5 * kMicrosPerMinute)
//                                 .Set("cardId", "card1")
//                                 .Set("merchantId", "storeA")
//                                 .Set("amount", 25.0));
#ifndef RAILGUN_API_ROW_H_
#define RAILGUN_API_ROW_H_

#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "reservoir/event.h"

namespace railgun::api {

class Row {
 public:
  Row() = default;

  // Event time. Defaults to the client clock's now at submit.
  Row& At(Micros timestamp) {
    timestamp_ = timestamp;
    has_timestamp_ = true;
    return *this;
  }

  // Deduplication id. Defaults to a client-assigned sequence number.
  Row& WithId(uint64_t id) {
    id_ = id;
    has_id_ = true;
    return *this;
  }

  // Sets a field by name. FieldValue's implicit constructors accept
  // int64_t, double, bool, std::string and const char*.
  Row& Set(std::string field, reservoir::FieldValue value) {
    values_.emplace_back(std::move(field), std::move(value));
    return *this;
  }

  bool has_timestamp() const { return has_timestamp_; }
  Micros timestamp() const { return timestamp_; }
  bool has_id() const { return has_id_; }
  uint64_t id() const { return id_; }
  const std::vector<std::pair<std::string, reservoir::FieldValue>>& values()
      const {
    return values_;
  }

  // Binds the named values into schema field order. Every schema field
  // must be set exactly once; ints coerce to double where the schema
  // asks for one; any other mismatch is an InvalidArgument. Timestamp
  // and id are left for the caller to fill from the Row accessors.
  StatusOr<reservoir::Event> Bind(const reservoir::Schema& schema) const;

 private:
  Micros timestamp_ = 0;
  bool has_timestamp_ = false;
  uint64_t id_ = 0;
  bool has_id_ = false;
  std::vector<std::pair<std::string, reservoir::FieldValue>> values_;
};

}  // namespace railgun::api

#endif  // RAILGUN_API_ROW_H_
