#include "api/remote_ddl.h"

#include "common/coding.h"
#include "msg/remote/wire.h"

namespace railgun::api {

void EncodeDdlRequest(const DdlRequest& request, std::string* out) {
  PutVarint64(out, request.request_id);
  PutLengthPrefixedSlice(out, request.reply_topic);
  PutLengthPrefixedSlice(out, request.statement);
}

Status DecodeDdlRequest(const Slice& data, DdlRequest* request) {
  Slice in = data;
  Slice reply_topic, statement;
  if (!GetVarint64(&in, &request->request_id) ||
      !GetLengthPrefixedSlice(&in, &reply_topic) ||
      !GetLengthPrefixedSlice(&in, &statement)) {
    return Status::Corruption("malformed DDL request");
  }
  request->reply_topic = reply_topic.ToString();
  request->statement = statement.ToString();
  return Status::OK();
}

void EncodeDdlReply(const DdlReply& reply, std::string* out) {
  PutVarint64(out, reply.request_id);
  msg::remote::PutStatus(out, reply.result);
}

Status DecodeDdlReply(const Slice& data, DdlReply* reply) {
  Slice in = data;
  if (!GetVarint64(&in, &reply->request_id) ||
      !msg::remote::GetStatus(&in, &reply->result)) {
    return Status::Corruption("malformed DDL reply");
  }
  return Status::OK();
}

// --- RemoteDdlClient -------------------------------------------------

RemoteDdlClient::RemoteDdlClient(msg::Bus* bus, std::string client_id,
                                 Clock* clock)
    : bus_(bus),
      client_id_(std::move(client_id)),
      reply_topic_(std::string(kDdlTopic) + ".replies." + client_id_),
      consumer_id_("ddlc." + client_id_),
      clock_(clock) {}

Status RemoteDdlClient::EnsureSubscribedLocked() {
  if (subscribed_) return Status::OK();
  Status s = bus_->CreateTopic(kDdlTopic, 1);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  s = bus_->CreateTopic(reply_topic_, 1);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  RAILGUN_RETURN_IF_ERROR(bus_->Subscribe(
      consumer_id_, "ddl." + client_id_, {reply_topic_}, "", nullptr, {}));
  subscribed_ = true;
  return Status::OK();
}

Status RemoteDdlClient::Execute(const std::string& statement,
                                Micros timeout) {
  MutexLock lock(&mu_);
  RAILGUN_RETURN_IF_ERROR(EnsureSubscribedLocked());

  DdlRequest request;
  // The reply topic is private to this client, so a plain counter
  // cannot collide.
  request.request_id = next_request_id_++;
  request.reply_topic = reply_topic_;
  request.statement = statement;
  std::string encoded;
  EncodeDdlRequest(request, &encoded);
  RAILGUN_RETURN_IF_ERROR(
      bus_->Produce(kDdlTopic, client_id_, std::move(encoded)).status());

  const Micros deadline = clock_->NowMicros() + timeout;
  std::vector<msg::Message> replies;
  while (clock_->NowMicros() < deadline) {
    RAILGUN_RETURN_IF_ERROR(
        bus_->Poll(consumer_id_, 16, &replies, 50 * kMicrosPerMilli));
    for (const auto& message : replies) {
      DdlReply reply;
      if (!DecodeDdlReply(Slice(message.payload), &reply).ok()) continue;
      if (reply.request_id == request.request_id) return reply.result;
    }
  }
  return Status::Unavailable("DDL request timed out: " + statement);
}

void RemoteDdlClient::Shutdown() {
  MutexLock lock(&mu_);
  if (!subscribed_) return;
  (void)bus_->Unsubscribe(consumer_id_);  // Best effort on shutdown.
  subscribed_ = false;
}

}  // namespace railgun::api
