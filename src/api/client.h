// railgun::api::Client — the single supported way to use Railgun.
//
// The client owns (or attaches to) a cluster and exposes the service
// surface of the paper: declare a stream and its metrics textually,
// push events, get the per-event aggregations back:
//
//   ClientOptions options;
//   Client client(options);
//   client.Start();
//   client.CreateStream(
//       "CREATE STREAM payments (cardId STRING, amount DOUBLE) "
//       "PARTITION BY cardId PARTITIONS 4");
//   client.Query(
//       "ADD METRIC SELECT sum(amount) FROM payments "
//       "GROUP BY cardId OVER sliding 5 minutes");
//   EventResult r = client.SubmitSync(
//       "payments", Row().Set("cardId", "c1").Set("amount", 10.0));
//
// FrontEnd / Cluster / StreamDef stay internal layers behind this
// facade (see DESIGN.md).
#ifndef RAILGUN_API_CLIENT_H_
#define RAILGUN_API_CLIENT_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/admin.h"
#include "api/result.h"
#include "api/row.h"
#include "api/subscription.h"
#include "common/mutex.h"
#include "engine/admission.h"
#include "engine/cluster.h"
#include "introspect/internals.h"

namespace railgun::msg::remote {
class RemoteBus;
}  // namespace railgun::msg::remote

namespace railgun::meta {
class MetaClient;
}  // namespace railgun::meta

namespace railgun::api {

class RemoteDdlClient;

struct ClientOptions {
  // Topology of the owned cluster.
  int num_nodes = 1;
  int processor_units_per_node = 2;
  int replication_factor = 1;
  std::string base_dir = "/tmp/railgun-client";
  // Per-request reply deadline; a request past it completes with
  // Status::Unavailable and whatever partial metrics arrived.
  Micros request_timeout = 10 * kMicrosPerSecond;
  Clock* clock = nullptr;  // Defaults to the monotonic clock.

  // When set ("host:port" of a msg::remote::BusServer), the client owns
  // no cluster: it attaches to the remote one over the network, running
  // its own front end against a RemoteBus and shipping DDL through the
  // bus to the broker's metadata service (see src/api/remote_ddl.h and
  // src/meta/). The topology fields above are ignored. Schemas of
  // streams this client did not declare are fetched on demand from the
  // metadata service; admin() answers node/stream listings from the
  // metadata view and mutating calls degrade to Unavailable.
  std::string remote_address;

  // Remote mode: how long a metadata miss ("unknown stream") is cached
  // before re-asking the broker. Bounds both the RPC rate of a
  // misdirected producer and the lag until a freshly created foreign
  // stream becomes submittable here.
  Micros unknown_stream_ttl = kMicrosPerSecond;

  // Admission-control ceilings (engine/admission.h); all-zero (the
  // default) disables shedding. Local mode applies them to every owned
  // node's front end, remote mode to the client's own front end — in
  // both, a submission past a ceiling completes with a typed
  // kOverloaded carrying a retry-after hint.
  engine::AdmissionOptions admission;

  // Client-side pacing of SubmitNoReply: a token bucket that fails fast
  // with kOverloaded when drained, and freezes refill for the server's
  // retry-after hint whenever the front end sheds. <= 0 disables (the
  // default: every submit reaches the front end).
  double noreply_tokens_per_sec = 0;
  double noreply_burst = 64;

  // Escape hatch: advanced engine tuning on top of the fields above.
  // Applied first; the named fields then override.
  engine::ClusterOptions engine;

  engine::ClusterOptions ToClusterOptions() const;
};

class Client {
 public:
  // Owns a cluster built from the options; Start() launches it.
  explicit Client(const ClientOptions& options);
  // Attaches to an externally managed cluster (must already be started
  // or be started by its owner; Start()/Stop() become no-ops for it).
  explicit Client(engine::Cluster* cluster);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Start();
  void Stop();

  // --- Stream DDL ----------------------------------------------------
  // DDL is synchronous: when a call returns OK, the registration has
  // been applied by every alive processor unit, so the next submitted
  // event is evaluated against the new definition.

  // Executes a CREATE STREAM statement. AlreadyExists when the stream
  // name is taken; InvalidArgument on grammar/validation errors.
  Status CreateStream(const std::string& ddl);

  // Registers a metric: "ADD METRIC SELECT ..." or a bare SELECT
  // statement. The FROM stream must have been created; the engine
  // backfills the new metric from reservoir history on live tasks.
  Status Query(const std::string& statement);

  // Routes any statement (CREATE STREAM / ADD METRIC / ADD PIPELINE /
  // SELECT) to the right handler — the REPL's single entry point.
  // SUBSCRIBE statements need a result handle; use Subscribe().
  Status Execute(const std::string& statement);

  // --- Operator pipelines & live subscriptions ------------------------

  // Registers an operator pipeline: "ADD PIPELINE <name> ON <stream>
  // | filter(...) | by(...) | ...". Synthesize the statement with
  // ops::PipelineBuilder for the programmatic (fluent) form. Synchronous
  // like the other DDL; the route_to_stream target must be created
  // (and registered on the cluster) separately.
  Status AddPipeline(const std::string& statement);

  // Pipelines registered on the streams this client knows, in stream
  // order. Per-operator counters live in the internals stream
  // (`ops.pipeline.<name>.*` via InternalsSnapshot()).
  std::vector<query::PipelineSpec> ListPipelines() const;

  // Opens a live tail: "SUBSCRIBE SELECT * FROM s [WHERE ...]" or a
  // metric tail "SUBSCRIBE SELECT agg(...) FROM s ... [OVER infinite |
  // sliding N events]". Remote servers predating the subscription
  // opcodes answer NotSupported — sticky: later calls fail fast
  // without another RPC.
  StatusOr<std::unique_ptr<Subscription>> Subscribe(
      const std::string& statement);

  // In remote mode the listing merges the metadata service's view with
  // locally declared streams, so foreign streams show up too.
  std::vector<std::string> ListStreams() const;
  // Fetches the schema of a foreign stream from the metadata service on
  // demand in remote mode (hence non-const).
  StatusOr<reservoir::Schema> GetSchema(const std::string& stream);

  // --- Event submission ----------------------------------------------
  // Binds the row against the stream schema and publishes it; the
  // future completes with every registered metric's value for this
  // event. Submission errors (unknown stream, bad row) come back as an
  // already-completed future carrying the typed status.
  ResultFuture Submit(const std::string& stream, const Row& row);

  // Batched submission: all rows are bound, routed to one front end and
  // handed over as a single batch, which the engine fans out with one
  // broker write per partitioner topic. Returns one future per row, in
  // order; rows that fail binding come back as already-completed
  // futures carrying the typed status (the rest of the batch still
  // ships). This is the throughput path — per-event pipelining costs
  // collapse across the batch.
  std::vector<ResultFuture> SubmitBatch(const std::string& stream,
                                        const std::vector<Row>& rows);

  // Blocking variant. The front end guarantees every accepted request
  // completes (reply, deadline, or shutdown), so this returns as soon
  // as the result is determined.
  EventResult SubmitSync(const std::string& stream, const Row& row);

  // Fire-and-forget path for throughput-oriented callers: no reply is
  // requested or collected; the event is pipelined through the
  // front-end submission queue, so this never waits on the broker.
  Status SubmitNoReply(const std::string& stream, const Row& row);

  // --- Introspection -------------------------------------------------
  // Latest self-instrumentation sample per (node, metric), read
  // straight off the built-in "__railgun.internals" topic — the same
  // events ADD METRIC aggregates. Works identically in local and remote
  // mode (this is what unifies REPL `stats`); an engine whose publisher
  // has not ticked yet yields an empty vector, not an error.
  StatusOr<std::vector<introspect::InternalsSample>> InternalsSnapshot();

  // SubmitNoReply calls refused client-side by the token bucket.
  uint64_t noreply_rejected() const;

  // --- Administration ------------------------------------------------
  Admin& admin() { return *admin_; }

  // Internal escape hatch for benches/tests; application code should
  // not need it.
  engine::Cluster* cluster() { return cluster_; }

 private:
  Status AddStream(engine::StreamDef stream);
  Status AddMetric(query::QueryDef metric);
  Status AddPipelineLocal(query::PipelineSpec pipeline);
  Status RemoteAddPipeline(const std::string& statement,
                           query::PipelineSpec pipeline);
  // Remote-mode DDL: ships the raw statement to the broker's metadata
  // service, then applies the already-parsed definition to the
  // client's local registry and front end.
  Status RemoteAddStream(const std::string& statement,
                         engine::StreamDef stream);
  Status RemoteAddMetric(const std::string& statement,
                         query::QueryDef metric);
  // Blocks until every alive processor unit has applied its enqueued
  // stream registrations (or the timeout elapses).
  Status WaitForRegistration(Micros timeout);
  // Remote mode: when `stream` is unknown locally, fetches its
  // definition from the broker's metadata service and teaches the
  // local front end its routing — this is what lets a client submit to
  // (or add metrics on) a stream another client created. NotFound when
  // neither side knows the stream (or the broker has no metadata
  // service).
  Status EnsureStream(const std::string& stream);
  StatusOr<reservoir::Event> BindRow(const std::string& stream_name,
                                     const Row& row) const;
  engine::FrontEnd* PickFrontEnd();
  bool remote() const { return remote_bus_ != nullptr; }

  ClientOptions options_;
  std::unique_ptr<engine::Cluster> owned_cluster_;
  engine::Cluster* cluster_ = nullptr;
  std::unique_ptr<Admin> admin_;
  Clock* clock_;
  bool started_ = false;

  // Remote mode (ClientOptions::remote_address): the client's own front
  // end speaks to the cluster through a RemoteBus.
  std::string client_id_;
  std::unique_ptr<msg::remote::RemoteBus> remote_bus_;
  std::unique_ptr<engine::FrontEnd> remote_frontend_;
  std::unique_ptr<RemoteDdlClient> remote_ddl_;
  std::unique_ptr<meta::MetaClient> meta_;

  // Null unless ClientOptions::noreply_tokens_per_sec > 0.
  std::unique_ptr<engine::TokenBucket> noreply_bucket_;

  mutable Mutex mu_{kRankApiClient};
  std::map<std::string, engine::StreamDef> streams_ GUARDED_BY(mu_);
  // Stream name -> cache-entry expiry on clock_ (see EnsureStream).
  std::map<std::string, Micros> unknown_streams_ GUARDED_BY(mu_);
  // Auto-minted event ids count up from a random per-client base (see
  // BindRow): the reservoirs dedup by id, so two clients must never
  // mint the same one.
  uint64_t event_id_base_ = 0;
  mutable std::atomic<uint64_t> next_event_id_{1};
  std::atomic<uint64_t> next_frontend_{0};
  // Sticky downgrade: set after a remote kSubCreate came back
  // NotSupported (the server will not grow the opcode mid-connection).
  std::atomic<bool> subscribe_unsupported_{false};
};

}  // namespace railgun::api

#endif  // RAILGUN_API_CLIENT_H_
