#include "baseline/worker.h"

namespace railgun::baseline {

BaselineWorker::BaselineWorker(const WorkerOptions& options,
                               msg::Bus* bus, BaselineEngine* engine,
                               engine::StreamDef stream, std::string topic,
                               Clock* clock)
    : options_(options),
      bus_(bus),
      engine_(engine),
      stream_(std::move(stream)),
      topic_(std::move(topic)),
      clock_(clock) {}

BaselineWorker::~BaselineWorker() { Stop(); }

Status BaselineWorker::Start() {
  const reservoir::Schema schema(0, stream_.fields);
  key_index_ = schema.FieldIndex(options_.key_field);
  amount_index_ = schema.FieldIndex(options_.amount_field);
  if (key_index_ < 0 || amount_index_ < 0) {
    return Status::InvalidArgument("worker fields not in schema");
  }
  for (const auto& tp : bus_->PartitionsOf(topic_)) {
    positions_[tp] = 0;
  }
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void BaselineWorker::Stop() {
  running_ = false;
  if (thread_.joinable()) thread_.join();
}

void BaselineWorker::Run() {
  const reservoir::Schema schema(0, stream_.fields);
  std::vector<msg::Message> batch;
  while (running_) {
    bool any = false;
    for (auto& [tp, pos] : positions_) {
      batch.clear();
      if (!bus_->Fetch(tp, pos, options_.poll_max, &batch).ok()) continue;
      pos += batch.size();
      for (const auto& message : batch) {
        any = true;
        engine::EventEnvelope envelope;
        if (!engine::DecodeEventEnvelope(Slice(message.payload), schema,
                                         &envelope)
                 .ok()) {
          continue;
        }
        BaselineResult result;
        const std::string key =
            envelope.event.values[static_cast<size_t>(key_index_)].ToString();
        const double amount =
            envelope.event.values[static_cast<size_t>(amount_index_)]
                .ToNumber();
        if (!engine_
                 ->ProcessEvent(key, envelope.event.timestamp, amount,
                                &result)
                 .ok()) {
          continue;
        }
        ++processed_;
        if (!envelope.reply_topic.empty()) {
          engine::ReplyEnvelope reply;
          reply.request_id = envelope.request_id;
          reply.results.push_back(
              {"sum(amount)", key, reservoir::FieldValue(result.sum)});
          reply.results.push_back(
              {"count(*)", key,
               reservoir::FieldValue(static_cast<int64_t>(result.count))});
          std::string encoded;
          EncodeReplyEnvelope(reply, &encoded);
          // Baseline comparison harness: a dropped reply shows up as a
          // client timeout, which is the behavior being measured.
          (void)bus_->Produce(envelope.reply_topic, message.key,
                              std::move(encoded));
        }
      }
    }
    if (!any) clock_->SleepMicros(options_.idle_sleep);
  }
}

}  // namespace railgun::baseline
