// Hopping-window baseline: the structural model of how Flink & friends
// approximate sliding windows (paper §2.2). A window of size ws with hop
// h keeps exactly ws/h live window states per key; every arriving event
// updates all of them and is then discarded (no event storage, no event
// expiry — the optimization that makes hopping windows popular, and the
// per-event cost that blows up as the hop shrinks).
//
// States live in the embedded LSM store, mirroring Flink-on-RocksDB.
#ifndef RAILGUN_BASELINE_HOPPING_ENGINE_H_
#define RAILGUN_BASELINE_HOPPING_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "storage/db.h"

namespace railgun::baseline {

struct BaselineResult {
  double sum = 0;
  int64_t count = 0;
};

// Common interface so benches can swap engines.
class BaselineEngine {
 public:
  virtual ~BaselineEngine() = default;
  // Processes one (key, timestamp, amount) event and reports the
  // engine's best available sum/count for the key's trailing window.
  virtual Status ProcessEvent(const std::string& key, Micros timestamp,
                              double amount, BaselineResult* result) = 0;
  virtual std::string name() const = 0;
};

struct HoppingOptions {
  Micros window_size = 60 * kMicrosPerMinute;
  Micros hop = 5 * kMicrosPerMinute;
};

class HoppingEngine : public BaselineEngine {
 public:
  // Borrows the store; uses its default column family with a
  // "h|" key prefix.
  HoppingEngine(const HoppingOptions& options, storage::DB* db);

  Status ProcessEvent(const std::string& key, Micros timestamp,
                      double amount, BaselineResult* result) override;
  std::string name() const override;

  // Number of live window states an event touches (= windowSize/hop).
  int64_t states_per_event() const { return states_per_event_; }

 private:
  std::string StateKey(const std::string& key, Micros window_start) const;

  HoppingOptions options_;
  storage::DB* db_;
  int64_t states_per_event_;
};

// The "custom Flink solution" for accurate sliding windows [21]: store
// every event in the state store and, for each arriving event, recompute
// the aggregation by scanning all stored events of the key inside the
// window. Quadratic in per-key event count; accurate but slow.
class QuadraticSlidingEngine : public BaselineEngine {
 public:
  QuadraticSlidingEngine(Micros window_size, storage::DB* db);

  Status ProcessEvent(const std::string& key, Micros timestamp,
                      double amount, BaselineResult* result) override;
  std::string name() const override { return "flink-custom-quadratic"; }

 private:
  std::string EventKey(const std::string& key, Micros timestamp,
                       uint64_t seq) const;

  Micros window_size_;
  storage::DB* db_;
  uint64_t seq_ = 0;
};

}  // namespace railgun::baseline

#endif  // RAILGUN_BASELINE_HOPPING_ENGINE_H_
