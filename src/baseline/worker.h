// BaselineWorker: drives a BaselineEngine over the message bus with the
// same end-to-end path as a Railgun node (consume event topic -> compute
// -> produce reply), so Figure 8 compares engines, not plumbing.
#ifndef RAILGUN_BASELINE_WORKER_H_
#define RAILGUN_BASELINE_WORKER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/hopping_engine.h"
#include "engine/stream_def.h"
#include "msg/broker.h"

namespace railgun::baseline {

struct WorkerOptions {
  std::string key_field = "cardId";
  std::string amount_field = "amount";
  size_t poll_max = 256;
  Micros idle_sleep = 200;
};

class BaselineWorker {
 public:
  // Borrows the bus and engine. Consumes every partition of `topic`.
  BaselineWorker(const WorkerOptions& options, msg::Bus* bus,
                 BaselineEngine* engine, engine::StreamDef stream,
                 std::string topic, Clock* clock);
  ~BaselineWorker();

  Status Start();
  void Stop();

  uint64_t processed() const { return processed_.load(); }

 private:
  void Run();

  WorkerOptions options_;
  msg::Bus* bus_;
  BaselineEngine* engine_;
  engine::StreamDef stream_;
  std::string topic_;
  Clock* clock_;
  int key_index_ = -1;
  int amount_index_ = -1;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> processed_{0};
  std::map<msg::TopicPartition, uint64_t> positions_;
};

}  // namespace railgun::baseline

#endif  // RAILGUN_BASELINE_WORKER_H_
