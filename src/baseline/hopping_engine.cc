#include "baseline/hopping_engine.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"

namespace railgun::baseline {

namespace {

Status ParseSumCount(const std::string& state, double* sum, int64_t* count) {
  *sum = 0;
  *count = 0;
  if (state.empty()) return Status::OK();
  Slice in(state);
  if (!GetDouble(&in, sum) || !GetVarsint64(&in, count)) {
    return Status::Corruption("bad baseline state");
  }
  return Status::OK();
}

void StoreSumCount(std::string* state, double sum, int64_t count) {
  state->clear();
  PutDouble(state, sum);
  PutVarsint64(state, count);
}

}  // namespace

HoppingEngine::HoppingEngine(const HoppingOptions& options, storage::DB* db)
    : options_(options),
      db_(db),
      states_per_event_(options.window_size / options.hop) {}

std::string HoppingEngine::name() const {
  char buf[64];
  snprintf(buf, sizeof(buf), "flink-hopping(h=%llds)",
           static_cast<long long>(options_.hop / kMicrosPerSecond));
  return buf;
}

std::string HoppingEngine::StateKey(const std::string& key,
                                    Micros window_start) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "|%020lld", static_cast<long long>(window_start));
  return "h|" + key + buf;
}

Status HoppingEngine::ProcessEvent(const std::string& key, Micros timestamp,
                                   double amount, BaselineResult* result) {
  // The event belongs to every window instance [start, start + ws) with
  // start in (timestamp - ws, timestamp], start on hop boundaries.
  const Micros h = options_.hop;
  const Micros newest_start = (timestamp / h) * h;
  const Micros oldest_start = newest_start - options_.window_size + h;

  double oldest_sum = 0;
  int64_t oldest_count = 0;
  for (Micros start = oldest_start; start <= newest_start; start += h) {
    const std::string state_key = StateKey(key, start);
    std::string state;
    Status s = db_->Get(storage::kDefaultColumnFamily, state_key, &state);
    if (!s.ok() && !s.IsNotFound()) return s;
    double sum;
    int64_t count;
    RAILGUN_RETURN_IF_ERROR(ParseSumCount(state, &sum, &count));
    sum += amount;
    count += 1;
    StoreSumCount(&state, sum, count);
    RAILGUN_RETURN_IF_ERROR(
        db_->Put(storage::kDefaultColumnFamily, state_key, state));
    if (start == oldest_start) {
      oldest_sum = sum;
      oldest_count = count;
    }
  }

  // Expire the instance that fell out of range (fixed per-event work,
  // mirroring "the oldest two variables, expired" in §2.2).
  RAILGUN_RETURN_IF_ERROR(db_->Delete(storage::kDefaultColumnFamily,
                                      StateKey(key, oldest_start - h)));

  // The best available approximation of the trailing window is the
  // oldest live instance (covers the most history).
  result->sum = oldest_sum;
  result->count = oldest_count;
  return Status::OK();
}

QuadraticSlidingEngine::QuadraticSlidingEngine(Micros window_size,
                                               storage::DB* db)
    : window_size_(window_size), db_(db) {}

std::string QuadraticSlidingEngine::EventKey(const std::string& key,
                                             Micros timestamp,
                                             uint64_t seq) const {
  char buf[64];
  snprintf(buf, sizeof(buf), "|%020lld|%012" PRIu64,
           static_cast<long long>(timestamp), seq);
  return "q|" + key + buf;
}

Status QuadraticSlidingEngine::ProcessEvent(const std::string& key,
                                            Micros timestamp, double amount,
                                            BaselineResult* result) {
  // Store the event tuple.
  std::string value;
  PutDouble(&value, amount);
  RAILGUN_RETURN_IF_ERROR(db_->Put(storage::kDefaultColumnFamily,
                                   EventKey(key, timestamp, seq_++), value));

  // Recompute from scratch by scanning the key's stored events.
  result->sum = 0;
  result->count = 0;
  const std::string prefix = "q|" + key + "|";
  const Micros low = timestamp - window_size_;
  auto iter = db_->NewIterator(storage::kDefaultColumnFamily);
  std::vector<std::string> expired;
  for (iter->Seek(prefix); iter->Valid(); iter->Next()) {
    const Slice k = iter->key();
    if (!k.starts_with(Slice(prefix))) break;
    // Key layout: q|key|<20-digit ts>|<seq>.
    const std::string ts_str =
        std::string(k.data() + prefix.size(), 20);
    const Micros ts = static_cast<Micros>(strtoll(ts_str.c_str(), nullptr,
                                                  10));
    if (ts <= low) {
      expired.push_back(k.ToString());  // Flink would GC via TTL; we do it
      continue;                         // inline, also at per-event cost.
    }
    if (ts > timestamp) break;
    Slice v = iter->value();
    double a;
    if (!GetDouble(&v, &a)) return Status::Corruption("bad stored event");
    result->sum += a;
    result->count += 1;
  }
  for (const auto& k : expired) {
    RAILGUN_RETURN_IF_ERROR(db_->Delete(storage::kDefaultColumnFamily, k));
  }
  return Status::OK();
}

}  // namespace railgun::baseline
