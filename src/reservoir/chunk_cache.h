// LRU cache of decoded chunks, sized in chunk elements (paper §5.2 used
// 220). Iterators hold shared_ptr pins, so an evicted-but-iterated chunk
// stays alive; eviction only drops the cache's reference. Tracks the hit
// and miss statistics that drive the Figure 9(b) analysis.
#ifndef RAILGUN_RESERVOIR_CHUNK_CACHE_H_
#define RAILGUN_RESERVOIR_CHUNK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "reservoir/chunk.h"

namespace railgun::reservoir {

class ChunkCache {
 public:
  explicit ChunkCache(size_t capacity) : capacity_(capacity) {}

  // Inserts (or refreshes) a chunk, evicting the LRU entry if needed.
  void Insert(const std::shared_ptr<Chunk>& chunk);

  // Returns the chunk or nullptr; a hit refreshes recency.
  std::shared_ptr<Chunk> Get(ChunkSeq seq);

  bool Contains(ChunkSeq seq) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
  };
  Stats stats() const;
  void ResetStats();

 private:
  mutable Mutex mu_{kRankStorageChunkCache};
  size_t capacity_;
  // MRU at front.
  std::list<ChunkSeq> lru_ GUARDED_BY(mu_);
  struct Entry {
    std::shared_ptr<Chunk> chunk;
    std::list<ChunkSeq>::iterator lru_pos;
  };
  std::unordered_map<ChunkSeq, Entry> map_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace railgun::reservoir

#endif  // RAILGUN_RESERVOIR_CHUNK_CACHE_H_
