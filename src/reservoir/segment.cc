#include "reservoir/segment.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/crc32c.h"

namespace railgun::reservoir {

namespace {
constexpr size_t kRecordHeaderSize = 4 + 4 + 8;  // size + crc + seq.

// Decodes the uncompressed chunk header fields from a serialized payload
// (everything before the compressed event data).
Status PeekChunkHeader(Slice payload, ChunkLocation* loc) {
  uint32_t schema_id, count;
  int64_t min_ts, max_ts;
  uint64_t max_offset;
  if (!GetVarint32(&payload, &schema_id) || !GetVarint32(&payload, &count) ||
      !GetVarsint64(&payload, &min_ts) || !GetVarsint64(&payload, &max_ts) ||
      !GetVarint64(&payload, &max_offset)) {
    return Status::Corruption("bad chunk payload header");
  }
  loc->min_ts = min_ts;
  loc->max_ts = max_ts;
  loc->num_events = count;
  loc->max_offset = max_offset;
  return Status::OK();
}
}  // namespace

std::string SegmentFileName(const std::string& dir, uint64_t number) {
  char buf[40];
  snprintf(buf, sizeof(buf), "/segment-%06" PRIu64 ".seg", number);
  return dir + buf;
}

SegmentWriter::SegmentWriter(Env* env, std::string dir,
                             uint64_t max_file_bytes)
    : env_(env), dir_(std::move(dir)), max_file_bytes_(max_file_bytes) {}

Status SegmentWriter::Open(uint64_t last_file_number,
                           uint64_t last_file_size) {
  RAILGUN_RETURN_IF_ERROR(env_->CreateDir(dir_));
  file_number_ = last_file_number;
  file_size_ = last_file_size;
  if (file_number_ == 0 || file_size_ >= max_file_bytes_) {
    return RollFile();
  }
  return env_->NewAppendableFile(SegmentFileName(dir_, file_number_), &file_);
}

Status SegmentWriter::RollFile() {
  if (file_ != nullptr) {
    RAILGUN_RETURN_IF_ERROR(file_->Sync());
    RAILGUN_RETURN_IF_ERROR(file_->Close());
  }
  ++file_number_;
  file_size_ = 0;
  return env_->NewWritableFile(SegmentFileName(dir_, file_number_), &file_);
}

Status SegmentWriter::Append(const Chunk& chunk, const std::string& payload,
                             ChunkLocation* location) {
  if (file_size_ >= max_file_bytes_) {
    RAILGUN_RETURN_IF_ERROR(RollFile());
  }

  location->seq = chunk.seq();
  location->file_number = file_number_;
  location->offset = file_size_;
  location->size = static_cast<uint32_t>(payload.size());
  location->min_ts = chunk.min_timestamp();
  location->max_ts = chunk.max_timestamp();
  location->num_events = static_cast<uint32_t>(chunk.num_events());
  location->max_offset = chunk.max_offset();

  std::string header;
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  PutFixed32(&header,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed64(&header, chunk.seq());

  RAILGUN_RETURN_IF_ERROR(file_->Append(header));
  RAILGUN_RETURN_IF_ERROR(file_->Append(payload));
  RAILGUN_RETURN_IF_ERROR(file_->Flush());
  file_size_ += header.size() + payload.size();
  return Status::OK();
}

Status SegmentWriter::Sync() {
  return file_ != nullptr ? file_->Sync() : Status::OK();
}

SegmentReader::SegmentReader(Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

Status SegmentReader::ReadChunkPayload(const ChunkLocation& location,
                                       std::string* payload) const {
  std::unique_ptr<RandomAccessFile> file;
  RAILGUN_RETURN_IF_ERROR(env_->NewRandomAccessFile(
      SegmentFileName(dir_, location.file_number), &file));

  std::unique_ptr<char[]> buf(new char[kRecordHeaderSize + location.size]);
  Slice record;
  RAILGUN_RETURN_IF_ERROR(file->Read(
      location.offset, kRecordHeaderSize + location.size, &record,
      buf.get()));
  if (record.size() != kRecordHeaderSize + location.size) {
    return Status::Corruption("truncated chunk record");
  }

  const uint32_t stored_size = DecodeFixed32(record.data());
  const uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(record.data() + 4));
  if (stored_size != location.size) {
    return Status::Corruption("chunk record size mismatch");
  }
  const char* data = record.data() + kRecordHeaderSize;
  if (crc32c::Value(data, stored_size) != stored_crc) {
    return Status::Corruption("chunk record checksum mismatch");
  }
  payload->assign(data, stored_size);
  return Status::OK();
}

Status SegmentReader::ScanAll(std::vector<ChunkLocation>* locations,
                              uint64_t* last_file_number,
                              uint64_t* last_file_size) const {
  locations->clear();
  *last_file_number = 0;
  *last_file_size = 0;

  std::vector<std::string> children;
  Status s = env_->ListDir(dir_, &children);
  if (s.IsNotFound()) return Status::OK();
  RAILGUN_RETURN_IF_ERROR(s);

  std::vector<uint64_t> numbers;
  for (const auto& child : children) {
    uint64_t number;
    if (sscanf(child.c_str(), "segment-%" SCNu64 ".seg", &number) == 1) {
      numbers.push_back(number);
    }
  }
  std::sort(numbers.begin(), numbers.end());

  for (uint64_t number : numbers) {
    const std::string path = SegmentFileName(dir_, number);
    std::unique_ptr<RandomAccessFile> file;
    RAILGUN_RETURN_IF_ERROR(env_->NewRandomAccessFile(path, &file));
    const uint64_t file_size = file->Size();
    uint64_t pos = 0;
    while (pos + kRecordHeaderSize <= file_size) {
      char header_buf[kRecordHeaderSize];
      Slice header;
      RAILGUN_RETURN_IF_ERROR(
          file->Read(pos, kRecordHeaderSize, &header, header_buf));
      if (header.size() < kRecordHeaderSize) break;
      const uint32_t payload_size = DecodeFixed32(header.data());
      const uint64_t chunk_seq = DecodeFixed64(header.data() + 8);
      if (pos + kRecordHeaderSize + payload_size > file_size) {
        // Torn tail from a crash mid-append: ignore the partial record.
        break;
      }
      // Read just the uncompressed chunk-header prefix (64 bytes covers
      // five varints comfortably).
      const size_t peek = std::min<size_t>(payload_size, 64);
      std::unique_ptr<char[]> peek_buf(new char[peek]);
      Slice peek_slice;
      RAILGUN_RETURN_IF_ERROR(file->Read(pos + kRecordHeaderSize, peek,
                                         &peek_slice, peek_buf.get()));
      ChunkLocation loc;
      loc.seq = chunk_seq;
      loc.file_number = number;
      loc.offset = pos;
      loc.size = payload_size;
      RAILGUN_RETURN_IF_ERROR(PeekChunkHeader(peek_slice, &loc));
      locations->push_back(loc);
      pos += kRecordHeaderSize + payload_size;
    }
    *last_file_number = number;
    *last_file_size = pos;
  }
  return Status::OK();
}

}  // namespace railgun::reservoir
