// Segment files: ordered, append-only files of serialized chunks (paper
// §4.1.1 "files hold multiple chunks of events, until they reach a fixed
// size, after which they become immutable").
//
// Record framing: payload_size (fixed32) | masked crc32c (fixed32)
//                 | chunk_seq (fixed64) | payload.
#ifndef RAILGUN_RESERVOIR_SEGMENT_H_
#define RAILGUN_RESERVOIR_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "reservoir/chunk.h"

namespace railgun::reservoir {

// Durable location of one chunk.
struct ChunkLocation {
  ChunkSeq seq = 0;
  uint64_t file_number = 0;
  uint64_t offset = 0;      // Offset of the record header.
  uint32_t size = 0;        // Payload size.
  Micros min_ts = 0;
  Micros max_ts = 0;
  uint32_t num_events = 0;
  uint64_t max_offset = 0;  // Largest message-log offset inside the chunk.
};

std::string SegmentFileName(const std::string& dir, uint64_t number);

// Appends chunk records across a sequence of size-capped segment files.
class SegmentWriter {
 public:
  SegmentWriter(Env* env, std::string dir, uint64_t max_file_bytes);

  // Resumes after the given file number (next file = number + 1).
  Status Open(uint64_t last_file_number, uint64_t last_file_size);

  // Appends a serialized chunk; fills *location.
  Status Append(const Chunk& chunk, const std::string& payload,
                ChunkLocation* location);

  Status Sync();

 private:
  Status RollFile();

  Env* env_;
  std::string dir_;
  uint64_t max_file_bytes_;
  uint64_t file_number_ = 0;
  uint64_t file_size_ = 0;
  std::unique_ptr<WritableFile> file_;
};

// Reads chunk payloads back and scans segments to rebuild the index.
class SegmentReader {
 public:
  SegmentReader(Env* env, std::string dir);

  // Reads the payload of the chunk at the given location.
  Status ReadChunkPayload(const ChunkLocation& location,
                          std::string* payload) const;

  // Scans every segment file in the directory in file order and returns
  // the chunk locations (header-only scan: payloads are not
  // decompressed). Used on recovery.
  Status ScanAll(std::vector<ChunkLocation>* locations,
                 uint64_t* last_file_number, uint64_t* last_file_size) const;

 private:
  Env* env_;
  std::string dir_;
};

}  // namespace railgun::reservoir

#endif  // RAILGUN_RESERVOIR_SEGMENT_H_
