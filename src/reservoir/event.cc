#include "reservoir/event.h"

#include <cstdio>

#include "common/coding.h"

namespace railgun::reservoir {

std::string FieldValue::ToString() const {
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%.6g", as_double());
    return buf;
  }
  if (is_bool()) return as_bool() ? "true" : "false";
  return as_string();
}

Schema::Schema(uint32_t id, std::vector<SchemaField> fields)
    : id_(id), fields_(std::move(fields)) {}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::EncodeTo(std::string* dst) const {
  PutVarint32(dst, id_);
  PutVarint32(dst, static_cast<uint32_t>(fields_.size()));
  for (const auto& f : fields_) {
    PutLengthPrefixedSlice(dst, f.name);
    dst->push_back(static_cast<char>(f.type));
  }
}

Status Schema::DecodeFrom(Slice* input, Schema* schema) {
  uint32_t id, num_fields;
  if (!GetVarint32(input, &id) || !GetVarint32(input, &num_fields)) {
    return Status::Corruption("bad schema header");
  }
  std::vector<SchemaField> fields;
  fields.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    Slice name;
    if (!GetLengthPrefixedSlice(input, &name) || input->empty()) {
      return Status::Corruption("bad schema field");
    }
    const FieldType type = static_cast<FieldType>((*input)[0]);
    input->remove_prefix(1);
    fields.push_back({name.ToString(), type});
  }
  *schema = Schema(id, std::move(fields));
  return Status::OK();
}

void EventCodec::Encode(const Event& event, Micros base_ts,
                        std::string* dst) const {
  PutVarsint64(dst, event.timestamp - base_ts);
  PutVarint64(dst, event.id);
  PutVarint64(dst, event.offset);
  const auto& fields = schema_->fields();
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldValue& v = event.values[i];
    switch (fields[i].type) {
      case FieldType::kInt64:
        PutVarsint64(dst, v.is_int() ? v.as_int()
                                     : static_cast<int64_t>(v.ToNumber()));
        break;
      case FieldType::kDouble:
        PutDouble(dst, v.ToNumber());
        break;
      case FieldType::kString:
        PutLengthPrefixedSlice(dst, v.is_string() ? Slice(v.as_string())
                                                  : Slice(v.ToString()));
        break;
      case FieldType::kBool:
        dst->push_back(v.is_bool() ? (v.as_bool() ? 1 : 0)
                                   : (v.ToNumber() != 0 ? 1 : 0));
        break;
    }
  }
}

Status EventCodec::Decode(Slice* input, Micros base_ts, Event* event) const {
  int64_t ts_delta;
  uint64_t id, offset;
  if (!GetVarsint64(input, &ts_delta) || !GetVarint64(input, &id) ||
      !GetVarint64(input, &offset)) {
    return Status::Corruption("bad event header");
  }
  event->timestamp = base_ts + ts_delta;
  event->id = id;
  event->offset = offset;
  const auto& fields = schema_->fields();
  event->values.clear();
  event->values.reserve(fields.size());
  for (const auto& f : fields) {
    switch (f.type) {
      case FieldType::kInt64: {
        int64_t v;
        if (!GetVarsint64(input, &v)) return Status::Corruption("bad int");
        event->values.emplace_back(v);
        break;
      }
      case FieldType::kDouble: {
        double v;
        if (!GetDouble(input, &v)) return Status::Corruption("bad double");
        event->values.emplace_back(v);
        break;
      }
      case FieldType::kString: {
        Slice v;
        if (!GetLengthPrefixedSlice(input, &v)) {
          return Status::Corruption("bad string");
        }
        event->values.emplace_back(v.ToString());
        break;
      }
      case FieldType::kBool: {
        if (input->empty()) return Status::Corruption("bad bool");
        event->values.emplace_back((*input)[0] != 0);
        input->remove_prefix(1);
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace railgun::reservoir
