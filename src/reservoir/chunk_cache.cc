#include "reservoir/chunk_cache.h"

namespace railgun::reservoir {

void ChunkCache::Insert(const std::shared_ptr<Chunk>& chunk) {
  MutexLock lock(&mu_);
  const ChunkSeq seq = chunk->seq();
  auto it = map_.find(seq);
  if (it != map_.end()) {
    lru_.erase(it->second.lru_pos);
    lru_.push_front(seq);
    it->second.lru_pos = lru_.begin();
    it->second.chunk = chunk;
    return;
  }
  while (map_.size() >= capacity_ && !lru_.empty()) {
    const ChunkSeq victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(seq);
  map_[seq] = Entry{chunk, lru_.begin()};
  ++stats_.inserts;
}

std::shared_ptr<Chunk> ChunkCache::Get(ChunkSeq seq) {
  MutexLock lock(&mu_);
  auto it = map_.find(seq);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(seq);
  it->second.lru_pos = lru_.begin();
  return it->second.chunk;
}

bool ChunkCache::Contains(ChunkSeq seq) const {
  MutexLock lock(&mu_);
  return map_.count(seq) > 0;
}

size_t ChunkCache::size() const {
  MutexLock lock(&mu_);
  return map_.size();
}

ChunkCache::Stats ChunkCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void ChunkCache::ResetStats() {
  MutexLock lock(&mu_);
  stats_ = Stats();
}

}  // namespace railgun::reservoir
