// Schema registry (paper §4.1.1): chunks are persisted referencing their
// schema id, so a chunk written under an old schema can always be decoded
// after the stream's schema evolves. The registry itself is persisted as
// an append-only file next to the reservoir segments.
#ifndef RAILGUN_RESERVOIR_SCHEMA_REGISTRY_H_
#define RAILGUN_RESERVOIR_SCHEMA_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "reservoir/event.h"

namespace railgun::reservoir {

class SchemaRegistry {
 public:
  // dir: directory holding the registry file; created if missing.
  SchemaRegistry(Env* env, std::string dir);

  // Loads previously registered schemas from disk.
  Status Open();

  // Registers a new schema version built from the given fields and makes
  // it current. Returns the assigned schema id.
  StatusOr<uint32_t> Register(const std::vector<SchemaField>& fields);

  // nullptr if unknown.
  const Schema* Get(uint32_t id) const;
  const Schema* Current() const;
  uint32_t current_id() const { return current_id_; }
  size_t size() const { return schemas_.size(); }

 private:
  Status Persist(const Schema& schema);

  Env* env_;
  std::string dir_;
  std::string path_;
  std::map<uint32_t, std::unique_ptr<Schema>> schemas_;
  uint32_t next_id_ = 1;
  uint32_t current_id_ = 0;  // 0 = none registered yet.
};

}  // namespace railgun::reservoir

#endif  // RAILGUN_RESERVOIR_SCHEMA_REGISTRY_H_
