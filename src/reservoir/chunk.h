// A chunk groups contiguous events (paper §4.1.1). Chunks are built
// in-memory (kOpen), optionally held in a grace window for late events
// (kTransition), then sorted, serialized, compressed and persisted
// (kClosed). Closed chunks are the unit of reservoir I/O and caching.
#ifndef RAILGUN_RESERVOIR_CHUNK_H_
#define RAILGUN_RESERVOIR_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "reservoir/event.h"

namespace railgun::reservoir {

enum class ChunkState : uint8_t {
  kOpen = 0,        // Accepting new events.
  kTransition = 1,  // Closed for recent events, open for late arrivals.
  kClosed = 2,      // Immutable; sorted and serializable.
};

// Global, monotonically increasing chunk number within a reservoir.
using ChunkSeq = uint64_t;

class Chunk {
 public:
  Chunk(ChunkSeq seq, uint32_t schema_id)
      : seq_(seq), schema_id_(schema_id) {}

  Chunk(const Chunk&) = delete;
  Chunk& operator=(const Chunk&) = delete;

  ChunkSeq seq() const { return seq_; }
  uint32_t schema_id() const { return schema_id_; }
  ChunkState state() const { return state_; }

  // Appends an event. REQUIRES: state != kClosed.
  void Add(Event event);

  size_t num_events() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& event(size_t i) const { return events_[i]; }

  Micros min_timestamp() const { return min_ts_; }
  Micros max_timestamp() const { return max_ts_; }
  uint64_t max_offset() const { return max_offset_; }

  // Rough serialized-size estimate driving chunk closure.
  size_t EstimatedBytes() const { return estimated_bytes_; }

  void MarkTransition(Micros deadline) {
    state_ = ChunkState::kTransition;
    transition_deadline_ = deadline;
  }
  Micros transition_deadline() const { return transition_deadline_; }

  // Sorts events by (timestamp, offset) and freezes the chunk.
  void Close();

  // Serializes a closed chunk (header + compressed payload).
  // Layout: schema_id (varint32) | count (varint32) | min_ts (varsint64)
  //         | max_ts (varsint64) | max_offset (varint64)
  //         | compressed event payload.
  void SerializeTo(const Schema& schema, std::string* dst) const;

  // Rebuilds a closed chunk from SerializeTo output.
  static Status Deserialize(ChunkSeq seq, const Schema& schema,
                            Slice payload, std::unique_ptr<Chunk>* chunk);

  // True if an event with this id is present (dedup probe).
  bool ContainsId(uint64_t id) const;

 private:
  ChunkSeq seq_;
  uint32_t schema_id_;
  ChunkState state_ = ChunkState::kOpen;
  std::vector<Event> events_;
  Micros min_ts_ = 0;
  Micros max_ts_ = 0;
  uint64_t max_offset_ = 0;
  size_t estimated_bytes_ = 0;
  Micros transition_deadline_ = 0;
};

}  // namespace railgun::reservoir

#endif  // RAILGUN_RESERVOIR_CHUNK_H_
