#include "reservoir/schema_registry.h"

#include "common/coding.h"

namespace railgun::reservoir {

SchemaRegistry::SchemaRegistry(Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)), path_(JoinPath(dir_, "SCHEMAS")) {}

Status SchemaRegistry::Open() {
  RAILGUN_RETURN_IF_ERROR(env_->CreateDir(dir_));
  if (!env_->FileExists(path_)) return Status::OK();

  std::string data;
  RAILGUN_RETURN_IF_ERROR(ReadFileToString(env_, path_, &data));
  Slice input(data);
  while (!input.empty()) {
    Slice record;
    if (!GetLengthPrefixedSlice(&input, &record)) {
      return Status::Corruption("bad schema registry record");
    }
    auto schema = std::make_unique<Schema>();
    RAILGUN_RETURN_IF_ERROR(Schema::DecodeFrom(&record, schema.get()));
    const uint32_t id = schema->id();
    schemas_[id] = std::move(schema);
    current_id_ = id;  // Records are appended in registration order.
    next_id_ = id + 1;
  }
  return Status::OK();
}

StatusOr<uint32_t> SchemaRegistry::Register(
    const std::vector<SchemaField>& fields) {
  const uint32_t id = next_id_++;
  auto schema = std::make_unique<Schema>(id, fields);
  RAILGUN_RETURN_IF_ERROR(Persist(*schema));
  schemas_[id] = std::move(schema);
  current_id_ = id;
  return id;
}

const Schema* SchemaRegistry::Get(uint32_t id) const {
  auto it = schemas_.find(id);
  return it == schemas_.end() ? nullptr : it->second.get();
}

const Schema* SchemaRegistry::Current() const { return Get(current_id_); }

Status SchemaRegistry::Persist(const Schema& schema) {
  std::string record;
  schema.EncodeTo(&record);
  std::string framed;
  PutLengthPrefixedSlice(&framed, record);

  std::unique_ptr<WritableFile> file;
  RAILGUN_RETURN_IF_ERROR(env_->NewAppendableFile(path_, &file));
  RAILGUN_RETURN_IF_ERROR(file->Append(framed));
  RAILGUN_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace railgun::reservoir
