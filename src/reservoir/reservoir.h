// The event reservoir (paper §4.1.1): stores all events of one task
// processor with a tiny in-memory footprint. Events accumulate in an
// open chunk; closed chunks are sorted, serialized, compressed and
// appended to immutable segment files by an asynchronous writer so that
// persistence never blocks event processing. Windows read events through
// iterators that pin at most one chunk each and eagerly prefetch the next
// chunk, keeping disk I/O off the critical path.
#ifndef RAILGUN_RESERVOIR_RESERVOIR_H_
#define RAILGUN_RESERVOIR_RESERVOIR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/mutex.h"
#include "common/status.h"
#include "reservoir/chunk.h"
#include "reservoir/chunk_cache.h"
#include "reservoir/event.h"
#include "reservoir/schema_registry.h"
#include "reservoir/segment.h"

namespace railgun::reservoir {

// Policy for events older than the last closed chunk (and outside any
// transition chunk's grace window).
enum class LateEventPolicy {
  kDiscard,
  kRewriteTimestamp,  // Rewritten to the open chunk's first timestamp.
};

struct ReservoirOptions {
  // Serialized-size threshold that closes the open chunk.
  size_t chunk_target_bytes = 64 * 1024;
  // Segment files become immutable at this size.
  uint64_t segment_max_bytes = 8 * 1024 * 1024;
  // Chunk cache capacity, in chunks (the paper's experiments use 220).
  size_t cache_capacity = 220;
  // Grace period during which a closed chunk stays in the transition
  // state and still accepts late events (paper's watermark-like knob).
  Micros ooo_grace = 0;
  LateEventPolicy late_policy = LateEventPolicy::kRewriteTimestamp;
  // Run chunk persistence and prefetching on background threads. Tests
  // may disable for determinism.
  bool async_io = true;
  // Eagerly prefetch the successor chunk when an iterator crosses a
  // chunk boundary (paper §4.1.1). Disable only for the ablation bench.
  bool enable_prefetch = true;
  // Size of the recent-id window used for deduplication probes.
  Env* env = nullptr;
  std::vector<SchemaField> schema_fields;
};

struct ReservoirStats {
  uint64_t appends = 0;
  uint64_t dedup_drops = 0;
  uint64_t late_drops = 0;
  uint64_t late_rewrites = 0;
  uint64_t late_transition_adds = 0;
  uint64_t chunks_closed = 0;
  uint64_t chunks_written = 0;
  uint64_t sync_chunk_loads = 0;   // Cache misses on the read path.
  uint64_t prefetches_issued = 0;
};

class Reservoir;

// Forward iterator over the reservoir's events in time order. Pins the
// chunk it is positioned in; crossing a chunk boundary triggers an eager
// prefetch of the following chunk (paper §4.1.1).
class ReservoirIterator {
 public:
  ~ReservoirIterator();
  ReservoirIterator(const ReservoirIterator&) = delete;
  ReservoirIterator& operator=(const ReservoirIterator&) = delete;

  // False when positioned past the newest available event.
  bool AtEnd() const { return !valid_; }
  // REQUIRES: !AtEnd(). The reference is only stable until the next
  // Append to the reservoir (the open chunk's storage may grow).
  const Event& event() const { return chunk_->event(index_); }

  // Moves forward one event. After AtEnd(), call Refresh() (cheap) to
  // pick up newly appended events.
  void Advance();
  void Refresh();

  // Position snapshot (persisted in checkpoints so window edges can be
  // restored exactly after recovery).
  ChunkSeq chunk_seq() const { return chunk_seq_; }
  size_t index() const { return index_; }

  Micros CurrentTimestamp() const { return event().timestamp; }

 private:
  friend class Reservoir;
  explicit ReservoirIterator(Reservoir* reservoir);

  void PositionAt(ChunkSeq seq, size_t index);
  void LoadCurrent();

  Reservoir* reservoir_;
  std::shared_ptr<Chunk> chunk_;  // Pin.
  ChunkSeq chunk_seq_ = 0;
  size_t index_ = 0;
  bool valid_ = false;
};

class Reservoir {
 public:
  Reservoir(const ReservoirOptions& options, std::string dir);
  ~Reservoir();
  Reservoir(const Reservoir&) = delete;
  Reservoir& operator=(const Reservoir&) = delete;

  // Loads or initializes the on-disk state and starts I/O threads.
  Status Open();

  // Appends one event (dedup, late handling, chunk rollover). Returns OK
  // even when the event is dropped by policy; *accepted reports whether
  // the event entered the reservoir.
  Status Append(const Event& event, bool* accepted = nullptr);

  // Creates an iterator positioned at the oldest event.
  std::unique_ptr<ReservoirIterator> NewIterator();
  // Creates an iterator positioned at the first event with
  // timestamp >= ts (random read path used by backfill).
  std::unique_ptr<ReservoirIterator> NewIteratorAt(Micros ts);
  // Restores an iterator to a checkpointed (chunk_seq, index) position.
  std::unique_ptr<ReservoirIterator> NewIteratorAtPosition(ChunkSeq seq,
                                                           size_t index);

  const Schema* schema() const { return registry_->Current(); }

  // Largest message-log offset among *persisted* chunks: the replay
  // point after a crash.
  uint64_t LastPersistedOffset() const;
  // Number of chunks durable on disk (0 = nothing persisted yet).
  size_t NumPersistedChunks() const;
  // Blocks until the write queue drains and segments are synced.
  Status Sync();

  // Copies segment files absent from `target_dir` (plus the schema
  // registry). Because segments are immutable once sealed, this acts as
  // a natural delta copy for replica recovery (paper §4.2).
  Status CopyMissingTo(const std::string& target_dir);

  // Drops whole segment files whose every chunk is older than ts.
  Status TruncateBefore(Micros ts);

  ReservoirStats stats() const;
  ChunkCache::Stats cache_stats() const { return cache_.stats(); }
  size_t num_live_iterators() const;
  Micros MaxTimestamp() const;
  uint64_t NumBufferedEvents() const;  // Events not yet persisted.

 private:
  friend class ReservoirIterator;

  struct InMemoryChunk {
    std::shared_ptr<Chunk> chunk;
    std::unordered_set<uint64_t> ids;  // Dedup probe set.
  };

  Status AppendLocked(const Event& event, bool* accepted) REQUIRES(mu_);
  void CloseOpenChunkLocked() REQUIRES(mu_);
  void MaybeCloseTransitionsLocked(Micros newest_ts) REQUIRES(mu_);
  void FinalizeChunkLocked(InMemoryChunk in_mem) REQUIRES(mu_);
  Status WriteChunk(const std::shared_ptr<Chunk>& chunk);
  void WriterLoop();
  void PrefetchLoop();
  void SchedulePrefetch(ChunkSeq seq);

  // Fetches a chunk by sequence from memory, cache or disk.
  StatusOr<std::shared_ptr<Chunk>> GetChunk(ChunkSeq seq,
                                            bool prefetch_next);
  StatusOr<std::shared_ptr<Chunk>> LoadChunkFromDisk(ChunkSeq seq);
  // Oldest chunk seq that still exists (after truncation).
  ChunkSeq OldestSeqLocked() const REQUIRES(mu_);

  ReservoirOptions options_;
  std::string dir_;
  Env* env_;

  std::unique_ptr<SchemaRegistry> registry_;
  std::unique_ptr<SegmentWriter> writer_;
  std::unique_ptr<SegmentReader> reader_;
  ChunkCache cache_;

  mutable Mutex mu_{kRankStorageReservoir};
  InMemoryChunk open_ GUARDED_BY(mu_);
  std::deque<InMemoryChunk> transition_ GUARDED_BY(mu_);
  // Closed but not yet persisted, by seq.
  std::deque<std::shared_ptr<Chunk>> write_queue_ GUARDED_BY(mu_);
  std::unordered_map<ChunkSeq, std::shared_ptr<Chunk>> in_flight_
      GUARDED_BY(mu_);
  // Persisted chunks, seq-ascending.
  std::vector<ChunkLocation> index_ GUARDED_BY(mu_);
  ChunkSeq next_chunk_seq_ GUARDED_BY(mu_) = 1;
  Micros last_closed_max_ts_ GUARDED_BY(mu_) = -1;
  uint64_t last_persisted_offset_ GUARDED_BY(mu_) = 0;
  ReservoirStats stats_ GUARDED_BY(mu_);
  size_t live_iterators_ GUARDED_BY(mu_) = 0;

  CondVar writer_cv_;
  CondVar writer_done_cv_;
  std::thread writer_thread_;
  std::deque<ChunkSeq> prefetch_queue_ GUARDED_BY(mu_);
  CondVar prefetch_cv_;
  std::thread prefetch_thread_;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace railgun::reservoir

#endif  // RAILGUN_RESERVOIR_RESERVOIR_H_
