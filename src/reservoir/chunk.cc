#include "reservoir/chunk.h"

#include <algorithm>

#include "common/coding.h"
#include "common/compression.h"
#include "common/logging.h"

namespace railgun::reservoir {

void Chunk::Add(Event event) {
  RAILGUN_CHECK(state_ != ChunkState::kClosed);
  if (events_.empty()) {
    min_ts_ = max_ts_ = event.timestamp;
  } else {
    min_ts_ = std::min(min_ts_, event.timestamp);
    max_ts_ = std::max(max_ts_, event.timestamp);
  }
  max_offset_ = std::max(max_offset_, event.offset);
  // 16 header bytes + ~12 bytes per numeric field + string sizes.
  estimated_bytes_ += 16 + event.values.size() * 12;
  for (const auto& v : event.values) {
    if (v.is_string()) estimated_bytes_ += v.as_string().size();
  }
  events_.push_back(std::move(event));
}

void Chunk::Close() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return a.offset < b.offset;
                   });
  state_ = ChunkState::kClosed;
}

void Chunk::SerializeTo(const Schema& schema, std::string* dst) const {
  RAILGUN_CHECK(state_ == ChunkState::kClosed);
  PutVarint32(dst, schema_id_);
  PutVarint32(dst, static_cast<uint32_t>(events_.size()));
  PutVarsint64(dst, min_ts_);
  PutVarsint64(dst, max_ts_);
  PutVarint64(dst, max_offset_);

  std::string payload;
  const EventCodec codec(&schema);
  for (const auto& e : events_) {
    codec.Encode(e, min_ts_, &payload);
  }
  LzCompress(Slice(payload), dst);
}

Status Chunk::Deserialize(ChunkSeq seq, const Schema& schema, Slice payload,
                          std::unique_ptr<Chunk>* chunk) {
  uint32_t schema_id, count;
  int64_t min_ts, max_ts;
  uint64_t max_offset;
  if (!GetVarint32(&payload, &schema_id) || !GetVarint32(&payload, &count) ||
      !GetVarsint64(&payload, &min_ts) || !GetVarsint64(&payload, &max_ts) ||
      !GetVarint64(&payload, &max_offset)) {
    return Status::Corruption("bad chunk header");
  }
  if (schema_id != schema.id()) {
    return Status::InvalidArgument("schema mismatch during chunk decode");
  }

  std::string uncompressed;
  RAILGUN_RETURN_IF_ERROR(LzUncompress(payload, &uncompressed));

  auto c = std::make_unique<Chunk>(seq, schema_id);
  Slice input(uncompressed);
  const EventCodec codec(&schema);
  for (uint32_t i = 0; i < count; ++i) {
    Event e;
    RAILGUN_RETURN_IF_ERROR(codec.Decode(&input, min_ts, &e));
    c->Add(std::move(e));
  }
  c->state_ = ChunkState::kClosed;  // Already sorted when serialized.
  *chunk = std::move(c);
  return Status::OK();
}

bool Chunk::ContainsId(uint64_t id) const {
  for (const auto& e : events_) {
    if (e.id == id) return true;
  }
  return false;
}

}  // namespace railgun::reservoir
