#include "reservoir/reservoir.h"

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "common/logging.h"

namespace railgun::reservoir {

Reservoir::Reservoir(const ReservoirOptions& options, std::string dir)
    : options_(options),
      dir_(std::move(dir)),
      env_(options.env != nullptr ? options.env : Env::Default()),
      cache_(options.cache_capacity) {}

Reservoir::~Reservoir() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  writer_cv_.NotifyAll();
  prefetch_cv_.NotifyAll();
  if (writer_thread_.joinable()) writer_thread_.join();
  if (prefetch_thread_.joinable()) prefetch_thread_.join();
  // Drain anything the writer thread left behind. The queue is guarded
  // state, but WriteChunk() re-acquires mu_ to publish the location, so
  // pop under a short-lived lock and write with it released — the same
  // shape as WriterLoop.
  while (true) {
    std::shared_ptr<Chunk> chunk;
    {
      MutexLock lock(&mu_);
      if (write_queue_.empty()) break;
      chunk = write_queue_.front();
      write_queue_.pop_front();
    }
    (void)WriteChunk(chunk);  // Destructor: best effort.
  }
  if (writer_ != nullptr) (void)writer_->Sync();
}

Status Reservoir::Open() {
  RAILGUN_RETURN_IF_ERROR(env_->CreateDir(dir_));
  registry_.reset(new SchemaRegistry(env_, dir_));
  RAILGUN_RETURN_IF_ERROR(registry_->Open());
  if (registry_->Current() == nullptr) {
    if (options_.schema_fields.empty()) {
      return Status::InvalidArgument("reservoir needs a schema");
    }
    RAILGUN_RETURN_IF_ERROR(
        registry_->Register(options_.schema_fields).status());
  } else if (!options_.schema_fields.empty()) {
    // Schema evolution: register a new version if fields changed.
    const Schema* current = registry_->Current();
    bool same = current->num_fields() == options_.schema_fields.size();
    for (size_t i = 0; same && i < options_.schema_fields.size(); ++i) {
      same = current->fields()[i].name == options_.schema_fields[i].name &&
             current->fields()[i].type == options_.schema_fields[i].type;
    }
    if (!same) {
      RAILGUN_RETURN_IF_ERROR(
          registry_->Register(options_.schema_fields).status());
    }
  }

  reader_.reset(new SegmentReader(env_, dir_));
  uint64_t last_file_number = 0, last_file_size = 0;
  RAILGUN_RETURN_IF_ERROR(
      reader_->ScanAll(&index_, &last_file_number, &last_file_size));

  writer_.reset(new SegmentWriter(env_, dir_, options_.segment_max_bytes));
  RAILGUN_RETURN_IF_ERROR(writer_->Open(last_file_number, last_file_size));

  if (!index_.empty()) {
    next_chunk_seq_ = index_.back().seq + 1;
    last_closed_max_ts_ = index_.back().max_ts;
    for (const auto& loc : index_) {
      last_persisted_offset_ =
          std::max(last_persisted_offset_, loc.max_offset);
    }
  }
  open_.chunk = std::make_shared<Chunk>(next_chunk_seq_++,
                                        registry_->current_id());

  if (options_.async_io) {
    writer_thread_ = std::thread([this] { WriterLoop(); });
    prefetch_thread_ = std::thread([this] { PrefetchLoop(); });
  }
  return Status::OK();
}

Status Reservoir::Append(const Event& event, bool* accepted) {
  bool local_accepted = false;
  Status s;
  {
    MutexLock lock(&mu_);
    s = AppendLocked(event, &local_accepted);
  }
  if (accepted != nullptr) *accepted = local_accepted;
  RAILGUN_RETURN_IF_ERROR(s);

  // Synchronous-I/O mode (tests): drain the write queue inline.
  if (!options_.async_io) {
    while (true) {
      std::shared_ptr<Chunk> chunk;
      {
        MutexLock lock(&mu_);
        if (write_queue_.empty()) break;
        chunk = write_queue_.front();
        write_queue_.pop_front();
      }
      RAILGUN_RETURN_IF_ERROR(WriteChunk(chunk));
    }
  }
  return Status::OK();
}

Status Reservoir::AppendLocked(const Event& event, bool* accepted) {
  ++stats_.appends;
  *accepted = false;

  // Deduplicate against in-memory chunks (paper §4.1.1: "events are also
  // deduplicated based on an id, against the chunks still in-memory").
  if (open_.ids.count(event.id) > 0) {
    ++stats_.dedup_drops;
    return Status::OK();
  }
  for (const auto& t : transition_) {
    if (t.ids.count(event.id) > 0) {
      ++stats_.dedup_drops;
      return Status::OK();
    }
  }

  Event to_add = event;
  // The open chunk's lower time boundary: events older than this are
  // out of order with respect to chunks that already closed.
  Micros open_boundary = last_closed_max_ts_;
  if (!open_.chunk->empty()) {
    open_boundary = open_.chunk->min_timestamp();
  } else if (!transition_.empty()) {
    open_boundary = transition_.back().chunk->max_timestamp();
  }

  if (open_boundary >= 0 && to_add.timestamp < open_boundary) {
    // Grace handling: transition chunks still accept late events that
    // fall inside (or just before) their time range, newest first.
    for (auto it = transition_.rbegin(); it != transition_.rend(); ++it) {
      if (to_add.timestamp >= it->chunk->min_timestamp()) {
        it->chunk->Add(to_add);
        it->ids.insert(to_add.id);
        ++stats_.late_transition_adds;
        *accepted = true;
        return Status::OK();
      }
    }
    if (!transition_.empty() &&
        to_add.timestamp > last_closed_max_ts_) {
      // Older than every transition chunk's range but newer than the
      // durable chunks: absorb into the oldest transition chunk.
      transition_.front().chunk->Add(to_add);
      transition_.front().ids.insert(to_add.id);
      ++stats_.late_transition_adds;
      *accepted = true;
      return Status::OK();
    }
    if (to_add.timestamp < last_closed_max_ts_) {
      // Truly late: older than data already persisted.
      switch (options_.late_policy) {
        case LateEventPolicy::kDiscard:
          ++stats_.late_drops;
          return Status::OK();
        case LateEventPolicy::kRewriteTimestamp:
          to_add.timestamp = open_boundary;
          ++stats_.late_rewrites;
          break;
      }
    }
    // Otherwise: within the open chunk's tolerance (sorted at close).
  }

  open_.chunk->Add(to_add);
  open_.ids.insert(to_add.id);
  *accepted = true;

  MaybeCloseTransitionsLocked(to_add.timestamp);
  if (open_.chunk->EstimatedBytes() >= options_.chunk_target_bytes) {
    CloseOpenChunkLocked();
  }
  return Status::OK();
}

void Reservoir::CloseOpenChunkLocked() {
  if (open_.chunk->empty()) return;
  InMemoryChunk closing = std::move(open_);
  open_.chunk = std::make_shared<Chunk>(next_chunk_seq_++,
                                        registry_->current_id());
  open_.ids.clear();

  if (options_.ooo_grace > 0) {
    closing.chunk->MarkTransition(closing.chunk->max_timestamp() +
                                  options_.ooo_grace);
    transition_.push_back(std::move(closing));
  } else {
    FinalizeChunkLocked(std::move(closing));
  }
}

void Reservoir::MaybeCloseTransitionsLocked(Micros newest_ts) {
  while (!transition_.empty() &&
         transition_.front().chunk->transition_deadline() <= newest_ts) {
    InMemoryChunk in_mem = std::move(transition_.front());
    transition_.pop_front();
    FinalizeChunkLocked(std::move(in_mem));
  }
}

void Reservoir::FinalizeChunkLocked(InMemoryChunk in_mem) {
  in_mem.chunk->Close();
  last_closed_max_ts_ =
      std::max(last_closed_max_ts_, in_mem.chunk->max_timestamp());
  ++stats_.chunks_closed;
  cache_.Insert(in_mem.chunk);
  in_flight_[in_mem.chunk->seq()] = in_mem.chunk;
  write_queue_.push_back(in_mem.chunk);
  if (options_.async_io) writer_cv_.NotifyOne();
  // In synchronous mode Append drains the queue after releasing mu_.
}

Status Reservoir::WriteChunk(const std::shared_ptr<Chunk>& chunk) {
  const Schema* schema = registry_->Get(chunk->schema_id());
  if (schema == nullptr) return Status::Corruption("unknown schema id");

  std::string payload;
  chunk->SerializeTo(*schema, &payload);

  ChunkLocation location;
  RAILGUN_RETURN_IF_ERROR(writer_->Append(*chunk, payload, &location));

  MutexLock lock(&mu_);
  index_.push_back(location);
  in_flight_.erase(chunk->seq());
  last_persisted_offset_ =
      std::max(last_persisted_offset_, location.max_offset);
  ++stats_.chunks_written;
  return Status::OK();
}

void Reservoir::WriterLoop() {
  while (true) {
    std::shared_ptr<Chunk> chunk;
    {
      MutexLock lock(&mu_);
      writer_cv_.Wait(&mu_,
                      [this] { return shutdown_ || !write_queue_.empty(); });
      if (write_queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      chunk = write_queue_.front();
      write_queue_.pop_front();
    }
    RAILGUN_CHECK_OK(WriteChunk(chunk));
    writer_done_cv_.NotifyAll();
  }
}

void Reservoir::PrefetchLoop() {
  while (true) {
    ChunkSeq seq;
    {
      MutexLock lock(&mu_);
      prefetch_cv_.Wait(
          &mu_, [this] { return shutdown_ || !prefetch_queue_.empty(); });
      if (shutdown_) return;
      seq = prefetch_queue_.front();
      prefetch_queue_.pop_front();
    }
    if (cache_.Contains(seq)) continue;
    auto chunk_or = LoadChunkFromDisk(seq);
    if (chunk_or.ok()) cache_.Insert(chunk_or.value());
  }
}

void Reservoir::SchedulePrefetch(ChunkSeq seq) {
  if (!options_.enable_prefetch) return;
  if (cache_.Contains(seq)) return;
  {
    MutexLock lock(&mu_);
    if (seq >= next_chunk_seq_) return;
    ++stats_.prefetches_issued;
    if (!options_.async_io) return;  // Counted but not loaded.
    prefetch_queue_.push_back(seq);
  }
  prefetch_cv_.NotifyOne();
}

StatusOr<std::shared_ptr<Chunk>> Reservoir::GetChunk(ChunkSeq seq,
                                                     bool prefetch_next) {
  {
    MutexLock lock(&mu_);
    if (open_.chunk != nullptr && open_.chunk->seq() == seq) {
      return open_.chunk;
    }
    for (const auto& t : transition_) {
      if (t.chunk->seq() == seq) return t.chunk;
    }
    auto it = in_flight_.find(seq);
    if (it != in_flight_.end()) return it->second;
  }

  if (auto cached = cache_.Get(seq); cached != nullptr) {
    if (prefetch_next) SchedulePrefetch(seq + 1);
    return cached;
  }

  // Cache miss: synchronous load (the paper's tail-latency hazard).
  auto chunk_or = LoadChunkFromDisk(seq);
  if (chunk_or.ok()) {
    {
      MutexLock lock(&mu_);
      ++stats_.sync_chunk_loads;
    }
    cache_.Insert(chunk_or.value());
    if (prefetch_next) SchedulePrefetch(seq + 1);
  }
  return chunk_or;
}

StatusOr<std::shared_ptr<Chunk>> Reservoir::LoadChunkFromDisk(ChunkSeq seq) {
  ChunkLocation location;
  {
    MutexLock lock(&mu_);
    auto it = std::lower_bound(index_.begin(), index_.end(), seq,
                               [](const ChunkLocation& loc, ChunkSeq s) {
                                 return loc.seq < s;
                               });
    if (it == index_.end() || it->seq != seq) {
      return Status::NotFound("chunk not on disk");
    }
    location = *it;
  }
  std::string payload;
  RAILGUN_RETURN_IF_ERROR(reader_->ReadChunkPayload(location, &payload));

  // Peek the schema id, then decode with the right schema version.
  Slice peek(payload);
  uint32_t schema_id;
  if (!GetVarint32(&peek, &schema_id)) {
    return Status::Corruption("bad chunk payload");
  }
  const Schema* schema = registry_->Get(schema_id);
  if (schema == nullptr) return Status::Corruption("unknown schema id");

  std::unique_ptr<Chunk> chunk;
  RAILGUN_RETURN_IF_ERROR(
      Chunk::Deserialize(seq, *schema, Slice(payload), &chunk));
  return std::shared_ptr<Chunk>(std::move(chunk));
}

ChunkSeq Reservoir::OldestSeqLocked() const {
  if (!index_.empty()) return index_.front().seq;
  if (!in_flight_.empty()) {
    ChunkSeq oldest = UINT64_MAX;
    for (const auto& [seq, chunk] : in_flight_) oldest = std::min(oldest, seq);
    return oldest;
  }
  if (!transition_.empty()) return transition_.front().chunk->seq();
  return open_.chunk->seq();
}

std::unique_ptr<ReservoirIterator> Reservoir::NewIterator() {
  auto iter =
      std::unique_ptr<ReservoirIterator>(new ReservoirIterator(this));
  ChunkSeq oldest;
  {
    MutexLock lock(&mu_);
    oldest = OldestSeqLocked();
    ++live_iterators_;
  }
  iter->PositionAt(oldest, 0);
  return iter;
}

std::unique_ptr<ReservoirIterator> Reservoir::NewIteratorAt(Micros ts) {
  auto iter =
      std::unique_ptr<ReservoirIterator>(new ReservoirIterator(this));
  ChunkSeq target;
  {
    MutexLock lock(&mu_);
    ++live_iterators_;
    // First persisted chunk with max_ts >= ts.
    auto it = std::lower_bound(index_.begin(), index_.end(), ts,
                               [](const ChunkLocation& loc, Micros t) {
                                 return loc.max_ts < t;
                               });
    if (it != index_.end()) {
      target = it->seq;
    } else {
      // Fall through to the in-memory chunks.
      target = OldestSeqLocked();
      if (!index_.empty()) target = index_.back().seq + 1;
    }
  }
  iter->PositionAt(target, 0);
  // Advance within the chunk to the first event with timestamp >= ts.
  while (!iter->AtEnd() && iter->event().timestamp < ts) {
    iter->Advance();
  }
  return iter;
}

std::unique_ptr<ReservoirIterator> Reservoir::NewIteratorAtPosition(
    ChunkSeq seq, size_t index) {
  auto iter =
      std::unique_ptr<ReservoirIterator>(new ReservoirIterator(this));
  {
    MutexLock lock(&mu_);
    ++live_iterators_;
  }
  iter->PositionAt(seq, index);
  return iter;
}

uint64_t Reservoir::LastPersistedOffset() const {
  MutexLock lock(&mu_);
  return last_persisted_offset_;
}

size_t Reservoir::NumPersistedChunks() const {
  MutexLock lock(&mu_);
  return index_.size();
}

Status Reservoir::Sync() {
  {
    MutexLock lock(&mu_);
    writer_done_cv_.Wait(&mu_, [this] {
      return write_queue_.empty() && in_flight_.empty();
    });
  }
  return writer_->Sync();
}

Status Reservoir::CopyMissingTo(const std::string& target_dir) {
  RAILGUN_RETURN_IF_ERROR(env_->CreateDir(target_dir));
  std::vector<std::string> ours, theirs;
  RAILGUN_RETURN_IF_ERROR(env_->ListDir(dir_, &ours));
  RAILGUN_RETURN_IF_ERROR(env_->ListDir(target_dir, &theirs));

  for (const auto& name : ours) {
    const bool is_segment = name.rfind("segment-", 0) == 0;
    const bool is_schemas = name == "SCHEMAS";
    if (!is_segment && !is_schemas) continue;

    bool skip = false;
    if (is_segment) {
      // Sealed segments are immutable: same name + same size = same data.
      uint64_t our_size = 0, their_size = 0;
      if (std::find(theirs.begin(), theirs.end(), name) != theirs.end() &&
          env_->GetFileSize(JoinPath(dir_, name), &our_size).ok() &&
          env_->GetFileSize(JoinPath(target_dir, name), &their_size).ok() &&
          our_size == their_size) {
        skip = true;
      }
    }
    if (!skip) {
      RAILGUN_RETURN_IF_ERROR(
          env_->CopyFile(JoinPath(dir_, name), JoinPath(target_dir, name)));
    }
  }
  return Status::OK();
}

Status Reservoir::TruncateBefore(Micros ts) {
  MutexLock lock(&mu_);
  // Group persisted chunks by file; a file is droppable when every chunk
  // in it is older than ts and it is not the file still being written.
  std::map<uint64_t, Micros> file_max_ts;
  for (const auto& loc : index_) {
    auto [it, inserted] = file_max_ts.try_emplace(loc.file_number, loc.max_ts);
    if (!inserted) it->second = std::max(it->second, loc.max_ts);
  }
  if (file_max_ts.empty()) return Status::OK();
  const uint64_t newest_file = file_max_ts.rbegin()->first;

  std::vector<uint64_t> droppable;
  for (const auto& [number, max_ts] : file_max_ts) {
    if (number != newest_file && max_ts < ts) droppable.push_back(number);
  }
  for (uint64_t number : droppable) {
    RAILGUN_RETURN_IF_ERROR(env_->RemoveFile(SegmentFileName(dir_, number)));
  }
  index_.erase(std::remove_if(index_.begin(), index_.end(),
                              [&](const ChunkLocation& loc) {
                                return std::find(droppable.begin(),
                                                 droppable.end(),
                                                 loc.file_number) !=
                                       droppable.end();
                              }),
               index_.end());
  return Status::OK();
}

ReservoirStats Reservoir::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

size_t Reservoir::num_live_iterators() const {
  MutexLock lock(&mu_);
  return live_iterators_;
}

Micros Reservoir::MaxTimestamp() const {
  MutexLock lock(&mu_);
  Micros result = last_closed_max_ts_;
  if (!open_.chunk->empty()) {
    result = std::max(result, open_.chunk->max_timestamp());
  }
  return result;
}

uint64_t Reservoir::NumBufferedEvents() const {
  MutexLock lock(&mu_);
  uint64_t n = open_.chunk->num_events();
  for (const auto& t : transition_) n += t.chunk->num_events();
  for (const auto& [seq, chunk] : in_flight_) n += chunk->num_events();
  return n;
}

// ---------------------------------------------------------------------
// ReservoirIterator

ReservoirIterator::ReservoirIterator(Reservoir* reservoir)
    : reservoir_(reservoir) {}

ReservoirIterator::~ReservoirIterator() {
  MutexLock lock(&reservoir_->mu_);
  --reservoir_->live_iterators_;
}

void ReservoirIterator::PositionAt(ChunkSeq seq, size_t index) {
  chunk_seq_ = seq;
  index_ = index;
  chunk_.reset();
  LoadCurrent();
}

void ReservoirIterator::LoadCurrent() {
  valid_ = false;
  while (true) {
    if (chunk_ == nullptr || chunk_->seq() != chunk_seq_) {
      auto chunk_or = reservoir_->GetChunk(chunk_seq_, /*prefetch_next=*/true);
      if (!chunk_or.ok()) {
        chunk_.reset();
        return;  // Past the end (or truncated): AtEnd.
      }
      chunk_ = chunk_or.value();
    }
    if (index_ < chunk_->num_events()) {
      valid_ = true;
      return;
    }
    // Exhausted this chunk. Only the open chunk blocks traversal (more
    // events may still arrive); transition chunks are passable — a late
    // event added to a transition chunk behind an iterator is simply
    // not revisited by it.
    if (chunk_->state() == ChunkState::kOpen) return;
    ++chunk_seq_;
    index_ = 0;
    chunk_.reset();
  }
}

void ReservoirIterator::Advance() {
  RAILGUN_CHECK(valid_);
  ++index_;
  LoadCurrent();
}

void ReservoirIterator::Refresh() {
  if (!valid_) LoadCurrent();
}

}  // namespace railgun::reservoir
