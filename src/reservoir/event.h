// Event model: schema'd rows with a timestamp and a deduplication id.
// Serialization is schema-directed (field order and types come from the
// Schema, so the wire form stores no per-field metadata) with varint /
// zig-zag packing — the "data format ... efficient in terms of
// deserialization time and size" of paper §3.
#ifndef RAILGUN_RESERVOIR_EVENT_H_
#define RAILGUN_RESERVOIR_EVENT_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace railgun::reservoir {

enum class FieldType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
};

struct FieldValue {
  std::variant<int64_t, double, std::string, bool> value;

  FieldValue() : value(int64_t{0}) {}
  FieldValue(int64_t v) : value(v) {}            // NOLINT
  FieldValue(double v) : value(v) {}             // NOLINT
  FieldValue(std::string v) : value(std::move(v)) {}  // NOLINT
  FieldValue(const char* v) : value(std::string(v)) {}  // NOLINT
  FieldValue(bool v) : value(v) {}               // NOLINT

  bool is_int() const { return std::holds_alternative<int64_t>(value); }
  bool is_double() const { return std::holds_alternative<double>(value); }
  bool is_string() const { return std::holds_alternative<std::string>(value); }
  bool is_bool() const { return std::holds_alternative<bool>(value); }

  int64_t as_int() const { return std::get<int64_t>(value); }
  double as_double() const { return std::get<double>(value); }
  const std::string& as_string() const { return std::get<std::string>(value); }
  bool as_bool() const { return std::get<bool>(value); }

  // Numeric coercion used by aggregators (int -> double).
  double ToNumber() const {
    if (is_int()) return static_cast<double>(as_int());
    if (is_double()) return as_double();
    if (is_bool()) return as_bool() ? 1.0 : 0.0;
    return 0.0;
  }

  std::string ToString() const;

  bool operator==(const FieldValue& other) const { return value == other.value; }
};

struct SchemaField {
  std::string name;
  FieldType type;
};

// An immutable, versioned event schema.
class Schema {
 public:
  Schema() = default;
  Schema(uint32_t id, std::vector<SchemaField> fields);

  uint32_t id() const { return id_; }
  const std::vector<SchemaField>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }

  // Returns the field index, or -1.
  int FieldIndex(const std::string& name) const;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, Schema* schema);

 private:
  uint32_t id_ = 0;
  std::vector<SchemaField> fields_;
};

// One stream event. `offset` is the position in the source message log
// (used to correlate checkpoints with replay positions); `id` is the
// deduplication key.
struct Event {
  Micros timestamp = 0;
  uint64_t id = 0;
  uint64_t offset = 0;
  std::vector<FieldValue> values;

  const FieldValue& value(size_t field_index) const {
    return values[field_index];
  }
};

// Schema-directed event codec.
class EventCodec {
 public:
  explicit EventCodec(const Schema* schema) : schema_(schema) {}

  // Appends the event (timestamp delta-encoded against base_ts).
  void Encode(const Event& event, Micros base_ts, std::string* dst) const;
  Status Decode(Slice* input, Micros base_ts, Event* event) const;

 private:
  const Schema* schema_;
};

}  // namespace railgun::reservoir

#endif  // RAILGUN_RESERVOIR_EVENT_H_
