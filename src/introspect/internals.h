// The built-in "__railgun.internals" stream: the engine dogfoods its
// own event path by publishing registry snapshots as ordinary events,
// so REPL `stats`, ADD METRIC, and dashboards work on the engine itself
// with zero new query machinery (cavalieri's `cavalieri::internals`
// pattern). The double-underscore prefix keeps it out of the user
// namespace; the tokenizer treats '.' as an identifier character, so
// the name is usable directly in DDL.
#ifndef RAILGUN_INTROSPECT_INTERNALS_H_
#define RAILGUN_INTROSPECT_INTERNALS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/stream_def.h"

namespace railgun::introspect {

inline constexpr char kInternalsStream[] = "__railgun.internals";

// Fixed schema: (node STRING, metric STRING, kind STRING, value DOUBLE)
// PARTITION BY node PARTITIONS 1. One event per metric per snapshot
// period, so `count(*) ... GROUP BY node` counts published samples and
// `max(value) where metric == ...` reads a series.
engine::StreamDef InternalsStreamDef();

// One decoded internals event.
struct InternalsSample {
  std::string node;
  std::string metric;
  std::string kind;
  double value = 0;
};

// Builds the event payload for one sample (field order must match
// InternalsStreamDef). Exposed for the publisher and tests.
reservoir::Event MakeInternalsEvent(const InternalsSample& sample,
                                    Micros timestamp, uint64_t id);

// Decodes an event produced by MakeInternalsEvent back into a sample.
Status ParseInternalsEvent(const reservoir::Event& event,
                           InternalsSample* sample);

}  // namespace railgun::introspect

#endif  // RAILGUN_INTROSPECT_INTERNALS_H_
