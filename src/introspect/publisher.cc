#include "introspect/publisher.h"

#include <chrono>

#include "common/hash.h"

namespace railgun::introspect {

Publisher::Publisher(const PublisherOptions& options, Registry* registry,
                     msg::Bus* bus, Clock* clock)
    : options_(options),
      registry_(registry),
      bus_(bus),
      clock_(clock),
      topic_(InternalsStreamDef().TopicFor("node")),
      id_base_(Hash64(options.node + "#introspect") << 20) {}

Publisher::~Publisher() { Stop(); }

Status Publisher::Start() {
  if (running_.load()) return Status::OK();
  // Idempotent: several publishers (the broker's cluster plus every
  // worker process) share the one internals topic.
  Status created =
      bus_->CreateTopic(topic_, InternalsStreamDef().partitions_per_topic);
  if (!created.ok() && !created.IsAlreadyExists()) return created;
  running_.store(true);
  // Simulated clocks have no independent time flow; tests drive
  // PublishOnce() directly (MetadataService::SweepLoop precedent).
  if (clock_->IsRealTime()) {
    thread_ = std::thread([this] { Loop(); });
  }
  return Status::OK();
}

void Publisher::Stop() {
  if (!running_.exchange(false)) return;
  {
    MutexLock lock(&mu_);
    cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
}

Status Publisher::PublishOnce() {
  std::vector<Sample> samples = registry_->Snapshot();
  if (samples.empty()) return Status::OK();
  const Micros now = clock_->NowMicros();
  std::vector<msg::ProduceRecord> records;
  records.reserve(samples.size());
  reservoir::Schema schema(0, InternalsStreamDef().fields);
  for (const Sample& s : samples) {
    engine::EventEnvelope envelope;
    envelope.request_id = 0;  // Fire-and-forget: nothing awaits a reply.
    envelope.event = MakeInternalsEvent(
        {options_.node, s.name, s.kind, s.value}, now,
        id_base_ + next_seq_.fetch_add(1, std::memory_order_relaxed));
    msg::ProduceRecord record;
    record.key = options_.node;
    EncodeEventEnvelope(envelope, schema, &record.payload);
    records.push_back(std::move(record));
  }
  RAILGUN_RETURN_IF_ERROR(bus_->ProduceBatch(topic_, std::move(records)));
  published_.fetch_add(samples.size(), std::memory_order_relaxed);
  return Status::OK();
}

void Publisher::Loop() {
  MutexLock lock(&mu_);
  while (running_.load()) {
    cv_.WaitFor(&mu_, options_.period, [this] { return !running_.load(); });
    if (!running_.load()) break;
    lock.Unlock();
    // Best-effort: a failed snapshot (e.g. bus shutting down) is
    // dropped; the next tick retries.
    (void)PublishOnce();
    lock.Lock();
  }
}

}  // namespace railgun::introspect
