// Periodic registry -> "__railgun.internals" snapshot publisher. Each
// tick encodes every registry sample as an ordinary EventEnvelope
// (request_id 0 = fire-and-forget) and produces one batch to the
// internals topic, keyed by the node label, so the engine's own metrics
// flow through the identical ingest path user events take.
//
// Threading follows MetadataService: the background loop only runs on a
// real-time clock; under SimulatedClock tests call PublishOnce()
// explicitly, which makes snapshot timing deterministic.
#ifndef RAILGUN_INTROSPECT_PUBLISHER_H_
#define RAILGUN_INTROSPECT_PUBLISHER_H_

#include <atomic>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/mutex.h"
#include "introspect/internals.h"
#include "introspect/registry.h"
#include "msg/bus.h"

namespace railgun::introspect {

struct PublisherOptions {
  // Snapshot period. Benches shorten it to watch admission react.
  Micros period = kMicrosPerSecond;
  // The `node` column value for every sample this publisher emits.
  std::string node = "node";
};

class Publisher {
 public:
  Publisher(const PublisherOptions& options, Registry* registry,
            msg::Bus* bus, Clock* clock);
  ~Publisher();

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  // Creates the internals topic (idempotent) and, on a real-time clock,
  // starts the periodic loop.
  Status Start();
  void Stop();

  // One snapshot -> one produced batch. Public so simulated-clock tests
  // and shutdown flushes can drive publication without the thread.
  Status PublishOnce();

  uint64_t published_samples() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  PublisherOptions options_;
  Registry* registry_;
  msg::Bus* bus_;
  Clock* clock_;
  std::string topic_;
  // Event ids must be unique per (node, sample): dedup keys collide
  // across ticks otherwise and downstream tasks drop the repeats.
  uint64_t id_base_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> published_{0};

  std::thread thread_;
  std::atomic<bool> running_{false};
  Mutex mu_{kRankIntrospectPublisher};
  CondVar cv_;
};

}  // namespace railgun::introspect

#endif  // RAILGUN_INTROSPECT_PUBLISHER_H_
