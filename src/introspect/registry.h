// Self-instrumentation registry (ROADMAP "self-instrumentation +
// admission control"): every layer of the engine records counters,
// gauges and latency histograms here, and introspect::Publisher turns
// periodic snapshots into ordinary events on the built-in
// "__railgun.internals" stream (see introspect/internals.h), so the
// engine's own health is queryable with the same DDL as user data.
//
// Concurrency model: metric handles are individual atomics (histograms
// carry a private mutex), so the hot paths never share a lock; the
// registry's map lock is taken only on first lookup — callers cache the
// returned pointer — and briefly by Snapshot(). Handles are owned by
// the registry and stay address-stable for its lifetime. Two callers
// asking for the same name share one handle, which is how per-node
// instances of a layer aggregate into one cluster-wide series.
#ifndef RAILGUN_INTROSPECT_REGISTRY_H_
#define RAILGUN_INTROSPECT_REGISTRY_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"

namespace railgun::introspect {

// Monotonic event count. Relaxed ordering: series are read by sampling,
// never used for synchronization.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (queue depth, connection count). Add() lets
// several instances sharing one name maintain a correct aggregate.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Latency/size distribution. Record takes a short private lock (HDR
// bucket increments), never the registry lock.
class Histogram {
 public:
  void Record(int64_t value) {
    MutexLock lock(&mu_);
    hist_.Record(value);
  }
  LatencyHistogram Snapshot() const {
    MutexLock lock(&mu_);
    return hist_;
  }

 private:
  mutable Mutex mu_{kRankHistogram};
  LatencyHistogram hist_ GUARDED_BY(mu_);
};

// One snapshot row, matching the __railgun.internals schema (minus the
// node column, which the publisher adds).
struct Sample {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "probe" | "histogram".
  double value = 0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create; the returned handle is owned by the registry and
  // valid for its lifetime. Same name -> same handle.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Pull-style metric sampled at snapshot time, for values that already
  // live in a component's own atomics (bus rebalance counts, dial
  // attempts). The callable must outlive the registry's last Snapshot —
  // register probes only from owners whose lifetime encloses the
  // registry's use. Duplicate names are summed.
  void AddProbe(const std::string& name, std::function<double()> probe);

  // Point-in-time copy of every series, sorted by name (deterministic
  // given deterministic inputs). Histograms expand to
  // <name>.count/.mean/.p50/.p99/.p999/.max rows.
  std::vector<Sample> Snapshot() const;

 private:
  // Leaf: Snapshot copies handles/probes out and samples them unlocked
  // (probes take component locks and must not nest inside this one).
  mutable Mutex mu_{kRankIntrospectRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::function<double()>>> probes_
      GUARDED_BY(mu_);
};

}  // namespace railgun::introspect

#endif  // RAILGUN_INTROSPECT_REGISTRY_H_
