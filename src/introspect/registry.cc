#include "introspect/registry.h"

#include <algorithm>

namespace railgun::introspect {

namespace {

// The guard relationship between `mu` and `map` is generic here, so
// the static analysis cannot see it; the callers' members are all
// GUARDED_BY the registry mutex passed in.
template <typename Map, typename T = typename Map::mapped_type::element_type>
T* GetOrCreate(Mutex* mu, Map* map,
               const std::string& name) NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu);
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(name, std::make_unique<T>()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* Registry::counter(const std::string& name) {
  return GetOrCreate(&mu_, &counters_, name);
}

Gauge* Registry::gauge(const std::string& name) {
  return GetOrCreate(&mu_, &gauges_, name);
}

Histogram* Registry::histogram(const std::string& name) {
  return GetOrCreate(&mu_, &histograms_, name);
}

void Registry::AddProbe(const std::string& name,
                        std::function<double()> probe) {
  MutexLock lock(&mu_);
  probes_.emplace_back(name, std::move(probe));
}

std::vector<Sample> Registry::Snapshot() const {
  std::vector<Sample> out;
  // Copy the handle pointers (and probe callables) out under the lock,
  // then read values lock-free: probes may themselves take component
  // locks, and must not do so while holding the registry lock.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, std::function<double()>>> probes;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    probes = probes_;
  }

  for (const auto& [name, c] : counters) {
    out.push_back({name, "counter", static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges) {
    out.push_back({name, "gauge", static_cast<double>(g->value())});
  }
  // Duplicate probe names (several components exporting one series) sum
  // into a single row.
  std::map<std::string, double> probe_totals;
  for (const auto& [name, fn] : probes) probe_totals[name] += fn();
  for (const auto& [name, total] : probe_totals) {
    out.push_back({name, "probe", total});
  }
  for (const auto& [name, h] : histograms) {
    LatencyHistogram snap = h->Snapshot();
    out.push_back({name + ".count", "histogram",
                   static_cast<double>(snap.Count())});
    if (snap.Count() > 0) {
      out.push_back({name + ".mean", "histogram", snap.Mean()});
      out.push_back({name + ".p50", "histogram",
                     static_cast<double>(snap.ValueAtPercentile(50.0))});
      out.push_back({name + ".p99", "histogram",
                     static_cast<double>(snap.ValueAtPercentile(99.0))});
      out.push_back({name + ".p999", "histogram",
                     static_cast<double>(snap.ValueAtPercentile(99.9))});
      out.push_back(
          {name + ".max", "histogram", static_cast<double>(snap.Max())});
    }
  }

  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

}  // namespace railgun::introspect
