#include "introspect/internals.h"

namespace railgun::introspect {

engine::StreamDef InternalsStreamDef() {
  engine::StreamDef def;
  def.name = kInternalsStream;
  def.fields = {
      {"node", reservoir::FieldType::kString},
      {"metric", reservoir::FieldType::kString},
      {"kind", reservoir::FieldType::kString},
      {"value", reservoir::FieldType::kDouble},
  };
  def.partitioners = {"node"};
  def.partitions_per_topic = 1;
  return def;
}

reservoir::Event MakeInternalsEvent(const InternalsSample& sample,
                                    Micros timestamp, uint64_t id) {
  reservoir::Event event;
  event.timestamp = timestamp;
  event.id = id;
  event.values.reserve(4);
  event.values.emplace_back(sample.node);
  event.values.emplace_back(sample.metric);
  event.values.emplace_back(sample.kind);
  event.values.emplace_back(sample.value);
  return event;
}

Status ParseInternalsEvent(const reservoir::Event& event,
                           InternalsSample* sample) {
  if (event.values.size() != 4 || !event.values[0].is_string() ||
      !event.values[1].is_string() || !event.values[2].is_string() ||
      !event.values[3].is_double()) {
    return Status::Corruption("malformed __railgun.internals event");
  }
  sample->node = event.values[0].as_string();
  sample->metric = event.values[1].as_string();
  sample->kind = event.values[2].as_string();
  sample->value = event.values[3].as_double();
  return Status::OK();
}

}  // namespace railgun::introspect
