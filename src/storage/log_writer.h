#ifndef RAILGUN_STORAGE_LOG_WRITER_H_
#define RAILGUN_STORAGE_LOG_WRITER_H_

#include <cstdint>
#include <memory>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/log_format.h"

namespace railgun::storage::log {

class Writer {
 public:
  // Takes a borrowed destination; the file must be empty (or pass the
  // current length for reopened logs).
  explicit Writer(WritableFile* dest, uint64_t dest_length = 0);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& record);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // Current offset within the block.
};

}  // namespace railgun::storage::log

#endif  // RAILGUN_STORAGE_LOG_WRITER_H_
