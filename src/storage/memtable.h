// In-memory sorted buffer of recent writes for one column family, backed
// by an arena-allocated skip list over internal keys.
#ifndef RAILGUN_STORAGE_MEMTABLE_H_
#define RAILGUN_STORAGE_MEMTABLE_H_

#include <memory>
#include <string>

#include "common/arena.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"
#include "storage/skiplist.h"

namespace railgun::storage {

// Compares length-prefixed internal keys stored in the skip list.
class MemTableKeyComparator {
 public:
  int operator()(const char* a, const char* b) const;
};

class MemTable {
 public:
  MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  // If the user key exists: returns true and sets *found_value /
  // *is_deleted. Returns false if the memtable has no entry for the key.
  bool Get(const LookupKey& lkey, std::string* found_value, bool* is_deleted);

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  bool Empty() const { return empty_; }

  // Iterates entries in internal-key order. Entry layout in the skip
  // list: klen (varint32) internal_key vlen (varint32) value.
  class Iterator {
   public:
    explicit Iterator(const MemTable* mem) : iter_(&mem->table_) {}

    bool Valid() const { return iter_.Valid(); }
    void SeekToFirst() { iter_.SeekToFirst(); }
    void Seek(const Slice& internal_key);
    void Next() { iter_.Next(); }
    Slice internal_key() const;
    Slice value() const;

   private:
    std::string seek_buf_;
    SkipList<const char*, MemTableKeyComparator>::Iterator iter_;
  };

 private:
  friend class Iterator;

  Arena arena_;
  SkipList<const char*, MemTableKeyComparator> table_;
  bool empty_ = true;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_MEMTABLE_H_
