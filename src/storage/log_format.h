// Write-ahead-log record layout (LevelDB-style): the log is a sequence of
// 32 KiB blocks; each record fragment carries a CRC32C, a 2-byte length
// and a 1-byte type so records can span block boundaries and torn tails
// are detected on replay.
#ifndef RAILGUN_STORAGE_LOG_FORMAT_H_
#define RAILGUN_STORAGE_LOG_FORMAT_H_

namespace railgun::storage::log {

enum RecordType {
  kZeroType = 0,  // Preallocated zeroed space.
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
constexpr int kMaxRecordType = kLastType;

constexpr int kBlockSize = 32768;

// checksum (4) + length (2) + type (1).
constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace railgun::storage::log

#endif  // RAILGUN_STORAGE_LOG_FORMAT_H_
