#include "storage/log_writer.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace railgun::storage::log {

Writer::Writer(WritableFile* dest, uint64_t dest_length)
    : dest_(dest),
      block_offset_(static_cast<int>(dest_length % kBlockSize)) {}

Status Writer::AddRecord(const Slice& record) {
  const char* ptr = record.data();
  size_t left = record.size();

  Status s;
  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Fill the block trailer with zeroes and switch to a new block.
      if (leftover > 0) {
        static const char kZeroes[kHeaderSize] = {0};
        s = dest_->Append(Slice(kZeroes, static_cast<size_t>(leftover)));
        if (!s.ok()) return s;
      }
      block_offset_ = 0;
    }

    const size_t avail =
        static_cast<size_t>(kBlockSize - block_offset_ - kHeaderSize);
    const size_t fragment_length = (left < avail) ? left : avail;

    const bool end = (left == fragment_length);
    RecordType type;
    if (begin && end) {
      type = kFullType;
    } else if (begin) {
      type = kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }

    s = EmitPhysicalRecord(type, ptr, fragment_length);
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (s.ok() && left > 0);
  return s;
}

Status Writer::EmitPhysicalRecord(RecordType type, const char* ptr,
                                  size_t length) {
  char buf[kHeaderSize];
  buf[4] = static_cast<char>(length & 0xff);
  buf[5] = static_cast<char>(length >> 8);
  buf[6] = static_cast<char>(type);

  uint32_t crc = crc32c::Extend(
      crc32c::Value(&buf[6], 1), ptr, length);  // Covers type + payload.
  EncodeFixed32(buf, crc32c::Mask(crc));

  Status s = dest_->Append(Slice(buf, kHeaderSize));
  if (s.ok()) {
    s = dest_->Append(Slice(ptr, length));
    // No per-record flush: Railgun's durability story replays the
    // message log from the last checkpoint (paper §3.3), so the WAL only
    // needs to reach the OS on sync/close, not per write.
  }
  block_offset_ += static_cast<int>(kHeaderSize + length);
  return s;
}

}  // namespace railgun::storage::log
