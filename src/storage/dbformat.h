// Internal key format of the LSM store. An internal key is the user key
// followed by an 8-byte tag packing (sequence << 8 | value_type). Keys
// order by user key ascending, then by sequence descending so the newest
// version of a key is seen first.
#ifndef RAILGUN_STORAGE_DBFORMAT_H_
#define RAILGUN_STORAGE_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"

namespace railgun::storage {

using SequenceNumber = uint64_t;

enum ValueType : uint8_t {
  kTypeDeletion = 0,
  kTypeValue = 1,
};

constexpr SequenceNumber kMaxSequenceNumber = (uint64_t{1} << 56) - 1;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

inline void AppendInternalKey(std::string* result, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, t));
}

// Parsed view over an internal key.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;
};

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  if (internal_key.size() < 8) return false;
  const uint64_t tag = DecodeFixed64(internal_key.data() +
                                     internal_key.size() - 8);
  result->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  result->sequence = tag >> 8;
  result->type = static_cast<ValueType>(tag & 0xff);
  return result->type <= kTypeValue;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

// Orders internal keys: user key ascending, then tag (sequence)
// descending.
struct InternalKeyComparator {
  int Compare(const Slice& a, const Slice& b) const {
    const int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    const uint64_t atag = DecodeFixed64(a.data() + a.size() - 8);
    const uint64_t btag = DecodeFixed64(b.data() + b.size() - 8);
    if (atag > btag) return -1;
    if (atag < btag) return +1;
    return 0;
  }
  int operator()(const Slice& a, const Slice& b) const { return Compare(a, b); }
};

// A lookup key bundles the encodings needed to probe the memtable and
// tables for a user key at a snapshot sequence.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber seq) {
    PutVarint32(&rep_, static_cast<uint32_t>(user_key.size() + 8));
    key_offset_ = rep_.size();
    AppendInternalKey(&rep_, user_key, seq, kTypeValue);
  }

  // Suitable for probing the memtable (length-prefixed internal key).
  Slice memtable_key() const { return Slice(rep_); }
  // The internal key itself.
  Slice internal_key() const {
    return Slice(rep_.data() + key_offset_, rep_.size() - key_offset_);
  }
  Slice user_key() const {
    return Slice(rep_.data() + key_offset_, rep_.size() - key_offset_ - 8);
  }

 private:
  std::string rep_;
  size_t key_offset_ = 0;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_DBFORMAT_H_
