// Builds an SSTable block: entries with shared-key-prefix compression and
// restart points every kRestartInterval entries for binary search.
//
// Entry:  shared (varint32) | non_shared (varint32) | value_len (varint32)
//         | key_delta | value
// Trailer: restart offsets (fixed32 each) | num_restarts (fixed32)
#ifndef RAILGUN_STORAGE_BLOCK_BUILDER_H_
#define RAILGUN_STORAGE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace railgun::storage {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  // REQUIRES: key is greater than any previously added key.
  void Add(const Slice& key, const Slice& value);

  // Finishes the block and returns a slice valid until Reset().
  Slice Finish();

  void Reset();

  size_t CurrentSizeEstimate() const;
  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_BLOCK_BUILDER_H_
