#include "storage/table_builder.h"

#include "common/coding.h"
#include "common/compression.h"
#include "common/crc32c.h"

namespace railgun::storage {

TableBuilder::TableBuilder(const TableBuilderOptions& options,
                           WritableFile* file)
    : options_(options), file_(file) {}

void TableBuilder::Add(const Slice& internal_key, const Slice& value) {
  if (!status_.ok()) return;

  if (pending_index_entry_) {
    // last_key_ is the final key of the completed block; since keys are
    // sorted, it is a valid upper bound for index lookups.
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  last_key_.assign(internal_key.data(), internal_key.size());
  data_block_.Add(internal_key, value);
  ++num_entries_;

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty() || !status_.ok()) return;
  status_ = WriteBlock(&data_block_, &pending_handle_);
  if (status_.ok()) pending_index_entry_ = true;
}

Status TableBuilder::WriteBlock(BlockBuilder* block, BlockHandle* handle) {
  const Slice raw = block->Finish();

  Slice block_contents;
  CompressionType type = options_.compression;
  if (type == kLzCompression) {
    compress_buf_.clear();
    LzCompress(raw, &compress_buf_);
    if (compress_buf_.size() < raw.size()) {
      block_contents = Slice(compress_buf_);
    } else {
      // Incompressible: store raw.
      type = kNoCompression;
      block_contents = raw;
    }
  } else {
    block_contents = raw;
  }

  handle->offset = offset_;
  handle->size = block_contents.size();

  RAILGUN_RETURN_IF_ERROR(file_->Append(block_contents));

  char trailer[kBlockTrailerSize];
  trailer[0] = static_cast<char>(type);
  const uint32_t crc =
      crc32c::Extend(crc32c::Value(block_contents.data(),
                                   block_contents.size()),
                     trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  RAILGUN_RETURN_IF_ERROR(file_->Append(Slice(trailer, kBlockTrailerSize)));

  offset_ += block_contents.size() + kBlockTrailerSize;
  block->Reset();
  return Status::OK();
}

Status TableBuilder::Finish() {
  FlushDataBlock();
  if (!status_.ok()) return status_;

  if (pending_index_entry_) {
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  BlockHandle index_handle;
  status_ = WriteBlock(&index_block_, &index_handle);
  if (!status_.ok()) return status_;

  Footer footer;
  footer.index_handle = index_handle;
  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  status_ = file_->Append(Slice(footer_encoding));
  if (status_.ok()) offset_ += footer_encoding.size();
  return status_;
}

}  // namespace railgun::storage
