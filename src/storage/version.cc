#include "storage/version.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/coding.h"

namespace railgun::storage {

std::string SstFileName(const std::string& dbname, uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06" PRIu64 ".sst", number);
  return dbname + buf;
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06" PRIu64 ".log", number);
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string VersionSet::ManifestPath(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/MANIFEST-%06" PRIu64, number);
  return dbname_ + buf;
}

uint64_t ColumnFamilyMeta::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : levels[level]) total += f.file_size;
  return total;
}

std::vector<const FileMetaData*> ColumnFamilyMeta::OverlappingFiles(
    int level, const Slice& smallest_user_key,
    const Slice& largest_user_key) const {
  std::vector<const FileMetaData*> result;
  for (const auto& f : levels[level]) {
    const Slice file_smallest = ExtractUserKey(Slice(f.smallest));
    const Slice file_largest = ExtractUserKey(Slice(f.largest));
    if (!smallest_user_key.empty() &&
        file_largest.compare(smallest_user_key) < 0) {
      continue;
    }
    if (!largest_user_key.empty() &&
        file_smallest.compare(largest_user_key) > 0) {
      continue;
    }
    result.push_back(&f);
  }
  return result;
}

VersionSet::VersionSet(Env* env, std::string dbname)
    : env_(env), dbname_(std::move(dbname)) {}

Status VersionSet::Recover(bool create_if_missing) {
  const std::string current = CurrentFileName(dbname_);
  if (!env_->FileExists(current)) {
    if (!create_if_missing) {
      return Status::NotFound("database does not exist: " + dbname_);
    }
    RAILGUN_RETURN_IF_ERROR(env_->CreateDir(dbname_));
    // Fresh database: default column family, first manifest.
    ColumnFamilyMeta def;
    def.id = 0;
    def.name = "default";
    families_[0] = std::move(def);
    return LogAndApply();
  }

  std::string manifest_name;
  RAILGUN_RETURN_IF_ERROR(ReadFileToString(env_, current, &manifest_name));
  while (!manifest_name.empty() &&
         (manifest_name.back() == '\n' || manifest_name.back() == '\r')) {
    manifest_name.pop_back();
  }
  return ReadSnapshot(dbname_ + "/" + manifest_name);
}

Status VersionSet::LogAndApply() {
  const uint64_t manifest_number = next_file_number_++;
  RAILGUN_RETURN_IF_ERROR(WriteSnapshot(manifest_number));

  // Point CURRENT at the new manifest atomically.
  char buf[40];
  snprintf(buf, sizeof(buf), "MANIFEST-%06" PRIu64 "\n", manifest_number);
  const std::string tmp = dbname_ + "/CURRENT.tmp";
  RAILGUN_RETURN_IF_ERROR(WriteStringToFile(env_, buf, tmp, /*sync=*/true));
  RAILGUN_RETURN_IF_ERROR(env_->RenameFile(tmp, CurrentFileName(dbname_)));

  // Garbage-collect older manifests.
  std::vector<std::string> children;
  if (env_->ListDir(dbname_, &children).ok()) {
    char keep[40];
    snprintf(keep, sizeof(keep), "MANIFEST-%06" PRIu64, manifest_number);
    for (const auto& child : children) {
      if (child.rfind("MANIFEST-", 0) == 0 && child != keep) {
        // Best effort: stale manifests are harmless until the next GC.
        (void)env_->RemoveFile(dbname_ + "/" + child);
      }
    }
  }
  return Status::OK();
}

Status VersionSet::WriteSnapshot(uint64_t manifest_number) {
  std::string rep;
  PutVarint64(&rep, next_file_number_);
  PutVarint64(&rep, last_sequence_);
  PutVarint64(&rep, log_number_);
  PutVarint32(&rep, next_cf_id_);
  PutVarint32(&rep, static_cast<uint32_t>(families_.size()));
  for (const auto& [id, cf] : families_) {
    PutVarint32(&rep, id);
    PutLengthPrefixedSlice(&rep, cf.name);
    for (int level = 0; level < kNumLevels; ++level) {
      PutVarint32(&rep, static_cast<uint32_t>(cf.levels[level].size()));
      for (const auto& f : cf.levels[level]) {
        PutVarint64(&rep, f.number);
        PutVarint64(&rep, f.file_size);
        PutLengthPrefixedSlice(&rep, f.smallest);
        PutLengthPrefixedSlice(&rep, f.largest);
      }
    }
  }
  return WriteStringToFile(env_, rep, ManifestPath(manifest_number),
                           /*sync=*/true);
}

Status VersionSet::ReadSnapshot(const std::string& path) {
  std::string rep;
  RAILGUN_RETURN_IF_ERROR(ReadFileToString(env_, path, &rep));
  Slice input(rep);

  uint64_t last_seq;
  uint32_t num_families;
  if (!GetVarint64(&input, &next_file_number_) ||
      !GetVarint64(&input, &last_seq) ||
      !GetVarint64(&input, &log_number_) ||
      !GetVarint32(&input, &next_cf_id_) ||
      !GetVarint32(&input, &num_families)) {
    return Status::Corruption("bad manifest header");
  }
  last_sequence_ = last_seq;

  families_.clear();
  for (uint32_t i = 0; i < num_families; ++i) {
    ColumnFamilyMeta cf;
    Slice name;
    if (!GetVarint32(&input, &cf.id) ||
        !GetLengthPrefixedSlice(&input, &name)) {
      return Status::Corruption("bad manifest family");
    }
    cf.name = name.ToString();
    for (int level = 0; level < kNumLevels; ++level) {
      uint32_t num_files;
      if (!GetVarint32(&input, &num_files)) {
        return Status::Corruption("bad manifest level");
      }
      for (uint32_t j = 0; j < num_files; ++j) {
        FileMetaData meta;
        Slice smallest, largest;
        if (!GetVarint64(&input, &meta.number) ||
            !GetVarint64(&input, &meta.file_size) ||
            !GetLengthPrefixedSlice(&input, &smallest) ||
            !GetLengthPrefixedSlice(&input, &largest)) {
          return Status::Corruption("bad manifest file entry");
        }
        meta.smallest = smallest.ToString();
        meta.largest = largest.ToString();
        cf.levels[level].push_back(std::move(meta));
      }
    }
    const uint32_t id = cf.id;
    families_[id] = std::move(cf);
  }
  return Status::OK();
}

StatusOr<uint32_t> VersionSet::CreateColumnFamily(const std::string& name) {
  if (FindFamilyByName(name) != nullptr) {
    return Status::AlreadyExists("column family exists: " + name);
  }
  const uint32_t id = next_cf_id_++;
  ColumnFamilyMeta cf;
  cf.id = id;
  cf.name = name;
  families_[id] = std::move(cf);
  RAILGUN_RETURN_IF_ERROR(LogAndApply());
  return id;
}

ColumnFamilyMeta* VersionSet::GetFamily(uint32_t id) {
  auto it = families_.find(id);
  return it == families_.end() ? nullptr : &it->second;
}

const ColumnFamilyMeta* VersionSet::FindFamilyByName(
    const std::string& name) const {
  for (const auto& [id, cf] : families_) {
    if (cf.name == name) return &cf;
  }
  return nullptr;
}

void VersionSet::AddFile(uint32_t cf_id, int level, FileMetaData meta) {
  auto* cf = GetFamily(cf_id);
  cf->levels[level].push_back(std::move(meta));
  if (level > 0) {
    // Non-L0 levels stay sorted by smallest key and non-overlapping.
    std::sort(cf->levels[level].begin(), cf->levels[level].end(),
              [](const FileMetaData& a, const FileMetaData& b) {
                return InternalKeyComparator().Compare(
                           Slice(a.smallest), Slice(b.smallest)) < 0;
              });
  }
}

void VersionSet::RemoveFile(uint32_t cf_id, int level, uint64_t number) {
  auto* cf = GetFamily(cf_id);
  auto& files = cf->levels[level];
  files.erase(std::remove_if(files.begin(), files.end(),
                             [number](const FileMetaData& f) {
                               return f.number == number;
                             }),
              files.end());
}

std::vector<uint64_t> VersionSet::LiveFiles() const {
  std::vector<uint64_t> live;
  for (const auto& [id, cf] : families_) {
    for (const auto& level : cf.levels) {
      for (const auto& f : level) live.push_back(f.number);
    }
  }
  return live;
}

}  // namespace railgun::storage
