#include "storage/db.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/log_reader.h"
#include "storage/log_writer.h"

namespace railgun::storage {

namespace {

uint64_t MaxBytesForLevel(const DBOptions& options, int level) {
  uint64_t result = options.max_bytes_for_level_base;
  for (int i = 1; i < level; ++i) result *= 10;
  return result;
}

// Parses "000012.log" / "000007.sst" style names.
bool ParseFileName(const std::string& name, uint64_t* number,
                   std::string* suffix) {
  const size_t dot = name.find('.');
  if (dot == std::string::npos) return false;
  const std::string num_part = name.substr(0, dot);
  if (num_part.empty() ||
      num_part.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *number = std::stoull(num_part);
  *suffix = name.substr(dot + 1);
  return true;
}

}  // namespace

DB::DB(const DBOptions& options, std::string dbname)
    : options_(options),
      dbname_(std::move(dbname)),
      env_(options.env != nullptr ? options.env : Env::Default()) {
  versions_.reset(new VersionSet(env_, dbname_));
}

DB::~DB() {
  MutexLock lock(&mu_);
  if (log_file_ != nullptr) (void)log_file_->Close();
}

Status DB::Open(const DBOptions& options, const std::string& path,
                std::unique_ptr<DB>* db) {
  std::unique_ptr<DB> impl(new DB(options, path));
  RAILGUN_RETURN_IF_ERROR(impl->Recover());
  *db = std::move(impl);
  return Status::OK();
}

Status DB::Recover() {
  MutexLock lock(&mu_);
  RAILGUN_RETURN_IF_ERROR(versions_->Recover(options_.create_if_missing));

  for (const auto& [id, cf] : versions_->families()) {
    mems_[id] = std::make_unique<MemTable>();
  }

  // Replay any WAL at or after the manifest's log number, in order.
  std::vector<std::string> children;
  RAILGUN_RETURN_IF_ERROR(env_->ListDir(dbname_, &children));
  std::vector<uint64_t> logs;
  for (const auto& child : children) {
    uint64_t number;
    std::string suffix;
    if (ParseFileName(child, &number, &suffix) && suffix == "log" &&
        number >= versions_->log_number()) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());
  for (uint64_t number : logs) {
    RAILGUN_RETURN_IF_ERROR(ReplayLog(number));
  }

  // Start a fresh WAL.
  log_number_ = versions_->NewFileNumber();
  RAILGUN_RETURN_IF_ERROR(
      env_->NewWritableFile(LogFileName(dbname_, log_number_), &log_file_));
  log_.reset(new log::Writer(log_file_.get()));
  versions_->SetLogNumber(log_number_);

  // Replayed writes exist only in the pre-recovery WALs, which are
  // garbage-collected below: persist them to L0 first or a second
  // recovery would lose them.
  for (auto& [id, mem] : mems_) {
    if (!mem->Empty()) {
      RAILGUN_RETURN_IF_ERROR(FlushMemTable(id, mem.get()));
      mem = std::make_unique<MemTable>();
    }
  }

  RAILGUN_RETURN_IF_ERROR(versions_->LogAndApply());
  RemoveObsoleteFiles();
  return Status::OK();
}

Status DB::ReplayLog(uint64_t log_number) {
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(LogFileName(dbname_, log_number), &file);
  if (s.IsNotFound()) return Status::OK();
  RAILGUN_RETURN_IF_ERROR(s);

  // Applies batch records into the memtables.
  class Inserter : public WriteBatch::Handler {
   public:
    Inserter(std::map<uint32_t, std::unique_ptr<MemTable>>* mems,
             SequenceNumber seq)
        : seq_(seq), mems_(mems) {}
    void Put(uint32_t cf_id, const Slice& key, const Slice& value) override {
      auto it = mems_->find(cf_id);
      if (it != mems_->end()) {
        it->second->Add(seq_, kTypeValue, key, value);
      }
      ++seq_;
    }
    void Delete(uint32_t cf_id, const Slice& key) override {
      auto it = mems_->find(cf_id);
      if (it != mems_->end()) {
        it->second->Add(seq_, kTypeDeletion, key, Slice());
      }
      ++seq_;
    }
    SequenceNumber seq_;

   private:
    std::map<uint32_t, std::unique_ptr<MemTable>>* mems_;
  };

  log::Reader reader(file.get());
  Slice record;
  std::string scratch;
  SequenceNumber max_seq = versions_->last_sequence();
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.size() < 12) continue;
    WriteBatch batch;
    batch.SetRep(record.ToString());
    Inserter inserter(&mems_, batch.Sequence());
    RAILGUN_RETURN_IF_ERROR(batch.Iterate(&inserter));
    const SequenceNumber last =
        batch.Sequence() + static_cast<uint64_t>(batch.Count()) - 1;
    max_seq = std::max(max_seq, last);
  }
  versions_->SetLastSequence(max_seq);
  return Status::OK();
}

Status DB::Put(uint32_t cf, const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(cf, key, value);
  return Write(&batch);
}

Status DB::Delete(uint32_t cf, const Slice& key) {
  WriteBatch batch;
  batch.Delete(cf, key);
  return Write(&batch);
}

Status DB::Write(WriteBatch* batch) {
  MutexLock lock(&mu_);
  return WriteLocked(batch);
}

Status DB::WriteLocked(WriteBatch* batch) {
  const SequenceNumber seq = versions_->last_sequence() + 1;
  batch->SetSequence(seq);

  RAILGUN_RETURN_IF_ERROR(log_->AddRecord(Slice(batch->rep())));
  if (options_.sync_writes) RAILGUN_RETURN_IF_ERROR(log_file_->Sync());

  class Inserter : public WriteBatch::Handler {
   public:
    Inserter(DB* db, SequenceNumber seq) : db_(db), seq_(seq) {}
    void Put(uint32_t cf_id, const Slice& key, const Slice& value) override {
      auto it = db_->mems_.find(cf_id);
      if (it != db_->mems_.end()) {
        it->second->Add(seq_, kTypeValue, key, value);
      }
      ++seq_;
    }
    void Delete(uint32_t cf_id, const Slice& key) override {
      auto it = db_->mems_.find(cf_id);
      if (it != db_->mems_.end()) {
        it->second->Add(seq_, kTypeDeletion, key, Slice());
      }
      ++seq_;
    }

   private:
    DB* db_;
    SequenceNumber seq_;
  };
  Inserter inserter(this, seq);
  RAILGUN_RETURN_IF_ERROR(batch->Iterate(&inserter));
  versions_->SetLastSequence(seq + static_cast<uint64_t>(batch->Count()) - 1);

  return MaybeScheduleFlush();
}

Status DB::MaybeScheduleFlush() {
  size_t total = 0;
  for (const auto& [id, mem] : mems_) total += mem->ApproximateMemoryUsage();
  if (total >= options_.write_buffer_size) {
    return FlushLocked();
  }
  return Status::OK();
}

Status DB::Get(uint32_t cf, const Slice& key, std::string* value) {
  MutexLock lock(&mu_);
  auto it = mems_.find(cf);
  if (it == mems_.end()) {
    return Status::InvalidArgument("unknown column family");
  }
  const LookupKey lkey(key, versions_->last_sequence());
  bool is_deleted = false;
  if (it->second->Get(lkey, value, &is_deleted)) {
    return is_deleted ? Status::NotFound("deleted") : Status::OK();
  }
  return GetFromTables(cf, lkey, value);
}

Status DB::GetFromTables(uint32_t cf_id, const LookupKey& lkey,
                         std::string* value) {
  ColumnFamilyMeta* cf = versions_->GetFamily(cf_id);
  if (cf == nullptr) return Status::InvalidArgument("unknown column family");

  const Slice user_key = lkey.user_key();
  const InternalKeyComparator icmp;

  auto check_file = [&](const FileMetaData& f) -> Status {
    // Quick range reject on user keys.
    if (user_key.compare(ExtractUserKey(Slice(f.smallest))) < 0 ||
        user_key.compare(ExtractUserKey(Slice(f.largest))) > 0) {
      return Status::NotFound("");
    }
    RAILGUN_ASSIGN_OR_RETURN(Table * table, GetTable(f.number));
    std::string found_key, found_value;
    Status s =
        table->InternalGet(lkey.internal_key(), &found_key, &found_value);
    if (!s.ok()) return s;
    ParsedInternalKey parsed;
    if (!ParseInternalKey(Slice(found_key), &parsed)) {
      return Status::Corruption("bad internal key in table");
    }
    if (parsed.user_key != user_key) return Status::NotFound("");
    if (parsed.type == kTypeDeletion) return Status::NotFound("deleted");
    *value = std::move(found_value);
    return Status::OK();
  };

  // L0: newest file first (files may overlap).
  std::vector<const FileMetaData*> l0;
  for (const auto& f : cf->levels[0]) l0.push_back(&f);
  std::sort(l0.begin(), l0.end(),
            [](const FileMetaData* a, const FileMetaData* b) {
              return a->number > b->number;
            });
  for (const FileMetaData* f : l0) {
    Status s = check_file(*f);
    if (!s.IsNotFound() || s.message() == "deleted") {
      if (s.message() == "deleted") return Status::NotFound("deleted");
      if (!s.IsNotFound()) return s;
    }
  }

  // L1+: files are non-overlapping and sorted; binary search by range.
  for (int level = 1; level < kNumLevels; ++level) {
    const auto& files = cf->levels[level];
    if (files.empty()) continue;
    // Find the first file whose largest user key >= user_key.
    auto iter = std::lower_bound(
        files.begin(), files.end(), user_key,
        [&icmp](const FileMetaData& f, const Slice& k) {
          return ExtractUserKey(Slice(f.largest)).compare(k) < 0;
        });
    if (iter == files.end()) continue;
    Status s = check_file(*iter);
    if (s.message() == "deleted") return Status::NotFound("deleted");
    if (!s.IsNotFound()) return s;
  }
  return Status::NotFound("");
}

StatusOr<Table*> DB::GetTable(uint64_t file_number) {
  auto it = table_cache_.find(file_number);
  if (it != table_cache_.end()) return it->second.get();

  std::unique_ptr<RandomAccessFile> file;
  RAILGUN_RETURN_IF_ERROR(
      env_->NewRandomAccessFile(SstFileName(dbname_, file_number), &file));
  std::unique_ptr<Table> table;
  RAILGUN_RETURN_IF_ERROR(Table::Open(std::move(file), &table));
  Table* raw = table.get();
  table_cache_[file_number] = std::move(table);
  return raw;
}

StatusOr<uint32_t> DB::CreateColumnFamily(const std::string& name) {
  MutexLock lock(&mu_);
  RAILGUN_ASSIGN_OR_RETURN(uint32_t id, versions_->CreateColumnFamily(name));
  mems_[id] = std::make_unique<MemTable>();
  return id;
}

StatusOr<uint32_t> DB::FindColumnFamily(const std::string& name) {
  MutexLock lock(&mu_);
  const ColumnFamilyMeta* cf = versions_->FindFamilyByName(name);
  if (cf == nullptr) return Status::NotFound("no column family: " + name);
  return cf->id;
}

Status DB::Flush() {
  MutexLock lock(&mu_);
  return FlushLocked();
}

Status DB::FlushLocked() {
  bool any = false;
  for (auto& [id, mem] : mems_) {
    if (!mem->Empty()) {
      RAILGUN_RETURN_IF_ERROR(FlushMemTable(id, mem.get()));
      any = true;
    }
  }
  if (!any) return Status::OK();

  // Rotate the WAL: everything in the old log is now in SSTables.
  RAILGUN_RETURN_IF_ERROR(log_file_->Close());
  const uint64_t old_log = log_number_;
  log_number_ = versions_->NewFileNumber();
  RAILGUN_RETURN_IF_ERROR(
      env_->NewWritableFile(LogFileName(dbname_, log_number_), &log_file_));
  log_.reset(new log::Writer(log_file_.get()));
  versions_->SetLogNumber(log_number_);
  RAILGUN_RETURN_IF_ERROR(versions_->LogAndApply());
  // Best effort: an undeleted old log is garbage-collected later.
  (void)env_->RemoveFile(LogFileName(dbname_, old_log));

  // Fresh memtables.
  for (auto& [id, mem] : mems_) {
    mem = std::make_unique<MemTable>();
  }

  for (auto& [id, mem] : mems_) {
    RAILGUN_RETURN_IF_ERROR(MaybeCompact(id));
  }
  return Status::OK();
}

Status DB::FlushMemTable(uint32_t cf_id, MemTable* mem) {
  const uint64_t file_number = versions_->NewFileNumber();
  const std::string fname = SstFileName(dbname_, file_number);

  std::unique_ptr<WritableFile> file;
  RAILGUN_RETURN_IF_ERROR(env_->NewWritableFile(fname, &file));

  TableBuilderOptions topts;
  topts.block_size = options_.block_size;
  topts.compression = options_.compression;
  TableBuilder builder(topts, file.get());

  FileMetaData meta;
  meta.number = file_number;

  MemTable::Iterator iter(mem);
  iter.SeekToFirst();
  bool first = true;
  while (iter.Valid()) {
    const Slice key = iter.internal_key();
    if (first) {
      meta.smallest = key.ToString();
      first = false;
    }
    meta.largest = key.ToString();
    builder.Add(key, iter.value());
    iter.Next();
  }
  RAILGUN_RETURN_IF_ERROR(builder.Finish());
  RAILGUN_RETURN_IF_ERROR(file->Sync());
  RAILGUN_RETURN_IF_ERROR(file->Close());

  meta.file_size = builder.FileSize();
  versions_->AddFile(cf_id, 0, std::move(meta));
  return Status::OK();
}

Status DB::MaybeCompact(uint32_t cf_id) {
  while (true) {
    ColumnFamilyMeta* cf = versions_->GetFamily(cf_id);

    // L0 -> L1 when too many overlapping L0 files accumulate.
    if (static_cast<int>(cf->levels[0].size()) >=
        options_.l0_compaction_trigger) {
      std::vector<FileMetaData> l0_inputs = cf->levels[0];
      // All L1 files overlapping the union of L0 ranges participate.
      std::string smallest, largest;
      for (const auto& f : l0_inputs) {
        if (smallest.empty() ||
            ExtractUserKey(Slice(f.smallest))
                    .compare(ExtractUserKey(Slice(smallest))) < 0) {
          smallest = f.smallest;
        }
        if (largest.empty() ||
            ExtractUserKey(Slice(f.largest))
                    .compare(ExtractUserKey(Slice(largest))) > 0) {
          largest = f.largest;
        }
      }
      std::vector<FileMetaData> l1_inputs;
      for (const FileMetaData* f : cf->OverlappingFiles(
               1, ExtractUserKey(Slice(smallest)),
               ExtractUserKey(Slice(largest)))) {
        l1_inputs.push_back(*f);
      }
      RAILGUN_RETURN_IF_ERROR(CompactRange(cf_id, 0, l0_inputs, l1_inputs));
      continue;
    }

    // Size-triggered compactions down the levels.
    bool compacted = false;
    for (int level = 1; level + 1 < kNumLevels; ++level) {
      if (cf->LevelBytes(level) > MaxBytesForLevel(options_, level) &&
          !cf->levels[level].empty()) {
        const FileMetaData input = cf->levels[level][0];
        std::vector<FileMetaData> next_inputs;
        for (const FileMetaData* f : cf->OverlappingFiles(
                 level + 1, ExtractUserKey(Slice(input.smallest)),
                 ExtractUserKey(Slice(input.largest)))) {
          next_inputs.push_back(*f);
        }
        RAILGUN_RETURN_IF_ERROR(
            CompactRange(cf_id, level, {input}, next_inputs));
        compacted = true;
        break;
      }
    }
    if (!compacted) return Status::OK();
  }
}

Status DB::CompactRange(uint32_t cf_id, int level,
                        const std::vector<FileMetaData>& inputs_level,
                        const std::vector<FileMetaData>& inputs_next) {
  const int output_level = level + 1;

  // Tombstones can be dropped when no level below the output can still
  // hold an older version of the key.
  ColumnFamilyMeta* cf = versions_->GetFamily(cf_id);
  bool deeper_data = false;
  for (int l = output_level + 1; l < kNumLevels; ++l) {
    if (!cf->levels[l].empty()) {
      deeper_data = true;
      break;
    }
  }

  // Open iterators over every input table.
  std::vector<std::unique_ptr<Table::Iterator>> iters;
  for (const auto& f : inputs_level) {
    RAILGUN_ASSIGN_OR_RETURN(Table * t, GetTable(f.number));
    iters.emplace_back(new Table::Iterator(t));
    iters.back()->SeekToFirst();
  }
  for (const auto& f : inputs_next) {
    RAILGUN_ASSIGN_OR_RETURN(Table * t, GetTable(f.number));
    iters.emplace_back(new Table::Iterator(t));
    iters.back()->SeekToFirst();
  }

  const InternalKeyComparator icmp;
  auto pick_min = [&]() -> Table::Iterator* {
    Table::Iterator* best = nullptr;
    for (auto& it : iters) {
      if (!it->Valid()) continue;
      if (best == nullptr || icmp.Compare(it->key(), best->key()) < 0) {
        best = it.get();
      }
    }
    return best;
  };

  // Merge, keeping the newest version of each user key.
  std::vector<FileMetaData> outputs;
  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  FileMetaData current_out;

  TableBuilderOptions topts;
  topts.block_size = options_.block_size;
  topts.compression = options_.compression;

  auto open_output = [&]() -> Status {
    current_out = FileMetaData();
    current_out.number = versions_->NewFileNumber();
    RAILGUN_RETURN_IF_ERROR(env_->NewWritableFile(
        SstFileName(dbname_, current_out.number), &out_file));
    builder.reset(new TableBuilder(topts, out_file.get()));
    return Status::OK();
  };
  auto close_output = [&]() -> Status {
    if (builder == nullptr || builder->NumEntries() == 0) {
      if (out_file != nullptr) {
        // Abandoning an empty output: deletion failures leave an
        // orphan .sst that RemoveObsoleteFiles collects.
        (void)out_file->Close();
        (void)env_->RemoveFile(SstFileName(dbname_, current_out.number));
        out_file.reset();
        builder.reset();
      }
      return Status::OK();
    }
    RAILGUN_RETURN_IF_ERROR(builder->Finish());
    RAILGUN_RETURN_IF_ERROR(out_file->Sync());
    RAILGUN_RETURN_IF_ERROR(out_file->Close());
    current_out.file_size = builder->FileSize();
    outputs.push_back(current_out);
    out_file.reset();
    builder.reset();
    return Status::OK();
  };

  std::string last_user_key;
  bool has_last = false;
  while (Table::Iterator* it = pick_min()) {
    const Slice ikey = it->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(ikey, &parsed)) {
      return Status::Corruption("bad key during compaction");
    }
    const bool shadowed =
        has_last && parsed.user_key == Slice(last_user_key);
    if (!shadowed) {
      last_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_last = true;
      const bool drop_tombstone =
          parsed.type == kTypeDeletion && !deeper_data;
      if (!drop_tombstone) {
        if (builder == nullptr) RAILGUN_RETURN_IF_ERROR(open_output());
        if (current_out.smallest.empty()) {
          current_out.smallest = ikey.ToString();
        }
        current_out.largest = ikey.ToString();
        builder->Add(ikey, it->value());
        if (builder->FileSize() >= options_.target_file_size) {
          RAILGUN_RETURN_IF_ERROR(close_output());
        }
      }
    }
    it->Next();
  }
  RAILGUN_RETURN_IF_ERROR(close_output());

  // Install: remove inputs, add outputs.
  for (const auto& f : inputs_level) {
    versions_->RemoveFile(cf_id, level, f.number);
    table_cache_.erase(f.number);
  }
  for (const auto& f : inputs_next) {
    versions_->RemoveFile(cf_id, output_level, f.number);
    table_cache_.erase(f.number);
  }
  for (auto& f : outputs) {
    versions_->AddFile(cf_id, output_level, std::move(f));
  }
  RAILGUN_RETURN_IF_ERROR(versions_->LogAndApply());
  RemoveObsoleteFiles();
  return Status::OK();
}

void DB::RemoveObsoleteFiles() {
  std::vector<std::string> children;
  if (!env_->ListDir(dbname_, &children).ok()) return;
  const std::vector<uint64_t> live = versions_->LiveFiles();
  for (const auto& child : children) {
    uint64_t number;
    std::string suffix;
    if (!ParseFileName(child, &number, &suffix)) continue;
    if (suffix == "sst" &&
        std::find(live.begin(), live.end(), number) == live.end()) {
      // Best effort: a survivor is retried on the next GC pass.
      (void)env_->RemoveFile(dbname_ + "/" + child);
      table_cache_.erase(number);
    }
    if (suffix == "log" && number < versions_->log_number()) {
      (void)env_->RemoveFile(dbname_ + "/" + child);
    }
  }
}

Status DB::Checkpoint(const std::string& dir) {
  MutexLock lock(&mu_);
  RAILGUN_RETURN_IF_ERROR(FlushLocked());
  RAILGUN_RETURN_IF_ERROR(env_->RemoveDirRecursive(dir));
  RAILGUN_RETURN_IF_ERROR(env_->CreateDir(dir));

  // Copy live SSTs plus manifest state.
  for (uint64_t number : versions_->LiveFiles()) {
    RAILGUN_RETURN_IF_ERROR(env_->CopyFile(
        SstFileName(dbname_, number), SstFileName(dir, number)));
  }
  std::vector<std::string> children;
  RAILGUN_RETURN_IF_ERROR(env_->ListDir(dbname_, &children));
  for (const auto& child : children) {
    if (child.rfind("MANIFEST-", 0) == 0 || child == "CURRENT") {
      RAILGUN_RETURN_IF_ERROR(
          env_->CopyFile(dbname_ + "/" + child, dir + "/" + child));
    }
  }
  return Status::OK();
}

std::vector<DB::LevelStats> DB::GetLevelStats(uint32_t cf) {
  MutexLock lock(&mu_);
  std::vector<LevelStats> stats(kNumLevels);
  ColumnFamilyMeta* meta = versions_->GetFamily(cf);
  if (meta == nullptr) return stats;
  for (int level = 0; level < kNumLevels; ++level) {
    stats[level].num_files = static_cast<int>(meta->levels[level].size());
    stats[level].bytes = meta->LevelBytes(level);
  }
  return stats;
}

uint64_t DB::TotalSstBytes() {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [id, cf] : versions_->families()) {
    for (const auto& level : cf.levels) {
      for (const auto& f : level) total += f.file_size;
    }
  }
  return total;
}

// ---------------------------------------------------------------------
// DB iterator: merges the memtable with every table of the family and
// exposes user keys with newest-version / tombstone semantics.

class DBIterImpl : public DB::Iterator {
 public:
  DBIterImpl(DB* db, uint32_t cf_id) : db_(db) {
    MutexLock lock(&db->mu_);
    auto mem_it = db->mems_.find(cf_id);
    if (mem_it != db->mems_.end()) {
      mem_iter_.reset(new MemTable::Iterator(mem_it->second.get()));
    }
    ColumnFamilyMeta* cf = db->versions_->GetFamily(cf_id);
    if (cf != nullptr) {
      for (const auto& level : cf->levels) {
        for (const auto& f : level) {
          auto table_or = db->GetTable(f.number);
          if (table_or.ok()) {
            table_iters_.emplace_back(
                new Table::Iterator(table_or.value()));
          }
        }
      }
    }
  }

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    if (mem_iter_ != nullptr) mem_iter_->SeekToFirst();
    for (auto& it : table_iters_) it->SeekToFirst();
    FindNextUserKey(/*skip_current=*/false);
  }

  void Seek(const Slice& user_key) override {
    std::string target;
    AppendInternalKey(&target, user_key, kMaxSequenceNumber, kTypeValue);
    if (mem_iter_ != nullptr) mem_iter_->Seek(Slice(target));
    for (auto& it : table_iters_) it->Seek(Slice(target));
    FindNextUserKey(/*skip_current=*/false);
  }

  void Next() override { FindNextUserKey(/*skip_current=*/true); }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }

 private:
  // Positions at the next visible user key. If skip_current is true, all
  // versions of key_ are skipped first.
  void FindNextUserKey(bool skip_current) {
    const InternalKeyComparator icmp;
    std::string prev_key = skip_current ? key_ : std::string();
    bool have_prev = skip_current;

    while (true) {
      // Find the child with the smallest internal key.
      Slice best;
      bool found = false;
      if (mem_iter_ != nullptr && mem_iter_->Valid()) {
        best = mem_iter_->internal_key();
        found = true;
      }
      for (auto& it : table_iters_) {
        if (!it->Valid()) continue;
        if (!found || icmp.Compare(it->key(), best) < 0) {
          best = it->key();
          found = true;
        }
      }
      if (!found) {
        valid_ = false;
        return;
      }

      ParsedInternalKey parsed;
      if (!ParseInternalKey(best, &parsed)) {
        valid_ = false;
        return;
      }
      const std::string user_key = parsed.user_key.ToString();

      if (have_prev && user_key == prev_key) {
        AdvancePast(best);
        continue;
      }

      // This is the newest version of user_key (internal order puts the
      // highest sequence first).
      if (parsed.type == kTypeDeletion) {
        prev_key = user_key;
        have_prev = true;
        AdvancePast(best);
        continue;
      }

      key_ = user_key;
      value_ = CurrentValueFor(best);
      valid_ = true;
      AdvancePast(best);
      return;
    }
  }

  std::string CurrentValueFor(const Slice& internal_key) {
    if (mem_iter_ != nullptr && mem_iter_->Valid() &&
        mem_iter_->internal_key() == internal_key) {
      return mem_iter_->value().ToString();
    }
    for (auto& it : table_iters_) {
      if (it->Valid() && it->key() == internal_key) {
        return it->value().ToString();
      }
    }
    return std::string();
  }

  // Advances every child positioned exactly at internal_key.
  void AdvancePast(const Slice& internal_key) {
    const std::string snapshot = internal_key.ToString();
    if (mem_iter_ != nullptr && mem_iter_->Valid() &&
        mem_iter_->internal_key() == Slice(snapshot)) {
      mem_iter_->Next();
    }
    for (auto& it : table_iters_) {
      if (it->Valid() && it->key() == Slice(snapshot)) it->Next();
    }
  }

  DB* db_;
  std::unique_ptr<MemTable::Iterator> mem_iter_;
  std::vector<std::unique_ptr<Table::Iterator>> table_iters_;
  bool valid_ = false;
  std::string key_;
  std::string value_;
};

std::unique_ptr<DB::Iterator> DB::NewIterator(uint32_t cf) {
  return std::make_unique<DBIterImpl>(this, cf);
}

Status DestroyDB(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  return env->RemoveDirRecursive(path);
}

}  // namespace railgun::storage
