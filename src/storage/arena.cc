#include "storage/arena.h"

#include <cassert>

namespace railgun::storage {

char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  constexpr size_t kAlign = sizeof(void*);
  const size_t current_mod =
      reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
  const size_t slop = (current_mod == 0 ? 0 : kAlign - current_mod);
  const size_t needed = bytes + slop;
  if (needed <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
    return result;
  }
  // Fallback blocks from new[] are suitably aligned already.
  return AllocateFallback(bytes);
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocation gets its own block to limit waste.
    return AllocateNewBlock(bytes);
  }
  char* block = AllocateNewBlock(kBlockSize);
  alloc_ptr_ = block + bytes;
  alloc_bytes_remaining_ = kBlockSize - bytes;
  return block;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.emplace_back(new char[block_bytes]);
  memory_usage_ += block_bytes + sizeof(char*);
  return blocks_.back().get();
}

}  // namespace railgun::storage
