// Version state of the LSM tree: per-column-family leveled file lists,
// persisted as full-snapshot manifests (MANIFEST-N + CURRENT pointer).
// Full-snapshot manifests trade write amplification for simplicity; the
// state store's table counts are small enough that this is negligible.
#ifndef RAILGUN_STORAGE_VERSION_H_
#define RAILGUN_STORAGE_VERSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "storage/dbformat.h"

namespace railgun::storage {

constexpr int kNumLevels = 7;

struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;  // Smallest internal key.
  std::string largest;   // Largest internal key.
};

struct ColumnFamilyMeta {
  uint32_t id = 0;
  std::string name;
  std::vector<std::vector<FileMetaData>> levels{
      static_cast<size_t>(kNumLevels)};

  // Total bytes at a level.
  uint64_t LevelBytes(int level) const;
  // Files in [smallest_user_key, largest_user_key] at a level.
  std::vector<const FileMetaData*> OverlappingFiles(
      int level, const Slice& smallest_user_key,
      const Slice& largest_user_key) const;
};

// VersionSet owns the durable metadata: column families, file lists,
// next file number and last sequence number.
class VersionSet {
 public:
  VersionSet(Env* env, std::string dbname);

  // Loads CURRENT -> MANIFEST, or initializes a fresh database with the
  // default column family.
  Status Recover(bool create_if_missing);

  // Writes a new manifest snapshot and repoints CURRENT.
  Status LogAndApply();

  uint64_t NewFileNumber() { return next_file_number_++; }
  uint64_t next_file_number() const { return next_file_number_; }

  SequenceNumber last_sequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) { last_sequence_ = s; }

  uint64_t log_number() const { return log_number_; }
  void SetLogNumber(uint64_t n) { log_number_ = n; }

  // Column family registry.
  StatusOr<uint32_t> CreateColumnFamily(const std::string& name);
  const std::map<uint32_t, ColumnFamilyMeta>& families() const {
    return families_;
  }
  ColumnFamilyMeta* GetFamily(uint32_t id);
  const ColumnFamilyMeta* FindFamilyByName(const std::string& name) const;

  // File bookkeeping helpers used by flush/compaction.
  void AddFile(uint32_t cf_id, int level, FileMetaData meta);
  void RemoveFile(uint32_t cf_id, int level, uint64_t number);

  // All live SST file numbers across families (for GC and checkpoints).
  std::vector<uint64_t> LiveFiles() const;

  std::string ManifestPath(uint64_t number) const;

 private:
  Status WriteSnapshot(uint64_t manifest_number);
  Status ReadSnapshot(const std::string& path);

  Env* env_;
  std::string dbname_;
  uint64_t next_file_number_ = 2;  // 1 is reserved for the first manifest.
  uint64_t log_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  uint32_t next_cf_id_ = 1;  // 0 = default CF.
  std::map<uint32_t, ColumnFamilyMeta> families_;
};

// File name helpers.
std::string SstFileName(const std::string& dbname, uint64_t number);
std::string LogFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_VERSION_H_
