#include "storage/memtable.h"

#include "common/coding.h"

namespace railgun::storage {

namespace {

// Decodes the length-prefixed slice starting at p.
Slice GetLengthPrefixed(const char* p) {
  uint32_t len = 0;
  const char* q = GetVarint32Ptr(p, p + 5, &len);
  return Slice(q, len);
}

}  // namespace

int MemTableKeyComparator::operator()(const char* a, const char* b) const {
  const Slice ka = GetLengthPrefixed(a);
  const Slice kb = GetLengthPrefixed(b);
  return InternalKeyComparator().Compare(ka, kb);
}

MemTable::MemTable() : table_(MemTableKeyComparator(), &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  // Layout: klen | internal_key | vlen | value.
  const size_t key_size = key.size();
  const size_t val_size = value.size();
  const size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  std::string tmp;
  tmp.reserve(encoded_len);
  PutVarint32(&tmp, static_cast<uint32_t>(internal_key_size));
  tmp.append(key.data(), key_size);
  PutFixed64(&tmp, PackSequenceAndType(seq, type));
  PutVarint32(&tmp, static_cast<uint32_t>(val_size));
  tmp.append(value.data(), val_size);
  memcpy(buf, tmp.data(), encoded_len);
  table_.Insert(buf);
  empty_ = false;
}

bool MemTable::Get(const LookupKey& lkey, std::string* found_value,
                   bool* is_deleted) {
  SkipList<const char*, MemTableKeyComparator>::Iterator iter(&table_);
  iter.Seek(lkey.memtable_key().data());
  if (!iter.Valid()) return false;

  // The seek landed at the first entry >= (user_key, seq). Verify the
  // user key matches.
  const char* entry = iter.key();
  uint32_t klen = 0;
  const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &klen);
  const Slice found_user_key(key_ptr, klen - 8);
  if (found_user_key != lkey.user_key()) return false;

  const uint64_t tag = DecodeFixed64(key_ptr + klen - 8);
  const ValueType type = static_cast<ValueType>(tag & 0xff);
  if (type == kTypeDeletion) {
    *is_deleted = true;
    return true;
  }
  *is_deleted = false;
  const Slice value = GetLengthPrefixed(key_ptr + klen);
  found_value->assign(value.data(), value.size());
  return true;
}

void MemTable::Iterator::Seek(const Slice& internal_key) {
  seek_buf_.clear();
  PutVarint32(&seek_buf_, static_cast<uint32_t>(internal_key.size()));
  seek_buf_.append(internal_key.data(), internal_key.size());
  iter_.Seek(seek_buf_.data());
}

Slice MemTable::Iterator::internal_key() const {
  return GetLengthPrefixed(iter_.key());
}

Slice MemTable::Iterator::value() const {
  const Slice k = internal_key();
  return GetLengthPrefixed(k.data() + k.size());
}

}  // namespace railgun::storage
