// Bump-pointer allocator backing the memtable skip list. All memory is
// released at once when the memtable is dropped after a flush.
#ifndef RAILGUN_STORAGE_ARENA_H_
#define RAILGUN_STORAGE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace railgun::storage {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes);
  char* AllocateAligned(size_t bytes);

  // Total memory footprint of the arena (used for flush triggers).
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t memory_usage_ = 0;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_ARENA_H_
