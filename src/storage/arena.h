// Forwarding header: the arena moved to common/arena.h so the message
// layer can pool receive buffers on it without a storage dependency.
// Storage call sites keep using railgun::storage::Arena unchanged.
#ifndef RAILGUN_STORAGE_ARENA_H_
#define RAILGUN_STORAGE_ARENA_H_

#include "common/arena.h"

namespace railgun::storage {

using railgun::Arena;

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_ARENA_H_
