#include "storage/block.h"

#include "common/coding.h"

namespace railgun::storage {

Block::Block(std::string contents) : data_(std::move(contents)) {}

Block::Iter::Iter(const Block* block) : block_(block) {
  const std::string& data = block_->data_;
  if (data.size() < sizeof(uint32_t)) {
    num_restarts_ = 0;
    restarts_offset_ = 0;
    current_ = next_offset_ = 0;
    status_ = Status::Corruption("block too small");
    return;
  }
  num_restarts_ = DecodeFixed32(data.data() + data.size() - sizeof(uint32_t));
  restarts_offset_ = static_cast<uint32_t>(
      data.size() - (1 + num_restarts_) * sizeof(uint32_t));
  current_ = restarts_offset_;  // Invalid until positioned.
  next_offset_ = restarts_offset_;
}

uint32_t Block::Iter::RestartPoint(uint32_t index) const {
  return DecodeFixed32(block_->data_.data() + restarts_offset_ +
                       index * sizeof(uint32_t));
}

void Block::Iter::SeekToRestartPoint(uint32_t index) {
  key_.clear();
  next_offset_ = RestartPoint(index);
  current_ = restarts_offset_;  // Not valid until ParseNextEntry.
}

bool Block::Iter::ParseNextEntry() {
  if (next_offset_ >= restarts_offset_) {
    current_ = restarts_offset_;
    return false;
  }
  const char* p = block_->data_.data() + next_offset_;
  const char* limit = block_->data_.data() + restarts_offset_;

  uint32_t shared, non_shared, value_len;
  p = GetVarint32Ptr(p, limit, &shared);
  if (p == nullptr) goto corrupt;
  p = GetVarint32Ptr(p, limit, &non_shared);
  if (p == nullptr) goto corrupt;
  p = GetVarint32Ptr(p, limit, &value_len);
  if (p == nullptr) goto corrupt;
  if (p + non_shared + value_len > limit || shared > key_.size()) {
    goto corrupt;
  }

  current_ = next_offset_;
  key_.resize(shared);
  key_.append(p, non_shared);
  value_ = Slice(p + non_shared, value_len);
  next_offset_ =
      static_cast<uint32_t>((p + non_shared + value_len) -
                            block_->data_.data());
  return true;

corrupt:
  current_ = restarts_offset_;
  status_ = Status::Corruption("bad block entry");
  return false;
}

void Block::Iter::SeekToFirst() {
  if (num_restarts_ == 0) return;
  SeekToRestartPoint(0);
  ParseNextEntry();
}

void Block::Iter::Seek(const Slice& target) {
  if (num_restarts_ == 0) return;
  // Binary search over restart points for the last restart whose key is
  // < target.
  const InternalKeyComparator cmp;
  uint32_t left = 0;
  uint32_t right = num_restarts_ - 1;
  while (left < right) {
    const uint32_t mid = (left + right + 1) / 2;
    SeekToRestartPoint(mid);
    if (!ParseNextEntry()) return;
    if (cmp.Compare(Slice(key_), target) < 0) {
      left = mid;
    } else {
      right = mid - 1;
    }
  }
  SeekToRestartPoint(left);
  while (ParseNextEntry()) {
    if (cmp.Compare(Slice(key_), target) >= 0) return;
  }
}

void Block::Iter::Next() { ParseNextEntry(); }

}  // namespace railgun::storage
