// A WriteBatch groups updates (possibly across column families) that are
// applied atomically: one WAL record, then memtable inserts.
//
// Serialized layout:
//   sequence (fixed64) | count (fixed32) | record*
//   record := kTypeValue    cf (varint32) key (lp) value (lp)
//           | kTypeDeletion cf (varint32) key (lp)
#ifndef RAILGUN_STORAGE_WRITE_BATCH_H_
#define RAILGUN_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"

namespace railgun::storage {

class WriteBatch {
 public:
  WriteBatch();

  void Put(uint32_t cf_id, const Slice& key, const Slice& value);
  void Delete(uint32_t cf_id, const Slice& key);
  void Clear();

  int Count() const;
  size_t ByteSize() const { return rep_.size(); }

  // Applies every record in order through the handler.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(uint32_t cf_id, const Slice& key, const Slice& value) = 0;
    virtual void Delete(uint32_t cf_id, const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  SequenceNumber Sequence() const;
  void SetSequence(SequenceNumber seq);

  const std::string& rep() const { return rep_; }
  void SetRep(std::string rep) { rep_ = std::move(rep); }

 private:
  void SetCount(int n);

  std::string rep_;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_WRITE_BATCH_H_
