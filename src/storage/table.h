// Read side of an SSTable: index lookup + block fetch with an LRU-free
// simple per-table block cache (tables are small in the state store; the
// index is kept resident and data blocks are cached by offset).
#ifndef RAILGUN_STORAGE_TABLE_H_
#define RAILGUN_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/block.h"
#include "storage/table_format.h"

namespace railgun::storage {

class Table {
 public:
  // Opens a table over the given file (takes ownership).
  static Status Open(std::unique_ptr<RandomAccessFile> file,
                     std::unique_ptr<Table>* table);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Point lookup: finds the first entry with internal key >= target and
  // invokes the callback-free result contract below.
  // Returns NotFound if no entry in this table can match.
  Status InternalGet(const Slice& target_internal_key,
                     std::string* found_internal_key,
                     std::string* found_value);

  // Forward iterator over all entries.
  class Iterator {
   public:
    explicit Iterator(Table* table);

    bool Valid() const;
    void SeekToFirst();
    void Seek(const Slice& internal_key);
    void Next();
    Slice key() const;
    Slice value() const;
    Status status() const { return status_; }

   private:
    void InitDataBlock();
    void SkipEmptyBlocks();

    Table* table_;
    std::unique_ptr<Block::Iter> index_iter_;
    std::shared_ptr<Block> data_block_;
    std::unique_ptr<Block::Iter> data_iter_;
    Status status_;
  };

 private:
  Table() = default;

  Status ReadDataBlock(const Slice& index_value,
                       std::shared_ptr<Block>* block);

  std::unique_ptr<RandomAccessFile> file_;
  std::unique_ptr<Block> index_block_;
  // Tiny cache keyed by block offset.
  std::map<uint64_t, std::shared_ptr<Block>> block_cache_;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_TABLE_H_
