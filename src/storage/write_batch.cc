#include "storage/write_batch.h"

#include "common/coding.h"

namespace railgun::storage {

namespace {
constexpr size_t kHeader = 12;  // sequence (8) + count (4).
}  // namespace

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader, '\0');
}

int WriteBatch::Count() const {
  return static_cast<int>(DecodeFixed32(rep_.data() + 8));
}

void WriteBatch::SetCount(int n) {
  EncodeFixed32(rep_.data() + 8, static_cast<uint32_t>(n));
}

SequenceNumber WriteBatch::Sequence() const {
  return DecodeFixed64(rep_.data());
}

void WriteBatch::SetSequence(SequenceNumber seq) {
  EncodeFixed64(rep_.data(), seq);
}

void WriteBatch::Put(uint32_t cf_id, const Slice& key, const Slice& value) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutVarint32(&rep_, cf_id);
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(uint32_t cf_id, const Slice& key) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutVarint32(&rep_, cf_id);
  PutLengthPrefixedSlice(&rep_, key);
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("write batch too small");
  }
  input.remove_prefix(kHeader);
  int found = 0;
  while (!input.empty()) {
    const char tag = input[0];
    input.remove_prefix(1);
    uint32_t cf_id;
    Slice key, value;
    if (!GetVarint32(&input, &cf_id)) {
      return Status::Corruption("bad write batch cf id");
    }
    switch (tag) {
      case kTypeValue:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad write batch Put");
        }
        handler->Put(cf_id, key, value);
        break;
      case kTypeDeletion:
        if (!GetLengthPrefixedSlice(&input, &key)) {
          return Status::Corruption("bad write batch Delete");
        }
        handler->Delete(cf_id, key);
        break;
      default:
        return Status::Corruption("unknown write batch tag");
    }
    ++found;
  }
  if (found != Count()) {
    return Status::Corruption("write batch count mismatch");
  }
  return Status::OK();
}

}  // namespace railgun::storage
