#include "storage/table_format.h"

#include <memory>

#include "common/coding.h"
#include "common/compression.h"
#include "common/crc32c.h"

namespace railgun::storage {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (!GetVarint64(input, &offset) || !GetVarint64(input, &size)) {
    return Status::Corruption("bad block handle");
  }
  return Status::OK();
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  index_handle.EncodeTo(dst);
  dst->resize(original_size + kEncodedLength - 8);  // Zero padding.
  PutFixed64(dst, kTableMagicNumber);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  if (DecodeFixed64(magic_ptr) != kTableMagicNumber) {
    return Status::Corruption("bad table magic number");
  }
  Slice handle_input(input->data(), kEncodedLength - 8);
  return index_handle.DecodeFrom(&handle_input);
}

Status ReadBlockContents(RandomAccessFile* file, const BlockHandle& handle,
                         std::string* contents) {
  const size_t n = static_cast<size_t>(handle.size);
  std::unique_ptr<char[]> buf(new char[n + kBlockTrailerSize]);
  Slice block;
  RAILGUN_RETURN_IF_ERROR(
      file->Read(handle.offset, n + kBlockTrailerSize, &block, buf.get()));
  if (block.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }

  const char* data = block.data();
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
  const uint32_t actual_crc = crc32c::Extend(crc32c::Value(data, n),
                                             data + n, 1);  // Includes type.
  if (expected_crc != actual_crc) {
    return Status::Corruption("block checksum mismatch");
  }

  contents->clear();
  switch (static_cast<CompressionType>(data[n])) {
    case kNoCompression:
      contents->assign(data, n);
      return Status::OK();
    case kLzCompression:
      return LzUncompress(Slice(data, n), contents);
  }
  return Status::Corruption("unknown block compression type");
}

}  // namespace railgun::storage
