// Embedded LSM key-value store: Railgun's metric state store substrate
// (the role RocksDB plays in the paper, built from scratch here).
//
// Concurrency model: a coarse mutex guards all state. Flushes and
// compactions run synchronously on the writing thread — Railgun task
// processors are single-threaded by design (paper §3.2), so background
// compaction threads would only add nondeterminism.
#ifndef RAILGUN_STORAGE_DB_H_
#define RAILGUN_STORAGE_DB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"
#include "storage/log_writer.h"
#include "storage/memtable.h"
#include "storage/table.h"
#include "storage/table_builder.h"
#include "storage/version.h"
#include "storage/write_batch.h"

namespace railgun::storage {

struct DBOptions {
  bool create_if_missing = true;
  // Total memtable bytes (across column families) that trigger a flush.
  size_t write_buffer_size = 4 * 1024 * 1024;
  // Number of L0 files that triggers an L0->L1 compaction.
  int l0_compaction_trigger = 4;
  // Max bytes for L1; each further level is 10x larger.
  uint64_t max_bytes_for_level_base = 10 * 1024 * 1024;
  // Target size of one compaction output file.
  uint64_t target_file_size = 2 * 1024 * 1024;
  size_t block_size = 4096;
  CompressionType compression = kLzCompression;
  // fdatasync the WAL on every write (off by default: the paper's
  // durability story is Kafka replay from the last checkpoint).
  bool sync_writes = false;
  Env* env = nullptr;  // Defaults to Env::Default().
};

// Default column family id.
constexpr uint32_t kDefaultColumnFamily = 0;

class DB {
 public:
  static Status Open(const DBOptions& options, const std::string& path,
                     std::unique_ptr<DB>* db);

  ~DB();
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(uint32_t cf, const Slice& key, const Slice& value);
  Status Delete(uint32_t cf, const Slice& key);
  Status Write(WriteBatch* batch);
  Status Get(uint32_t cf, const Slice& key, std::string* value);

  // Column families.
  StatusOr<uint32_t> CreateColumnFamily(const std::string& name);
  // Returns the id, or NotFound.
  StatusOr<uint32_t> FindColumnFamily(const std::string& name);

  // Forces all memtables to SSTables and rotates the WAL.
  Status Flush();

  // Consistent on-disk snapshot: flush, then copy live files into dir,
  // which can be opened as a regular database.
  Status Checkpoint(const std::string& dir);

  // Scan iterator over one column family (user keys, newest versions,
  // tombstones elided). Snapshot semantics: operates over the files and
  // memtable present at creation; concurrent writes to the same DB from
  // other threads are not reflected.
  class Iterator {
   public:
    virtual ~Iterator() = default;
    virtual bool Valid() const = 0;
    virtual void SeekToFirst() = 0;
    virtual void Seek(const Slice& user_key) = 0;
    virtual void Next() = 0;
    virtual Slice key() const = 0;
    virtual Slice value() const = 0;
  };
  std::unique_ptr<Iterator> NewIterator(uint32_t cf);

  // Introspection for tests/benchmarks.
  struct LevelStats {
    int num_files = 0;
    uint64_t bytes = 0;
  };
  std::vector<LevelStats> GetLevelStats(uint32_t cf);
  uint64_t TotalSstBytes();

  const std::string& path() const { return dbname_; }

 private:
  DB(const DBOptions& options, std::string dbname);

  Status Recover();
  Status ReplayLog(uint64_t log_number);
  Status WriteLocked(WriteBatch* batch) REQUIRES(mu_);
  Status MaybeScheduleFlush();
  Status FlushLocked() REQUIRES(mu_);
  Status FlushMemTable(uint32_t cf_id, MemTable* mem);
  Status MaybeCompact(uint32_t cf_id);
  Status CompactRange(uint32_t cf_id, int level,
                      const std::vector<FileMetaData>& inputs_level,
                      const std::vector<FileMetaData>& inputs_next);
  StatusOr<Table*> GetTable(uint64_t file_number);
  Status GetFromTables(uint32_t cf_id, const LookupKey& lkey,
                       std::string* value);
  void RemoveObsoleteFiles();

  DBOptions options_;
  std::string dbname_;
  Env* env_;

  Mutex mu_{kRankStorageDb};
  std::map<uint32_t, std::unique_ptr<MemTable>> mems_ GUARDED_BY(mu_);
  std::unique_ptr<VersionSet> versions_ GUARDED_BY(mu_);
  std::unique_ptr<WritableFile> log_file_ GUARDED_BY(mu_);
  std::unique_ptr<log::Writer> log_ GUARDED_BY(mu_);
  uint64_t log_number_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, std::unique_ptr<Table>> table_cache_ GUARDED_BY(mu_);
  friend class DBIterImpl;
};

// Removes the database directory and all its contents.
Status DestroyDB(const std::string& path, Env* env = nullptr);

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_DB_H_
