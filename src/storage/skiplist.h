// Skip list used by the memtable. Single-writer / multi-reader safe in
// Railgun because each task processor owns its store exclusively, but
// node publication still uses release stores for safety under readers.
#ifndef RAILGUN_STORAGE_SKIPLIST_H_
#define RAILGUN_STORAGE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "common/arena.h"
#include "common/random.h"

namespace railgun::storage {

template <typename Key, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(Key(), kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // REQUIRES: nothing equal to key is currently in the list.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));
    (void)x;

    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; ++i) prev[i] = head_;
      max_height_.store(height, std::memory_order_relaxed);
    }

    Node* node = NewNode(key, height);
    for (int i = 0; i < height; ++i) {
      node->SetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, node);
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    Key const key;

    Node* Next(int n) const {
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_release);
    }

    // Variable-length tail; next_[0] is level 0.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.OneIn(4)) ++height;
    return height;
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  bool Equal(const Key& a, const Key& b) const {
    return compare_(a, b) == 0;
  }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (level == 0) return x;
        --level;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr) {
        x = next;
      } else {
        if (level == 0) return x;
        --level;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random64 rnd_;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_SKIPLIST_H_
