#include "storage/table.h"

namespace railgun::storage {

Status Table::Open(std::unique_ptr<RandomAccessFile> file,
                   std::unique_ptr<Table>* table) {
  const uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  RAILGUN_RETURN_IF_ERROR(file->Read(size - Footer::kEncodedLength,
                                     Footer::kEncodedLength, &footer_input,
                                     footer_space));
  Footer footer;
  RAILGUN_RETURN_IF_ERROR(footer.DecodeFrom(&footer_input));

  std::string index_contents;
  RAILGUN_RETURN_IF_ERROR(
      ReadBlockContents(file.get(), footer.index_handle, &index_contents));

  std::unique_ptr<Table> t(new Table());
  t->file_ = std::move(file);
  t->index_block_.reset(new Block(std::move(index_contents)));
  *table = std::move(t);
  return Status::OK();
}

Status Table::ReadDataBlock(const Slice& index_value,
                            std::shared_ptr<Block>* block) {
  BlockHandle handle;
  Slice input = index_value;
  RAILGUN_RETURN_IF_ERROR(handle.DecodeFrom(&input));

  auto it = block_cache_.find(handle.offset);
  if (it != block_cache_.end()) {
    *block = it->second;
    return Status::OK();
  }

  std::string contents;
  RAILGUN_RETURN_IF_ERROR(ReadBlockContents(file_.get(), handle, &contents));
  auto b = std::make_shared<Block>(std::move(contents));
  // Bounded cache with single-entry eviction (clearing wholesale made
  // every read a miss under uniform key access).
  if (block_cache_.size() >= 512) {
    block_cache_.erase(block_cache_.begin());
  }
  block_cache_[handle.offset] = b;
  *block = std::move(b);
  return Status::OK();
}

Status Table::InternalGet(const Slice& target, std::string* found_internal_key,
                          std::string* found_value) {
  Block::Iter index_iter(index_block_.get());
  index_iter.Seek(target);
  if (!index_iter.Valid()) return Status::NotFound("past last block");

  std::shared_ptr<Block> block;
  RAILGUN_RETURN_IF_ERROR(ReadDataBlock(index_iter.value(), &block));
  Block::Iter data_iter(block.get());
  data_iter.Seek(target);
  if (!data_iter.Valid()) return Status::NotFound("past last entry");

  found_internal_key->assign(data_iter.key().data(), data_iter.key().size());
  found_value->assign(data_iter.value().data(), data_iter.value().size());
  return Status::OK();
}

Table::Iterator::Iterator(Table* table)
    : table_(table),
      index_iter_(new Block::Iter(table->index_block_.get())) {}

bool Table::Iterator::Valid() const {
  return data_iter_ != nullptr && data_iter_->Valid();
}

void Table::Iterator::InitDataBlock() {
  data_block_.reset();
  data_iter_.reset();
  if (!index_iter_->Valid()) return;
  Status s = table_->ReadDataBlock(index_iter_->value(), &data_block_);
  if (!s.ok()) {
    status_ = s;
    return;
  }
  data_iter_.reset(new Block::Iter(data_block_.get()));
}

void Table::Iterator::SkipEmptyBlocks() {
  while ((data_iter_ == nullptr || !data_iter_->Valid()) &&
         index_iter_->Valid()) {
    index_iter_->Next();
    if (!index_iter_->Valid()) {
      data_iter_.reset();
      return;
    }
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
  }
}

void Table::Iterator::SeekToFirst() {
  index_iter_->SeekToFirst();
  InitDataBlock();
  if (data_iter_ != nullptr) data_iter_->SeekToFirst();
  SkipEmptyBlocks();
}

void Table::Iterator::Seek(const Slice& internal_key) {
  index_iter_->Seek(internal_key);
  InitDataBlock();
  if (data_iter_ != nullptr) data_iter_->Seek(internal_key);
  SkipEmptyBlocks();
}

void Table::Iterator::Next() {
  if (data_iter_ != nullptr) data_iter_->Next();
  SkipEmptyBlocks();
}

Slice Table::Iterator::key() const { return data_iter_->key(); }
Slice Table::Iterator::value() const { return data_iter_->value(); }

}  // namespace railgun::storage
