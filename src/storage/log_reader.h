#ifndef RAILGUN_STORAGE_LOG_READER_H_
#define RAILGUN_STORAGE_LOG_READER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/log_format.h"

namespace railgun::storage::log {

class Reader {
 public:
  // Borrows the file. If checksum is true, verifies CRCs. Corrupt or torn
  // tails terminate iteration rather than erroring (standard WAL replay
  // semantics: everything after a torn write is discarded).
  explicit Reader(SequentialFile* file, bool checksum = true);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  // Reads the next record into *record (backed by *scratch). Returns
  // false at EOF or on unrecoverable corruption.
  bool ReadRecord(Slice* record, std::string* scratch);

  // Number of records dropped due to corruption so far.
  uint64_t dropped_records() const { return dropped_records_; }

 private:
  static constexpr int kEof = kMaxRecordType + 1;
  static constexpr int kBadRecord = kMaxRecordType + 2;

  int ReadPhysicalRecord(Slice* result);

  SequentialFile* file_;
  bool checksum_;
  std::unique_ptr<char[]> backing_store_;
  Slice buffer_;
  bool eof_ = false;
  uint64_t dropped_records_ = 0;
};

}  // namespace railgun::storage::log

#endif  // RAILGUN_STORAGE_LOG_READER_H_
