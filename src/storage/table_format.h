// SSTable physical layout:
//
//   [data block + trailer]*
//   [index block + trailer]
//   footer (fixed size, at file end)
//
// Block trailer: compression type (1 byte) + masked CRC32C (4 bytes) of
// the compressed payload. Footer: index BlockHandle (offset, size as
// varint64s, zero-padded) + magic number.
#ifndef RAILGUN_STORAGE_TABLE_FORMAT_H_
#define RAILGUN_STORAGE_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"

namespace railgun::storage {

enum CompressionType : uint8_t {
  kNoCompression = 0,
  kLzCompression = 1,
};

constexpr uint64_t kTableMagicNumber = 0x7261696c67756e21ull;  // "railgun!"
constexpr size_t kBlockTrailerSize = 5;  // type (1) + crc (4)

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);
};

struct Footer {
  BlockHandle index_handle;

  // 10 + 10 varint bytes padded + 8 magic.
  static constexpr size_t kEncodedLength = 28;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);
};

// Reads a block (verifying its trailer CRC, decompressing if needed) into
// *contents.
Status ReadBlockContents(RandomAccessFile* file, const BlockHandle& handle,
                         std::string* contents);

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_TABLE_FORMAT_H_
