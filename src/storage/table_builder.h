// Writes an SSTable file from keys added in sorted (internal-key) order.
#ifndef RAILGUN_STORAGE_TABLE_BUILDER_H_
#define RAILGUN_STORAGE_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/block_builder.h"
#include "storage/table_format.h"

namespace railgun::storage {

struct TableBuilderOptions {
  size_t block_size = 4096;
  CompressionType compression = kLzCompression;
};

class TableBuilder {
 public:
  TableBuilder(const TableBuilderOptions& options, WritableFile* file);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // REQUIRES: internal keys added in strictly increasing order.
  void Add(const Slice& internal_key, const Slice& value);

  Status Finish();

  uint64_t NumEntries() const { return num_entries_; }
  uint64_t FileSize() const { return offset_; }
  Status status() const { return status_; }

 private:
  void FlushDataBlock();
  Status WriteBlock(BlockBuilder* block, BlockHandle* handle);

  TableBuilderOptions options_;
  WritableFile* file_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  Status status_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string last_key_;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;
  std::string compress_buf_;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_TABLE_BUILDER_H_
