// Read-side of an SSTable block: owns the decoded bytes and exposes a
// seekable iterator using the restart array for binary search.
#ifndef RAILGUN_STORAGE_BLOCK_H_
#define RAILGUN_STORAGE_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"

namespace railgun::storage {

class Block {
 public:
  // Takes ownership of the contents string.
  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }

  class Iter {
   public:
    explicit Iter(const Block* block);

    bool Valid() const { return current_ < restarts_offset_; }
    void SeekToFirst();
    // Positions at the first entry with internal key >= target.
    void Seek(const Slice& target);
    void Next();
    Slice key() const { return Slice(key_); }
    Slice value() const { return value_; }
    Status status() const { return status_; }

   private:
    void SeekToRestartPoint(uint32_t index);
    bool ParseNextEntry();
    uint32_t RestartPoint(uint32_t index) const;

    const Block* block_;
    uint32_t num_restarts_;
    uint32_t restarts_offset_;  // Offset of the restart array.
    uint32_t current_;          // Offset of current entry.
    uint32_t next_offset_;      // Offset right after current entry.
    std::string key_;
    Slice value_;
    Status status_;
  };

 private:
  friend class Iter;
  std::string data_;
};

}  // namespace railgun::storage

#endif  // RAILGUN_STORAGE_BLOCK_H_
