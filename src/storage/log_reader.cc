#include "storage/log_reader.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace railgun::storage::log {

Reader::Reader(SequentialFile* file, bool checksum)
    : file_(file),
      checksum_(checksum),
      backing_store_(new char[kBlockSize]) {}

bool Reader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  *record = Slice();
  bool in_fragmented_record = false;

  while (true) {
    Slice fragment;
    const int record_type = ReadPhysicalRecord(&fragment);
    switch (record_type) {
      case kFullType:
        *record = fragment;
        return true;

      case kFirstType:
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;

      case kMiddleType:
        if (!in_fragmented_record) {
          ++dropped_records_;
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case kLastType:
        if (!in_fragmented_record) {
          ++dropped_records_;
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          return true;
        }
        break;

      case kEof:
        return false;

      case kBadRecord:
        in_fragmented_record = false;
        scratch->clear();
        break;

      default:
        ++dropped_records_;
        in_fragmented_record = false;
        scratch->clear();
        break;
    }
  }
}

int Reader::ReadPhysicalRecord(Slice* result) {
  while (true) {
    if (buffer_.size() < static_cast<size_t>(kHeaderSize)) {
      if (!eof_) {
        buffer_ = Slice();
        const Status status =
            file_->Read(kBlockSize, &buffer_, backing_store_.get());
        if (!status.ok()) {
          eof_ = true;
          return kEof;
        }
        if (buffer_.size() < static_cast<size_t>(kBlockSize)) eof_ = true;
        continue;
      }
      // Truncated header at EOF: likely a torn write; drop it.
      buffer_ = Slice();
      return kEof;
    }

    const char* header = buffer_.data();
    const uint32_t a = static_cast<unsigned char>(header[4]);
    const uint32_t b = static_cast<unsigned char>(header[5]);
    const unsigned int type = static_cast<unsigned char>(header[6]);
    const uint32_t length = a | (b << 8);

    if (kHeaderSize + length > buffer_.size()) {
      // Torn record.
      buffer_ = Slice();
      if (!eof_) {
        ++dropped_records_;
        return kBadRecord;
      }
      return kEof;
    }

    if (type == kZeroType && length == 0) {
      // Zero-filled block trailer; skip the rest of the block.
      buffer_ = Slice();
      continue;
    }

    if (checksum_) {
      const uint32_t expected = crc32c::Unmask(DecodeFixed32(header));
      const uint32_t actual =
          crc32c::Extend(crc32c::Value(header + 6, 1), header + kHeaderSize,
                         length);
      if (expected != actual) {
        buffer_ = Slice();
        ++dropped_records_;
        return kBadRecord;
      }
    }

    *result = Slice(header + kHeaderSize, length);
    buffer_.remove_prefix(kHeaderSize + length);
    return static_cast<int>(type);
  }
}

}  // namespace railgun::storage::log
