// Shared helpers for the figure-reproduction benchmarks: percentile
// table printing in the paper's format and environment-variable scale
// knobs (defaults keep every bench to a few seconds; export
// RAILGUN_BENCH_SCALE=paper for longer, closer-to-paper runs).
#ifndef RAILGUN_BENCH_BENCH_COMMON_H_
#define RAILGUN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace railgun::bench {

// The percentile grid of Figures 8 and 9.
inline const std::vector<double>& PaperPercentiles() {
  static const std::vector<double> p = {0,  50,   75,   90,    95,
                                        99, 99.9, 99.99, 99.999, 100};
  return p;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* value = getenv(name);
  return value != nullptr ? atof(value) : fallback;
}

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = getenv(name);
  return value != nullptr ? atoll(value) : fallback;
}

// Prints one labeled row of latencies (ms) for the paper's percentile
// grid.
inline void PrintPercentileHeader() {
  printf("%-28s", "series");
  for (double p : PaperPercentiles()) printf(" %9.5g%%", p);
  printf("\n");
}

inline void PrintPercentileRow(const std::string& label,
                               const LatencyHistogram& hist) {
  printf("%-28s", label.c_str());
  for (double p : PaperPercentiles()) {
    printf(" %9.2f", static_cast<double>(hist.ValueAtPercentile(p)) / 1000.0);
  }
  printf("\n");
  fflush(stdout);
}

}  // namespace railgun::bench

#endif  // RAILGUN_BENCH_BENCH_COMMON_H_
