// Throughput of the batched, wake-on-arrival data path: per-event
// SubmitSync vs SubmitBatch vs pipelined SubmitNoReply at an identical
// cluster topology. Records events/sec plus p50/p99 per-event latency
// (for batch mode, measured from the batch handoff to each event's
// completion). The batched path must sustain >= 3x the per-event
// events/sec — that ratio is printed and checked at the end.
//
// Knobs: RAILGUN_BENCH_EVENTS (default 20000), RAILGUN_BENCH_BATCH
// (default 256), RAILGUN_BENCH_PARTITIONS (default 4),
// RAILGUN_BENCH_DELAY_US (default 200 — the simulated broker/network
// hop, same as the figure benches; per-event submission pays it per
// round trip, batches amortize it).
// Two tracing variants ride along (same batched workload, fresh
// cluster each): trace_off — the instrumented hot path with the tracer
// disabled, the configuration the ≤1%-overhead gate in
// scripts/perf_smoke.py holds to — and trace_sampled_1_in_1024, the
// recommended production sampling rate (≤5%, warn-only).
#include <cinttypes>

#include "api/client.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "trace/tracer.h"

using namespace railgun;
using namespace railgun::bench;

namespace {

struct RunResult {
  double events_per_sec = 0;
  LatencyHistogram latencies;
};

api::Row MakeRow(uint64_t i) {
  return api::Row()
      .Set("cardId", "card" + std::to_string(i % 1024))
      .Set("amount", 1.0 + static_cast<double>(i % 97));
}

std::unique_ptr<api::Client> StartClient(int partitions) {
  api::ClientOptions options;
  options.num_nodes = 1;
  options.processor_units_per_node = 2;
  options.base_dir = "/tmp/railgun-bench-pipeline";
  options.engine.bus.delivery_delay = EnvInt("RAILGUN_BENCH_DELAY_US", 200);
  auto client = std::make_unique<api::Client>(options);
  if (!client->Start().ok()) return nullptr;
  char ddl[160];
  snprintf(ddl, sizeof(ddl),
           "CREATE STREAM payments (cardId STRING, amount DOUBLE) "
           "PARTITION BY cardId PARTITIONS %d",
           partitions);
  if (!client->Execute(ddl).ok()) return nullptr;
  if (!client
           ->Execute("ADD METRIC SELECT sum(amount), count(*) FROM payments "
                     "GROUP BY cardId OVER sliding 5 minutes")
           .ok()) {
    return nullptr;
  }
  return client;
}

RunResult RunSingle(api::Client* client, uint64_t events) {
  RunResult result;
  const Micros start = MonotonicClock::Default()->NowMicros();
  for (uint64_t i = 0; i < events; ++i) {
    const Micros t0 = MonotonicClock::Default()->NowMicros();
    api::EventResult r = client->SubmitSync("payments", MakeRow(i));
    if (!r.ok()) continue;
    result.latencies.Record(MonotonicClock::Default()->NowMicros() - t0);
  }
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  result.events_per_sec =
      static_cast<double>(events) * kMicrosPerSecond / elapsed;
  return result;
}

RunResult RunBatched(api::Client* client, uint64_t events,
                     uint64_t batch_size) {
  RunResult result;
  const Micros start = MonotonicClock::Default()->NowMicros();
  for (uint64_t base = 0; base < events; base += batch_size) {
    const uint64_t n = std::min(batch_size, events - base);
    std::vector<api::Row> rows;
    rows.reserve(n);
    for (uint64_t i = 0; i < n; ++i) rows.push_back(MakeRow(base + i));
    const Micros t0 = MonotonicClock::Default()->NowMicros();
    std::vector<api::ResultFuture> futures =
        client->SubmitBatch("payments", rows);
    for (auto& future : futures) {
      if (!future.Get().ok()) continue;
      result.latencies.Record(MonotonicClock::Default()->NowMicros() - t0);
    }
  }
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  result.events_per_sec =
      static_cast<double>(events) * kMicrosPerSecond / elapsed;
  return result;
}

RunResult RunNoReply(api::Client* client, uint64_t events) {
  RunResult result;
  const Micros start = MonotonicClock::Default()->NowMicros();
  for (uint64_t i = 0; i < events; ++i) {
    // Fire-and-forget: sheds under flood are part of what is measured.
    (void)client->SubmitNoReply("payments", MakeRow(i));
  }
  client->admin().WaitForQuiescence(120 * kMicrosPerSecond);
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  result.events_per_sec =
      static_cast<double>(events) * kMicrosPerSecond / elapsed;
  return result;
}

void PrintRow(const char* label, const RunResult& r, bool with_latency) {
  if (with_latency) {
    printf("%-24s %12.0f ev/s   p50 %8.3f ms   p99 %8.3f ms\n", label,
           r.events_per_sec,
           static_cast<double>(r.latencies.ValueAtPercentile(50)) / 1000.0,
           static_cast<double>(r.latencies.ValueAtPercentile(99)) / 1000.0);
  } else {
    printf("%-24s %12.0f ev/s   (fire-and-forget, no per-event reply)\n",
           label, r.events_per_sec);
  }
}

}  // namespace

int main() {
  const uint64_t events =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_EVENTS", 20000));
  const uint64_t batch_size =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_BATCH", 256));
  const int partitions =
      static_cast<int>(EnvInt("RAILGUN_BENCH_PARTITIONS", 4));

  printf("=== Pipeline throughput: single vs batched submission ===\n");
  printf("%" PRIu64 " events, batch=%" PRIu64
         ", 1 node x 2 units, %d partitions, %" PRId64
         " us broker hop, sum+count by cardId\n\n",
         events, batch_size, partitions,
         EnvInt("RAILGUN_BENCH_DELAY_US", 200));

  // Equal topology for every mode: a fresh cluster per run so reservoir
  // history doesn't favor later modes.
  RunResult single, batched, noreply;
  {
    auto client = StartClient(partitions);
    if (client == nullptr) return 1;
    // Per-event path is the slow one; cap its sample so the bench stays
    // in seconds while keeping the rate estimate stable.
    single = RunSingle(client.get(), std::min<uint64_t>(events, 4000));
    client->Stop();
  }
  {
    auto client = StartClient(partitions);
    if (client == nullptr) return 1;
    batched = RunBatched(client.get(), events, batch_size);
    client->Stop();
  }
  {
    auto client = StartClient(partitions);
    if (client == nullptr) return 1;
    noreply = RunNoReply(client.get(), events);
    client->Stop();
  }
  // Tracing variants, batched workload. trace_off re-measures the same
  // configuration as `batched` with the tracer explicitly disabled —
  // the delta is the cost of the compiled-in instrumentation (one
  // relaxed load per hop) plus run-to-run noise.
  RunResult trace_off, trace_sampled;
  {
    auto client = StartClient(partitions);
    if (client == nullptr) return 1;
    trace::Tracer::Global()->Disable();
    trace_off = RunBatched(client.get(), events, batch_size);
    client->Stop();
  }
  {
    auto client = StartClient(partitions);
    if (client == nullptr) return 1;
    trace::TracerOptions trace_options;
    trace_options.sample_every = 1024;
    trace::Tracer::Global()->Enable(trace_options);
    trace_sampled = RunBatched(client.get(), events, batch_size);
    trace::Tracer::Global()->Disable();
    trace::Tracer::Global()->Clear();
    client->Stop();
  }

  PrintRow("SubmitSync (1-by-1)", single, true);
  PrintRow("SubmitBatch", batched, true);
  PrintRow("SubmitNoReply (pipeline)", noreply, false);
  PrintRow("SubmitBatch trace off", trace_off, true);
  PrintRow("SubmitBatch trace 1/1024", trace_sampled, true);
  printf("tracing overhead vs batched: off %+.2f%%, sampled %+.2f%%\n",
         (1.0 - trace_off.events_per_sec / batched.events_per_sec) * 100.0,
         (1.0 - trace_sampled.events_per_sec / batched.events_per_sec) *
             100.0);

  const double ratio = batched.events_per_sec / single.events_per_sec;

  JsonResult json("bench_throughput_pipeline");
  json.Add("single_events_per_sec", single.events_per_sec)
      .AddLatency("single", single.latencies)
      .Add("batched_events_per_sec", batched.events_per_sec)
      .AddLatency("batched", batched.latencies)
      .Add("noreply_events_per_sec", noreply.events_per_sec)
      .Add("trace_off_events_per_sec", trace_off.events_per_sec)
      .AddLatency("trace_off", trace_off.latencies)
      .Add("trace_sampled_1_in_1024_events_per_sec",
           trace_sampled.events_per_sec)
      .AddLatency("trace_sampled_1_in_1024", trace_sampled.latencies)
      .Add("batched_over_single_ratio", ratio)
      .Write();

  printf("\nbatched/single throughput ratio: %.1fx (target >= 3x)\n", ratio);
  if (ratio < 3.0) {
    printf("FAIL: batched submission below 3x per-event throughput\n");
    return 1;
  }
  printf("PASS\n");
  return 0;
}
