// bench_remote_hop: the cost of a real messaging hop.
//
// Measures produce -> poll delivery through (a) the in-process bus with
// its simulated delivery_delay and (b) the same broker behind a
// BusServer, reached through RemoteBus over a loopback TCP socket.
// Reports events/sec for a batched pipeline and per-event p50/p99
// latency for a sequential request/response loop.
//
//   RAILGUN_BENCH_EVENTS  pipeline events per series (default 20000)
//   RAILGUN_BENCH_PINGS   sequential latency samples (default 2000)
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "msg/broker.h"
#include "msg/remote/bus_server.h"
#include "msg/remote/remote_bus.h"
#include "trace/trace_context.h"
#include "trace/tracer.h"

using namespace railgun;
using msg::Bus;
using msg::Message;
using msg::ProduceRecord;

namespace {

struct HopResult {
  double events_per_sec = 0;
  LatencyHistogram latency;
};

// Sequential ping latency + batched pipeline throughput over any Bus.
// With `traced`, every pipeline batch carries a freshly minted trace
// context (the tracer decides span sampling), so the wire trailer and
// the server-side append span path are on the measured path.
HopResult DriveHop(Bus* producer_bus, Bus* consumer_bus, int64_t pings,
                   int64_t events, bool traced = false) {
  HopResult result;
  Clock* clock = MonotonicClock::Default();
  const char* kTopic = "hop";
  {
    const Status s = producer_bus->CreateTopic(kTopic, 1);
    if (!s.ok() && !s.IsAlreadyExists()) {
      fprintf(stderr, "CreateTopic: %s\n", s.ToString().c_str());
      return result;
    }
  }
  if (!consumer_bus->Subscribe("hop-consumer", "hop-group", {kTopic}, "",
                               nullptr, {})
           .ok()) {
    return result;
  }
  std::vector<Message> batch;
  RAILGUN_CHECK_OK(
      consumer_bus->Poll("hop-consumer", 16, &batch));  // Assignment.

  // Phase 1: sequential produce -> blocking poll, per-event latency.
  for (int64_t i = 0; i < pings; ++i) {
    const Micros sent = clock->NowMicros();
    if (!producer_bus->ProduceToPartition(kTopic, 0, "k", "ping").ok()) {
      return result;
    }
    do {
      if (!consumer_bus->Poll("hop-consumer", 16, &batch, kMicrosPerSecond)
               .ok()) {
        return result;
      }
    } while (batch.empty());
    result.latency.Record(clock->NowMicros() - sent);
  }

  // Phase 2: batched pipeline throughput. A producer thread ships
  // batches; the consumer drains through blocking polls.
  const size_t kBatch = 256;
  std::thread producer([&] {
    trace::Tracer* tracer = trace::Tracer::Global();
    std::vector<ProduceRecord> records;
    for (int64_t sent = 0; sent < events;) {
      records.clear();
      for (size_t b = 0; b < kBatch && sent < events; ++b, ++sent) {
        records.push_back({"k" + std::to_string(sent % 64), "payload"});
      }
      const trace::TraceContext ctx =
          traced ? tracer->Mint() : trace::TraceContext();
      const trace::ScopedTraceContext scope(ctx);
      if (!producer_bus->ProduceBatch(kTopic, std::move(records)).ok()) {
        return;
      }
      records = {};
    }
  });
  int64_t received = 0;
  const Micros start = clock->NowMicros();
  while (received < events) {
    if (!consumer_bus->Poll("hop-consumer", 1024, &batch, kMicrosPerSecond)
             .ok()) {
      break;
    }
    if (batch.empty()) break;  // Producer failed or stalled.
    received += static_cast<int64_t>(batch.size());
  }
  const Micros elapsed = clock->NowMicros() - start;
  producer.join();
  (void)consumer_bus->Unsubscribe("hop-consumer");  // Best effort teardown.
  if (elapsed > 0 && received > 0) {
    result.events_per_sec =
        static_cast<double>(received) * kMicrosPerSecond /
        static_cast<double>(elapsed);
  }
  return result;
}

void PrintRow(const char* label, const HopResult& result) {
  printf("%-26s %12.0f ev/s   p50 %7.1f us   p99 %7.1f us   mean %7.1f us\n",
         label, result.events_per_sec,
         static_cast<double>(result.latency.ValueAtPercentile(50)),
         static_cast<double>(result.latency.ValueAtPercentile(99)),
         result.latency.Mean());
  fflush(stdout);
}

}  // namespace

int main() {
  const int64_t events = bench::EnvInt("RAILGUN_BENCH_EVENTS", 20000);
  const int64_t pings = bench::EnvInt("RAILGUN_BENCH_PINGS", 2000);
  printf("bench_remote_hop: %lld pipeline events, %lld latency pings\n",
         static_cast<long long>(events), static_cast<long long>(pings));

  bench::JsonResult json("bench_remote_hop");
  const auto add_series = [&json](const std::string& key,
                                  const HopResult& result) {
    json.Add(key + "_events_per_sec", result.events_per_sec)
        .AddLatency(key + "_ping", result.latency);
  };

  // (a) In-process broker, default simulated delivery delay.
  {
    msg::BusOptions options;  // delivery_delay = 500 us.
    msg::InProcessBus bus(options);
    const HopResult result = DriveHop(&bus, &bus, pings, events);
    PrintRow("in-process (delay 500us)", result);
    add_series("inprocess_delay500", result);
  }
  // (b) In-process broker, no simulated delay — the floor.
  {
    msg::BusOptions options;
    options.delivery_delay = 0;
    msg::InProcessBus bus(options);
    const HopResult result = DriveHop(&bus, &bus, pings, events);
    PrintRow("in-process (no delay)", result);
    add_series("inprocess_nodelay", result);
  }
  // (c) The same broker behind a real loopback TCP socket.
  {
    msg::BusOptions options;
    options.delivery_delay = 0;
    msg::InProcessBus bus(options);
    msg::remote::BusServer server(msg::remote::BusServerOptions{}, &bus);
    if (!server.Start().ok()) {
      fprintf(stderr, "failed to start BusServer\n");
      return 1;
    }
    msg::remote::RemoteBusOptions remote_options;
    remote_options.address = server.address();
    msg::remote::RemoteBus remote(remote_options);
    if (!remote.Connect().ok()) {
      fprintf(stderr, "failed to connect RemoteBus\n");
      return 1;
    }
    const HopResult result = DriveHop(&remote, &remote, pings, events);
    PrintRow("remote (loopback TCP)", result);
    add_series("remote_loopback_tcp", result);
    // The tracer is compiled in and disabled here, so this run *is* the
    // trace_off variant: emit it under that name for the perf gate.
    add_series("trace_off", result);

    // (d) Same loopback hop with sampled tracing on: contexts minted
    // per batch, trailers on the wire, 1-in-1024 batches record spans.
    trace::TracerOptions trace_options;
    trace_options.sample_every = 1024;
    trace::Tracer::Global()->Enable(trace_options);
    const HopResult traced =
        DriveHop(&remote, &remote, pings, events, /*traced=*/true);
    trace::Tracer::Global()->Disable();
    trace::Tracer::Global()->Clear();
    PrintRow("remote traced 1/1024", traced);
    add_series("trace_sampled_1_in_1024", traced);
    printf("tracing overhead vs trace_off: sampled %+.2f%%\n",
           (1.0 - traced.events_per_sec / result.events_per_sec) * 100.0);
    server.Stop();
  }
  json.Write();
  return 0;
}
