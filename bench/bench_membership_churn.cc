// bench_membership_churn: what a membership change costs the data
// plane.
//
// One meta::Broker (0 local nodes), workers joining/leaving as
// meta::WorkerNodes, and a remote api::Client submitting continuously
// through loopback TCP. Phases alternate steady state with churn —
// a worker joining mid-stream, then a worker leaving gracefully
// mid-stream — and each phase reports events/sec, p50/p99 per-event
// latency and failed submissions, so the rebalance dip is visible
// next to its neighbours. Join/leave rebalance latency (membership
// RPC + sticky reassignment + partition-log replay on the new owner)
// is measured wall-clock around the worker Start()/Stop() calls.
//
//   RAILGUN_BENCH_EVENTS  events per phase (default 4000)
//   RAILGUN_BENCH_UNITS   processor units per worker (default 2)
#include <thread>
#include <vector>

#include "api/client.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "meta/broker.h"
#include "meta/worker_node.h"

using namespace railgun;

namespace {

struct PhaseResult {
  double events_per_sec = 0;
  int64_t failures = 0;
  LatencyHistogram latency;
};

// Submits `events` payments sequentially, recording per-event acked
// latency. Failed submissions (e.g. a task mid-move past the request
// deadline) are counted, not retried — the point is availability.
PhaseResult DrivePhase(api::Client& client, int64_t events) {
  PhaseResult result;
  Clock* clock = MonotonicClock::Default();
  const Micros start = clock->NowMicros();
  for (int64_t i = 0; i < events; ++i) {
    const Micros sent = clock->NowMicros();
    const api::EventResult r = client.SubmitSync(
        "payments", api::Row()
                        .Set("cardId", "card" + std::to_string(i % 64))
                        .Set("amount", 1.0));
    if (r.ok()) {
      result.latency.Record(clock->NowMicros() - sent);
    } else {
      ++result.failures;
    }
  }
  const Micros elapsed = clock->NowMicros() - start;
  if (elapsed > 0) {
    result.events_per_sec = static_cast<double>(events) *
                            kMicrosPerSecond /
                            static_cast<double>(elapsed);
  }
  return result;
}

void AddPhase(bench::JsonResult& json, const std::string& key,
              const PhaseResult& result) {
  json.Add(key + "_events_per_sec", result.events_per_sec)
      .Add(key + "_failures", result.failures)
      .AddLatency(key, result.latency);
}

void PrintRow(const char* label, const PhaseResult& result) {
  printf("%-28s %10.0f ev/s   p50 %7.1f us   p99 %8.1f us   "
         "failed %lld\n",
         label, result.events_per_sec,
         static_cast<double>(result.latency.ValueAtPercentile(50)),
         static_cast<double>(result.latency.ValueAtPercentile(99)),
         static_cast<long long>(result.failures));
  fflush(stdout);
}

meta::WorkerNodeOptions WorkerOptions(const std::string& address,
                                      const std::string& id, int units) {
  meta::WorkerNodeOptions options;
  options.broker_address = address;
  options.node_id = id;
  options.num_units = units;
  options.base_dir = "/tmp/railgun-bench-churn-" + id;
  return options;
}

}  // namespace

int main() {
  const int64_t events = bench::EnvInt("RAILGUN_BENCH_EVENTS", 4000);
  const int units =
      static_cast<int>(bench::EnvInt("RAILGUN_BENCH_UNITS", 2));
  Clock* clock = MonotonicClock::Default();
  printf("bench_membership_churn: %lld events/phase, %d unit(s)/worker\n",
         static_cast<long long>(events), units);

  meta::BrokerOptions broker_options;
  broker_options.cluster.base_dir = "/tmp/railgun-bench-churn-broker";
  broker_options.cluster.bus.delivery_delay = 0;
  meta::Broker broker(broker_options);
  if (!broker.Start().ok()) {
    fprintf(stderr, "failed to start broker\n");
    return 1;
  }
  meta::WorkerNode w1(WorkerOptions(broker.address(), "w1", units));
  if (!w1.Start().ok()) {
    fprintf(stderr, "w1 failed to join\n");
    return 1;
  }

  api::ClientOptions client_options;
  client_options.remote_address = broker.address();
  api::Client client(client_options);
  if (!client.Start().ok() ||
      !client
           .Execute("CREATE STREAM payments (cardId STRING, amount "
                    "DOUBLE) PARTITION BY cardId PARTITIONS 8")
           .ok() ||
      !client
           .Execute("ADD METRIC SELECT sum(amount), count(*) FROM "
                    "payments GROUP BY cardId OVER sliding 5 minutes")
           .ok()) {
    fprintf(stderr, "client setup failed\n");
    return 1;
  }
  // Warm the path (topic creation, first assignment, schema cache).
  DrivePhase(client, 64);

  bench::JsonResult json("bench_membership_churn");
  json.Add("events_per_phase", events).Add("units_per_worker", units);

  {
    const PhaseResult steady1 = DrivePhase(client, events);
    PrintRow("steady (1 worker)", steady1);
    AddPhase(json, "steady_1w", steady1);
  }

  // A second worker joins mid-stream: its units subscribe, the sticky
  // coordinator moves half the tasks over, and the new owner replays
  // partition logs before serving.
  meta::WorkerNode w2(WorkerOptions(broker.address(), "w2", units));
  Micros join_latency = 0;
  {
    std::thread joiner([&] {
      const Micros begin = clock->NowMicros();
      if (!w2.Start().ok()) {
        fprintf(stderr, "w2 failed to join\n");
      }
      join_latency = clock->NowMicros() - begin;
    });
    const PhaseResult join_phase = DrivePhase(client, events);
    PrintRow("join in flight (1 -> 2)", join_phase);
    AddPhase(json, "join_in_flight", join_phase);
    joiner.join();
  }
  printf("%-28s %10.1f ms\n", "  join rebalance latency",
         static_cast<double>(join_latency) / kMicrosPerMilli);
  json.Add("join_rebalance_us", join_latency);

  {
    const PhaseResult steady2 = DrivePhase(client, events);
    PrintRow("steady (2 workers)", steady2);
    AddPhase(json, "steady_2w", steady2);
  }

  // The second worker leaves gracefully mid-stream: metadata Leave +
  // clean unsubscribe, tasks rebalance back onto w1, which rebuilds
  // their state from the logs. Acked events must survive, submissions
  // keep flowing; the dip is the price.
  Micros leave_latency = 0;
  {
    std::thread leaver([&] {
      const Micros begin = clock->NowMicros();
      w2.Stop();
      leave_latency = clock->NowMicros() - begin;
    });
    const PhaseResult leave_phase = DrivePhase(client, events);
    PrintRow("leave in flight (2 -> 1)", leave_phase);
    AddPhase(json, "leave_in_flight", leave_phase);
    leaver.join();
  }
  printf("%-28s %10.1f ms\n", "  leave rebalance latency",
         static_cast<double>(leave_latency) / kMicrosPerMilli);
  json.Add("leave_rebalance_us", leave_latency);

  {
    const PhaseResult steady3 = DrivePhase(client, events);
    PrintRow("steady (1 worker again)", steady3);
    AddPhase(json, "steady_1w_again", steady3);
  }
  json.Write();

  client.Stop();
  w1.Stop();
  broker.Stop();
  return 0;
}
