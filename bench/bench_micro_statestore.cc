// Microbenchmarks (google-benchmark) for the embedded LSM state store:
// point writes, read-modify-write (the aggregation-update pattern),
// point reads across levels, and checkpointing.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_main.h"
#include "common/coding.h"
#include "common/logging.h"
#include "common/random.h"
#include "storage/db.h"

using namespace railgun;
using namespace railgun::storage;

namespace {

std::unique_ptr<DB> OpenFresh(const std::string& dir) {
  (void)DestroyDB(dir);
  DBOptions options;
  options.write_buffer_size = 8 * 1024 * 1024;
  std::unique_ptr<DB> db;
  if (!DB::Open(options, dir, &db).ok()) return nullptr;
  return db;
}

void BM_StateStorePut(benchmark::State& state) {
  auto db = OpenFresh("/tmp/railgun-bench-micro-put");
  Random64 rng(1);
  char key[32];
  std::string value(static_cast<size_t>(state.range(0)), 'v');
  for (auto _ : state) {
    snprintf(key, sizeof(key), "m1|card%08llu",
             static_cast<unsigned long long>(rng.Uniform(100000)));
    benchmark::DoNotOptimize(db->Put(0, key, value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStorePut)->Arg(16)->Arg(128);

void BM_StateStoreReadModifyWrite(benchmark::State& state) {
  // The aggregation-update pattern: Get state, decode, bump, Put.
  auto db = OpenFresh("/tmp/railgun-bench-micro-rmw");
  Random64 rng(2);
  char key[32];
  for (auto _ : state) {
    snprintf(key, sizeof(key), "m1|card%08llu",
             static_cast<unsigned long long>(rng.Uniform(50000)));
    std::string value;
    double sum = 0;
    Status s = db->Get(0, key, &value);
    if (s.ok()) {
      Slice in(value);
      GetDouble(&in, &sum);
    }
    value.clear();
    PutDouble(&value, sum + 1.5);
    benchmark::DoNotOptimize(db->Put(0, key, value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStoreReadModifyWrite);

void BM_StateStoreGetAcrossLevels(benchmark::State& state) {
  static std::unique_ptr<DB> db;
  if (db == nullptr) {
    (void)DestroyDB("/tmp/railgun-bench-micro-get");
    DBOptions options;
    options.write_buffer_size = 256 * 1024;  // Force many tables.
    if (!DB::Open(options, "/tmp/railgun-bench-micro-get", &db).ok()) {
      state.SkipWithError("open failed");
      return;
    }
    char key[32];
    for (int i = 0; i < 200000; ++i) {
      snprintf(key, sizeof(key), "k%08d", i);
      RAILGUN_CHECK_OK(db->Put(0, key, "value-" + std::to_string(i)));
    }
  }
  Random64 rng(3);
  char key[32];
  for (auto _ : state) {
    snprintf(key, sizeof(key), "k%08llu",
             static_cast<unsigned long long>(rng.Uniform(200000)));
    std::string value;
    benchmark::DoNotOptimize(db->Get(0, key, &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStoreGetAcrossLevels);

void BM_StateStoreCheckpoint(benchmark::State& state) {
  auto db = OpenFresh("/tmp/railgun-bench-micro-ckpt");
  char key[32];
  for (int i = 0; i < 20000; ++i) {
    snprintf(key, sizeof(key), "k%08d", i);
    RAILGUN_CHECK_OK(db->Put(0, key, "v"));
  }
  int round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Checkpoint(
        "/tmp/railgun-bench-micro-ckpt-out" + std::to_string(round++ % 2)));
  }
}
BENCHMARK(BM_StateStoreCheckpoint)->Unit(benchmark::kMillisecond);

void BM_WriteBatchCommit(benchmark::State& state) {
  auto db = OpenFresh("/tmp/railgun-bench-micro-batch");
  Random64 rng(4);
  for (auto _ : state) {
    WriteBatch batch;
    for (int i = 0; i < state.range(0); ++i) {
      char key[32];
      snprintf(key, sizeof(key), "k%08llu",
               static_cast<unsigned long long>(rng.Uniform(100000)));
      batch.Put(0, key, "v");
    }
    benchmark::DoNotOptimize(db->Write(&batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WriteBatchCommit)->Arg(1)->Arg(16)->Arg(128);

}  // namespace

RAILGUN_BENCH_MICRO_MAIN("bench_micro_statestore")
