// bench_wire_decode: decode throughput of the bus->unit poll hot path.
//
// The same poll response payload is decoded three ways:
//   row-copy:  GetWireMessageList into owned Messages (pre-PR-7 path,
//              one topic/key/payload string allocation per message)
//   row-view:  GetWireMessageListViews into Slice-backed MessageViews
//   columnar:  GetColumnarMessageList (kPollColumnar encoding) into the
//              same views, lengths validated column-wise
// plus a pooled end-to-end loop (acquire buffer -> copy wire bytes ->
// decode columnar) that demonstrates zero steady-state allocations via
// the BufferPool hit/miss counters.
//
//   RAILGUN_BENCH_MESSAGES  messages per batch     (default 256)
//   RAILGUN_BENCH_ITERS     decode iterations      (default 2000)
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/clock.h"
#include "msg/batch.h"
#include "msg/buffer_pool.h"
#include "msg/message.h"
#include "msg/remote/wire.h"

using namespace railgun;
using msg::BufferPool;
using msg::BufferRef;
using msg::Message;
using msg::MessageBatch;

namespace {

std::vector<Message> BuildBatch(int64_t count) {
  std::vector<Message> messages;
  messages.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    Message m;
    m.topic = "payments.cardId";
    m.partition = 0;
    m.offset = static_cast<uint64_t>(i);
    m.key = "card" + std::to_string(i % 64);
    // Envelope-sized payload: what a TaskProcessor poll really carries.
    m.payload = std::string(120 + (i % 5) * 16, 'e');
    m.publish_time = 1700000000000000 + i * 250;
    m.visible_time = m.publish_time + 500;
    messages.push_back(std::move(m));
  }
  return messages;
}

double EventsPerSec(int64_t events, Micros elapsed) {
  if (elapsed <= 0) return 0;
  return static_cast<double>(events) * kMicrosPerSecond /
         static_cast<double>(elapsed);
}

}  // namespace

int main() {
  const int64_t batch_messages = bench::EnvInt("RAILGUN_BENCH_MESSAGES", 256);
  const int64_t iters = bench::EnvInt("RAILGUN_BENCH_ITERS", 2000);
  const int64_t total = batch_messages * iters;
  Clock* clock = MonotonicClock::Default();

  const std::vector<Message> messages = BuildBatch(batch_messages);
  std::string row_encoded, columnar_encoded;
  msg::remote::PutWireMessageList(&row_encoded, messages);
  msg::remote::PutColumnarMessageList(&columnar_encoded, messages);
  printf("bench_wire_decode: %lld msgs/batch x %lld iters\n",
         static_cast<long long>(batch_messages),
         static_cast<long long>(iters));
  printf("  encoded bytes: row %zu, columnar %zu (%.1f%%)\n",
         row_encoded.size(), columnar_encoded.size(),
         100.0 * static_cast<double>(columnar_encoded.size()) /
             static_cast<double>(row_encoded.size()));

  uint64_t sink = 0;  // Defeats dead-code elimination.

  // (a) Row-at-a-time decode into owned Messages.
  const Micros row_start = clock->NowMicros();
  for (int64_t it = 0; it < iters; ++it) {
    Slice in(row_encoded);
    std::vector<Message> decoded;
    if (!msg::remote::GetWireMessageList(&in, &decoded)) return 1;
    sink += decoded.back().offset + decoded.front().payload.size();
  }
  const double row_eps = EventsPerSec(total, clock->NowMicros() - row_start);

  // (b) Row encoding, zero-copy views.
  MessageBatch batch;
  const Micros view_start = clock->NowMicros();
  for (int64_t it = 0; it < iters; ++it) {
    Slice in(row_encoded);
    batch.Clear();
    if (!msg::remote::GetWireMessageListViews(&in, &batch)) return 1;
    sink += batch[batch.size() - 1].offset + batch[0].payload.size();
  }
  const double view_eps =
      EventsPerSec(total, clock->NowMicros() - view_start);

  // (c) Columnar encoding, zero-copy views.
  const Micros col_start = clock->NowMicros();
  for (int64_t it = 0; it < iters; ++it) {
    Slice in(columnar_encoded);
    batch.Clear();
    if (!msg::remote::GetColumnarMessageList(&in, &batch)) return 1;
    sink += batch[batch.size() - 1].offset + batch[0].payload.size();
  }
  const double col_eps = EventsPerSec(total, clock->NowMicros() - col_start);

  // (d) Pooled end-to-end: lease a buffer, land the wire bytes in it,
  // decode columnar out of it — the shape of ReadFramePooled + poll.
  BufferPool pool(4);
  uint64_t steady_misses = 0;
  const Micros pooled_start = clock->NowMicros();
  for (int64_t it = 0; it < iters; ++it) {
    // Release the previous iteration's buffer first, as a real consumer
    // does when it finishes a batch — otherwise nothing ever recycles.
    batch.Clear();
    BufferRef buffer = pool.Acquire(columnar_encoded.size());
    std::memcpy(buffer->data(), columnar_encoded.data(),
                columnar_encoded.size());
    Slice in(buffer->data(), columnar_encoded.size());
    if (!msg::remote::GetColumnarMessageList(&in, &batch)) return 1;
    batch.BorrowBuffer(buffer);
    sink += batch[batch.size() - 1].offset;
    if (it == iters / 2) steady_misses = pool.misses();
  }
  const double pooled_eps =
      EventsPerSec(total, clock->NowMicros() - pooled_start);
  batch.Clear();  // Returns the last buffer before the pool dies.
  const uint64_t late_misses = pool.misses() - steady_misses;

  const double ns_per_event = [](double eps) {
    return eps > 0 ? 1e9 / eps : 0;
  }(col_eps);
  printf("  row-copy  %12.0f ev/s\n", row_eps);
  printf("  row-view  %12.0f ev/s   (%.2fx row)\n", view_eps,
         view_eps / row_eps);
  printf("  columnar  %12.0f ev/s   (%.2fx row, %.1f ns/event)\n", col_eps,
         col_eps / row_eps, ns_per_event);
  printf("  pooled    %12.0f ev/s   (%.2fx row, %llu second-half misses)\n",
         pooled_eps, pooled_eps / row_eps,
         static_cast<unsigned long long>(late_misses));
  printf("  sink %llu\n", static_cast<unsigned long long>(sink));

  bench::JsonResult json("bench_wire_decode");
  json.Add("batch_messages", batch_messages)
      .Add("iters", iters)
      .Add("row_bytes", static_cast<uint64_t>(row_encoded.size()))
      .Add("columnar_bytes", static_cast<uint64_t>(columnar_encoded.size()))
      .Add("row_copy_events_per_sec", row_eps)
      .Add("row_view_events_per_sec", view_eps)
      .Add("columnar_events_per_sec", col_eps)
      .Add("pooled_events_per_sec", pooled_eps)
      .Add("speedup_view_vs_row", view_eps / row_eps)
      .Add("speedup_columnar_vs_row", col_eps / row_eps)
      .Add("pool_hits", pool.hits())
      .Add("pool_misses", pool.misses())
      .Add("pool_steady_state_misses", late_misses);
  json.Write();

  // The tentpole's contract: zero-copy decode at >= 2x the row path and
  // no steady-state pool misses. Fail loudly so CI smoke catches decay.
  if (col_eps < 2.0 * row_eps) {
    fprintf(stderr, "FAIL: columnar decode %.2fx row (< 2x)\n",
            col_eps / row_eps);
    return 1;
  }
  if (late_misses != 0) {
    fprintf(stderr, "FAIL: %llu pool misses after warmup\n",
            static_cast<unsigned long long>(late_misses));
    return 1;
  }
  return 0;
}
