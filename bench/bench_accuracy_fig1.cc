// Figure 1 (paper §1/§2.1) as a measurable experiment: how often does a
#include <algorithm>
// hopping window miss a fraud burst that a real-time sliding window
// catches? We generate random 5-event bursts inside a 5-minute span and
// evaluate the rule "count(last 5 min) > 4" under both windowing
// strategies, sweeping the hop size. The paper's argument: the anomaly
// is structural and no hop size fixes it.
#include <cstdio>

#include "baseline/hopping_engine.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/logging.h"
#include "common/random.h"
#include "storage/db.h"

using namespace railgun;
using namespace railgun::bench;

namespace {

// Returns true when the hopping engine fires the rule on the last event
// of the burst.
bool HoppingCatches(const std::vector<Micros>& burst, Micros hop) {
  (void)storage::DestroyDB("/tmp/railgun-bench-fig1");
  std::unique_ptr<storage::DB> db;
  RAILGUN_CHECK_OK(storage::DB::Open({}, "/tmp/railgun-bench-fig1", &db));
  baseline::HoppingOptions options;
  options.window_size = 5 * kMicrosPerMinute;
  options.hop = hop;
  baseline::HoppingEngine engine(options, db.get());
  baseline::BaselineResult result;
  for (Micros ts : burst) {
    RAILGUN_CHECK_OK(engine.ProcessEvent("card", ts, 1.0, &result));
  }
  return result.count > 4;
}

}  // namespace

int main() {
  const int trials = static_cast<int>(EnvInt("RAILGUN_BENCH_TRIALS", 200));
  printf("=== Figure 1: sliding-window accuracy vs hopping windows ===\n");
  printf("rule: count(card, last 5 min) > 4; %d random 5-event bursts, "
         "each within a 4.5-minute span\n\n", trials);

  // Adversarial bursts (paper §2.1: fraudsters exploit timing): the
  // 5 events span 295-300 s, i.e. just inside the 5-minute window. A hop
  // of size h catches the burst only if a hop boundary happens to fall
  // in the (300s - span) slack, so the expected catch rate is
  // min(1, slack/h) — shrinking the hop helps but never reaches 100%.
  Random64 rng(7);
  std::vector<std::vector<Micros>> bursts;
  for (int t = 0; t < trials; ++t) {
    std::vector<Micros> burst;
    const Micros start =
        static_cast<Micros>(rng.Uniform(3600ull * 1000000));  // In 1 hour.
    const Micros span =
        295 * kMicrosPerSecond +
        static_cast<Micros>(rng.Uniform(5ull * kMicrosPerSecond));
    burst.push_back(start);
    std::vector<Micros> middle;
    for (int i = 0; i < 3; ++i) {
      middle.push_back(start + static_cast<Micros>(
                                   rng.Uniform(static_cast<uint64_t>(span))));
    }
    std::sort(middle.begin(), middle.end());
    for (Micros ts : middle) burst.push_back(ts);
    burst.push_back(start + span);
    bursts.push_back(std::move(burst));
  }

  // A true sliding window catches every burst by construction.
  printf("%-18s %14s %16s\n", "strategy", "bursts caught", "catch rate");
  printf("%-18s %10d/%-4d %15.1f%%\n", "sliding (exact)", trials, trials,
         100.0);

  const struct {
    const char* label;
    Micros hop;
  } hops[] = {
      {"hop=1min", kMicrosPerMinute},
      {"hop=30s", 30 * kMicrosPerSecond},
      {"hop=10s", 10 * kMicrosPerSecond},
      {"hop=1s", kMicrosPerSecond},
  };
  JsonResult json("bench_accuracy_fig1");
  json.Add("trials", trials).Add("sliding_catch_rate", 100.0);
  for (const auto& config : hops) {
    int caught = 0;
    for (const auto& burst : bursts) {
      if (HoppingCatches(burst, config.hop)) ++caught;
    }
    printf("%-18s %10d/%-4d %15.1f%%\n", config.label, caught, trials,
           100.0 * caught / trials);
    fflush(stdout);
    json.Add(std::string(config.label) + "_catch_rate",
             100.0 * caught / trials);
  }
  json.Write();

  printf("\nShape check vs paper: hopping misses bursts at every hop\n"
         "size (smaller hops help but never reach 100%% — Figure 1's\n"
         "anomaly 'can happen regardless of the hop size').\n");
  return 0;
}
