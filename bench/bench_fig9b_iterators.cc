// Figure 9(b) (paper §5.2): Railgun latency while the number of live
// reservoir iterators grows from 20 to 240 against a chunk cache of 220
// elements (the paper's configuration). Iterators are forced apart by
// giving every window a distinct size and delay (misalignment), so no
// iterator sharing applies: iterators = 2 x windows.
//
// Expected shape: latency is flat while iterators < cache capacity and
// degrades once the iterator count approaches it (cache misses put
// synchronous chunk loads on the critical path).
//
// Knobs: RAILGUN_BENCH_EVENTS (default 400), RAILGUN_BENCH_RATE
// (default 25 — kept low so the plan fan-out of 120 windows does not
// saturate a core), RAILGUN_BENCH_SEED_EVENTS (default 20000).
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/logging.h"
#include "engine/cluster.h"
#include "workload/generator.h"
#include "workload/injector.h"

using namespace railgun;
using namespace railgun::bench;

namespace {

struct RunResult {
  LatencyHistogram latencies;
  uint64_t sync_loads = 0;
};

RunResult RunIterators(int num_windows) {
  engine::ClusterOptions options;
  options.num_nodes = 1;
  options.node.num_processor_units = 1;
  options.node.unit.task.reservoir.chunk_target_bytes = 4 * 1024;
  options.node.unit.task.reservoir.cache_capacity = 220;  // Paper value.
  // The state store absorbs (windows x metrics) read-modify-writes per
  // event; size it so compaction stays off the measured path.
  options.node.unit.task.db.write_buffer_size = 64 * 1024 * 1024;
  options.node.unit.task.db.compression = storage::kNoCompression;
  options.bus.delivery_delay = 200;
  options.base_dir = "/tmp/railgun-bench-fig9b";
  engine::Cluster cluster(options);
  RAILGUN_CHECK_OK(cluster.Start());

  workload::FraudStreamConfig config;
  config.num_cards = 5000;
  // This experiment stresses iterators and the chunk cache, not payload
  // width: a narrow schema keeps chunk decode off the measured path.
  config.total_fields = 8;
  workload::FraudStreamGenerator generator(config);

  engine::StreamDef stream;
  stream.name = "payments";
  stream.fields = generator.schema_fields();
  stream.partitioners = {"cardId"};
  stream.partitions_per_topic = 1;  // One task => one reservoir.
  Micros max_span = 0;
  for (int i = 0; i < num_windows; ++i) {
    // Distinct size and delay per window => fully misaligned edges.
    const int size_seconds = 300 + i * 30;
    const int delay_seconds = 1 + i * 7;
    max_span = std::max(
        max_span, (size_seconds + delay_seconds) * kMicrosPerSecond);
    char sql[200];
    snprintf(sql, sizeof(sql),
             "SELECT sum(amount), avg(amount), count(*) FROM payments "
             "GROUP BY cardId OVER sliding %d seconds delayed by %d seconds",
             size_seconds, delay_seconds);
    stream.queries.push_back(query::ParseQuery(sql).value());
  }
  RAILGUN_CHECK_OK(cluster.RegisterStream(stream));

  // Pre-seed history across the largest window span.
  const uint64_t seed_events =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_SEED_EVENTS", 20000));
  const Micros now = MonotonicClock::Default()->NowMicros();
  const Micros step = max_span / static_cast<Micros>(seed_events);
  for (uint64_t i = 0; i < seed_events; ++i) {
    // Fire-and-forget seeding: shed events are part of the modelled load.
    (void)cluster.node(0)->frontend()->SubmitNoReply(
        "payments",
        generator.Next(now - max_span + static_cast<Micros>(i) * step));
  }
  cluster.WaitForQuiescence(120 * kMicrosPerSecond);

  // Take a checkpoint at the seed boundary (the paper starts these runs
  // "after a data checkpoint load") so no state-store flush lands inside
  // the measured window, and snapshot the sync-load counter so the
  // report reflects only the measured phase.
  uint64_t sync_before = 0;
  {
    engine::TaskProcessor* proc = cluster.node(0)->unit(0)->FindProcessor(
        {"payments.cardId", 0});
    if (proc != nullptr) {
      RAILGUN_CHECK_OK(proc->Checkpoint());
      sync_before = proc->reservoir()->stats().sync_chunk_loads;
    }
  }

  workload::InjectorOptions injector_options;
  injector_options.events_per_second = EnvDouble("RAILGUN_BENCH_RATE", 25);
  injector_options.total_events =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_EVENTS", 400));
  injector_options.warmup_events = injector_options.total_events / 8;
  workload::OpenLoopInjector injector(injector_options,
                                      MonotonicClock::Default());
  workload::InjectorReport report;
  RAILGUN_CHECK_OK(injector.Run(
      &generator,
      [&](const reservoir::Event& event, std::function<void()> done) {
        return cluster.node(0)->frontend()->Submit(
            "payments", event,
            [done = std::move(done)](
                Status, const std::vector<engine::MetricReply>&) { done(); });
      },
      &report));

  RunResult result;
  result.latencies = report.latencies;
  engine::TaskProcessor* proc = cluster.node(0)->unit(0)->FindProcessor(
      {"payments.cardId", 0});
  if (proc != nullptr) {
    result.sync_loads =
        proc->reservoir()->stats().sync_chunk_loads - sync_before;
  }
  cluster.Stop();
  return result;
}

}  // namespace

int main() {
  printf("=== Figure 9(b): Railgun latency vs number of iterators ===\n");
  printf("3 metrics per misaligned window, chunk cache = 220 elements, "
         "%g ev/s (latencies in ms)\n\n",
         EnvDouble("RAILGUN_BENCH_RATE", 25));
  PrintPercentileHeader();

  // The paper's grid: 20, 40, 60, 110, 210, 240 iterators
  // (= 10, 20, 30, 55, 105, 120 misaligned windows).
  const int window_counts[] = {10, 20, 30, 55, 105, 120};
  JsonResult json("bench_fig9b_iterators");
  for (int windows : window_counts) {
    const RunResult result = RunIterators(windows);
    char label[64];
    snprintf(label, sizeof(label), "%d iterators (sync=%llu)", windows * 2,
             static_cast<unsigned long long>(result.sync_loads));
    PrintPercentileRow(label, result.latencies);
    const std::string prefix =
        "iterators_" + std::to_string(windows * 2);
    json.Add(prefix + "_sync_loads", result.sync_loads)
        .AddLatency(prefix, result.latencies);
  }
  json.Write();

  printf("\nShape check vs paper: flat latency while iterators fit the\n"
         "220-chunk cache; degradation (and a jump in synchronous chunk\n"
         "loads) once 240 iterators exceed it.\n");
  return 0;
}
