// Microbenchmarks (google-benchmark) for the event reservoir's component
// costs: append, chunk serialization round trip, compression codec,
// event codec and iterator scans.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_main.h"
#include "common/compression.h"
#include "common/env.h"
#include "common/logging.h"
#include "reservoir/reservoir.h"
#include "workload/generator.h"

using namespace railgun;

namespace {

workload::FraudStreamGenerator* SharedGenerator() {
  static auto* generator = [] {
    workload::FraudStreamConfig config;
    config.total_fields = 103;
    return new workload::FraudStreamGenerator(config);
  }();
  return generator;
}

void BM_ReservoirAppend(benchmark::State& state) {
  const std::string dir = "/tmp/railgun-bench-micro-append";
  (void)Env::Default()->RemoveDirRecursive(dir);
  reservoir::ReservoirOptions options;
  options.chunk_target_bytes = static_cast<size_t>(state.range(0));
  options.schema_fields = SharedGenerator()->schema_fields();
  reservoir::Reservoir res(options, dir);
  if (!res.Open().ok()) {
    state.SkipWithError("open failed");
    return;
  }
  Micros ts = 0;
  for (auto _ : state) {
    RAILGUN_CHECK_OK(res.Append(SharedGenerator()->Next(ts)));
    ts += 2000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservoirAppend)->Arg(16 * 1024)->Arg(64 * 1024)
    ->Arg(256 * 1024);

void BM_ChunkSerializeRoundTrip(benchmark::State& state) {
  const reservoir::Schema schema(1, SharedGenerator()->schema_fields());
  reservoir::Chunk chunk(1, 1);
  for (int i = 0; i < state.range(0); ++i) {
    chunk.Add(SharedGenerator()->Next(i * 1000));
  }
  chunk.Close();
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string payload;
    chunk.SerializeTo(schema, &payload);
    std::unique_ptr<reservoir::Chunk> decoded;
    benchmark::DoNotOptimize(
        reservoir::Chunk::Deserialize(1, schema, payload, &decoded));
    bytes += static_cast<int64_t>(payload.size());
  }
  state.SetBytesProcessed(bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChunkSerializeRoundTrip)->Arg(64)->Arg(512);

void BM_LzCompress(benchmark::State& state) {
  // Structured, realistic payload (serialized events).
  const reservoir::Schema schema(1, SharedGenerator()->schema_fields());
  const reservoir::EventCodec codec(&schema);
  std::string input;
  for (int i = 0; i < 200; ++i) {
    codec.Encode(SharedGenerator()->Next(i * 1000), 0, &input);
  }
  for (auto _ : state) {
    std::string compressed;
    LzCompress(input, &compressed);
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_LzCompress);

void BM_LzUncompress(benchmark::State& state) {
  const reservoir::Schema schema(1, SharedGenerator()->schema_fields());
  const reservoir::EventCodec codec(&schema);
  std::string input;
  for (int i = 0; i < 200; ++i) {
    codec.Encode(SharedGenerator()->Next(i * 1000), 0, &input);
  }
  std::string compressed;
  LzCompress(input, &compressed);
  for (auto _ : state) {
    std::string output;
    benchmark::DoNotOptimize(LzUncompress(compressed, &output));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_LzUncompress);

void BM_EventCodecEncode(benchmark::State& state) {
  const reservoir::Schema schema(1, SharedGenerator()->schema_fields());
  const reservoir::EventCodec codec(&schema);
  const reservoir::Event event = SharedGenerator()->Next(12345);
  for (auto _ : state) {
    std::string buf;
    codec.Encode(event, 0, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCodecEncode);

void BM_ReservoirScan(benchmark::State& state) {
  const std::string dir = "/tmp/railgun-bench-micro-scan";
  static bool seeded = false;
  static reservoir::Reservoir* res = nullptr;
  if (!seeded) {
    (void)Env::Default()->RemoveDirRecursive(dir);
    reservoir::ReservoirOptions options;
    options.chunk_target_bytes = 64 * 1024;
    options.cache_capacity = 64;
    options.schema_fields = SharedGenerator()->schema_fields();
    res = new reservoir::Reservoir(options, dir);
    if (!res->Open().ok()) {
      state.SkipWithError("open failed");
      return;
    }
    for (int i = 0; i < 50000; ++i) {
      RAILGUN_CHECK_OK(res->Append(SharedGenerator()->Next(i * 1000)));
    }
    RAILGUN_CHECK_OK(res->Sync());
    seeded = true;
  }
  for (auto _ : state) {
    auto iter = res->NewIterator();
    int64_t count = 0;
    while (!iter->AtEnd()) {
      ++count;
      iter->Advance();
    }
    benchmark::DoNotOptimize(count);
    state.SetItemsProcessed(state.items_processed() + count);
  }
}
BENCHMARK(BM_ReservoirScan)->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

}  // namespace

RAILGUN_BENCH_MICRO_MAIN("bench_micro_reservoir")
