// Figure 10 (paper §5.3): horizontal scaling. The cluster grows from 1
// to N nodes while the injected load grows proportionally; the paper
// reports average throughput per node with p95 / p99.9 latencies,
// showing near-linear scaling up to 1M ev/s on 50 nodes.
//
// Our substrate is one process on a shared host, so absolute rates are
// smaller; the shape to check is that per-node throughput stays roughly
// flat (near-linear scaling) while p99.9 stays bounded.
//
// Knobs: RAILGUN_BENCH_NODES (comma list, default "1,2,3,4"),
// RAILGUN_BENCH_NODE_RATE (per-node ev/s, default 1000),
// RAILGUN_BENCH_EVENTS_PER_NODE (default 3000),
// RAILGUN_BENCH_UNITS (processor units per node, default 2),
// RAILGUN_BENCH_REPLICATION (default 1; the paper used 3).
#include <thread>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/logging.h"
#include "engine/cluster.h"
#include "workload/generator.h"
#include "workload/injector.h"

using namespace railgun;
using namespace railgun::bench;

namespace {

struct ScalingPoint {
  int nodes;
  double target_rate;
  double achieved_rate;
  double per_node_rate;
  int64_t p95_us;
  int64_t p999_us;
  uint64_t completed;
  uint64_t timed_out;
};

ScalingPoint RunNodes(int nodes) {
  engine::ClusterOptions options;
  options.num_nodes = nodes;
  options.replication_factor =
      static_cast<int>(EnvInt("RAILGUN_BENCH_REPLICATION", 1));
  options.node.num_processor_units =
      static_cast<int>(EnvInt("RAILGUN_BENCH_UNITS", 2));
  options.node.unit.task.reservoir.chunk_target_bytes = 64 * 1024;
  options.bus.delivery_delay = 200;
  options.base_dir = "/tmp/railgun-bench-fig10";
  engine::Cluster cluster(options);
  RAILGUN_CHECK_OK(cluster.Start());

  workload::FraudStreamConfig config;
  config.num_cards = 100000;  // Real-world-ish dictionary cardinality.
  engine::StreamDef stream;
  {
    workload::FraudStreamGenerator schema_source(config);
    stream.name = "payments";
    stream.fields = schema_source.schema_fields();
    stream.partitioners = {"cardId"};
    // Paper: partitions = processor units x nodes.
    stream.partitions_per_topic =
        options.node.num_processor_units * nodes;
    stream.queries = {
        query::ParseQuery("SELECT sum(amount), avg(amount), count(*) "
                          "FROM payments GROUP BY cardId "
                          "OVER sliding 5 minutes")
            .value()};
  }
  RAILGUN_CHECK_OK(cluster.RegisterStream(stream));

  const double per_node_rate = EnvDouble("RAILGUN_BENCH_NODE_RATE", 1000);
  const uint64_t events_per_node =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_EVENTS_PER_NODE", 3000));

  // One injector thread per node (the paper scales injectors with the
  // cluster).
  std::vector<std::thread> injectors;
  std::vector<workload::InjectorReport> reports(
      static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    injectors.emplace_back([&, n] {
      workload::FraudStreamConfig injector_config = config;
      injector_config.seed = 1000 + static_cast<uint64_t>(n);
      workload::FraudStreamGenerator generator(injector_config);
      workload::InjectorOptions injector_options;
      injector_options.events_per_second = per_node_rate;
      injector_options.total_events = events_per_node;
      injector_options.warmup_events = events_per_node / 8;
      workload::OpenLoopInjector injector(injector_options,
                                          MonotonicClock::Default());
      RAILGUN_CHECK_OK(injector.Run(
          &generator,
          [&, n](const reservoir::Event& event, std::function<void()> done) {
            return cluster.node(n)->frontend()->Submit(
                "payments", event,
                [done = std::move(done)](
                    Status, const std::vector<engine::MetricReply>&) {
                  done();
                });
          },
          &reports[static_cast<size_t>(n)]));
    });
  }
  for (auto& t : injectors) t.join();
  cluster.Stop();

  ScalingPoint point;
  point.nodes = nodes;
  point.target_rate = per_node_rate * nodes;
  LatencyHistogram merged;
  double achieved = 0;
  point.completed = 0;
  point.timed_out = 0;
  for (const auto& report : reports) {
    merged.Merge(report.latencies);
    achieved += report.achieved_rate;
    point.completed += report.completed;
    point.timed_out += report.timed_out;
  }
  point.achieved_rate = achieved;
  point.per_node_rate = achieved / nodes;
  point.p95_us = merged.ValueAtPercentile(95);
  point.p999_us = merged.ValueAtPercentile(99.9);
  return point;
}

}  // namespace

int main() {
  printf("=== Figure 10: scaling Railgun nodes ===\n");
  printf("sum/avg/count by card over 5-min sliding window; per-node "
         "target %g ev/s, %lld units/node, replication %lld\n\n",
         EnvDouble("RAILGUN_BENCH_NODE_RATE", 1000),
         static_cast<long long>(EnvInt("RAILGUN_BENCH_UNITS", 2)),
         static_cast<long long>(EnvInt("RAILGUN_BENCH_REPLICATION", 1)));
  printf("%-7s %12s %12s %14s %10s %10s %10s\n", "nodes", "target ev/s",
         "achieved", "per-node", "p95 ms", "p99.9 ms", "timeouts");

  std::string node_list = "1,2,3,4";
  if (const char* env = getenv("RAILGUN_BENCH_NODES")) node_list = env;
  JsonResult json("bench_fig10_scaling");
  size_t pos = 0;
  while (pos < node_list.size()) {
    size_t comma = node_list.find(',', pos);
    if (comma == std::string::npos) comma = node_list.size();
    const int nodes = atoi(node_list.substr(pos, comma - pos).c_str());
    pos = comma + 1;
    if (nodes <= 0) continue;

    const ScalingPoint point = RunNodes(nodes);
    printf("%-7d %12.0f %12.0f %14.0f %10.2f %10.2f %10llu\n", point.nodes,
           point.target_rate, point.achieved_rate, point.per_node_rate,
           point.p95_us / 1000.0, point.p999_us / 1000.0,
           static_cast<unsigned long long>(point.timed_out));
    fflush(stdout);
    const std::string prefix = "nodes_" + std::to_string(point.nodes);
    json.Add(prefix + "_achieved_eps", point.achieved_rate)
        .Add(prefix + "_per_node_eps", point.per_node_rate)
        .Add(prefix + "_p95_us", static_cast<double>(point.p95_us))
        .Add(prefix + "_p999_us", static_cast<double>(point.p999_us))
        .Add(prefix + "_timeouts", point.timed_out);
  }
  json.Write();

  printf("\nShape check vs paper: per-node throughput stays roughly flat\n"
         "as nodes grow (near-linear scaling) and p99.9 stays bounded.\n");
  return 0;
}
