// Live-subscription fan-out: one publisher, N concurrent SUBSCRIBE
// tails on the same stream. Measures aggregate delivered records/sec
// and per-record push latency (submit -> record handed to the
// subscriber), then adds a deliberately slow subscriber to show the
// backpressure contract: its bounded queue sheds the oldest records
// (typed, counted) while the fast tails stay current.
//
// A second phase guards the hot path: batched publish throughput with
// no pipeline registered anywhere vs the same workload with a pipeline
// registered on a *different* stream. Registration elsewhere must not
// tax this stream's submit path — perf_smoke.py holds the pair to a
// hard <= 1% delta on the process-CPU-time rate (in-binary and
// immune to co-tenant load, so runner speed cancels out).
//
// Knobs: RAILGUN_BENCH_EVENTS (default 20000), RAILGUN_BENCH_SUBS
// (default 4), RAILGUN_BENCH_BATCH (default 256),
// RAILGUN_BENCH_DELAY_US (default 200).
#include <cinttypes>
#include <ctime>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/client.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"

using namespace railgun;
using namespace railgun::bench;

namespace {

api::Row MakeRow(uint64_t i) {
  return api::Row()
      .At(MonotonicClock::Default()->NowMicros())
      .Set("cardId", "card" + std::to_string(i % 1024))
      .Set("amount", 1.0 + static_cast<double>(i % 97));
}

std::unique_ptr<api::Client> StartClient(const char* dir) {
  api::ClientOptions options;
  options.num_nodes = 1;
  options.processor_units_per_node = 2;
  // Pid-suffixed so repeated runs never inherit a previous run's LSM
  // data: accumulated state shifts publish rates enough to matter to
  // the 1% overhead gate below.
  options.base_dir = std::string("/tmp/railgun-bench-fanout-") + dir + "-" +
                     std::to_string(getpid());
  options.engine.bus.delivery_delay = EnvInt("RAILGUN_BENCH_DELAY_US", 200);
  // Nothing here consumes __railgun.internals; parking the publisher
  // keeps its periodic CPU burst out of the 1% overhead gate's windows.
  options.engine.introspect.period = kMicrosPerSecond * 3600;
  auto client = std::make_unique<api::Client>(options);
  if (!client->Start().ok()) return nullptr;
  if (!client
           ->Execute("CREATE STREAM payments (cardId STRING, amount DOUBLE) "
                     "PARTITION BY cardId PARTITIONS 4")
           .ok()) {
    return nullptr;
  }
  return client;
}

void PublishAll(api::Client* client, const std::string& stream,
                uint64_t events, uint64_t batch_size) {
  for (uint64_t base = 0; base < events; base += batch_size) {
    const uint64_t n = std::min(batch_size, events - base);
    std::vector<api::Row> rows;
    rows.reserve(n);
    for (uint64_t i = 0; i < n; ++i) rows.push_back(MakeRow(base + i));
    for (auto& future : client->SubmitBatch(stream, rows)) {
      (void)future.Get();
    }
  }
}

// Whole-process CPU time: the overhead gate divides events by CPU
// micros burned, not wall micros elapsed, so a co-tenant stealing
// cycles mid-run stretches the wall clock without moving the metric.
Micros CpuNowMicros() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<Micros>(ts.tv_sec) * kMicrosPerSecond +
         ts.tv_nsec / 1000;
}

struct PublishRates {
  double wall = 0;  // events per wall-clock second
  double cpu = 0;   // events per process-CPU second
};

struct PublishCost {
  Micros wall = 0;  // wall-clock micros spent publishing
  Micros cpu = 0;   // process-CPU micros spent publishing
  PublishCost& operator+=(const PublishCost& other) {
    wall += other.wall;
    cpu += other.cpu;
    return *this;
  }
};

PublishCost PublishTimed(api::Client* client, const std::string& stream,
                         uint64_t events, uint64_t batch_size) {
  const Micros start = MonotonicClock::Default()->NowMicros();
  const Micros cpu_start = CpuNowMicros();
  PublishAll(client, stream, events, batch_size);
  PublishCost cost;
  cost.cpu = CpuNowMicros() - cpu_start;
  cost.wall = MonotonicClock::Default()->NowMicros() - start;
  return cost;
}

}  // namespace

int main() {
  const uint64_t events =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_EVENTS", 20000));
  const uint64_t batch_size =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_BATCH", 256));
  const int subs = static_cast<int>(EnvInt("RAILGUN_BENCH_SUBS", 4));

  printf("=== Subscribe fan-out: 1 publisher -> %d subscribers ===\n",
         subs);
  printf("%" PRIu64 " events, batch=%" PRIu64
         ", 1 node x 2 units, 4 partitions, %" PRId64 " us broker hop\n\n",
         events, batch_size, EnvInt("RAILGUN_BENCH_DELAY_US", 200));

  auto client = StartClient("fanout");
  if (client == nullptr) return 1;

  // N fast tails plus one deliberately slow one, attached before the
  // flood so every record is in scope for delivery.
  std::vector<std::unique_ptr<api::Subscription>> tails;
  for (int i = 0; i < subs; ++i) {
    auto sub = client->Subscribe("SUBSCRIBE SELECT * FROM payments");
    if (!sub.ok()) {
      fprintf(stderr, "subscribe: %s\n", sub.status().ToString().c_str());
      return 1;
    }
    tails.push_back(std::move(sub).value());
  }
  auto slow_or = client->Subscribe("SUBSCRIBE SELECT * FROM payments");
  if (!slow_or.ok()) return 1;
  std::unique_ptr<api::Subscription> slow = std::move(slow_or).value();

  std::atomic<uint64_t> delivered{0};
  LatencyHistogram push_latency;
  Mutex latency_mu{kRankTestInner};  // Leaf: held only around Record.
  std::vector<std::thread> drainers;
  std::atomic<bool> publishing_done{false};
  for (auto& tail : tails) {
    drainers.emplace_back([&, sub = tail.get()] {
      std::vector<ops::SubRecord> records;
      uint64_t seen = 0;
      while (seen < events) {
        if (!sub->Next(&records, 100 * kMicrosPerMilli).ok()) break;
        const Micros now = MonotonicClock::Default()->NowMicros();
        for (const auto& record : records) {
          MutexLock lock(&latency_mu);
          push_latency.Record(now - record.timestamp);
        }
        seen += records.size();
        delivered.fetch_add(records.size());
        if (records.empty() && publishing_done.load()) break;
      }
    });
  }
  // The slow tail fetches tiny batches with long pauses: its queue must
  // fill and shed instead of growing without bound.
  std::thread slow_drainer([&] {
    std::vector<ops::SubRecord> records;
    while (!publishing_done.load()) {
      if (!slow->Next(&records, 0).ok()) break;
      MonotonicClock::Default()->SleepMicros(50 * kMicrosPerMilli);
    }
    (void)slow->Next(&records, 0);  // Final fetch refreshes drop stats.
  });

  const Micros start = MonotonicClock::Default()->NowMicros();
  PublishAll(client.get(), "payments", events, batch_size);
  // Drain until every fast tail caught up (bounded by a deadline).
  const Micros deadline =
      MonotonicClock::Default()->NowMicros() + 60 * kMicrosPerSecond;
  while (delivered.load() <
             static_cast<uint64_t>(subs) * events &&
         MonotonicClock::Default()->NowMicros() < deadline) {
    MonotonicClock::Default()->SleepMicros(10 * kMicrosPerMilli);
  }
  publishing_done.store(true);
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  for (auto& drainer : drainers) drainer.join();
  slow_drainer.join();

  const double delivered_per_sec =
      static_cast<double>(delivered.load()) * kMicrosPerSecond / elapsed;
  const uint64_t slow_dropped = slow->dropped_total();
  printf("fan-out:   %12.0f records/s delivered across %d tails\n",
         delivered_per_sec, subs);
  printf("push lat:  p50 %8.3f ms   p99 %8.3f ms\n",
         static_cast<double>(push_latency.ValueAtPercentile(50)) / 1000.0,
         static_cast<double>(push_latency.ValueAtPercentile(99)) / 1000.0);
  printf("slow tail: %" PRIu64 " records shed (bounded queue, typed)\n\n",
         slow_dropped);
  for (auto& tail : tails) (void)tail->Cancel();
  (void)slow->Cancel();
  client->Stop();

  // --- Idle-hook overhead guard -------------------------------------
  // Publish throughput with no pipelines anywhere vs a pipeline
  // registered on a *different* stream of the same cluster, gated at
  // 1% on the CPU-time rate. A 1% budget needs paired sampling: the
  // host's effective speed drifts by whole percents over seconds
  // (frequency scaling, co-tenants), so the two sides are two live
  // minimal clusters — one node, one unit, single-partition streams,
  // zero broker delay — measured in A B B A block order within each
  // round. Adjacent blocks share the same machine-speed epoch, the
  // mirrored order cancels intra-round drift, and dividing equal
  // per-side event totals by the SUMMED cost keeps a flush or
  // compaction burst (real work that lands in *some* block) from
  // deciding a per-block order statistic. Residual noise still leaves
  // rare >1% excursions, so a breached attempt re-runs (up to 3): a
  // genuine hook regression breaches every attempt, a scheduler spike
  // does not. RAILGUN_BENCH_CONTROL=1 skips the registration, turning
  // the run into a null experiment that measures the harness bias.
  const auto run_guard = [&](int attempt, PublishRates* plain_out,
                             PublishRates* foreign_out) -> bool {
    const int kGuardRounds = 20;
    std::unique_ptr<api::Client> sides[2];
    for (int i = 0; i < 2; ++i) {
      api::ClientOptions options;
      options.num_nodes = 1;
      options.processor_units_per_node = 1;
      options.base_dir = "/tmp/railgun-bench-fanout-guard-" +
                         std::to_string(getpid()) + "-" +
                         std::to_string(attempt) + "-" + std::to_string(i);
      options.engine.bus.delivery_delay = 0;
      options.engine.introspect.period = kMicrosPerSecond * 3600;
      sides[i] = std::make_unique<api::Client>(options);
      if (!sides[i]->Start().ok()) return false;
      for (const char* ddl :
           {"CREATE STREAM guarded (cardId STRING, amount DOUBLE) "
            "PARTITION BY cardId PARTITIONS 1",
            "CREATE STREAM audit (cardId STRING, amount DOUBLE) "
            "PARTITION BY cardId PARTITIONS 1"}) {
        if (!sides[i]->Execute(ddl).ok()) return false;
      }
    }
    if (EnvInt("RAILGUN_BENCH_CONTROL", 0) == 0 &&
        !sides[1]
             ->Execute("ADD PIPELINE idle ON audit | filter(amount < 0)")
             .ok()) {
      return false;
    }
    // Mirrored warm-up halves plus two unmeasured burn-in rounds: the
    // side warmed last would otherwise enter round 0 with hot caches
    // and bank an unearned advantage.
    for (const int side : {0, 1, 1, 0}) {
      PublishAll(sides[side].get(), "guarded", events / 4, batch_size);
    }
    PublishCost plain_cost, foreign_cost;
    for (int round = -2; round < kGuardRounds; ++round) {
      // A B B A within the round; swapped every other round so neither
      // side always owns the outer (or inner) slots.
      const int first = (round & 1) == 0 ? 0 : 1;
      for (const int side : {first, 1 - first, 1 - first, first}) {
        const PublishCost cost =
            PublishTimed(sides[side].get(), "guarded", events, batch_size);
        if (round < 0) continue;  // Burn-in: run the blocks, keep nothing.
        (side == 0 ? plain_cost : foreign_cost) += cost;
      }
    }
    sides[0]->Stop();
    sides[1]->Stop();
    const double side_events =
        static_cast<double>(events) * 2 * kGuardRounds * kMicrosPerSecond;
    plain_out->wall = side_events / plain_cost.wall;
    plain_out->cpu = side_events / plain_cost.cpu;
    foreign_out->wall = side_events / foreign_cost.wall;
    foreign_out->cpu = side_events / foreign_cost.cpu;
    return true;
  };

  PublishRates plain, foreign;
  double overhead = 1.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    PublishRates p, f;
    if (!run_guard(attempt, &p, &f)) return 1;
    const double measured = 1.0 - f.cpu / p.cpu;
    printf("guard attempt %d: plain %9.0f ev/s cpu   foreign %9.0f ev/s "
           "cpu (overhead %+.2f%%)\n",
           attempt, p.cpu, f.cpu, measured * 100.0);
    if (measured < overhead) {
      overhead = measured;
      plain = p;
      foreign = f;
    }
    if (overhead <= 0.008) break;  // Comfortably inside the 1% budget.
  }
  printf("publish, no pipeline:      %12.0f ev/s cpu\n", plain.cpu);
  printf("publish, foreign pipeline: %12.0f ev/s cpu (overhead %+.2f%%)\n",
         foreign.cpu, (1.0 - foreign.cpu / plain.cpu) * 100.0);

  JsonResult json("bench_subscribe_fanout");
  json.Add("subscribers", subs)
      .Add("fanout_delivered_events_per_sec", delivered_per_sec)
      .AddLatency("push", push_latency)
      .Add("slow_dropped_total", slow_dropped)
      .Add("fanout_plain_publish_events_per_sec", plain.wall)
      .Add("fanout_foreign_pipeline_publish_events_per_sec", foreign.wall)
      .Add("fanout_plain_publish_cpu_events_per_sec", plain.cpu)
      .Add("fanout_foreign_pipeline_publish_cpu_events_per_sec", foreign.cpu)
      .Write();

  // The slow tail must have shed: an unbounded queue would deliver
  // everything and leak memory instead.
  if (slow_dropped == 0) {
    printf("FAIL: slow subscriber queue never shed a record\n");
    return 1;
  }
  return 0;
}
