// Overload / graceful-degradation proof for the admission-control +
// self-instrumentation subsystem:
//
//   1. calibrate sustainable capacity with a closed loop (no shedding);
//   2. offer a multiple of it (default 2x) open-loop and show the
//      engine degrades gracefully: goodput plateaus near capacity,
//      accepted-request latency stays bounded by the request timeout,
//      and every refused request is a *typed* kOverloaded shed carrying
//      a retry-after hint — zero untyped failures;
//   3. flood SubmitNoReply against the client-side token bucket, which
//      fails fast without even reaching the front end;
//   4. prove the dogfooded stats path end to end: ADD METRIC over
//      __railgun.internals through the public api::Client returns live
//      engine series (including the sheds recorded in step 2).
//
// Scale knobs (defaults keep the run to a few seconds; CI smoke uses
// the same defaults):
//   RAILGUN_BENCH_CALIBRATE_MS   closed-loop calibration window (400)
//   RAILGUN_BENCH_OVERLOAD_MS    open-loop overload window (2000)
//   RAILGUN_BENCH_OVERLOAD_FACTOR offered load / capacity (2.0)
//   RAILGUN_BENCH_MAX_PENDING    admission ceiling (4096)
#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "api/client.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/histogram.h"

using namespace railgun;

namespace {

struct Counts {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> timed_out{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> untyped{0};
};

bool g_failed = false;

void Check(bool condition, const char* what) {
  if (!condition) {
    printf("FAILED: %s\n", what);
    g_failed = true;
  }
}

}  // namespace

int main() {
  const int64_t calibrate_ms = bench::EnvInt("RAILGUN_BENCH_CALIBRATE_MS", 400);
  const int64_t overload_ms = bench::EnvInt("RAILGUN_BENCH_OVERLOAD_MS", 2000);
  const double factor = bench::EnvDouble("RAILGUN_BENCH_OVERLOAD_FACTOR", 2.0);
  const int64_t max_pending =
      bench::EnvInt("RAILGUN_BENCH_MAX_PENDING", 4096);
  Clock* clock = MonotonicClock::Default();

  api::ClientOptions options;
  options.base_dir = "/tmp/railgun-bench-overload";
  options.num_nodes = 1;
  options.processor_units_per_node = 2;
  // A tight reply deadline is the latency bound the overload phase must
  // respect: even at 2x capacity no accepted request may outlive it.
  options.request_timeout = 500 * kMicrosPerMilli;
  options.admission.max_pending = static_cast<size_t>(max_pending);
  // Client-side pacing for the SubmitNoReply flood in step 3.
  options.noreply_tokens_per_sec = 20000;
  options.noreply_burst = 2000;
  api::Client client(options);
  if (!client.Start().ok()) {
    printf("FAILED: client start\n");
    return 1;
  }
  Check(client
            .CreateStream("CREATE STREAM load (cardId STRING, amount "
                          "DOUBLE) PARTITION BY cardId PARTITIONS 2")
            .ok(),
        "create stream");
  Check(client
            .Query("ADD METRIC SELECT count(*) FROM load GROUP BY cardId "
                   "OVER sliding 1 minutes")
            .ok(),
        "add metric");

  auto make_row = [](uint64_t i) {
    return api::Row()
        .Set("cardId", "card" + std::to_string(i % 64))
        .Set("amount", 1.0);
  };

  // --- 1. Closed-loop capacity calibration: batched submission keeps
  // the pipeline full (batch window stays under the admission ceiling,
  // so nothing sheds here), measuring the true service rate rather
  // than a per-request round trip. ------------------------------------
  constexpr int kCalibrateThreads = 4;
  constexpr size_t kCalibrateBatch = 256;
  std::atomic<uint64_t> calibrated{0};
  std::atomic<bool> stop{false};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kCalibrateThreads; ++t) {
      threads.emplace_back([&, t] {
        uint64_t i = static_cast<uint64_t>(t) << 32;
        while (!stop.load(std::memory_order_relaxed)) {
          std::vector<api::Row> rows;
          rows.reserve(kCalibrateBatch);
          for (size_t r = 0; r < kCalibrateBatch; ++r) {
            rows.push_back(make_row(i++));
          }
          for (auto& future : client.SubmitBatch("load", rows)) {
            if (future.Get().ok()) {
              calibrated.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    clock->SleepMicros(calibrate_ms * kMicrosPerMilli);
    stop.store(true);
    for (auto& t : threads) t.join();
  }
  const double capacity =
      static_cast<double>(calibrated.load()) * 1000.0 / calibrate_ms;
  printf("calibrated capacity: %.0f events/s\n", capacity);
  Check(capacity > 0, "calibration produced throughput");

  // --- 2. Open-loop overload at factor x capacity. --------------------
  const double offered_eps = capacity * factor;
  Counts counts;
  LatencyHistogram latency;  // Completion latency of accepted requests.
  std::mutex latency_mu;

  // Futures of accepted requests, reaped by a poller so the offered
  // load never blocks on completions (open loop).
  std::mutex reap_mu;
  std::deque<std::pair<api::ResultFuture, Micros>> inflight;
  std::atomic<bool> reaping{true};
  auto classify = [&](const Status& status) {
    if (status.ok()) {
      counts.ok.fetch_add(1, std::memory_order_relaxed);
    } else if (status.IsOverloaded()) {
      counts.shed.fetch_add(1, std::memory_order_relaxed);
    } else if (status.IsUnavailable()) {
      // The front end's own deadline: explained, typed, bounded.
      counts.timed_out.fetch_add(1, std::memory_order_relaxed);
    } else {
      printf("untyped failure: %s\n", status.ToString().c_str());
      counts.untyped.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread reaper([&] {
    std::deque<std::pair<api::ResultFuture, Micros>> pending;
    while (true) {
      {
        std::lock_guard<std::mutex> lock(reap_mu);
        while (!inflight.empty()) {
          pending.push_back(std::move(inflight.front()));
          inflight.pop_front();
        }
      }
      if (pending.empty() && !reaping.load()) break;
      // Completion is in submission order to a good approximation, so
      // draining the head keeps the scan cheap.
      while (!pending.empty() && pending.front().first.ready()) {
        const Micros elapsed = clock->NowMicros() - pending.front().second;
        classify(pending.front().first.Get().status);
        {
          std::lock_guard<std::mutex> lock(latency_mu);
          latency.Record(elapsed);
        }
        pending.pop_front();
      }
      clock->SleepMicros(500);
    }
    // Stragglers: bounded by the request timeout.
    for (auto& [future, start] : pending) {
      const bool done = future.Wait(2 * options.request_timeout);
      classify(done ? future.Get().status
                    : Status::Unavailable("future wait timeout"));
    }
  });

  const Micros overload_start = clock->NowMicros();
  const Micros overload_end = overload_ms * kMicrosPerMilli + overload_start;
  const double per_ms = offered_eps / 1000.0;
  double carry = 0;
  uint64_t offered = 0, seq = 1ull << 48;
  while (clock->NowMicros() < overload_end) {
    carry += per_ms;
    int batch = static_cast<int>(carry);
    carry -= batch;
    for (int i = 0; i < batch; ++i) {
      const Micros start = clock->NowMicros();
      api::ResultFuture future = client.Submit("load", make_row(seq++));
      ++offered;
      if (future.ready()) {
        classify(future.Get().status);  // Synchronous shed/rejection.
      } else {
        std::lock_guard<std::mutex> lock(reap_mu);
        inflight.emplace_back(std::move(future), start);
      }
    }
    clock->SleepMicros(kMicrosPerMilli);
  }
  const double overload_secs =
      static_cast<double>(clock->NowMicros() - overload_start) /
      kMicrosPerSecond;
  reaping.store(false);
  reaper.join();

  const double goodput =
      static_cast<double>(counts.ok.load()) / overload_secs;
  printf("offered %.0f events/s for %.1fs: ok=%llu shed=%llu "
         "timed_out=%llu untyped=%llu\n",
         offered_eps, overload_secs,
         static_cast<unsigned long long>(counts.ok.load()),
         static_cast<unsigned long long>(counts.shed.load()),
         static_cast<unsigned long long>(counts.timed_out.load()),
         static_cast<unsigned long long>(counts.untyped.load()));
  printf("goodput plateau: %.0f events/s (%.0f%% of capacity)\n", goodput,
         capacity > 0 ? 100.0 * goodput / capacity : 0.0);
  bench::PrintPercentileHeader();
  bench::PrintPercentileRow("accepted latency", latency);

  // Graceful degradation, not collapse: the door refuses typed, the
  // admitted work still flows, and nothing fails untyped.
  Check(counts.shed.load() > 0, "overload produced typed sheds");
  Check(counts.untyped.load() == 0, "zero untyped failures");
  Check(goodput > 0.25 * capacity, "goodput plateaus near capacity");
  const int64_t p99 = latency.ValueAtPercentile(99);
  Check(p99 <= options.request_timeout + kMicrosPerSecond,
        "accepted p99 bounded by the request timeout");

  // --- 3. Client-side token bucket fails fast on SubmitNoReply. -------
  uint64_t noreply_ok = 0;
  for (int i = 0; i < 30000; ++i) {
    if (client.SubmitNoReply("load", make_row(1ull << 52 | i)).ok()) {
      ++noreply_ok;
    }
  }
  printf("noreply flood: %llu admitted, %llu paced out client-side\n",
         static_cast<unsigned long long>(noreply_ok),
         static_cast<unsigned long long>(client.noreply_rejected()));
  Check(client.noreply_rejected() > 0, "token bucket paced the flood");
  Check(noreply_ok > 0, "token bucket admitted the sustainable share");

  // --- 4. The engine's own stats, through the public query path. ------
  Check(client
            .Query("ADD METRIC SELECT count(*) FROM __railgun.internals "
                   "GROUP BY node OVER sliding 1 minutes")
            .ok(),
        "add metric over __railgun.internals");
  // Let the publisher tick a couple of times on its 1s period.
  clock->SleepMicros(2200 * kMicrosPerMilli);
  const api::EventResult internals_result = client.SubmitSync(
      "__railgun.internals", api::Row()
                                 .Set("node", "engine")
                                 .Set("metric", "bench.probe")
                                 .Set("kind", "probe")
                                 .Set("value", 1.0));
  double internals_count = 0;
  if (internals_result.ok()) {
    const api::MetricValue* count = internals_result.Find("count(*)");
    if (count != nullptr) internals_count = count->value.ToNumber();
  }
  printf("count(*) over __railgun.internals [node=engine]: %.0f\n",
         internals_count);
  Check(internals_count >= 2,
        "internals metric sees the engine's own published samples");

  // The snapshot API agrees with what the overload did to the engine.
  auto snapshot = client.InternalsSnapshot();
  Check(snapshot.ok(), "internals snapshot");
  double sheds_series = -1;
  if (snapshot.ok()) {
    for (const auto& sample : snapshot.value()) {
      if (sample.metric == "frontend.sheds") sheds_series = sample.value;
    }
  }
  printf("internals frontend.sheds series: %.0f\n", sheds_series);
  Check(sheds_series > 0, "sheds visible in the internals stream");

  bench::JsonResult("bench_overload")
      .Add("capacity_eps", capacity)
      .Add("offered_eps", offered_eps)
      .Add("overload_ms", overload_ms)
      .Add("offered", offered)
      .Add("ok", counts.ok.load())
      .Add("shed", counts.shed.load())
      .Add("timed_out", counts.timed_out.load())
      .Add("untyped", counts.untyped.load())
      .Add("goodput_eps", goodput)
      .AddLatency("accepted", latency)
      .Add("noreply_rejected", client.noreply_rejected())
      .Add("internals_count", internals_count)
      .Add("internals_sheds", sheds_series)
      .Write();

  client.Stop();
  printf("%s\n", g_failed ? "OVERLOAD FAILED" : "OVERLOAD OK");
  return g_failed ? 1 : 0;
}
