// Figure 8 (paper §5.1): latency distribution of Flink-style hopping
// windows (hop 5 min -> 5 s) vs Railgun's real-time sliding window, at a
// fixed throughput, computing sum(amount) per card over a 60-minute
// window. The same open-loop injector, message bus and reply path drive
// both engines, so the difference measured is the windowing strategy.
//
// Expected shape (matches the paper): hopping latency blows up as the
// hop shrinks (per-event work = windowSize/hop state updates) while
// Railgun stays flat and below the 250 ms SLO line at p99.9.
//
// Knobs: RAILGUN_BENCH_EVENTS (default 4000), RAILGUN_BENCH_RATE
// (default 500 ev/s), RAILGUN_BENCH_MIN_HOP_SECONDS (default 15).
#include <atomic>
#include <memory>

#include "baseline/hopping_engine.h"
#include "baseline/worker.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/logging.h"
#include "engine/cluster.h"
#include "workload/generator.h"
#include "workload/injector.h"

using namespace railgun;
using namespace railgun::bench;

namespace {

workload::FraudStreamConfig WorkloadConfig() {
  workload::FraudStreamConfig config;
  config.num_cards = 20000;
  config.total_fields = 103;
  return config;
}

engine::StreamDef MakeStream(
    const workload::FraudStreamGenerator& generator) {
  engine::StreamDef stream;
  stream.name = "payments";
  stream.fields = generator.schema_fields();
  stream.partitioners = {"cardId"};
  stream.partitions_per_topic = 10;  // Paper: 10-partition event topic.
  stream.queries = {
      query::ParseQuery("SELECT sum(amount) FROM payments "
                        "GROUP BY cardId OVER sliding 60 minutes")
          .value()};
  return stream;
}

workload::InjectorOptions InjectorConfig() {
  workload::InjectorOptions options;
  options.events_per_second = EnvDouble("RAILGUN_BENCH_RATE", 500);
  options.total_events =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_EVENTS", 4000));
  options.warmup_events = options.total_events / 8;
  options.completion_timeout = 20 * kMicrosPerSecond;
  return options;
}

// Measures one hopping configuration end to end.
LatencyHistogram RunHopping(Micros hop) {
  (void)Env::Default()->RemoveDirRecursive("/tmp/railgun-bench-fig8-hop");
  msg::BusOptions bus_options;
  bus_options.delivery_delay = 200;
  msg::MessageBus bus(bus_options);

  workload::FraudStreamGenerator generator(WorkloadConfig());
  engine::StreamDef stream = MakeStream(generator);
  RAILGUN_CHECK_OK(bus.CreateTopic("payments.cardId", stream.partitions_per_topic));
  RAILGUN_CHECK_OK(bus.CreateTopic("replies.injector", 1));

  storage::DBOptions db_options;
  std::unique_ptr<storage::DB> db;
  RAILGUN_CHECK_OK(
      storage::DB::Open(db_options, "/tmp/railgun-bench-fig8-hop/db", &db));
  baseline::HoppingOptions hop_options;
  hop_options.window_size = 60 * kMicrosPerMinute;
  hop_options.hop = hop;
  baseline::HoppingEngine engine(hop_options, db.get());

  baseline::WorkerOptions worker_options;
  baseline::BaselineWorker worker(worker_options, &bus, &engine, stream,
                                  "payments.cardId",
                                  MonotonicClock::Default());
  RAILGUN_CHECK_OK(worker.Start());

  // Injector: produce envelopes, collect replies from the reply topic.
  std::mutex mu;
  std::map<uint64_t, std::function<void()>> pending;
  std::atomic<bool> running{true};
  std::thread reply_thread([&] {
    uint64_t pos = 0;
    std::vector<msg::Message> batch;
    while (running) {
      // Failure leaves the batch empty; the drain loop just spins on.
      (void)bus.Fetch({"replies.injector", 0}, pos, 512, &batch);
      pos += batch.size();
      for (const auto& m : batch) {
        engine::ReplyEnvelope reply;
        if (!engine::DecodeReplyEnvelope(Slice(m.payload), &reply).ok()) {
          continue;
        }
        std::function<void()> done;
        {
          std::lock_guard<std::mutex> lock(mu);
          auto it = pending.find(reply.request_id);
          if (it == pending.end()) continue;
          done = std::move(it->second);
          pending.erase(it);
        }
        done();
      }
      if (batch.empty()) MonotonicClock::Default()->SleepMicros(100);
    }
  });

  const reservoir::Schema schema(0, stream.fields);
  uint64_t next_request = 1;
  workload::OpenLoopInjector injector(InjectorConfig(),
                                      MonotonicClock::Default());
  workload::InjectorReport report;
  RAILGUN_CHECK_OK(injector.Run(
      &generator,
      [&](const reservoir::Event& event, std::function<void()> done) {
        engine::EventEnvelope envelope;
        envelope.request_id = next_request++;
        envelope.reply_topic = "replies.injector";
        envelope.event = event;
        std::string payload;
        EncodeEventEnvelope(envelope, schema, &payload);
        {
          std::lock_guard<std::mutex> lock(mu);
          pending[envelope.request_id] = std::move(done);
        }
        return bus
            .Produce("payments.cardId", event.values[0].ToString(),
                     std::move(payload))
            .status();
      },
      &report));

  running = false;
  reply_thread.join();
  worker.Stop();
  return report.latencies;
}

LatencyHistogram RunRailgun() {
  engine::ClusterOptions options;
  options.num_nodes = 1;
  options.node.num_processor_units = 1;  // Paper: one computing engine.
  options.bus.delivery_delay = 200;
  options.base_dir = "/tmp/railgun-bench-fig8-railgun";
  engine::Cluster cluster(options);
  RAILGUN_CHECK_OK(cluster.Start());

  workload::FraudStreamGenerator generator(WorkloadConfig());
  RAILGUN_CHECK_OK(cluster.RegisterStream(MakeStream(generator)));

  workload::OpenLoopInjector injector(InjectorConfig(),
                                      MonotonicClock::Default());
  workload::InjectorReport report;
  RAILGUN_CHECK_OK(injector.Run(
      &generator,
      [&](const reservoir::Event& event, std::function<void()> done) {
        return cluster.node(0)->frontend()->Submit(
            "payments", event,
            [done = std::move(done)](
                Status, const std::vector<engine::MetricReply>&) { done(); });
      },
      &report));
  cluster.Stop();
  return report.latencies;
}

}  // namespace

int main() {
  printf("=== Figure 8: Flink hopping windows vs Railgun sliding ===\n");
  printf("sum(amount) by card, 60-min window, %g ev/s, %lld events "
         "(latencies in ms; paper SLO: p99.9 < 250 ms)\n\n",
         EnvDouble("RAILGUN_BENCH_RATE", 500),
         static_cast<long long>(EnvInt("RAILGUN_BENCH_EVENTS", 4000)));
  PrintPercentileHeader();

  const Micros min_hop =
      EnvInt("RAILGUN_BENCH_MIN_HOP_SECONDS", 15) * kMicrosPerSecond;
  struct HopConfig {
    const char* label;
    Micros hop;
  };
  const HopConfig hops[] = {
      {"flink hop=5min", 5 * kMicrosPerMinute},
      {"flink hop=1min", kMicrosPerMinute},
      {"flink hop=30s", 30 * kMicrosPerSecond},
      {"flink hop=15s", 15 * kMicrosPerSecond},
      {"flink hop=10s", 10 * kMicrosPerSecond},
      {"flink hop=5s", 5 * kMicrosPerSecond},
  };
  JsonResult json("bench_fig8_flink_vs_railgun");
  for (const auto& config : hops) {
    if (config.hop < min_hop) {
      printf("%-28s (skipped: below RAILGUN_BENCH_MIN_HOP_SECONDS; the "
             "hop's %lld state updates/event degrade severely)\n",
             config.label,
             static_cast<long long>(60 * kMicrosPerMinute / config.hop));
      continue;
    }
    const LatencyHistogram hist = RunHopping(config.hop);
    PrintPercentileRow(config.label, hist);
    json.AddLatency("hop_" + std::to_string(config.hop / kMicrosPerSecond) +
                        "s",
                    hist);
  }
  const LatencyHistogram sliding = RunRailgun();
  PrintPercentileRow("railgun sliding", sliding);
  json.AddLatency("railgun_sliding", sliding).Write();

  printf("\nShape check vs paper: hopping latency grows as the hop\n"
         "shrinks (ws/hop state updates per event); Railgun's real-time\n"
         "sliding window stays flat and lowest.\n");
  return 0;
}
