// Ablation A3 (DESIGN.md / paper §4.2): the sticky assignment strategy
// minimizes data shuffle across rebalances. We replay a churn scenario
// (nodes joining, failing, rejoining) against the Fig. 7 sticky strategy
// and a round-robin baseline, counting moved task copies (each move =
// reservoir + state-store data that must be copied).
#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "engine/sticky_assignment.h"
#include "msg/assignment.h"

using namespace railgun;
using namespace railgun::bench;
using engine::ComputeStickyAssignment;
using engine::TaskAssignmentInput;
using engine::TaskAssignmentResult;
using engine::UnitDesc;
using msg::TopicPartition;

namespace {

std::vector<UnitDesc> MakeUnits(int nodes, int units_per_node) {
  std::vector<UnitDesc> units;
  for (int n = 0; n < nodes; ++n) {
    for (int u = 0; u < units_per_node; ++u) {
      units.push_back({"n" + std::to_string(n) + "/u" + std::to_string(u),
                       "n" + std::to_string(n)});
    }
  }
  return units;
}

// Round-robin baseline, adapted to tasks-with-replicas.
TaskAssignmentResult RoundRobinAssign(const TaskAssignmentInput& in) {
  TaskAssignmentResult result;
  if (in.units.empty()) return result;
  size_t cursor = 0;
  for (const auto& task : in.tasks) {
    std::set<std::string> used_nodes;
    for (int copy = 0; copy < in.replication_factor; ++copy) {
      // Next unit on an unused node.
      for (size_t probe = 0; probe < in.units.size(); ++probe) {
        const auto& unit = in.units[(cursor + probe) % in.units.size()];
        if (used_nodes.count(unit.node_id) > 0) continue;
        used_nodes.insert(unit.node_id);
        cursor = (cursor + probe + 1) % in.units.size();
        if (copy == 0) {
          result.active[task] = unit.unit_id;
          result.active_by_unit[unit.unit_id].push_back(task);
          const auto prev = in.prev_active.find(task);
          if (prev == in.prev_active.end() || prev->second != unit.unit_id) {
            ++result.moved_active;
          }
        } else {
          result.replicas[task].push_back(unit.unit_id);
          result.replicas_by_unit[unit.unit_id].push_back(task);
          const auto prev = in.prev_replicas.find(task);
          if (prev == in.prev_replicas.end() ||
              prev->second.count(unit.unit_id) == 0) {
            ++result.moved_replicas;
          }
        }
        break;
      }
    }
  }
  return result;
}

struct ChurnStats {
  int total_moves = 0;
  int rebalances = 0;
};

template <typename AssignFn>
ChurnStats RunChurn(const AssignFn& assign, int num_tasks) {
  TaskAssignmentInput in;
  for (int t = 0; t < num_tasks; ++t) in.tasks.push_back({"t", t});
  in.replication_factor = 3;  // Paper's production setting.

  ChurnStats stats;
  auto apply = [&](int nodes) {
    in.units = MakeUnits(nodes, 4);
    const TaskAssignmentResult result = assign(in);
    stats.total_moves += result.moved_active + result.moved_replicas;
    ++stats.rebalances;
    in.prev_active = result.active;
    in.prev_replicas.clear();
    for (const auto& [task, units] : result.replicas) {
      in.prev_replicas[task] =
          std::set<std::string>(units.begin(), units.end());
    }
  };

  // Churn scenario: grow 4->8 nodes, lose one, regrow, steady state.
  for (int nodes : {4, 5, 6, 7, 8, 7, 8, 8, 8, 8}) apply(nodes);
  return stats;
}

}  // namespace

int main() {
  const int num_tasks = static_cast<int>(EnvInt("RAILGUN_BENCH_TASKS", 64));
  printf("=== Ablation A3: sticky vs round-robin assignment ===\n");
  printf("%d tasks, replication 3, churn: grow 4->8 nodes, one failure, "
         "regrow, steady polls\n\n", num_tasks);
  printf("%-14s %12s %16s %18s\n", "strategy", "rebalances", "task moves",
         "moves/rebalance");

  const ChurnStats sticky = RunChurn(
      [](const TaskAssignmentInput& in) { return ComputeStickyAssignment(in); },
      num_tasks);
  printf("%-14s %12d %16d %18.1f\n", "sticky(Fig.7)", sticky.rebalances,
         sticky.total_moves,
         static_cast<double>(sticky.total_moves) / sticky.rebalances);

  const ChurnStats rr = RunChurn(
      [](const TaskAssignmentInput& in) { return RoundRobinAssign(in); },
      num_tasks);
  printf("%-14s %12d %16d %18.1f\n", "round-robin", rr.rebalances,
         rr.total_moves,
         static_cast<double>(rr.total_moves) / rr.rebalances);

  JsonResult("bench_ablation_rebalance")
      .Add("tasks", num_tasks)
      .Add("sticky_rebalances", sticky.rebalances)
      .Add("sticky_moves", sticky.total_moves)
      .Add("round_robin_rebalances", rr.rebalances)
      .Add("round_robin_moves", rr.total_moves)
      .Write();

  printf("\nExpected: the sticky strategy moves a small fraction of the\n"
         "copies round-robin does (each move = a reservoir + state-store\n"
         "copy during recovery), especially in steady state.\n");
  return 0;
}
