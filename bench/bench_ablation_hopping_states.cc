// Ablation A2 (DESIGN.md / paper §2.2): hopping-window cost is driven by
// the ratio windowSize/hop — the number of live window states every
// event must update. We sweep the ratio at a fixed window size and
// report per-event service time, isolating the structural cost that
// Figure 8 measures end to end.
#include <algorithm>

#include "baseline/hopping_engine.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/logging.h"
#include "storage/db.h"

using namespace railgun;
using namespace railgun::bench;

int main() {
  printf("=== Ablation A2: hopping window state count vs per-event cost "
         "===\n");
  printf("60-min window; per-event service time over %lld events\n\n",
         static_cast<long long>(EnvInt("RAILGUN_BENCH_EVENTS", 2000)));
  printf("%-14s %10s %14s %14s %14s\n", "hop", "states/ev", "mean us/ev",
         "p99 us/ev", "events/sec");

  const struct {
    const char* label;
    Micros hop;
  } hops[] = {
      {"10min", 10 * kMicrosPerMinute}, {"5min", 5 * kMicrosPerMinute},
      {"1min", kMicrosPerMinute},       {"30s", 30 * kMicrosPerSecond},
      {"10s", 10 * kMicrosPerSecond},   {"5s", 5 * kMicrosPerSecond},
      {"1s", kMicrosPerSecond},
  };
  const int64_t base_events = EnvInt("RAILGUN_BENCH_EVENTS", 2000);

  JsonResult json("bench_ablation_hopping_states");
  for (const auto& config : hops) {
    // Fewer samples for the pathological ratios: per-event cost grows
    // linearly, and the mean stabilizes quickly there.
    const int64_t states = 60 * kMicrosPerMinute / config.hop;
    const int64_t events =
        states >= 360 ? std::max<int64_t>(100, base_events / 8)
                      : base_events;
    (void)storage::DestroyDB("/tmp/railgun-bench-hopstates");
    std::unique_ptr<storage::DB> db;
    RAILGUN_CHECK_OK(storage::DB::Open({}, "/tmp/railgun-bench-hopstates", &db));
    baseline::HoppingOptions options;
    options.window_size = 60 * kMicrosPerMinute;
    options.hop = config.hop;
    baseline::HoppingEngine engine(options, db.get());

    LatencyHistogram per_event;
    Clock* clock = MonotonicClock::Default();
    const Micros bench_start = clock->NowMicros();
    for (int64_t i = 0; i < events; ++i) {
      const std::string key = "card" + std::to_string(i % 100);
      const Micros ts = static_cast<Micros>(i) * 2000;  // 500 ev/s of
                                                        // event time.
      baseline::BaselineResult result;
      const Micros start = clock->NowMicros();
      RAILGUN_CHECK_OK(engine.ProcessEvent(key, ts, 1.0, &result));
      per_event.Record(clock->NowMicros() - start);
    }
    const double elapsed_s =
        static_cast<double>(clock->NowMicros() - bench_start) / 1e6;
    printf("%-14s %10lld %14.1f %14lld %14.0f\n", config.label,
           static_cast<long long>(engine.states_per_event()),
           per_event.Mean(),
           static_cast<long long>(per_event.ValueAtPercentile(99)),
           static_cast<double>(events) / elapsed_s);
    fflush(stdout);
    const std::string prefix = std::string("hop_") + config.label;
    json.Add(prefix + "_states_per_event", engine.states_per_event())
        .Add(prefix + "_mean_us", per_event.Mean())
        .Add(prefix + "_p99_us",
             static_cast<double>(per_event.ValueAtPercentile(99)))
        .Add(prefix + "_eps", static_cast<double>(events) / elapsed_s);
  }
  json.Write();

  printf("\nExpected: cost grows ~linearly with windowSize/hop; at hop=1s\n"
         "(3600 states/event) the engine cannot sustain 500 ev/s — the\n"
         "blow-up behind Figure 8.\n");
  return 0;
}
