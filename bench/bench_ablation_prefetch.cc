// Ablation A1 (DESIGN.md): the reservoir's eager chunk prefetch keeps
// disk I/O off the event-processing critical path (paper §4.1.1). We
// scan a cold reservoir at a paced rate with prefetch on and off and
// report the synchronous chunk loads plus the per-advance latency tail.
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/env.h"
#include "common/logging.h"
#include "reservoir/reservoir.h"
#include "workload/generator.h"

using namespace railgun;
using namespace railgun::bench;

namespace {

struct ScanResult {
  LatencyHistogram advance_latency;  // Microseconds per 100-event stride.
  uint64_t sync_loads = 0;
  uint64_t prefetches = 0;
};

ScanResult RunScan(bool prefetch_enabled) {
  const std::string dir = "/tmp/railgun-bench-prefetch";
  (void)Env::Default()->RemoveDirRecursive(dir);

  reservoir::ReservoirOptions options;
  options.chunk_target_bytes = 16 * 1024;
  options.cache_capacity = 4;  // Small: every boundary is a potential miss.
  options.enable_prefetch = prefetch_enabled;
  workload::FraudStreamConfig config;
  config.total_fields = 24;
  workload::FraudStreamGenerator generator(config);
  options.schema_fields = generator.schema_fields();

  reservoir::Reservoir res(options, dir);
  RAILGUN_CHECK_OK(res.Open());
  const uint64_t total =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_SEED_EVENTS", 40000));
  for (uint64_t i = 0; i < total; ++i) {
    RAILGUN_CHECK_OK(res.Append(generator.Next(static_cast<Micros>(i) * 1000)));
  }
  RAILGUN_CHECK_OK(res.Sync());

  ScanResult result;
  auto iter = res.NewIterator();
  Clock* clock = MonotonicClock::Default();
  uint64_t scanned = 0;
  while (!iter->AtEnd()) {
    const Micros start = clock->NowMicros();
    for (int k = 0; k < 50 && !iter->AtEnd(); ++k) {
      iter->Advance();
      ++scanned;
    }
    result.advance_latency.Record(clock->NowMicros() - start);
    // Paced consumption (~50k ev/s) so the prefetcher has the window it
    // would have under a real event rate (the paper's tail iterators
    // consume at the injection rate).
    clock->SleepMicros(1000);
  }
  result.sync_loads = res.stats().sync_chunk_loads;
  result.prefetches = res.stats().prefetches_issued;
  return result;
}

}  // namespace

int main() {
  printf("=== Ablation A1: eager chunk prefetch on/off ===\n");
  printf("cold scan of the reservoir, paced reader, cache=4 chunks\n\n");
  printf("%-16s %12s %12s %12s %12s %12s\n", "config", "sync loads",
         "prefetches", "p50 us", "p99 us", "max us");
  JsonResult json("bench_ablation_prefetch");
  for (const bool enabled : {true, false}) {
    const ScanResult result = RunScan(enabled);
    printf("%-16s %12llu %12llu %12lld %12lld %12lld\n",
           enabled ? "prefetch ON" : "prefetch OFF",
           static_cast<unsigned long long>(result.sync_loads),
           static_cast<unsigned long long>(result.prefetches),
           static_cast<long long>(result.advance_latency.ValueAtPercentile(50)),
           static_cast<long long>(result.advance_latency.ValueAtPercentile(99)),
           static_cast<long long>(result.advance_latency.Max()));
    fflush(stdout);
    const std::string prefix = enabled ? "prefetch_on" : "prefetch_off";
    json.Add(prefix + "_sync_loads", result.sync_loads)
        .Add(prefix + "_prefetches", result.prefetches)
        .AddLatency(prefix + "_advance", result.advance_latency);
  }
  json.Write();
  printf("\nExpected: prefetch ON turns chunk-boundary stalls (synchronous\n"
         "loads incl. decompression) into background work.\n");
  return 0;
}
