// Figure 9(a) (paper §5.2): Railgun latency distribution while the
// window size varies from 5 minutes to 7 days. The reservoir is
// pre-seeded with history covering the whole window (the paper starts
// from a data checkpoint) so head AND tail iterators are both active.
//
// Expected shape: the curves for every window size overlap — window
// length is irrelevant to Railgun's latency, because each window is two
// iterators regardless of size.
//
// Knobs: RAILGUN_BENCH_EVENTS (default 3000), RAILGUN_BENCH_RATE
// (default 500), RAILGUN_BENCH_SEED_EVENTS (default 20000).
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/logging.h"
#include "engine/cluster.h"
#include "workload/generator.h"
#include "workload/injector.h"

using namespace railgun;
using namespace railgun::bench;

namespace {

LatencyHistogram RunWindowSize(Micros window, const char* window_label) {
  engine::ClusterOptions options;
  options.num_nodes = 1;
  options.node.num_processor_units = 1;
  options.node.unit.task.reservoir.chunk_target_bytes = 32 * 1024;
  options.bus.delivery_delay = 200;
  options.base_dir = "/tmp/railgun-bench-fig9a";
  engine::Cluster cluster(options);
  RAILGUN_CHECK_OK(cluster.Start());

  workload::FraudStreamConfig config;
  config.num_cards = 20000;
  workload::FraudStreamGenerator generator(config);

  engine::StreamDef stream;
  stream.name = "payments";
  stream.fields = generator.schema_fields();
  stream.partitioners = {"cardId"};
  stream.partitions_per_topic = 4;
  char sql[160];
  snprintf(sql, sizeof(sql),
           "SELECT sum(amount) FROM payments GROUP BY cardId OVER %s",
           window_label);
  stream.queries = {query::ParseQuery(sql).value()};
  RAILGUN_CHECK_OK(cluster.RegisterStream(stream));

  // Pre-seed: history spanning the window so tails iterate during the
  // measured run (fire-and-forget, full speed).
  const uint64_t seed_events =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_SEED_EVENTS", 20000));
  const Micros now = MonotonicClock::Default()->NowMicros();
  const Micros history_start = now - window;
  const Micros step = window / static_cast<Micros>(seed_events);
  for (uint64_t i = 0; i < seed_events; ++i) {
    reservoir::Event event =
        generator.Next(history_start + static_cast<Micros>(i) * step);
    // Fire-and-forget seeding: shed events are part of the modelled load.
    (void)cluster.node(0)->frontend()->SubmitNoReply("payments", event);
  }
  cluster.WaitForQuiescence(60 * kMicrosPerSecond);

  workload::InjectorOptions injector_options;
  injector_options.events_per_second = EnvDouble("RAILGUN_BENCH_RATE", 500);
  injector_options.total_events =
      static_cast<uint64_t>(EnvInt("RAILGUN_BENCH_EVENTS", 3000));
  injector_options.warmup_events = injector_options.total_events / 8;
  workload::OpenLoopInjector injector(injector_options,
                                      MonotonicClock::Default());
  workload::InjectorReport report;
  RAILGUN_CHECK_OK(injector.Run(
      &generator,
      [&](const reservoir::Event& event, std::function<void()> done) {
        return cluster.node(0)->frontend()->Submit(
            "payments", event,
            [done = std::move(done)](
                Status, const std::vector<engine::MetricReply>&) { done(); });
      },
      &report));
  cluster.Stop();
  return report.latencies;
}

}  // namespace

int main() {
  printf("=== Figure 9(a): Railgun latency vs window size ===\n");
  printf("sum(amount) by card at %g ev/s, reservoir pre-seeded across "
         "the window (latencies in ms)\n\n",
         EnvDouble("RAILGUN_BENCH_RATE", 500));
  PrintPercentileHeader();

  struct WindowConfig {
    const char* label;
    const char* sql;
    Micros size;
  };
  const WindowConfig windows[] = {
      {"window=5min", "sliding 5 minutes", 5 * kMicrosPerMinute},
      {"window=30min", "sliding 30 minutes", 30 * kMicrosPerMinute},
      {"window=1h", "sliding 1 hour", kMicrosPerHour},
      {"window=2h", "sliding 2 hours", 2 * kMicrosPerHour},
      {"window=3h", "sliding 3 hours", 3 * kMicrosPerHour},
      {"window=1day", "sliding 1 day", kMicrosPerDay},
      {"window=7days", "sliding 7 days", 7 * kMicrosPerDay},
  };
  JsonResult json("bench_fig9a_window_size");
  for (const auto& w : windows) {
    const LatencyHistogram hist = RunWindowSize(w.size, w.sql);
    PrintPercentileRow(w.label, hist);
    json.AddLatency(w.label, hist);
  }
  json.Write();

  printf("\nShape check vs paper: all rows overlap — the window size is\n"
         "irrelevant to Railgun's latency (two iterators per window,\n"
         "independent of extent).\n");
  return 0;
}
