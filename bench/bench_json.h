// Machine-readable results for every bench_* binary: alongside the
// human tables on stdout, each bench writes one
// <results_dir>/<name>.json (default bench/results/, override with
// $RAILGUN_BENCH_RESULTS_DIR) so CI smoke jobs and regression tooling
// can assert on numbers without scraping stdout.
#ifndef RAILGUN_BENCH_BENCH_JSON_H_
#define RAILGUN_BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/histogram.h"

namespace railgun::bench {

class JsonResult {
 public:
  explicit JsonResult(std::string name) : name_(std::move(name)) {
    AddString("bench", name_);
  }

  JsonResult& Add(const std::string& key, double value) {
    char buf[64];
    // Non-finite values are not valid JSON; null keeps the key visible.
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    } else {
      std::snprintf(buf, sizeof(buf), "null");
    }
    fields_.emplace_back(key, buf);
    return *this;
  }

  JsonResult& Add(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  JsonResult& Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  JsonResult& Add(const std::string& key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }

  JsonResult& AddString(const std::string& key, const std::string& value) {
    std::string escaped = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    escaped.push_back('"');
    fields_.emplace_back(key, std::move(escaped));
    return *this;
  }

  // Expands a latency histogram into <key>_p50/_p99/_p999/_max
  // microsecond fields plus <key>_count.
  JsonResult& AddLatency(const std::string& key,
                         const LatencyHistogram& hist) {
    Add(key + "_count", static_cast<uint64_t>(hist.Count()));
    Add(key + "_p50_us", static_cast<double>(hist.ValueAtPercentile(50)));
    Add(key + "_p99_us", static_cast<double>(hist.ValueAtPercentile(99)));
    Add(key + "_p999_us", static_cast<double>(hist.ValueAtPercentile(99.9)));
    Add(key + "_max_us", static_cast<double>(hist.ValueAtPercentile(100)));
    return *this;
  }

  // Writes <results_dir>/<name>.json. Best effort by design: an
  // unwritable results dir must not fail a bench whose numbers already
  // printed, so failures are reported on stderr and swallowed.
  void Write() const {
    const char* override_dir = getenv("RAILGUN_BENCH_RESULTS_DIR");
    const std::string dir =
        override_dir != nullptr ? override_dir : "bench/results";
    Env* env = Env::Default();
    Status status = env->CreateDir(dir);
    if (status.ok()) {
      std::string json = "{";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) json += ",";
        json += "\n  \"" + fields_[i].first + "\": " + fields_[i].second;
      }
      json += "\n}\n";
      const std::string path = JoinPath(dir, name_ + ".json");
      status = WriteStringToFile(env, Slice(json), path);
      if (status.ok()) {
        printf("results: %s\n", path.c_str());
        return;
      }
    }
    fprintf(stderr, "bench results not written: %s\n",
            status.ToString().c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace railgun::bench

#endif  // RAILGUN_BENCH_BENCH_JSON_H_
