// Microbenchmarks (google-benchmark) for the messaging layer: produce,
// fetch, group poll and rebalance costs.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_main.h"
#include "common/logging.h"
#include "msg/broker.h"

using namespace railgun;
using namespace railgun::msg;

namespace {

BusOptions InstantBus() {
  BusOptions options;
  options.delivery_delay = 0;
  return options;
}

void BM_Produce(benchmark::State& state) {
  MessageBus bus(InstantBus());
  RAILGUN_CHECK_OK(bus.CreateTopic("t", static_cast<int>(state.range(0))));
  std::string payload(256, 'p');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bus.Produce("t", "key" + std::to_string(i++ % 1000), payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Produce)->Arg(1)->Arg(16)->Arg(64);

void BM_FetchBatch(benchmark::State& state) {
  MessageBus bus(InstantBus());
  RAILGUN_CHECK_OK(bus.CreateTopic("t", 1));
  for (int i = 0; i < 100000; ++i) {
    RAILGUN_CHECK_OK(
        bus.ProduceToPartition("t", 0, "k", std::string(128, 'm')).status());
  }
  uint64_t pos = 0;
  std::vector<Message> batch;
  for (auto _ : state) {
    if (bus.Fetch({"t", 0}, pos, static_cast<size_t>(state.range(0)),
                  &batch)
            .ok()) {
      pos = (pos + batch.size()) % 100000;
    }
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FetchBatch)->Arg(16)->Arg(256);

void BM_GroupPoll(benchmark::State& state) {
  MessageBus bus(InstantBus());
  RAILGUN_CHECK_OK(bus.CreateTopic("t", 8));
  RAILGUN_CHECK_OK(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}));
  std::vector<Message> batch;
  RAILGUN_CHECK_OK(bus.Poll("c", 1, &batch));  // Absorb the assignment.
  uint64_t produced = 0;
  for (auto _ : state) {
    if (produced % 64 == 0) {
      for (int i = 0; i < 64; ++i) {
        RAILGUN_CHECK_OK(bus.ProduceToPartition("t", i % 8, "k", "m").status());
      }
    }
    produced += 64;
    benchmark::DoNotOptimize(bus.Poll("c", 64, &batch));
  }
}
BENCHMARK(BM_GroupPoll);

void BM_Rebalance(benchmark::State& state) {
  // Cost of a full join/leave cycle at a given member count.
  for (auto _ : state) {
    state.PauseTiming();
    MessageBus bus(InstantBus());
    RAILGUN_CHECK_OK(bus.CreateTopic("t", static_cast<int>(state.range(0)) * 4));
    state.ResumeTiming();
    for (int m = 0; m < state.range(0); ++m) {
      RAILGUN_CHECK_OK(
          bus.Subscribe("c" + std::to_string(m), "g", {"t"}, "", nullptr, {}));
    }
    benchmark::DoNotOptimize(bus.rebalance_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Rebalance)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

RAILGUN_BENCH_MICRO_MAIN("bench_micro_msg")
