// Shared main() for the google-benchmark micro benches: identical to
// BENCHMARK_MAIN(), plus routing the library's native JSON reporter at
// the same results directory the macro benches' JsonResult uses
// (bench/results/ or $RAILGUN_BENCH_RESULTS_DIR), so every bench_*
// binary leaves one machine-readable <name>.json behind.
#ifndef RAILGUN_BENCH_BENCH_MICRO_MAIN_H_
#define RAILGUN_BENCH_BENCH_MICRO_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"

#define RAILGUN_BENCH_MICRO_MAIN(bench_name)                                 \
  int main(int argc, char** argv) {                                          \
    const char* override_dir = getenv("RAILGUN_BENCH_RESULTS_DIR");          \
    const std::string dir =                                                  \
        override_dir != nullptr ? override_dir : "bench/results";            \
    std::string out_flag;                                                    \
    std::string fmt_flag = "--benchmark_out_format=json";                    \
    std::vector<char*> args;                                                 \
    args.push_back(argv[0]);                                                 \
    /* Our defaults go right after argv[0]: the library's flag parsing   */  \
    /* is last-wins, so explicit command-line choices still override.    */  \
    if (railgun::Env::Default()->CreateDir(dir).ok()) {                      \
      out_flag = "--benchmark_out=" +                                        \
                 railgun::JoinPath(dir, std::string(bench_name) + ".json");  \
      args.push_back(out_flag.data());                                       \
      args.push_back(fmt_flag.data());                                       \
    }                                                                        \
    for (int i = 1; i < argc; ++i) args.push_back(argv[i]);                  \
    int args_count = static_cast<int>(args.size());                          \
    ::benchmark::Initialize(&args_count, args.data());                       \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    return 0;                                                                \
  }

#endif  // RAILGUN_BENCH_BENCH_MICRO_MAIN_H_
